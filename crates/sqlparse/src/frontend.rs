//! Multi-block front-end: rewriting richer SQL into the single-block
//! fragment.
//!
//! Footnote 2 of the paper: *"We can handle a query with common table
//! expressions (WITH) and subqueries in FROM that are aggregation-free, as
//! well as non-outer JOINs in FROM, by rewriting the query into single-block
//! SQL."* This module implements exactly that rewrite:
//!
//! * `WITH name AS (...)` common table expressions are inlined at each use
//!   site (each use gets fresh table aliases, which is the correct inlining
//!   semantics for bag-semantics SQL);
//! * aggregation-free derived tables `FROM (SELECT ...) d` are spliced into
//!   the outer block: their FROM entries are appended (with alias renaming
//!   to avoid capture), their WHERE is conjoined, and references to their
//!   output columns are replaced by the defining expressions;
//! * `A [INNER] JOIN B ON p` and `A CROSS JOIN B` are rewritten into comma
//!   joins with `p` conjoined into WHERE.
//!
//! Additionally, §3 ("Limitations", item 3) observes that *positive*
//! subqueries — `EXISTS (...)` and `expr IN (SELECT ...)` appearing at a
//! top-level conjunctive position of WHERE — "could be rewritten as part of
//! the join in the outer select-project-join query", with the caveat that
//! the rewrite does not preserve duplicate counts in general. Because the
//! paper explicitly calls this approach "unsatisfactory" for its
//! duplicate-sensitive FROM analysis, the rewrite is **opt-in** via
//! [`FlattenOptions::rewrite_positive_subqueries`]; with the option off,
//! such queries are reported as unsupported with a diagnostic explaining
//! the caveat. `NOT EXISTS` / `NOT IN (SELECT ...)` need the difference
//! operator and are always rejected, mirroring the paper.
//!
//! The strict single-block parser ([`crate::parse_query`]) is unaffected:
//! callers that want the paper's exact §3 fragment keep getting the same
//! `Unsupported` diagnostics; callers that want the footnote-2 front-end
//! use [`parse_query_extended`].
//!
//! ```
//! use qrhint_sqlparse::{parse_query_extended, FlattenOptions};
//! let q = parse_query_extended(
//!     "WITH cheap AS (SELECT s.bar, s.beer FROM serves s WHERE s.price < 3)
//!      SELECT c.bar FROM cheap c JOIN likes l ON c.beer = l.beer
//!      WHERE l.drinker = 'Amy'",
//!     &FlattenOptions::default(),
//! ).unwrap();
//! // Flattened to the single-block fragment: two base tables, all
//! // conditions conjoined into WHERE.
//! assert_eq!(q.from.len(), 2);
//! assert!(q.to_string().contains("s.price < 3"));
//! ```

use crate::lexer::{lex, Token};
use crate::parser::{ParseError, Parser};
use qrhint_sqlast::{ColRef, Pred, Query, Scalar, SelectItem, TableRef};
use std::collections::{BTreeMap, BTreeSet};

/// Options controlling the flattening rewrite.
#[derive(Debug, Clone, Default)]
pub struct FlattenOptions {
    /// Rewrite positive `EXISTS` / `IN (SELECT ...)` subqueries at
    /// top-level conjunctive WHERE positions into joins. **Caveat (§3 of
    /// the paper)**: the rewrite preserves the *set* of result rows but not
    /// their duplicate counts; enable it only when downstream analysis may
    /// assume set semantics (e.g. the outer query is `SELECT DISTINCT`).
    pub rewrite_positive_subqueries: bool,
}

impl FlattenOptions {
    /// Options with the positive-subquery rewrite enabled.
    pub fn with_subquery_rewrite() -> Self {
        FlattenOptions { rewrite_positive_subqueries: true }
    }
}

/// Join operators supported by the front-end (outer joins are rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `A [INNER] JOIN B ON p`.
    Inner,
    /// `A CROSS JOIN B`.
    Cross,
}

/// One item of a multi-block FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// Plain table reference (or a reference to a CTE by name).
    Table { table: String, alias: Option<String> },
    /// Derived table `(SELECT ...) alias`.
    Derived { query: Box<BlockQuery>, alias: String },
    /// Binary join `left <kind> right [ON on]`.
    Join { left: Box<FromItem>, right: Box<FromItem>, kind: JoinKind, on: Option<PredExt> },
}

/// Predicates that may contain subquery leaves (before flattening).
#[derive(Debug, Clone, PartialEq)]
pub enum PredExt {
    /// A predicate of the core fragment (no subqueries inside).
    Core(Pred),
    /// n-ary conjunction.
    And(Vec<PredExt>),
    /// n-ary disjunction.
    Or(Vec<PredExt>),
    /// Negation.
    Not(Box<PredExt>),
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists { query: Box<BlockQuery>, negated: bool },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery { expr: Scalar, query: Box<BlockQuery>, negated: bool },
}

impl PredExt {
    /// Smart conjunction (mirrors [`Pred::and`] at the extended level).
    pub fn and(mut children: Vec<PredExt>) -> PredExt {
        if children.len() == 1 {
            children.pop().unwrap()
        } else {
            PredExt::And(children)
        }
    }

    /// Whether any subquery leaf occurs in the tree.
    pub fn has_subquery(&self) -> bool {
        match self {
            PredExt::Core(_) => false,
            PredExt::And(cs) | PredExt::Or(cs) => cs.iter().any(PredExt::has_subquery),
            PredExt::Not(inner) => inner.has_subquery(),
            PredExt::Exists { .. } | PredExt::InSubquery { .. } => true,
        }
    }
}

/// One SELECT block of the extended grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockQuery {
    pub distinct: bool,
    /// `SELECT *` (only meaningful inside EXISTS subqueries, where the
    /// output list is irrelevant).
    pub select_star: bool,
    pub select: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub where_pred: PredExt,
    pub group_by: Vec<Scalar>,
    pub having: Option<Pred>,
}

/// A parsed multi-block query: optional CTEs plus the main block.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiQuery {
    /// `WITH name AS (...)` definitions, in source order. Each definition
    /// may reference only *earlier* definitions (standard, non-recursive
    /// WITH scoping).
    pub ctes: Vec<(String, BlockQuery)>,
    pub body: BlockQuery,
}

type PResult<T> = Result<T, ParseError>;

fn unsupported(feature: impl Into<String>) -> ParseError {
    ParseError::Unsupported { feature: feature.into(), offset: 0 }
}

// ===========================================================================
// Parsing
// ===========================================================================

/// Extended-grammar parser; wraps the strict parser for all shared
/// productions (scalar expressions, select items, core predicates).
struct ExtParser {
    p: Parser,
}

impl ExtParser {
    fn ext_boundary(&self, ident: &str) -> bool {
        self.p.is_clause_boundary(ident)
            || matches!(
                ident,
                "join" | "on" | "cross" | "inner" | "left" | "right" | "full" | "outer"
                    | "natural" | "using"
            )
    }

    /// Depth-guarded nested block parse (derived tables, CTE bodies,
    /// EXISTS/IN subqueries).
    fn descend_block(&mut self) -> PResult<BlockQuery> {
        if self.p.depth >= crate::parser::MAX_DEPTH {
            return Err(ParseError::Unsupported {
                feature: format!(
                    "query nesting deeper than {}",
                    crate::parser::MAX_DEPTH
                ),
                offset: self.p.offset(),
            });
        }
        self.p.depth += 1;
        let r = self.block();
        self.p.depth -= 1;
        r
    }

    /// Depth-guarded NOT chain.
    fn descend_unary_ext(&mut self) -> PResult<PredExt> {
        if self.p.depth >= crate::parser::MAX_DEPTH {
            return Err(ParseError::Unsupported {
                feature: format!(
                    "expression nesting deeper than {}",
                    crate::parser::MAX_DEPTH
                ),
                offset: self.p.offset(),
            });
        }
        self.p.depth += 1;
        let r = self.unary_ext();
        self.p.depth -= 1;
        r
    }

    fn multi_query(&mut self) -> PResult<MultiQuery> {
        let mut ctes = Vec::new();
        if self.p.eat_keyword("with") {
            loop {
                if self.p.at_keyword("recursive") {
                    return Err(ParseError::Unsupported {
                        feature: "recursive common table expressions".into(),
                        offset: self.p.offset(),
                    });
                }
                let name = match self.p.bump() {
                    Token::Ident(n) => n,
                    _ => return Err(self.p.unexpected("CTE name")),
                };
                self.p.expect_keyword("as")?;
                self.p.expect(&Token::LParen, "( opening CTE body")?;
                let body = self.descend_block()?;
                self.p.expect(&Token::RParen, ") closing CTE body")?;
                ctes.push((name, body));
                if matches!(self.p.peek(), Token::Comma) {
                    self.p.bump();
                } else {
                    break;
                }
            }
        }
        let body = self.block()?;
        if matches!(self.p.peek(), Token::Semicolon) {
            self.p.bump();
        }
        self.p.expect(&Token::Eof, "end of query")?;
        Ok(MultiQuery { ctes, body })
    }

    fn block(&mut self) -> PResult<BlockQuery> {
        self.p.expect_keyword("select")?;
        let distinct = self.p.eat_keyword("distinct");
        let mut select_star = false;
        let mut select = Vec::new();
        if matches!(self.p.peek(), Token::Star) {
            self.p.bump();
            select_star = true;
        } else {
            select.push(self.p.select_item()?);
            while matches!(self.p.peek(), Token::Comma) {
                self.p.bump();
                select.push(self.p.select_item()?);
            }
        }
        self.p.expect_keyword("from")?;
        let mut from = vec![self.join_chain()?];
        while matches!(self.p.peek(), Token::Comma) {
            self.p.bump();
            from.push(self.join_chain()?);
        }
        self.reject_set_ops()?;
        let where_pred = if self.p.eat_keyword("where") {
            self.pred_ext()?
        } else {
            PredExt::Core(Pred::True)
        };
        self.reject_set_ops()?;
        let mut group_by = Vec::new();
        if self.p.at_keyword("group") {
            self.p.bump();
            self.p.expect_keyword("by")?;
            group_by.push(self.p.expr()?);
            while matches!(self.p.peek(), Token::Comma) {
                self.p.bump();
                group_by.push(self.p.expr()?);
            }
        }
        let having = if self.p.eat_keyword("having") { Some(self.p.pred()?) } else { None };
        if self.p.eat_keyword("order") {
            // ORDER BY is parsed and discarded, as in the strict parser
            // (bag semantics ignores ordering).
            self.p.expect_keyword("by")?;
            loop {
                let _ = self.p.expr()?;
                let _ = self.p.eat_keyword("asc") || self.p.eat_keyword("desc");
                if matches!(self.p.peek(), Token::Comma) {
                    self.p.bump();
                } else {
                    break;
                }
            }
        }
        self.reject_set_ops()?;
        Ok(BlockQuery { distinct, select_star, select, from, where_pred, group_by, having })
    }

    fn reject_set_ops(&self) -> PResult<()> {
        if let Token::Ident(s) = self.p.peek() {
            if matches!(s.as_str(), "union" | "intersect" | "except") {
                return Err(ParseError::Unsupported {
                    feature: "set operators (UNION/INTERSECT/EXCEPT)".into(),
                    offset: self.p.offset(),
                });
            }
            if s == "limit" {
                return Err(ParseError::Unsupported {
                    feature: "LIMIT".into(),
                    offset: self.p.offset(),
                });
            }
        }
        Ok(())
    }

    // ---------- FROM ----------

    fn join_chain(&mut self) -> PResult<FromItem> {
        let mut item = self.parse_from_primary()?;
        while let Token::Ident(kw) = self.p.peek() {
            let kw = kw.clone();
            match kw.as_str() {
                "left" | "right" | "full" | "outer" => {
                    return Err(ParseError::Unsupported {
                        feature: "outer joins".into(),
                        offset: self.p.offset(),
                    });
                }
                "natural" => {
                    return Err(ParseError::Unsupported {
                        feature: "NATURAL JOIN".into(),
                        offset: self.p.offset(),
                    });
                }
                "inner" | "join" | "cross" => {}
                _ => break,
            }
            let kind = if self.p.eat_keyword("cross") {
                self.p.expect_keyword("join")?;
                JoinKind::Cross
            } else {
                let _ = self.p.eat_keyword("inner");
                self.p.expect_keyword("join")?;
                JoinKind::Inner
            };
            let right = self.parse_from_primary()?;
            let on = if kind == JoinKind::Inner {
                if self.p.eat_keyword("using") {
                    return Err(ParseError::Unsupported {
                        feature: "JOIN ... USING (rewrite as ON with explicit equalities)".into(),
                        offset: self.p.offset(),
                    });
                }
                self.p.expect_keyword("on")?;
                Some(self.pred_ext()?)
            } else {
                None
            };
            item = FromItem::Join {
                left: Box::new(item),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(item)
    }

    fn parse_from_primary(&mut self) -> PResult<FromItem> {
        if matches!(self.p.peek(), Token::LParen) {
            self.p.bump();
            if !self.p.at_keyword("select") {
                return Err(self.p.unexpected("SELECT opening a derived table"));
            }
            let q = self.descend_block()?;
            self.p.expect(&Token::RParen, ") closing derived table")?;
            let _ = self.p.eat_keyword("as");
            let alias = match self.p.bump() {
                Token::Ident(a) if !self.ext_boundary(&a) => a,
                _ => return Err(self.p.unexpected("alias for derived table")),
            };
            return Ok(FromItem::Derived { query: Box::new(q), alias });
        }
        let table = match self.p.bump() {
            Token::Ident(t) => t,
            _ => return Err(self.p.unexpected("table name")),
        };
        let alias = if self.p.eat_keyword("as") {
            match self.p.bump() {
                Token::Ident(a) => Some(a),
                _ => return Err(self.p.unexpected("table alias after AS")),
            }
        } else if let Token::Ident(a) = self.p.peek() {
            let a = a.clone();
            if self.ext_boundary(&a) {
                None
            } else {
                self.p.bump();
                Some(a)
            }
        } else {
            None
        };
        Ok(FromItem::Table { table, alias })
    }

    // ---------- predicates ----------

    fn pred_ext(&mut self) -> PResult<PredExt> {
        let mut disjuncts = vec![self.conj_ext()?];
        while self.p.eat_keyword("or") {
            disjuncts.push(self.conj_ext()?);
        }
        Ok(if disjuncts.len() == 1 {
            disjuncts.pop().unwrap()
        } else {
            PredExt::Or(disjuncts)
        })
    }

    fn conj_ext(&mut self) -> PResult<PredExt> {
        let mut conjuncts = vec![self.unary_ext()?];
        while self.p.eat_keyword("and") {
            conjuncts.push(self.unary_ext()?);
        }
        Ok(if conjuncts.len() == 1 {
            conjuncts.pop().unwrap()
        } else {
            PredExt::And(conjuncts)
        })
    }

    fn unary_ext(&mut self) -> PResult<PredExt> {
        if self.p.eat_keyword("not") {
            // `NOT EXISTS (...)` folds the negation into the leaf so the
            // flattener can report it precisely.
            if self.p.at_keyword("exists") {
                let mut leaf = self.exists_leaf()?;
                if let PredExt::Exists { negated, .. } = &mut leaf {
                    *negated = true;
                }
                return Ok(leaf);
            }
            let inner = self.descend_unary_ext()?;
            // Collapse NOT over core predicates for parity with the strict
            // parser's smart negation.
            return Ok(match inner {
                PredExt::Core(p) => PredExt::Core(Pred::not(p)),
                PredExt::InSubquery { expr, query, negated } => {
                    PredExt::InSubquery { expr, query, negated: !negated }
                }
                PredExt::Exists { query, negated } => {
                    PredExt::Exists { query, negated: !negated }
                }
                other => PredExt::Not(Box::new(other)),
            });
        }
        self.primary_ext()
    }

    fn exists_leaf(&mut self) -> PResult<PredExt> {
        self.p.expect_keyword("exists")?;
        self.p.expect(&Token::LParen, "( after EXISTS")?;
        let q = self.descend_block()?;
        self.p.expect(&Token::RParen, ") closing EXISTS subquery")?;
        Ok(PredExt::Exists { query: Box::new(q), negated: false })
    }

    fn primary_ext(&mut self) -> PResult<PredExt> {
        if self.p.at_keyword("exists") {
            return self.exists_leaf();
        }
        if self.p.at_keyword("true") {
            self.p.bump();
            return Ok(PredExt::Core(Pred::True));
        }
        if self.p.at_keyword("false") {
            self.p.bump();
            return Ok(PredExt::Core(Pred::False));
        }
        // '(' may open a parenthesized extended predicate or a scalar
        // expression; try the predicate reading first with backtracking.
        if matches!(self.p.peek(), Token::LParen) {
            let save = self.p.pos;
            self.p.bump();
            if self.p.at_keyword("select") {
                return Err(ParseError::Unsupported {
                    feature: "scalar subqueries".into(),
                    offset: self.p.offset(),
                });
            }
            let saved_depth = self.p.depth;
            let attempt = if self.p.depth >= crate::parser::MAX_DEPTH {
                Err(ParseError::Unsupported {
                    feature: format!(
                        "expression nesting deeper than {}",
                        crate::parser::MAX_DEPTH
                    ),
                    offset: self.p.offset(),
                })
            } else {
                self.p.depth += 1;
                let r = self.pred_ext();
                self.p.depth = saved_depth;
                r
            };
            match attempt {
                Ok(p) => {
                    if matches!(self.p.peek(), Token::RParen) {
                        self.p.bump();
                        return Ok(p);
                    }
                }
                Err(e @ ParseError::Unsupported { .. }) => {
                    if matches!(&e, ParseError::Unsupported { feature, .. }
                        if feature.contains("nesting"))
                    {
                        return Err(e);
                    }
                }
                Err(_) => {}
            }
            self.p.pos = save;
        }
        let lhs = self.p.expr()?;
        let negated = self.p.eat_keyword("not");
        if self.p.eat_keyword("like") {
            let pattern = match self.p.bump() {
                Token::Str(s) => s,
                _ => return Err(self.p.unexpected("string pattern after LIKE")),
            };
            return Ok(PredExt::Core(Pred::Like { expr: lhs, pattern, negated }));
        }
        if self.p.eat_keyword("in") {
            self.p.expect(&Token::LParen, "( after IN")?;
            if self.p.at_keyword("select") {
                let q = self.descend_block()?;
                self.p.expect(&Token::RParen, ") closing IN subquery")?;
                return Ok(PredExt::InSubquery { expr: lhs, query: Box::new(q), negated });
            }
            let mut lits = vec![self.p.expr()?];
            while matches!(self.p.peek(), Token::Comma) {
                self.p.bump();
                lits.push(self.p.expr()?);
            }
            self.p.expect(&Token::RParen, ") closing IN list")?;
            let disj = Pred::or(
                lits.into_iter()
                    .map(|lit| Pred::Cmp(lhs.clone(), qrhint_sqlast::CmpOp::Eq, lit))
                    .collect(),
            );
            return Ok(PredExt::Core(if negated { disj.negated_nnf() } else { disj }));
        }
        if self.p.eat_keyword("between") {
            let lo = self.p.expr()?;
            self.p.expect_keyword("and")?;
            let hi = self.p.expr()?;
            let range = Pred::and(vec![
                Pred::Cmp(lhs.clone(), qrhint_sqlast::CmpOp::Ge, lo),
                Pred::Cmp(lhs, qrhint_sqlast::CmpOp::Le, hi),
            ]);
            return Ok(PredExt::Core(if negated { range.negated_nnf() } else { range }));
        }
        if negated {
            return Err(self.p.unexpected("LIKE, IN or BETWEEN after NOT"));
        }
        if self.p.at_keyword("is") {
            return Err(ParseError::Unsupported {
                feature: "IS [NOT] NULL".into(),
                offset: self.p.offset(),
            });
        }
        let op = match self.p.peek() {
            Token::Eq => qrhint_sqlast::CmpOp::Eq,
            Token::Ne => qrhint_sqlast::CmpOp::Ne,
            Token::Lt => qrhint_sqlast::CmpOp::Lt,
            Token::Le => qrhint_sqlast::CmpOp::Le,
            Token::Gt => qrhint_sqlast::CmpOp::Gt,
            Token::Ge => qrhint_sqlast::CmpOp::Ge,
            _ => return Err(self.p.unexpected("comparison operator")),
        };
        self.p.bump();
        if self.p.at_keyword("all") || self.p.at_keyword("any") || self.p.at_keyword("some") {
            return Err(ParseError::Unsupported {
                feature: "quantified comparisons (ALL/ANY/SOME)".into(),
                offset: self.p.offset(),
            });
        }
        let rhs = self.p.expr()?;
        Ok(PredExt::Core(Pred::Cmp(lhs, op, rhs)))
    }
}

/// Parse the extended multi-block grammar without flattening.
pub fn parse_multi(sql: &str) -> PResult<MultiQuery> {
    let toks = lex(sql)?;
    let mut p = ExtParser { p: Parser { toks, pos: 0, depth: 0, allow_is_null: false } };
    p.multi_query()
}

/// Parse extended SQL and flatten it into a single-block [`Query`]
/// (footnote 2 of the paper plus the opt-in positive-subquery rewrite).
pub fn parse_query_extended(sql: &str, opts: &FlattenOptions) -> PResult<Query> {
    let mq = parse_multi(sql)?;
    flatten(&mq, opts)
}

// ===========================================================================
// Flattening
// ===========================================================================

/// Exported output columns of an inlined derived table:
/// column name → defining expression (`None` marks an ambiguous name that
/// appears more than once in the subquery's SELECT list).
type Exports = BTreeMap<String, Option<Scalar>>;

struct Flattener<'a> {
    opts: &'a FlattenOptions,
    /// CTE definitions in source order (each may reference earlier ones).
    ctes: &'a [(String, BlockQuery)],
}

struct BlockCtx {
    tables: Vec<TableRef>,
    conjuncts: Vec<Pred>,
    exports: BTreeMap<String, Exports>,
    used: BTreeSet<String>,
}

impl BlockCtx {
    fn fresh_alias(&mut self, base: &str) -> String {
        if !self.used.contains(base) {
            self.used.insert(base.to_string());
            return base.to_string();
        }
        let mut n = 1usize;
        loop {
            let cand = format!("{base}_{n}");
            if !self.used.contains(&cand) {
                self.used.insert(cand.clone());
                return cand;
            }
            n += 1;
        }
    }
}

/// Flatten a parsed multi-block query into the single-block fragment.
pub fn flatten(mq: &MultiQuery, opts: &FlattenOptions) -> PResult<Query> {
    let mut seen = BTreeSet::new();
    for (name, _) in &mq.ctes {
        if !seen.insert(name.clone()) {
            return Err(unsupported(format!("duplicate CTE name `{name}`")));
        }
    }
    let fl = Flattener { opts, ctes: &mq.ctes };
    fl.flatten_block(&mq.body, mq.ctes.len())
}

impl Flattener<'_> {
    /// Look up a CTE visible at position `limit` (exclusive).
    fn cte(&self, name: &str, limit: usize) -> Option<(usize, &BlockQuery)> {
        self.ctes[..limit]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, (n, _))| n == name)
            .map(|(i, (_, b))| (i, b))
    }

    fn flatten_block(&self, block: &BlockQuery, cte_limit: usize) -> PResult<Query> {
        if block.select_star {
            return Err(unsupported("SELECT * (list columns explicitly for hinting)"));
        }
        let mut ctx = BlockCtx {
            tables: Vec::new(),
            conjuncts: Vec::new(),
            exports: BTreeMap::new(),
            used: BTreeSet::new(),
        };
        // Seed the alias set with the block's own plain-table aliases so
        // spliced subquery aliases never capture them.
        for item in &block.from {
            seed_plain_aliases(item, &mut ctx.used);
        }
        for item in &block.from {
            self.add_from_item(item, cte_limit, &mut ctx)?;
        }
        let lowered_where = self.lower_pred_ext(&block.where_pred, true, cte_limit, &mut ctx)?;
        let mut all = vec![lowered_where];
        all.append(&mut ctx.conjuncts);
        let where_pred = Pred::and(all);

        let q = Query {
            distinct: block.distinct,
            select: block.select.clone(),
            from: ctx.tables,
            where_pred,
            group_by: block.group_by.clone(),
            having: block.having.clone(),
        };
        substitute_exports(q, &ctx.exports)
    }

    fn add_from_item(
        &self,
        item: &FromItem,
        cte_limit: usize,
        ctx: &mut BlockCtx,
    ) -> PResult<()> {
        match item {
            FromItem::Table { table, alias } => {
                if let Some((idx, body)) = self.cte(table, cte_limit) {
                    let alias = alias.clone().unwrap_or_else(|| table.clone());
                    let body = body.clone();
                    return self.inline_derived(&body, &alias, idx, ctx);
                }
                let alias = alias.clone().unwrap_or_else(|| table.clone());
                if ctx.exports.contains_key(&alias)
                    || ctx.tables.iter().any(|t| t.alias == alias)
                {
                    return Err(unsupported(format!("duplicate FROM alias `{alias}`")));
                }
                ctx.used.insert(alias.clone());
                ctx.tables.push(TableRef::aliased(table, &alias));
                Ok(())
            }
            FromItem::Derived { query, alias } => {
                self.inline_derived(query, alias, cte_limit, ctx)
            }
            FromItem::Join { left, right, kind: _, on } => {
                self.add_from_item(left, cte_limit, ctx)?;
                self.add_from_item(right, cte_limit, ctx)?;
                if let Some(on) = on {
                    let p = self.lower_pred_ext(on, true, cte_limit, ctx)?;
                    ctx.conjuncts.push(p);
                }
                Ok(())
            }
        }
    }

    /// Inline one aggregation-free subquery (derived table or CTE body)
    /// under alias `alias`: splice its FROM (with capture-avoiding alias
    /// renaming), conjoin its WHERE, and record its output columns for
    /// later substitution.
    fn inline_derived(
        &self,
        block: &BlockQuery,
        alias: &str,
        cte_limit: usize,
        ctx: &mut BlockCtx,
    ) -> PResult<()> {
        let inner = self.flatten_block(block, cte_limit)?;
        if inner.is_spja() {
            return Err(unsupported(format!(
                "aggregation/DISTINCT in FROM subquery `{alias}` (footnote 2 of the paper \
                 covers aggregation-free subqueries only)"
            )));
        }
        if ctx.exports.contains_key(alias) || ctx.tables.iter().any(|t| t.alias == alias) {
            return Err(unsupported(format!("duplicate FROM alias `{alias}`")));
        }
        // Capture-avoiding rename of the subquery's internal aliases.
        let mut ren: BTreeMap<String, String> = BTreeMap::new();
        for t in &inner.from {
            let fresh = ctx.fresh_alias(&t.alias);
            ren.insert(t.alias.clone(), fresh.clone());
            ctx.tables.push(TableRef { table: t.table.clone(), alias: fresh });
        }
        let renf = |c: &ColRef| match ren.get(&c.table) {
            Some(n) => ColRef::new(n, &c.column),
            None => c.clone(),
        };
        if inner.where_pred != Pred::True {
            ctx.conjuncts.push(inner.where_pred.map_columns(&renf));
        }
        let mut exports: Exports = BTreeMap::new();
        for item in &inner.select {
            let name = item.alias.clone().or_else(|| match &item.expr {
                Scalar::Col(c) => Some(c.column.clone()),
                _ => None,
            });
            if let Some(name) = name {
                let defn = item.expr.map_columns(&renf);
                match exports.entry(name) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(Some(defn));
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        // Same name exported twice: ambiguous.
                        e.insert(None);
                    }
                }
            }
        }
        ctx.used.insert(alias.to_string());
        ctx.exports.insert(alias.to_string(), exports);
        Ok(())
    }

    /// Lower an extended predicate to a core one, rewriting positive
    /// subquery leaves at conjunctive positions into joins (when enabled).
    fn lower_pred_ext(
        &self,
        p: &PredExt,
        conjunctive: bool,
        cte_limit: usize,
        ctx: &mut BlockCtx,
    ) -> PResult<Pred> {
        match p {
            PredExt::Core(core) => Ok(core.clone()),
            PredExt::And(cs) => {
                let mut out = Vec::with_capacity(cs.len());
                for c in cs {
                    out.push(self.lower_pred_ext(c, conjunctive, cte_limit, ctx)?);
                }
                Ok(Pred::and(out))
            }
            PredExt::Or(cs) => {
                let mut out = Vec::with_capacity(cs.len());
                for c in cs {
                    out.push(self.lower_pred_ext(c, false, cte_limit, ctx)?);
                }
                Ok(Pred::or(out))
            }
            PredExt::Not(inner) => {
                let l = self.lower_pred_ext(inner, false, cte_limit, ctx)?;
                Ok(Pred::not(l))
            }
            PredExt::Exists { query, negated } => {
                self.rewrite_subquery(query, None, *negated, conjunctive, cte_limit, ctx)
            }
            PredExt::InSubquery { expr, query, negated } => self.rewrite_subquery(
                query,
                Some(expr.clone()),
                *negated,
                conjunctive,
                cte_limit,
                ctx,
            ),
        }
    }

    fn rewrite_subquery(
        &self,
        block: &BlockQuery,
        in_lhs: Option<Scalar>,
        negated: bool,
        conjunctive: bool,
        cte_limit: usize,
        ctx: &mut BlockCtx,
    ) -> PResult<Pred> {
        let what = if in_lhs.is_some() { "IN (SELECT ...)" } else { "EXISTS (...)" };
        if negated {
            return Err(unsupported(format!(
                "NOT {what}: negative subqueries need the relational difference operator, \
                 which the fragment excludes (§3 of the paper)"
            )));
        }
        if !conjunctive {
            return Err(unsupported(format!(
                "{what} outside a top-level conjunctive WHERE position \
                 (the join rewrite of §3 is only sound for conjunctive occurrences)"
            )));
        }
        if !self.opts.rewrite_positive_subqueries {
            return Err(unsupported(format!(
                "{what}: the positive-subquery join rewrite does not preserve duplicate \
                 counts (§3 of the paper); enable \
                 FlattenOptions::rewrite_positive_subqueries to opt in"
            )));
        }
        // For IN we need a well-defined single output expression; EXISTS
        // tolerates `SELECT *` / any output list.
        let inner_raw = block;
        let membership_src: Option<&SelectItem> = if in_lhs.is_some() {
            if inner_raw.select_star || inner_raw.select.len() != 1 {
                return Err(unsupported(
                    "IN subquery must select exactly one output column",
                ));
            }
            Some(&inner_raw.select[0])
        } else {
            None
        };
        // Flatten the inner block; for EXISTS with `SELECT *` we
        // temporarily give it a dummy output list (the output is ignored).
        let mut block_for_flatten = inner_raw.clone();
        if block_for_flatten.select_star {
            block_for_flatten.select_star = false;
            block_for_flatten.select = vec![SelectItem::expr(Scalar::Int(1))];
        }
        let inner = self.flatten_block(&block_for_flatten, cte_limit)?;
        if inner.is_spja() {
            return Err(unsupported(format!(
                "aggregation/DISTINCT inside {what} (the join rewrite covers \
                 aggregation-free subqueries only)"
            )));
        }
        // Splice with capture-avoiding renaming; outer (correlated)
        // references survive untouched.
        let mut ren: BTreeMap<String, String> = BTreeMap::new();
        for t in &inner.from {
            let fresh = ctx.fresh_alias(&t.alias);
            ren.insert(t.alias.clone(), fresh.clone());
            ctx.tables.push(TableRef { table: t.table.clone(), alias: fresh });
        }
        let renf = |c: &ColRef| match ren.get(&c.table) {
            Some(n) => ColRef::new(n, &c.column),
            None => c.clone(),
        };
        let mut parts = Vec::new();
        if inner.where_pred != Pred::True {
            parts.push(inner.where_pred.map_columns(&renf));
        }
        if let Some(lhs) = in_lhs {
            // The inner select expression, renamed into the spliced scope.
            // (The raw item, not the flattened one: flattening leaves
            // SELECT expressions untouched for SPJ blocks except for
            // derived-column substitution, which `inner.select` reflects.)
            let _ = membership_src;
            let rhs = inner.select[0].expr.map_columns(&renf);
            parts.push(Pred::Cmp(lhs, qrhint_sqlast::CmpOp::Eq, rhs));
        }
        Ok(Pred::and(parts))
    }
}

fn seed_plain_aliases(item: &FromItem, used: &mut BTreeSet<String>) {
    match item {
        FromItem::Table { table, alias } => {
            used.insert(alias.clone().unwrap_or_else(|| table.clone()));
        }
        FromItem::Derived { alias, .. } => {
            used.insert(alias.clone());
        }
        FromItem::Join { left, right, .. } => {
            seed_plain_aliases(left, used);
            seed_plain_aliases(right, used);
        }
    }
}

// ===========================================================================
// Substitution of derived-table output columns
// ===========================================================================

fn substitute_exports(q: Query, exports: &BTreeMap<String, Exports>) -> PResult<Query> {
    if exports.is_empty() {
        return Ok(q);
    }
    let subst = |c: &ColRef| -> PResult<Option<Scalar>> {
        if !c.table.is_empty() {
            if let Some(map) = exports.get(&c.table) {
                return match map.get(&c.column) {
                    Some(Some(e)) => Ok(Some(e.clone())),
                    Some(None) => Err(unsupported(format!(
                        "ambiguous output column `{}` of subquery `{}`",
                        c.column, c.table
                    ))),
                    None => Err(unsupported(format!(
                        "unknown output column `{}` of subquery `{}`",
                        c.column, c.table
                    ))),
                };
            }
            return Ok(None);
        }
        // Unqualified reference: substitute when exactly one derived table
        // exports the name; physical-table resolution happens later.
        let mut hits = exports
            .values()
            .filter_map(|m| m.get(&c.column))
            .collect::<Vec<_>>();
        match hits.len() {
            0 => Ok(None),
            1 => match hits.pop().unwrap() {
                Some(e) => Ok(Some(e.clone())),
                None => Err(unsupported(format!(
                    "ambiguous output column `{}` of a FROM subquery",
                    c.column
                ))),
            },
            _ => Err(unsupported(format!(
                "column `{}` is exported by more than one FROM subquery — qualify it",
                c.column
            ))),
        }
    };
    let select = q
        .select
        .into_iter()
        .map(|s| {
            Ok(SelectItem { expr: subst_scalar(&s.expr, &subst)?, alias: s.alias })
        })
        .collect::<PResult<Vec<_>>>()?;
    let where_pred = subst_pred(&q.where_pred, &subst)?;
    let group_by = q
        .group_by
        .iter()
        .map(|g| subst_scalar(g, &subst))
        .collect::<PResult<Vec<_>>>()?;
    let having = match &q.having {
        Some(h) => Some(subst_pred(h, &subst)?),
        None => None,
    };
    Ok(Query { distinct: q.distinct, select, from: q.from, where_pred, group_by, having })
}

fn subst_scalar(
    e: &Scalar,
    f: &impl Fn(&ColRef) -> PResult<Option<Scalar>>,
) -> PResult<Scalar> {
    use qrhint_sqlast::{AggArg, AggCall};
    Ok(match e {
        Scalar::Col(c) => match f(c)? {
            Some(repl) => repl,
            None => e.clone(),
        },
        Scalar::Int(_) | Scalar::Str(_) => e.clone(),
        Scalar::Arith(l, op, r) => Scalar::Arith(
            Box::new(subst_scalar(l, f)?),
            *op,
            Box::new(subst_scalar(r, f)?),
        ),
        Scalar::Neg(inner) => Scalar::Neg(Box::new(subst_scalar(inner, f)?)),
        Scalar::Agg(call) => {
            let arg = match &call.arg {
                AggArg::Star => AggArg::Star,
                AggArg::Expr(inner) => AggArg::Expr(Box::new(subst_scalar(inner, f)?)),
            };
            Scalar::Agg(AggCall { func: call.func, distinct: call.distinct, arg })
        }
    })
}

fn subst_pred(
    p: &Pred,
    f: &impl Fn(&ColRef) -> PResult<Option<Scalar>>,
) -> PResult<Pred> {
    Ok(match p {
        Pred::True | Pred::False => p.clone(),
        Pred::Cmp(l, op, r) => Pred::Cmp(subst_scalar(l, f)?, *op, subst_scalar(r, f)?),
        Pred::Like { expr, pattern, negated } => Pred::Like {
            expr: subst_scalar(expr, f)?,
            pattern: pattern.clone(),
            negated: *negated,
        },
        Pred::And(cs) => Pred::And(
            cs.iter().map(|c| subst_pred(c, f)).collect::<PResult<Vec<_>>>()?,
        ),
        Pred::Or(cs) => Pred::Or(
            cs.iter().map(|c| subst_pred(c, f)).collect::<PResult<Vec<_>>>()?,
        ),
        Pred::Not(inner) => Pred::Not(Box::new(subst_pred(inner, f)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn flat(sql: &str) -> Query {
        parse_query_extended(sql, &FlattenOptions::default())
            .unwrap_or_else(|e| panic!("flatten of {sql:?} failed: {e}"))
    }

    fn flat_sub(sql: &str) -> Query {
        parse_query_extended(sql, &FlattenOptions::with_subquery_rewrite())
            .unwrap_or_else(|e| panic!("flatten of {sql:?} failed: {e}"))
    }

    #[test]
    fn inner_join_rewrites_to_comma_join() {
        let q = flat(
            "SELECT l.beer FROM Likes l JOIN Serves s ON l.beer = s.beer WHERE s.price > 3",
        );
        let expect = parse_query(
            "SELECT l.beer FROM Likes l, Serves s WHERE s.price > 3 AND l.beer = s.beer",
        )
        .unwrap();
        assert_eq!(q.from, expect.from);
        // Conjuncts may be ordered differently; compare as sets of strings.
        let pc = |p: &Pred| match p {
            Pred::And(cs) => {
                let mut v: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                v.sort();
                v
            }
            other => vec![other.to_string()],
        };
        assert_eq!(pc(&q.where_pred), pc(&expect.where_pred));
    }

    #[test]
    fn inner_keyword_and_chained_joins() {
        let q = flat(
            "SELECT a.x FROM r a INNER JOIN s b ON a.x = b.x JOIN t c ON b.y = c.y",
        );
        assert_eq!(q.from.len(), 3);
        assert!(q.where_pred.to_string().contains("a.x = b.x"));
        assert!(q.where_pred.to_string().contains("b.y = c.y"));
    }

    #[test]
    fn cross_join_has_no_on() {
        let q = flat("SELECT a.x FROM r a CROSS JOIN s b WHERE a.x = b.x");
        assert_eq!(q.from.len(), 2);
        // And `CROSS JOIN ... ON` is a syntax error.
        assert!(parse_multi("SELECT a.x FROM r a CROSS JOIN s b ON a.x = b.x").is_err());
    }

    #[test]
    fn outer_joins_still_unsupported() {
        for sql in [
            "SELECT a.x FROM r a LEFT JOIN s b ON a.x = b.x",
            "SELECT a.x FROM r a FULL JOIN s b ON a.x = b.x",
            "SELECT a.x FROM r a NATURAL JOIN s b",
        ] {
            match parse_query_extended(sql, &FlattenOptions::default()) {
                Err(ParseError::Unsupported { .. }) => {}
                other => panic!("expected Unsupported for {sql:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn derived_table_splices_from_and_where() {
        let q = flat(
            "SELECT d.b FROM (SELECT r.b FROM r WHERE r.a > 3) d WHERE d.b < 10",
        );
        assert_eq!(q.from, vec![TableRef::plain("r")]);
        let s = q.to_string();
        assert!(s.contains("r.a > 3"), "{s}");
        assert!(s.contains("r.b < 10"), "{s}");
        assert_eq!(q.select[0].expr.to_string(), "r.b");
    }

    #[test]
    fn derived_table_with_output_alias_and_expression() {
        let q = flat(
            "SELECT d.total FROM (SELECT r.a + r.b AS total FROM r) d WHERE d.total > 7",
        );
        assert_eq!(q.select[0].expr.to_string(), "r.a + r.b");
        assert!(q.where_pred.to_string().contains("r.a + r.b > 7"));
    }

    #[test]
    fn derived_table_alias_capture_is_avoided() {
        // The outer query also uses alias `r`; the subquery's `r` must be
        // renamed.
        let q = flat(
            "SELECT r.a, d.b FROM r, (SELECT r.b FROM r WHERE r.b > 1) d \
             WHERE r.a = d.b",
        );
        assert_eq!(q.from.len(), 2);
        let aliases: Vec<&str> = q.aliases();
        assert!(aliases.contains(&"r"));
        assert!(aliases.contains(&"r_1"));
        assert!(q.where_pred.to_string().contains("r_1.b > 1"));
        assert!(q.where_pred.to_string().contains("r.a = r_1.b"));
    }

    #[test]
    fn aggregation_in_from_subquery_is_rejected() {
        for sql in [
            "SELECT d.c FROM (SELECT COUNT(*) AS c FROM r) d",
            "SELECT d.a FROM (SELECT r.a FROM r GROUP BY r.a) d",
            "SELECT d.a FROM (SELECT DISTINCT r.a FROM r) d",
        ] {
            match parse_query_extended(sql, &FlattenOptions::default()) {
                Err(ParseError::Unsupported { feature, .. }) => {
                    assert!(feature.contains("aggregation"), "{feature}");
                }
                other => panic!("expected Unsupported for {sql:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn cte_inlines_at_use_site() {
        let q = flat(
            "WITH cheap AS (SELECT s.bar, s.beer FROM serves s WHERE s.price < 3) \
             SELECT c.bar FROM cheap c WHERE c.beer = 'IPA'",
        );
        assert_eq!(q.from, vec![TableRef::aliased("serves", "s")]);
        let s = q.to_string();
        assert!(s.contains("s.price < 3"), "{s}");
        assert!(s.contains("s.beer = 'IPA'"), "{s}");
    }

    #[test]
    fn cte_used_twice_gets_fresh_aliases() {
        let q = flat(
            "WITH x AS (SELECT s.beer FROM serves s) \
             SELECT a.beer, b.beer FROM x a, x b WHERE a.beer = b.beer",
        );
        assert_eq!(q.from.len(), 2);
        assert_ne!(q.from[0].alias, q.from[1].alias);
        assert_eq!(q.from[0].table, "serves");
        assert_eq!(q.from[1].table, "serves");
    }

    #[test]
    fn cte_referencing_earlier_cte() {
        let q = flat(
            "WITH a AS (SELECT r.x FROM r WHERE r.x > 1), \
                  b AS (SELECT a.x FROM a WHERE a.x < 9) \
             SELECT b.x FROM b",
        );
        assert_eq!(q.from, vec![TableRef::plain("r")]);
        let s = q.to_string();
        assert!(s.contains("r.x > 1"), "{s}");
        assert!(s.contains("r.x < 9"), "{s}");
    }

    #[test]
    fn cte_forward_reference_is_rejected() {
        let r = parse_query_extended(
            "WITH a AS (SELECT b.x FROM b WHERE b.x > 1), \
                  b AS (SELECT r.x FROM r) \
             SELECT a.x FROM a",
            &FlattenOptions::default(),
        );
        // `b` inside `a` must resolve to a *physical* table b, not the
        // later CTE — the flatten succeeds treating b as a table.
        let q = r.unwrap();
        assert!(q.from.iter().any(|t| t.table == "b"));
    }

    #[test]
    fn duplicate_cte_name_rejected() {
        assert!(matches!(
            parse_query_extended(
                "WITH a AS (SELECT r.x FROM r), a AS (SELECT s.y FROM s) SELECT a.x FROM a",
                &FlattenOptions::default(),
            ),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn exists_rewrite_requires_opt_in() {
        let sql = "SELECT DISTINCT l.drinker FROM likes l \
                   WHERE EXISTS (SELECT * FROM serves s WHERE s.beer = l.beer)";
        match parse_query_extended(sql, &FlattenOptions::default()) {
            Err(ParseError::Unsupported { feature, .. }) => {
                assert!(feature.contains("duplicate"), "{feature}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        let q = flat_sub(sql);
        assert_eq!(q.from.len(), 2);
        assert!(q.where_pred.to_string().contains("s.beer = l.beer"));
        assert!(q.distinct);
    }

    #[test]
    fn in_subquery_rewrites_to_join_equality() {
        let q = flat_sub(
            "SELECT DISTINCT l.drinker FROM likes l \
             WHERE l.beer IN (SELECT s.beer FROM serves s WHERE s.price < 3)",
        );
        assert_eq!(q.from.len(), 2);
        let s = q.where_pred.to_string();
        assert!(s.contains("s.price < 3"), "{s}");
        assert!(s.contains("l.beer = s.beer"), "{s}");
    }

    #[test]
    fn negative_subqueries_always_rejected() {
        for sql in [
            "SELECT l.drinker FROM likes l \
             WHERE NOT EXISTS (SELECT * FROM serves s WHERE s.beer = l.beer)",
            "SELECT l.drinker FROM likes l \
             WHERE l.beer NOT IN (SELECT s.beer FROM serves s)",
        ] {
            match parse_query_extended(sql, &FlattenOptions::with_subquery_rewrite()) {
                Err(ParseError::Unsupported { feature, .. }) => {
                    assert!(feature.contains("difference"), "{feature}");
                }
                other => panic!("expected Unsupported for {sql:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn disjunctive_subquery_position_rejected() {
        let sql = "SELECT l.drinker FROM likes l \
                   WHERE l.beer = 'IPA' OR EXISTS (SELECT * FROM serves s)";
        match parse_query_extended(sql, &FlattenOptions::with_subquery_rewrite()) {
            Err(ParseError::Unsupported { feature, .. }) => {
                assert!(feature.contains("conjunctive"), "{feature}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn correlated_exists_keeps_outer_references() {
        let q = flat_sub(
            "SELECT DISTINCT f.drinker FROM frequents f \
             WHERE EXISTS (SELECT 1 FROM serves s \
                           WHERE s.bar = f.bar AND s.price > 5)",
        );
        let s = q.where_pred.to_string();
        assert!(s.contains("s.bar = f.bar"), "{s}");
        assert!(s.contains("s.price > 5"), "{s}");
        assert_eq!(q.from.len(), 2);
    }

    #[test]
    fn exists_alias_collision_renamed() {
        let q = flat_sub(
            "SELECT DISTINCT s.bar FROM serves s \
             WHERE EXISTS (SELECT 1 FROM serves s WHERE s.price > 5)",
        );
        assert_eq!(q.from.len(), 2);
        assert!(q.where_pred.to_string().contains("s_1.price > 5"));
    }

    #[test]
    fn in_subquery_must_have_single_output() {
        let sql = "SELECT l.drinker FROM likes l \
                   WHERE l.beer IN (SELECT s.beer, s.bar FROM serves s)";
        assert!(matches!(
            parse_query_extended(sql, &FlattenOptions::with_subquery_rewrite()),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn nested_derived_tables() {
        let q = flat(
            "SELECT d.a FROM (SELECT e.a FROM (SELECT r.a FROM r WHERE r.a > 1) e \
                              WHERE e.a < 5) d",
        );
        assert_eq!(q.from, vec![TableRef::plain("r")]);
        let s = q.to_string();
        assert!(s.contains("r.a > 1"), "{s}");
        assert!(s.contains("r.a < 5"), "{s}");
    }

    #[test]
    fn unknown_derived_output_column_rejected() {
        assert!(matches!(
            parse_query_extended(
                "SELECT d.nope FROM (SELECT r.a FROM r) d",
                &FlattenOptions::default(),
            ),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn unqualified_derived_output_substituted() {
        let q = flat("SELECT c1 FROM (SELECT r.a AS c1 FROM r) d WHERE c1 > 3");
        assert_eq!(q.select[0].expr.to_string(), "r.a");
        assert!(q.where_pred.to_string().contains("r.a > 3"));
    }

    #[test]
    fn strict_fragment_passes_through_unchanged() {
        for sql in [
            "SELECT l.beer FROM likes l WHERE l.drinker = 'Amy'",
            "SELECT t.a, COUNT(*) FROM t GROUP BY t.a HAVING COUNT(*) > 1",
            "SELECT a.x FROM r a, s b WHERE a.x = b.y AND (a.x > 3 OR b.y < 2)",
        ] {
            let strict = parse_query(sql).unwrap();
            let ext = flat(sql);
            assert_eq!(strict, ext, "mismatch for {sql:?}");
        }
    }

    #[test]
    fn group_by_and_having_survive_join_rewrite() {
        let q = flat(
            "SELECT l.beer, COUNT(*) FROM likes l JOIN serves s ON l.beer = s.beer \
             GROUP BY l.beer HAVING COUNT(*) > 2",
        );
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.from.len(), 2);
    }

    #[test]
    fn join_on_with_complex_predicate() {
        let q = flat(
            "SELECT a.x FROM r a JOIN s b ON a.x = b.x AND (a.y > 3 OR b.z < 2)",
        );
        let s = q.where_pred.to_string();
        assert!(s.contains("a.x = b.x"), "{s}");
        assert!(s.contains("OR"), "{s}");
    }

    #[test]
    fn select_star_top_level_still_rejected() {
        assert!(matches!(
            parse_query_extended("SELECT * FROM t", &FlattenOptions::default()),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn scalar_subqueries_still_rejected() {
        assert!(matches!(
            parse_query_extended(
                "SELECT t.a FROM t WHERE t.a > (SELECT MAX(s.b) FROM s)",
                &FlattenOptions::with_subquery_rewrite(),
            ),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn multi_query_roundtrip_structure() {
        let mq = parse_multi(
            "WITH x AS (SELECT r.a FROM r) SELECT x.a FROM x WHERE x.a > 1",
        )
        .unwrap();
        assert_eq!(mq.ctes.len(), 1);
        assert_eq!(mq.ctes[0].0, "x");
        assert!(!mq.body.select_star);
    }

    #[test]
    fn cte_shadows_physical_table() {
        // A CTE named like a real table wins at its use sites (standard
        // SQL scoping): `serves` here resolves to the CTE, whose body
        // reads the physical table with a filter.
        let q = flat(
            "WITH serves AS (SELECT s.bar, s.beer FROM serves s WHERE s.price > 10)              SELECT serves.bar FROM serves WHERE serves.beer = 'IPA'",
        );
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].table, "serves");
        let w = q.where_pred.to_string();
        assert!(w.contains("s.price > 10"), "{w}");
        assert!(w.contains("s.beer = 'IPA'"), "{w}");
    }

    #[test]
    fn derived_table_inside_join_chain() {
        let q = flat(
            "SELECT f.drinker FROM frequents f              JOIN (SELECT s.bar FROM serves s WHERE s.price < 3) d ON f.bar = d.bar",
        );
        assert_eq!(q.from.len(), 2);
        let w = q.where_pred.to_string();
        assert!(w.contains("s.price < 3"), "{w}");
        assert!(w.contains("f.bar = s.bar"), "{w}");
    }

    #[test]
    fn join_after_comma_item() {
        // Mixed style: `FROM a, b JOIN c ON ...` — the join binds to b.
        let q = flat(
            "SELECT a.x FROM r a, s b JOIN t c ON b.y = c.y WHERE a.x = b.x",
        );
        assert_eq!(q.from.len(), 3);
        let w = q.where_pred.to_string();
        assert!(w.contains("a.x = b.x"), "{w}");
        assert!(w.contains("b.y = c.y"), "{w}");
    }

    #[test]
    fn cte_with_aggregation_rejected_at_use_site() {
        // Aggregating CTEs parse but cannot be inlined (footnote 2).
        let r = parse_query_extended(
            "WITH top AS (SELECT s.bar, COUNT(*) AS n FROM serves s GROUP BY s.bar)              SELECT top.bar FROM top",
            &FlattenOptions::default(),
        );
        match r {
            Err(ParseError::Unsupported { feature, .. }) => {
                assert!(feature.contains("aggregation"), "{feature}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn unused_aggregating_cte_is_harmless() {
        // A CTE that is never referenced is never inlined, so its
        // aggregation cannot hurt.
        let q = flat(
            "WITH top AS (SELECT s.bar, COUNT(*) AS n FROM serves s GROUP BY s.bar)              SELECT l.beer FROM likes l",
        );
        assert_eq!(q.from, vec![TableRef::aliased("likes", "l")]);
    }

    #[test]
    fn between_and_in_lists_work_in_extended_grammar() {
        let q = flat_sub(
            "SELECT DISTINCT l.drinker FROM likes l              WHERE l.beer IN ('IPA', 'Stout')                AND EXISTS (SELECT 1 FROM serves s                            WHERE s.beer = l.beer AND s.price BETWEEN 2 AND 5)",
        );
        let w = q.where_pred.to_string();
        assert!(w.contains("l.beer = 'IPA' OR l.beer = 'Stout'"), "{w}");
        assert!(w.contains("s.price >= 2"), "{w}");
        assert!(w.contains("s.price <= 5"), "{w}");
    }

    #[test]
    fn exists_inside_join_on_is_conjunctive() {
        let q = flat_sub(
            "SELECT DISTINCT a.x FROM r a JOIN s b \
             ON a.x = b.x AND EXISTS (SELECT 1 FROM t WHERE t.k = a.x)",
        );
        assert_eq!(q.from.len(), 3);
        assert!(q.where_pred.to_string().contains("t.k = a.x"));
    }
}

//! Recursive-descent parser for the Qr-Hint SQL fragment.
//!
//! Grammar (single-block SPJ/SPJA, §3 of the paper):
//!
//! ```text
//! query      := SELECT [DISTINCT] item (',' item)* FROM tref (',' tref)*
//!               [WHERE pred] [GROUP BY expr (',' expr)*] [HAVING pred] [';']
//! item       := expr [[AS] ident]
//! tref       := ident [[AS] ident]
//! pred       := conj (OR conj)*
//! conj       := unary (AND unary)*
//! unary      := NOT unary | primary
//! primary    := '(' pred ')' | TRUE | FALSE
//!             | expr cmp expr
//!             | expr [NOT] LIKE string
//!             | expr [NOT] IN '(' literal (',' literal)* ')'
//!             | expr [NOT] BETWEEN expr AND expr
//! expr       := term (('+'|'-') term)*
//! term       := factor (('*'|'/') factor)*
//! factor     := '-' factor | '(' expr ')' | int | string | agg | colref
//! agg        := (COUNT|SUM|AVG|MIN|MAX) '(' [DISTINCT] ('*' | expr) ')'
//! colref     := ident ['.' ident]
//! ```
//!
//! `IN` lists and `BETWEEN` are desugared into `OR`-of-equalities and
//! conjunctions of inequalities respectively, so downstream stages see only
//! the core predicate algebra. SQL features outside the fragment
//! (subqueries, JOIN operators, set operators, NULL tests, ORDER BY) are
//! detected and reported as [`ParseError::Unsupported`], mirroring how the
//! paper's evaluation classifies unsupported student queries.

use crate::lexer::{lex, LexError, SpannedToken, Token};
use qrhint_sqlast::{
    AggArg, AggCall, AggFunc, ArithOp, CmpOp, ColRef, Pred, Query, Scalar, SelectItem, TableRef,
};
use std::fmt;

/// Parser errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexical error.
    Lex(LexError),
    /// Unexpected token.
    Unexpected { found: String, expected: String, offset: usize },
    /// A recognizable SQL feature outside the Qr-Hint fragment.
    Unsupported { feature: String, offset: usize },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { found, expected, offset } => {
                write!(f, "unexpected `{found}` at byte {offset}; expected {expected}")
            }
            ParseError::Unsupported { feature, offset } => {
                write!(f, "unsupported SQL feature at byte {offset}: {feature}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Keywords that signal unsupported features when seen in clause position.
const UNSUPPORTED_KEYWORDS: &[(&str, &str)] = &[
    ("union", "set operators (UNION/INTERSECT/EXCEPT)"),
    ("intersect", "set operators (UNION/INTERSECT/EXCEPT)"),
    ("except", "set operators (UNION/INTERSECT/EXCEPT)"),
    ("join", "explicit JOIN syntax (rewrite as comma joins)"),
    ("left", "outer joins"),
    ("right", "outer joins"),
    ("full", "outer joins"),
    ("outer", "outer joins"),
    ("inner", "explicit JOIN syntax (rewrite as comma joins)"),
    ("cross", "explicit JOIN syntax (rewrite as comma joins)"),
    ("natural", "NATURAL JOIN"),
    ("limit", "LIMIT"),
    ("exists", "EXISTS subqueries"),
    ("with", "common table expressions"),
    ("case", "CASE expressions"),
    ("null", "NULL literals / IS NULL"),
    ("is", "IS [NOT] NULL"),
];

/// Hard cap on grammar recursion depth: inputs nesting deeper than this
/// (parentheses, NOT chains, unary minus, derived tables) are rejected
/// with a parse error instead of overflowing the stack.
pub(crate) const MAX_DEPTH: usize = 128;

pub(crate) struct Parser {
    pub(crate) toks: Vec<SpannedToken>,
    pub(crate) pos: usize,
    /// Current grammar recursion depth (see [`MAX_DEPTH`]).
    pub(crate) depth: usize,
    /// Desugar `expr IS [NOT] NULL` into NULL-indicator atoms instead of
    /// rejecting it (used by [`crate::parse_pred_nullable`], the front
    /// door of the NULL prototype).
    pub(crate) allow_is_null: bool,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    pub(crate) fn peek(&self) -> &Token {
        &self.toks[self.pos].token
    }

    pub(crate) fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    pub(crate) fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].token.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    pub(crate) fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {}", kw.to_uppercase())))
        }
    }

    pub(crate) fn expect(&mut self, t: &Token, what: &str) -> PResult<()> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    pub(crate) fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().to_string(),
            expected: expected.to_string(),
            offset: self.offset(),
        }
    }

    /// Run a nested production with the recursion-depth guard; depth is
    /// restored on both success and failure (backtracking safe).
    pub(crate) fn descend<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> PResult<T>,
    ) -> PResult<T> {
        if self.depth >= MAX_DEPTH {
            return Err(ParseError::Unsupported {
                feature: format!("expression nesting deeper than {MAX_DEPTH}"),
                offset: self.offset(),
            });
        }
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    fn check_unsupported_keyword(&self) -> PResult<()> {
        if let Token::Ident(s) = self.peek() {
            for (kw, feature) in UNSUPPORTED_KEYWORDS {
                if s == kw {
                    return Err(ParseError::Unsupported {
                        feature: feature.to_string(),
                        offset: self.offset(),
                    });
                }
            }
        }
        Ok(())
    }

    // ---------- query ----------

    fn query(&mut self) -> PResult<Query> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let mut select = vec![self.select_item()?];
        while matches!(self.peek(), Token::Comma) {
            self.bump();
            select.push(self.select_item()?);
        }
        self.expect_keyword("from")?;
        let mut from = vec![self.table_ref()?];
        while matches!(self.peek(), Token::Comma) {
            self.bump();
            from.push(self.table_ref()?);
        }
        self.check_unsupported_keyword()?;
        let where_pred = if self.eat_keyword("where") { self.pred()? } else { Pred::True };
        self.check_unsupported_keyword()?;
        let mut group_by = Vec::new();
        if self.at_keyword("group") {
            self.bump();
            self.expect_keyword("by")?;
            group_by.push(self.expr()?);
            while matches!(self.peek(), Token::Comma) {
                self.bump();
                group_by.push(self.expr()?);
            }
        }
        self.check_unsupported_keyword()?;
        let having = if self.eat_keyword("having") { Some(self.pred()?) } else { None };
        // ORDER BY is parsed and *discarded*: the fragment uses bag
        // semantics (§3 — result-row ordering is ignored), so ordering
        // never affects equivalence. Accepting it keeps real student
        // queries in scope (Brass et al. issue 24).
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let _ = self.expr()?;
                let _ = self.eat_keyword("asc") || self.eat_keyword("desc");
                if matches!(self.peek(), Token::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.check_unsupported_keyword()?;
        if matches!(self.peek(), Token::Semicolon) {
            self.bump();
        }
        self.expect(&Token::Eof, "end of query")?;
        Ok(Query { distinct, select, from, where_pred, group_by, having })
    }

    pub(crate) fn select_item(&mut self) -> PResult<SelectItem> {
        if matches!(self.peek(), Token::Star) {
            return Err(ParseError::Unsupported {
                feature: "SELECT * (list columns explicitly for hinting)".into(),
                offset: self.offset(),
            });
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("as") {
            match self.bump() {
                Token::Ident(a) => Some(a),
                _ => return Err(self.unexpected("output alias after AS")),
            }
        } else if let Token::Ident(a) = self.peek() {
            // Bare alias, but not a clause keyword.
            let a = a.clone();
            if self.is_clause_boundary(&a) {
                None
            } else {
                self.bump();
                Some(a)
            }
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    pub(crate) fn is_clause_boundary(&self, ident: &str) -> bool {
        matches!(
            ident,
            "from" | "where" | "group" | "having" | "and" | "or" | "not" | "like" | "in"
                | "between" | "as" | "order" | "union" | "intersect" | "except" | "limit"
        )
    }

    fn table_ref(&mut self) -> PResult<TableRef> {
        self.check_unsupported_keyword()?;
        let table = match self.bump() {
            Token::Ident(t) => t,
            Token::LParen => {
                return Err(ParseError::Unsupported {
                    feature: "subqueries in FROM".into(),
                    offset: self.offset(),
                })
            }
            _ => return Err(self.unexpected("table name")),
        };
        let alias = if self.eat_keyword("as") {
            match self.bump() {
                Token::Ident(a) => Some(a),
                _ => return Err(self.unexpected("table alias after AS")),
            }
        } else if let Token::Ident(a) = self.peek() {
            let a = a.clone();
            if self.is_clause_boundary(&a) || a == "on" {
                if a == "on" {
                    return Err(ParseError::Unsupported {
                        feature: "JOIN ... ON syntax".into(),
                        offset: self.offset(),
                    });
                }
                None
            } else {
                // Could itself be an unsupported keyword like JOIN.
                self.check_unsupported_keyword()?;
                self.bump();
                Some(a)
            }
        } else {
            None
        };
        Ok(match alias {
            Some(a) => TableRef::aliased(&table, &a),
            None => TableRef::plain(&table),
        })
    }

    // ---------- predicates ----------

    pub(crate) fn pred(&mut self) -> PResult<Pred> {
        let mut disjuncts = vec![self.conj()?];
        while self.eat_keyword("or") {
            disjuncts.push(self.conj()?);
        }
        Ok(if disjuncts.len() == 1 { disjuncts.pop().unwrap() } else { Pred::Or(disjuncts) })
    }

    pub(crate) fn conj(&mut self) -> PResult<Pred> {
        let mut conjuncts = vec![self.unary_pred()?];
        while self.eat_keyword("and") {
            conjuncts.push(self.unary_pred()?);
        }
        Ok(if conjuncts.len() == 1 { conjuncts.pop().unwrap() } else { Pred::And(conjuncts) })
    }

    pub(crate) fn unary_pred(&mut self) -> PResult<Pred> {
        if self.eat_keyword("not") {
            let inner = self.descend(|p| p.unary_pred())?;
            return Ok(Pred::Not(Box::new(inner)));
        }
        self.primary_pred()
    }

    pub(crate) fn primary_pred(&mut self) -> PResult<Pred> {
        if self.at_keyword("true") {
            self.bump();
            return Ok(Pred::True);
        }
        if self.at_keyword("false") {
            self.bump();
            return Ok(Pred::False);
        }
        if self.at_keyword("exists") {
            return Err(ParseError::Unsupported {
                feature: "EXISTS subqueries".into(),
                offset: self.offset(),
            });
        }
        // '(' could open a parenthesized predicate or a parenthesized
        // scalar expression; try the predicate interpretation first with
        // backtracking.
        if matches!(self.peek(), Token::LParen) {
            let save = self.pos;
            self.bump();
            if self.at_keyword("select") {
                return Err(ParseError::Unsupported {
                    feature: "scalar subqueries".into(),
                    offset: self.offset(),
                });
            }
            match self.descend(|p| p.pred()) {
                Ok(p) => {
                    if matches!(self.peek(), Token::RParen) {
                        self.bump();
                        return Ok(p);
                    }
                }
                Err(e @ ParseError::Unsupported { .. }) => {
                    // Depth exhaustion and other Unsupported diagnostics
                    // must propagate — re-trying as a scalar would recurse
                    // just as deep.
                    if matches!(&e, ParseError::Unsupported { feature, .. }
                        if feature.contains("nesting"))
                    {
                        return Err(e);
                    }
                }
                Err(_) => {}
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        // NOT LIKE / NOT IN / NOT BETWEEN
        let negated = self.eat_keyword("not");
        if self.eat_keyword("like") {
            let pattern = match self.bump() {
                Token::Str(s) => s,
                _ => return Err(self.unexpected("string pattern after LIKE")),
            };
            return Ok(Pred::Like { expr: lhs, pattern, negated });
        }
        if self.eat_keyword("in") {
            self.expect(&Token::LParen, "( after IN")?;
            if self.at_keyword("select") {
                return Err(ParseError::Unsupported {
                    feature: "IN subqueries".into(),
                    offset: self.offset(),
                });
            }
            let mut lits = vec![self.expr()?];
            while matches!(self.peek(), Token::Comma) {
                self.bump();
                lits.push(self.expr()?);
            }
            self.expect(&Token::RParen, ") closing IN list")?;
            let eqs: Vec<Pred> = lits
                .into_iter()
                .map(|lit| Pred::Cmp(lhs.clone(), CmpOp::Eq, lit))
                .collect();
            let disj = Pred::or(eqs);
            return Ok(if negated { disj.negated_nnf() } else { disj });
        }
        if self.eat_keyword("between") {
            let lo = self.expr()?;
            self.expect_keyword("and")?;
            let hi = self.expr()?;
            let range = Pred::and(vec![
                Pred::Cmp(lhs.clone(), CmpOp::Ge, lo),
                Pred::Cmp(lhs, CmpOp::Le, hi),
            ]);
            return Ok(if negated { range.negated_nnf() } else { range });
        }
        if negated {
            return Err(self.unexpected("LIKE, IN or BETWEEN after NOT"));
        }
        if self.at_keyword("is") {
            if !self.allow_is_null {
                return Err(ParseError::Unsupported {
                    feature: "IS [NOT] NULL".into(),
                    offset: self.offset(),
                });
            }
            self.bump();
            let is_not = self.eat_keyword("not");
            self.expect_keyword("null")?;
            // `e IS NULL` is TRUE iff some column of `e` is NULL (the
            // fragment's arithmetic is NULL-strict); `IS NOT NULL` is the
            // complement. Desugar onto the paired indicator columns of
            // the two-variable encoding.
            let mut cols = Vec::new();
            lhs.collect_columns(&mut cols);
            cols.dedup();
            if cols.iter().any(|c| c.column.ends_with(qrhint_sqlast::NULL_INDICATOR_SUFFIX)) {
                return Err(ParseError::Unsupported {
                    feature: "IS NULL over an indicator column".into(),
                    offset: self.offset(),
                });
            }
            let null_atoms: Vec<Pred> = cols
                .iter()
                .map(|c| {
                    if *c == qrhint_sqlast::null_literal() {
                        // NULL IS NULL is statically true.
                        Pred::True
                    } else {
                        Pred::Cmp(
                            Scalar::Col(qrhint_sqlast::null_indicator(c)),
                            CmpOp::Eq,
                            Scalar::Int(1),
                        )
                    }
                })
                .collect();
            let is_null = if null_atoms.is_empty() {
                Pred::False // a literal is never NULL in this fragment
            } else {
                Pred::or(null_atoms)
            };
            return Ok(if is_not { is_null.negated_nnf() } else { is_null });
        }
        let op = match self.peek() {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            _ => return Err(self.unexpected("comparison operator")),
        };
        self.bump();
        if self.at_keyword("all") || self.at_keyword("any") || self.at_keyword("some") {
            return Err(ParseError::Unsupported {
                feature: "quantified comparisons (ALL/ANY/SOME)".into(),
                offset: self.offset(),
            });
        }
        let rhs = self.expr()?;
        Ok(Pred::Cmp(lhs, op, rhs))
    }

    // ---------- scalar expressions ----------

    pub(crate) fn expr(&mut self) -> PResult<Scalar> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Token::Plus => ArithOp::Add,
                Token::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Scalar::arith(lhs, op, rhs);
        }
        Ok(lhs)
    }

    pub(crate) fn term(&mut self) -> PResult<Scalar> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Token::Star => ArithOp::Mul,
                Token::Slash => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Scalar::arith(lhs, op, rhs);
        }
        Ok(lhs)
    }

    pub(crate) fn factor(&mut self) -> PResult<Scalar> {
        match self.peek().clone() {
            Token::Minus => {
                self.bump();
                let inner = self.descend(|p| p.factor())?;
                Ok(match inner {
                    Scalar::Int(v) => Scalar::Int(-v),
                    other => Scalar::Neg(Box::new(other)),
                })
            }
            Token::LParen => {
                self.bump();
                if self.at_keyword("select") {
                    return Err(ParseError::Unsupported {
                        feature: "scalar subqueries".into(),
                        offset: self.offset(),
                    });
                }
                let e = self.descend(|p| p.expr())?;
                self.expect(&Token::RParen, ") closing expression")?;
                Ok(e)
            }
            Token::Int(v) => {
                self.bump();
                Ok(Scalar::Int(v))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Scalar::Str(s))
            }
            Token::Ident(name) => {
                // Aggregate call?
                let agg = match name.as_str() {
                    "count" => Some(AggFunc::Count),
                    "sum" => Some(AggFunc::Sum),
                    "avg" => Some(AggFunc::Avg),
                    "min" => Some(AggFunc::Min),
                    "max" => Some(AggFunc::Max),
                    _ => None,
                };
                if let Some(func) = agg {
                    if self.toks[self.pos + 1].token == Token::LParen {
                        self.bump(); // func name
                        self.bump(); // (
                        let distinct = self.eat_keyword("distinct");
                        let arg = if matches!(self.peek(), Token::Star) {
                            self.bump();
                            AggArg::Star
                        } else {
                            AggArg::Expr(Box::new(self.expr()?))
                        };
                        self.expect(&Token::RParen, ") closing aggregate call")?;
                        return Ok(Scalar::Agg(AggCall { func, distinct, arg }));
                    }
                }
                if name == "null" {
                    if self.allow_is_null {
                        // NULL-prototype mode: a NULL literal becomes the
                        // reserved always-null pseudo-column, which the
                        // 3VL encoding treats as never satisfying any
                        // comparison (Brass issue 9).
                        self.bump();
                        return Ok(Scalar::Col(qrhint_sqlast::null_literal()));
                    }
                    return Err(ParseError::Unsupported {
                        feature: "NULL literals".into(),
                        offset: self.offset(),
                    });
                }
                if name == "case" {
                    return Err(ParseError::Unsupported {
                        feature: "CASE expressions".into(),
                        offset: self.offset(),
                    });
                }
                self.bump();
                if matches!(self.peek(), Token::Dot) {
                    self.bump();
                    match self.bump() {
                        Token::Ident(col) => Ok(Scalar::Col(ColRef::new(&name, &col))),
                        Token::Star => Err(ParseError::Unsupported {
                            feature: "qualified wildcard t.*".into(),
                            offset: self.offset(),
                        }),
                        _ => Err(self.unexpected("column name after `.`")),
                    }
                } else {
                    Ok(Scalar::Col(ColRef::unqualified(&name)))
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

/// Parse a complete single-block query.
pub fn parse_query(sql: &str) -> PResult<Query> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0, depth: 0, allow_is_null: false };
    p.query()
}

/// Parse a standalone predicate (used heavily in tests and by the repair
/// experiments that operate on WHERE conditions directly).
pub fn parse_pred(sql: &str) -> PResult<Pred> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0, depth: 0, allow_is_null: false };
    let pred = p.pred()?;
    if matches!(p.peek(), Token::Semicolon) {
        p.bump();
    }
    p.expect(&Token::Eof, "end of predicate")?;
    Ok(pred)
}

/// Parse a standalone predicate with `IS [NOT] NULL` support: NULL tests
/// are desugared into atoms over the paired `__isnull` indicator columns
/// of the NULL prototype (`qrhint-core`'s `nullsafe` module), so the
/// resulting [`Pred`] slots directly into the 3VL encoding.
pub fn parse_pred_nullable(sql: &str) -> PResult<Pred> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0, depth: 0, allow_is_null: true };
    let pred = p.pred()?;
    if matches!(p.peek(), Token::Semicolon) {
        p.bump();
    }
    p.expect(&Token::Eof, "end of predicate")?;
    Ok(pred)
}

/// Parse a standalone scalar expression.
pub fn parse_scalar(sql: &str) -> PResult<Scalar> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0, depth: 0, allow_is_null: false };
    let e = p.expr()?;
    p.expect(&Token::Eof, "end of expression")?;
    Ok(e)
}

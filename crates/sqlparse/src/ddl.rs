//! Minimal DDL parsing: `CREATE TABLE` statements into a
//! [`qrhint_sqlast::Schema`], so the CLI can consume ordinary `.sql`
//! schema files.
//!
//! Supported per column: `INT`/`INTEGER`/`BIGINT`/`SMALLINT` (integer),
//! `VARCHAR(n)`/`CHAR(n)`/`TEXT`/`STRING` (string), `DECIMAL(p,s)`/
//! `NUMERIC` (integer — the fragment is integer-valued, see DESIGN.md),
//! with optional `PRIMARY KEY` / `NOT NULL` / `UNIQUE` column modifiers
//! and a table-level `PRIMARY KEY (...)` clause. Everything else is
//! rejected with a diagnostic.

use crate::lexer::{lex, SpannedToken, Token};
use crate::parser::{ParseError, Parser};
use qrhint_sqlast::{Pred, Schema, SqlType};

struct DdlParser {
    toks: Vec<SpannedToken>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl DdlParser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].token
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].token.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {}", kw.to_uppercase())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> PResult<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            _ => Err(self.unexpected(what)),
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> PResult<()> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().to_string(),
            expected: expected.to_string(),
            offset: self.offset(),
        }
    }

    /// Skip a parenthesized argument list like `(10)` or `(10, 2)`.
    fn skip_parens(&mut self) -> PResult<()> {
        if matches!(self.peek(), Token::LParen) {
            self.bump();
            let mut depth = 1;
            while depth > 0 {
                match self.bump() {
                    Token::LParen => depth += 1,
                    Token::RParen => depth -= 1,
                    Token::Eof => return Err(self.unexpected(") closing type arguments")),
                    _ => {}
                }
            }
        }
        Ok(())
    }

    fn column_type(&mut self) -> PResult<SqlType> {
        let name = self.expect_ident("column type")?;
        let ty = match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" | "decimal" | "numeric" => SqlType::Int,
            "varchar" | "char" | "text" | "string" | "character" => SqlType::Str,
            other => {
                return Err(ParseError::Unsupported {
                    feature: format!("column type `{other}`"),
                    offset: self.offset(),
                })
            }
        };
        self.skip_parens()?;
        Ok(ty)
    }

    /// Parse a `CHECK ( pred )` body by capturing the balanced token
    /// stream between the parentheses and handing it to the main
    /// predicate parser.
    fn check_constraint(&mut self) -> PResult<Pred> {
        self.expect(&Token::LParen, "( opening CHECK predicate")?;
        let mut captured: Vec<SpannedToken> = Vec::new();
        let mut depth = 1usize;
        loop {
            match self.peek() {
                Token::LParen => depth += 1,
                Token::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        break;
                    }
                }
                Token::Eof => return Err(self.unexpected(") closing CHECK predicate")),
                _ => {}
            }
            let offset = self.offset();
            let token = self.bump();
            captured.push(SpannedToken { token, offset });
        }
        let eof_offset = captured.last().map_or(0, |t| t.offset + 1);
        captured.push(SpannedToken { token: Token::Eof, offset: eof_offset });
        let mut sub = Parser { toks: captured, pos: 0, depth: 0, allow_is_null: false };
        let pred = sub.pred()?;
        sub.expect(&Token::Eof, "end of CHECK predicate")?;
        Ok(pred)
    }

    fn table(&mut self, schema: Schema) -> PResult<Schema> {
        self.expect_keyword("create")?;
        self.expect_keyword("table")?;
        let table = self.expect_ident("table name")?;
        self.expect(&Token::LParen, "( opening column list")?;
        let mut cols: Vec<(String, SqlType)> = Vec::new();
        let mut key: Vec<String> = Vec::new();
        let mut checks: Vec<Pred> = Vec::new();
        loop {
            if self.eat_keyword("check") {
                checks.push(self.check_constraint()?);
            } else if self.eat_keyword("primary") {
                self.expect_keyword("key")?;
                self.expect(&Token::LParen, "( opening key list")?;
                loop {
                    key.push(self.expect_ident("key column")?);
                    if matches!(self.peek(), Token::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Token::RParen, ") closing key list")?;
            } else if self.eat_keyword("foreign") || self.eat_keyword("constraint")
                || self.eat_keyword("unique") && matches!(self.peek(), Token::LParen)
            {
                // Skip table-level constraint bodies.
                while !matches!(self.peek(), Token::Comma | Token::RParen | Token::Eof) {
                    if matches!(self.peek(), Token::LParen) {
                        self.skip_parens()?;
                    } else {
                        self.bump();
                    }
                }
            } else {
                let col = self.expect_ident("column name")?;
                let ty = self.column_type()?;
                // Column modifiers.
                loop {
                    if self.eat_keyword("primary") {
                        self.expect_keyword("key")?;
                        key.push(col.clone());
                    } else if self.eat_keyword("not") {
                        self.expect_keyword("null")?;
                    } else if self.eat_keyword("unique") {
                    } else if self.eat_keyword("references") {
                        let _ = self.expect_ident("referenced table")?;
                        self.skip_parens()?;
                    } else if self.eat_keyword("check") {
                        checks.push(self.check_constraint()?);
                    } else {
                        break;
                    }
                }
                cols.push((col, ty));
            }
            match self.bump() {
                Token::Comma => continue,
                Token::RParen => break,
                _ => return Err(self.unexpected(", or ) in column list")),
            }
        }
        if matches!(self.peek(), Token::Semicolon) {
            self.bump();
        }
        let col_refs: Vec<(&str, SqlType)> =
            cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let key_refs: Vec<&str> = key.iter().map(String::as_str).collect();
        let mut schema = schema.with_table(&table, &col_refs, &key_refs);
        for check in checks {
            schema = schema.with_check(&table, check);
        }
        Ok(schema)
    }
}

/// Parse a sequence of `CREATE TABLE` statements into a [`Schema`].
///
/// ```
/// use qrhint_sqlparse::parse_schema;
/// let schema = parse_schema(
///     "CREATE TABLE Serves (bar VARCHAR(50), beer VARCHAR(50),
///                           price INT, PRIMARY KEY (bar, beer));",
/// ).unwrap();
/// assert!(schema.table("serves").is_some());
/// ```
pub fn parse_schema(sql: &str) -> Result<Schema, ParseError> {
    let toks = lex(sql)?;
    let mut p = DdlParser { toks, pos: 0 };
    let mut schema = Schema::new();
    while !matches!(p.peek(), Token::Eof) {
        schema = p.table(schema)?;
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beers_schema_roundtrip() {
        let schema = parse_schema(
            "CREATE TABLE Likes (drinker VARCHAR(30), beer VARCHAR(30),
                                 PRIMARY KEY (drinker, beer));
             CREATE TABLE Frequents (drinker VARCHAR(30), bar VARCHAR(30),
                                     PRIMARY KEY (drinker, bar));
             CREATE TABLE Serves (bar VARCHAR(30), beer VARCHAR(30),
                                  price DECIMAL(6,2), PRIMARY KEY (bar, beer));",
        )
        .unwrap();
        assert_eq!(schema.len(), 3);
        let serves = schema.table("serves").unwrap();
        assert_eq!(serves.column("price"), Some((2, SqlType::Int)));
        assert_eq!(serves.key, vec!["bar", "beer"]);
    }

    #[test]
    fn column_modifiers() {
        let schema = parse_schema(
            "CREATE TABLE T (id INT PRIMARY KEY,
                             name TEXT NOT NULL UNIQUE,
                             other INT REFERENCES T (id))",
        )
        .unwrap();
        let t = schema.table("t").unwrap();
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.key, vec!["id"]);
    }

    #[test]
    fn unknown_type_rejected() {
        let err = parse_schema("CREATE TABLE T (x BLOB)").unwrap_err();
        assert!(matches!(err, ParseError::Unsupported { .. }));
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(parse_schema("CREATE TABLE T x INT").is_err());
        assert!(parse_schema("CREATE T (x INT)").is_err());
        assert!(parse_schema("CREATE TABLE T (x INT").is_err());
    }

    #[test]
    fn foreign_key_clause_skipped() {
        let schema = parse_schema(
            "CREATE TABLE A (x INT, PRIMARY KEY (x));
             CREATE TABLE B (y INT, FOREIGN KEY (y) REFERENCES A (x))",
        )
        .unwrap();
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.table("b").unwrap().columns.len(), 1);
    }
}

//! SQL lexer for the Qr-Hint fragment.

use std::fmt;

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser; the lexer keeps the original spelling lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (single-quoted, with `''` escapes already undone).
    Str(String),
    /// Punctuation / operators.
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Semicolon,
    Eq,
    Ne,   // <> or !=
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Semicolon => write!(f, ";"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    pub token: Token,
    pub offset: usize,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A character that cannot start any token.
    UnexpectedChar { ch: char, offset: usize },
    /// A string literal that never closes.
    UnterminatedString { offset: usize },
    /// A numeric literal that does not fit in `i64` or has an unsupported
    /// form (non-integral decimals).
    BadNumber { text: String, offset: usize },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar { ch, offset } => {
                write!(f, "unexpected character `{ch}` at byte {offset}")
            }
            LexError::UnterminatedString { offset } => {
                write!(f, "unterminated string literal starting at byte {offset}")
            }
            LexError::BadNumber { text, offset } => {
                write!(f, "bad numeric literal `{text}` at byte {offset}")
            }
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input`, appending an [`Token::Eof`] sentinel.
pub fn lex(input: &str) -> Result<Vec<SpannedToken>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push(SpannedToken { token: Token::Comma, offset: i });
                i += 1;
            }
            '.' => {
                out.push(SpannedToken { token: Token::Dot, offset: i });
                i += 1;
            }
            '(' => {
                out.push(SpannedToken { token: Token::LParen, offset: i });
                i += 1;
            }
            ')' => {
                out.push(SpannedToken { token: Token::RParen, offset: i });
                i += 1;
            }
            '*' => {
                out.push(SpannedToken { token: Token::Star, offset: i });
                i += 1;
            }
            '+' => {
                out.push(SpannedToken { token: Token::Plus, offset: i });
                i += 1;
            }
            '-' => {
                out.push(SpannedToken { token: Token::Minus, offset: i });
                i += 1;
            }
            '/' => {
                out.push(SpannedToken { token: Token::Slash, offset: i });
                i += 1;
            }
            ';' => {
                out.push(SpannedToken { token: Token::Semicolon, offset: i });
                i += 1;
            }
            '=' => {
                out.push(SpannedToken { token: Token::Eq, offset: i });
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(SpannedToken { token: Token::Ne, offset: i });
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken { token: Token::Le, offset: i });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(SpannedToken { token: Token::Ne, offset: i });
                    i += 2;
                } else {
                    out.push(SpannedToken { token: Token::Lt, offset: i });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken { token: Token::Ge, offset: i });
                    i += 2;
                } else {
                    out.push(SpannedToken { token: Token::Gt, offset: i });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError::UnterminatedString { offset: start });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Strings are treated as raw bytes of the source;
                        // multi-byte UTF-8 is carried through verbatim.
                        let ch_start = i;
                        let ch_len = utf8_len(bytes[i]);
                        i += ch_len;
                        s.push_str(&input[ch_start..i.min(bytes.len())]);
                    }
                }
                out.push(SpannedToken { token: Token::Str(s), offset: start });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // Decimal point: accept only if fractional part is zero
                // (the fragment is integer-valued; see DESIGN.md).
                if i < bytes.len() && bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()
                {
                    let int_end = i;
                    i += 1;
                    let frac_start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let frac = &input[frac_start..i];
                    if frac.bytes().any(|b| b != b'0') {
                        return Err(LexError::BadNumber {
                            text: input[start..i].to_string(),
                            offset: start,
                        });
                    }
                    let v: i64 = input[start..int_end].parse().map_err(|_| LexError::BadNumber {
                        text: input[start..i].to_string(),
                        offset: start,
                    })?;
                    out.push(SpannedToken { token: Token::Int(v), offset: start });
                } else {
                    let v: i64 = input[start..i].parse().map_err(|_| LexError::BadNumber {
                        text: input[start..i].to_string(),
                        offset: start,
                    })?;
                    out.push(SpannedToken { token: Token::Int(v), offset: start });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(SpannedToken {
                    token: Token::Ident(input[start..i].to_ascii_lowercase()),
                    offset: start,
                });
            }
            '"' => {
                // Double-quoted identifier.
                let start = i;
                i += 1;
                let id_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LexError::UnterminatedString { offset: start });
                }
                out.push(SpannedToken {
                    token: Token::Ident(input[id_start..i].to_ascii_lowercase()),
                    offset: start,
                });
                i += 1;
            }
            other => return Err(LexError::UnexpectedChar { ch: other, offset: i }),
        }
    }
    out.push(SpannedToken { token: Token::Eof, offset: input.len() });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT a.b, 42 FROM t;"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Comma,
                Token::Int(42),
                Token::Ident("from".into()),
                Token::Ident("t".into()),
                Token::Semicolon,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a <= b >= c <> d != e < f > g = h"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ge,
                Token::Ident("c".into()),
                Token::Ne,
                Token::Ident("d".into()),
                Token::Ne,
                Token::Ident("e".into()),
                Token::Lt,
                Token::Ident("f".into()),
                Token::Gt,
                Token::Ident("g".into()),
                Token::Eq,
                Token::Ident("h".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks("'O''Brien'"), vec![Token::Str("O'Brien".into()), Token::Eof]);
    }

    #[test]
    fn unterminated_string() {
        assert!(matches!(lex("'oops"), Err(LexError::UnterminatedString { .. })));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a -- comment here\n b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into()), Token::Eof]
        );
    }

    #[test]
    fn integral_decimal_ok_fractional_rejected() {
        assert_eq!(toks("2.00"), vec![Token::Int(2), Token::Eof]);
        assert!(matches!(lex("2.20"), Err(LexError::BadNumber { .. })));
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(toks("\"Weird Name\""), vec![Token::Ident("weird name".into()), Token::Eof]);
    }

    #[test]
    fn unexpected_char() {
        assert!(matches!(lex("a @ b"), Err(LexError::UnexpectedChar { ch: '@', .. })));
    }
}

//! # qrhint-sqlparse
//!
//! Hand-written lexer and recursive-descent parser for the single-block
//! SQL fragment Qr-Hint operates on. This crate plays the role Apache
//! Calcite played in the paper's Python prototype — but scoped precisely
//! to the fragment of §3, with first-class diagnostics for the SQL
//! features the fragment excludes.
//!
//! ```
//! use qrhint_sqlparse::parse_query;
//! let q = parse_query(
//!     "SELECT L.beer, COUNT(*) FROM Likes L, Serves S \
//!      WHERE L.beer = S.beer AND S.price > 5 GROUP BY L.beer",
//! ).unwrap();
//! assert_eq!(q.from.len(), 2);
//! assert!(q.is_spja());
//! ```

#![forbid(unsafe_code)]

pub mod ddl;
pub mod frontend;
pub mod lexer;
pub mod parser;

pub use ddl::parse_schema;
pub use lexer::{lex, LexError, Token};
pub use frontend::{parse_multi, parse_query_extended, FlattenOptions};
pub use parser::{parse_pred, parse_pred_nullable, parse_query, parse_scalar, ParseError};

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlast::{CmpOp, Pred};

    #[test]
    fn parse_paper_example1_target() {
        let q = parse_query(
            "SELECT L.beer, S1.bar, COUNT(*)
             FROM Likes L, Frequents F, Serves S1, Serves S2
             WHERE L.drinker = F.drinker AND F.bar = S1.bar
               AND L.beer = S1.beer AND S1.beer = S2.beer
               AND S1.price <= S2.price
             GROUP BY F.drinker, L.beer, S1.bar
             HAVING F.drinker = 'Amy';",
        )
        .unwrap();
        assert_eq!(q.from.len(), 4);
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.group_by.len(), 3);
        assert!(q.having.is_some());
        let m = q.table_multiset();
        assert_eq!(m["serves"], 2);
    }

    #[test]
    fn parse_paper_example1_working() {
        let q = parse_query(
            "SELECT s2.beer, s2.bar, COUNT(*)
             FROM Likes, Serves s1, Serves s2
             WHERE drinker = 'Amy'
               AND Likes.beer = s1.beer AND Likes.beer = s2.beer
               AND s1.price > s2.price
             GROUP BY s2.beer, s2.bar;",
        )
        .unwrap();
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.aliases_of("serves"), vec!["s1", "s2"]);
        // "drinker" is still unqualified until resolution.
        let cols = q.collect_columns();
        assert!(cols.iter().any(|c| c.is_unqualified() && c.column == "drinker"));
    }

    #[test]
    fn and_or_precedence() {
        let p = parse_pred("a = 1 OR b = 2 AND c = 3").unwrap();
        match p {
            Pred::Or(children) => {
                assert_eq!(children.len(), 2);
                assert!(matches!(children[1], Pred::And(_)));
            }
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_predicates() {
        let p = parse_pred("(a = 1 OR b = 2) AND c = 3").unwrap();
        match p {
            Pred::And(children) => {
                assert!(matches!(children[0], Pred::Or(_)));
            }
            other => panic!("expected AND at root, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_scalar_vs_pred_backtracking() {
        // '(a + b) > c' — the '(' opens a scalar expression, not a pred.
        let p = parse_pred("(a + 1) > c").unwrap();
        assert!(matches!(p, Pred::Cmp(_, CmpOp::Gt, _)));
        // Nested: ((a=1)) is a predicate in double parens.
        let p2 = parse_pred("((a = 1))").unwrap();
        assert!(matches!(p2, Pred::Cmp(_, CmpOp::Eq, _)));
    }

    #[test]
    fn between_desugars() {
        let p = parse_pred("x BETWEEN 1 AND 5").unwrap();
        assert_eq!(p, parse_pred("x >= 1 AND x <= 5").unwrap());
        let np = parse_pred("x NOT BETWEEN 1 AND 5").unwrap();
        assert_eq!(np, parse_pred("x < 1 OR x > 5").unwrap());
    }

    #[test]
    fn in_list_desugars() {
        let p = parse_pred("area IN ('ML-AI', 'Theory')").unwrap();
        assert_eq!(p, parse_pred("area = 'ML-AI' OR area = 'Theory'").unwrap());
        let np = parse_pred("area NOT IN ('ML-AI', 'Theory')").unwrap();
        assert_eq!(np, parse_pred("area <> 'ML-AI' AND area <> 'Theory'").unwrap());
    }

    #[test]
    fn like_and_not_like() {
        let p = parse_pred("name LIKE 'Eve%'").unwrap();
        assert!(matches!(p, Pred::Like { negated: false, .. }));
        let np = parse_pred("name NOT LIKE 'Eve%'").unwrap();
        assert!(matches!(np, Pred::Like { negated: true, .. }));
    }

    #[test]
    fn not_binds_tighter_than_and() {
        let p = parse_pred("NOT a = 1 AND b = 2").unwrap();
        match p {
            Pred::And(children) => assert!(matches!(children[0], Pred::Not(_))),
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_scalar("a + b * 2").unwrap();
        assert_eq!(e.to_string(), "a + b * 2");
        let e2 = parse_scalar("(a + b) * 2").unwrap();
        assert_eq!(e2.to_string(), "(a + b) * 2");
        let e3 = parse_scalar("-a + 3").unwrap();
        assert_eq!(e3.to_string(), "-a + 3");
    }

    #[test]
    fn aggregates() {
        let e = parse_scalar("COUNT(DISTINCT t.author)").unwrap();
        assert_eq!(e.to_string(), "COUNT(DISTINCT t.author)");
        let e2 = parse_scalar("2 * SUM(d)").unwrap();
        assert!(e2.has_aggregate());
        let e3 = parse_scalar("SUM(d * 2)").unwrap();
        assert!(e3.has_aggregate());
    }

    #[test]
    fn unsupported_features_are_diagnosed() {
        for (sql, what) in [
            ("SELECT a FROM t UNION SELECT a FROM s", "set"),
            ("SELECT a FROM t LEFT JOIN s ON t.a = s.a", "outer"),
            ("SELECT a FROM t JOIN s ON t.a = s.a", "JOIN"),
            ("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s)", "EXISTS"),
            ("SELECT a FROM t WHERE a IN (SELECT a FROM s)", "IN sub"),
            ("SELECT * FROM t", "SELECT *"),
            ("SELECT a FROM (SELECT a FROM s) x", "subquer"),
            ("SELECT a FROM t WHERE a > ALL (SELECT a FROM s)", "quantified"),
        ] {
            match parse_query(sql) {
                Err(ParseError::Unsupported { feature, .. }) => {
                    assert!(
                        feature.to_lowercase().contains(&what.to_lowercase())
                            || feature.contains(what),
                        "for {sql:?} expected feature mentioning {what:?}, got {feature:?}"
                    );
                }
                other => panic!("expected Unsupported for {sql:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(matches!(parse_pred("a = "), Err(ParseError::Unexpected { .. })));
        assert!(parse_query("SELEC a FROM t").is_err());
        assert!(parse_query("SELECT a FROM t WHERE").is_err());
    }

    #[test]
    fn roundtrip_display_reparse() {
        let sources = [
            "SELECT l.beer FROM likes l WHERE l.drinker = 'Amy'",
            "SELECT a.x, b.y FROM r a, s b WHERE a.x = b.y AND (a.x > 3 OR b.y < 2)",
            "SELECT t.a, SUM(t.b * 2) FROM t GROUP BY t.a HAVING SUM(t.b * 2) > 10",
            "SELECT r.a FROM r WHERE NOT (r.a = 1 AND r.b = 2)",
        ];
        for src in sources {
            let q1 = parse_query(src).unwrap();
            let printed = q1.to_string();
            let q2 = parse_query(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(q1, q2, "roundtrip mismatch for {src:?}");
        }
    }

    #[test]
    fn order_by_is_parsed_and_discarded() {
        let q1 = parse_query("SELECT a FROM t ORDER BY a DESC, b").unwrap();
        let q2 = parse_query("SELECT a FROM t").unwrap();
        assert_eq!(q1, q2);
        let q3 = parse_query(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY COUNT(*) DESC",
        )
        .unwrap();
        assert!(q3.having.is_some());
    }

    #[test]
    fn nesting_depth_is_capped_with_clean_error() {
        // 300 nested parens must yield a diagnostic, not a stack overflow.
        let deep = format!("{}a = 1{}", "(".repeat(300), ")".repeat(300));
        match parse_pred(&deep) {
            Err(ParseError::Unsupported { feature, .. }) => {
                assert!(feature.contains("nesting"), "{feature}");
            }
            other => panic!("expected nesting diagnostic, got {other:?}"),
        }
        // Shallow nesting (64 levels) still parses fine.
        let ok = format!("{}a = 1{}", "(".repeat(64), ")".repeat(64));
        assert!(parse_pred(&ok).is_ok());
        // NOT chains are likewise capped…
        let nots = format!("{} a = 1", "NOT ".repeat(400));
        assert!(parse_pred(&nots).is_err());
        // …but reasonable chains parse.
        assert!(parse_pred(&format!("{} a = 1", "NOT ".repeat(20))).is_ok());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT a FROM t; extra").is_err());
    }

    #[test]
    fn select_alias_forms() {
        let q = parse_query("SELECT a AS x, b y FROM t").unwrap();
        assert_eq!(q.select[0].alias.as_deref(), Some("x"));
        assert_eq!(q.select[1].alias.as_deref(), Some("y"));
    }
}

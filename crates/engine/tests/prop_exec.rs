//! Property tests for the executor: classical relational invariants over
//! randomized queries and databases.

use proptest::prelude::*;
use qrhint_engine::{bag_equal, execute, DataGen, Database};
use qrhint_sqlast::resolve::resolve_query;
use qrhint_sqlast::{Query, Schema, SqlType};
use qrhint_sqlparse::parse_query;

fn schema() -> Schema {
    Schema::new()
        .with_table("R", &[("a", SqlType::Int), ("b", SqlType::Int), ("s", SqlType::Str)], &[])
        .with_table("S", &[("c", SqlType::Int), ("d", SqlType::Str)], &[])
}

fn db(seed: u64, q: &Query) -> Database {
    DataGen::new(seed).with_rows(5).generate(&schema(), &[q])
}

fn prepare(sql: &str) -> Query {
    resolve_query(&schema(), &parse_query(sql).unwrap()).unwrap()
}

fn arb_condition() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..6).prop_map(|k| format!("r.a > {k}")),
        (0i64..6).prop_map(|k| format!("r.b <= {k}")),
        Just("r.a = s.c".to_string()),
        Just("r.s = s.d".to_string()),
        Just("r.a <> r.b".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Conjunction monotonicity: adding a conjunct never grows the result.
    #[test]
    fn where_conjunction_shrinks(c1 in arb_condition(), c2 in arb_condition(), seed in 0u64..50) {
        let q_loose = prepare(&format!("SELECT r.a, r.b FROM R r, S s WHERE {c1}"));
        let q_tight = prepare(&format!("SELECT r.a, r.b FROM R r, S s WHERE {c1} AND {c2}"));
        let d = db(seed, &q_loose);
        let loose = execute(&q_loose, &schema(), &d).unwrap();
        let tight = execute(&q_tight, &schema(), &d).unwrap();
        prop_assert!(tight.len() <= loose.len());
    }

    /// Commutativity: conjunct order never changes the bag.
    #[test]
    fn where_order_irrelevant(c1 in arb_condition(), c2 in arb_condition(), seed in 0u64..50) {
        let q1 = prepare(&format!("SELECT r.a FROM R r, S s WHERE {c1} AND {c2}"));
        let q2 = prepare(&format!("SELECT r.a FROM R r, S s WHERE {c2} AND {c1}"));
        let d = db(seed, &q1);
        prop_assert!(bag_equal(
            &execute(&q1, &schema(), &d).unwrap(),
            &execute(&q2, &schema(), &d).unwrap(),
        ));
    }

    /// DISTINCT yields the support set of the bag.
    #[test]
    fn distinct_is_support(c in arb_condition(), seed in 0u64..50) {
        let q = prepare(&format!("SELECT r.a FROM R r, S s WHERE {c}"));
        let qd = prepare(&format!("SELECT DISTINCT r.a FROM R r, S s WHERE {c}"));
        let d = db(seed, &q);
        let bag = execute(&q, &schema(), &d).unwrap();
        let set = execute(&qd, &schema(), &d).unwrap();
        let mut expect: Vec<_> = bag.clone();
        expect.sort();
        expect.dedup();
        prop_assert!(bag_equal(&set, &expect));
        prop_assert!(set.len() <= bag.len());
    }

    /// GROUP BY partitions: COUNT(*) per group sums to the FW row count.
    #[test]
    fn group_counts_sum_to_total(c in arb_condition(), seed in 0u64..50) {
        let grouped =
            prepare(&format!("SELECT r.a, COUNT(*) FROM R r, S s WHERE {c} GROUP BY r.a"));
        let flat = prepare(&format!("SELECT r.a FROM R r, S s WHERE {c}"));
        let d = db(seed, &grouped);
        let groups = execute(&grouped, &schema(), &d).unwrap();
        let rows = execute(&flat, &schema(), &d).unwrap();
        let total: i64 = groups
            .iter()
            .map(|g| g[1].as_int().expect("COUNT is an int"))
            .sum();
        prop_assert_eq!(total as usize, rows.len());
        // And every group is non-empty.
        prop_assert!(groups.iter().all(|g| g[1].as_int().unwrap() >= 1));
    }

    /// HAVING TRUE-equivalent thresholds keep all groups.
    #[test]
    fn having_count_ge_one_is_noop(seed in 0u64..50) {
        let q1 = prepare("SELECT r.a, COUNT(*) FROM R r GROUP BY r.a");
        let q2 = prepare("SELECT r.a, COUNT(*) FROM R r GROUP BY r.a HAVING COUNT(*) >= 1");
        let d = db(seed, &q1);
        prop_assert!(bag_equal(
            &execute(&q1, &schema(), &d).unwrap(),
            &execute(&q2, &schema(), &d).unwrap(),
        ));
    }

    /// MIN ≤ AVG ≤ MAX per group (the axiom the solver's aggregate
    /// context relies on — floor-AVG keeps it exact).
    #[test]
    fn min_avg_max_ordering(seed in 0u64..80) {
        let q = prepare(
            "SELECT r.a, MIN(r.b), AVG(r.b), MAX(r.b) FROM R r GROUP BY r.a",
        );
        let d = db(seed, &q);
        for row in execute(&q, &schema(), &d).unwrap() {
            let (mn, av, mx) = (
                row[1].as_int().unwrap(),
                row[2].as_int().unwrap(),
                row[3].as_int().unwrap(),
            );
            prop_assert!(mn <= av && av <= mx, "violated: {mn} {av} {mx}");
        }
    }
}

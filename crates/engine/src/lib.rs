//! # qrhint-engine
//!
//! A bag-semantics, in-memory relational executor for the Qr-Hint SQL
//! fragment, plus randomized database generation.
//!
//! The paper's correctness notions are all defined in terms of query
//! results over arbitrary database instances (`F(Q) ≡ F(Q★)`,
//! `FW(Q) ≡ FW(Q★)`, grouping partitions, final bag equality). This crate
//! provides the executable ground truth: every repair the core produces is
//! differentially tested against the reference query on randomized
//! instances.
//!
//! ```
//! use qrhint_engine::{Database, DataGen};
//! use qrhint_sqlast::{Schema, SqlType};
//! use qrhint_sqlparse::parse_query;
//!
//! let schema = Schema::new()
//!     .with_table("Serves", &[("bar", SqlType::Str), ("beer", SqlType::Str),
//!                             ("price", SqlType::Int)], &["bar", "beer"]);
//! let q = parse_query("SELECT s.bar FROM Serves s WHERE s.price > 3").unwrap();
//! let q = qrhint_sqlast::resolve::resolve_query(&schema, &q).unwrap();
//! let db = DataGen::new(42).generate(&schema, &[&q]);
//! let rows = qrhint_engine::execute(&q, &schema, &db).unwrap();
//! let _ = rows;
//! ```

#![forbid(unsafe_code)]

pub mod datagen;
pub mod db;
pub mod exec;

pub use datagen::DataGen;
pub use db::{Database, Row, Table, Value};
pub use exec::{bag_equal, execute, execute_partition, EngineError};

use qrhint_sqlast::{Query, Schema};

/// Differentially test two queries on `n` random databases seeded from
/// `seed`; returns `Ok(true)` if the result bags agree on every instance,
/// `Ok(false)` with the first differing instance index otherwise.
pub fn differential_equiv(
    q1: &Query,
    q2: &Query,
    schema: &Schema,
    seed: u64,
    n: usize,
) -> Result<bool, EngineError> {
    for i in 0..n {
        let db = DataGen::new(seed.wrapping_add(i as u64)).generate(schema, &[q1, q2]);
        let r1 = execute(q1, schema, &db)?;
        let r2 = execute(q2, schema, &db)?;
        if !bag_equal(&r1, &r2) {
            return Ok(false);
        }
    }
    Ok(true)
}

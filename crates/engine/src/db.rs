//! In-memory databases: tables are bags (Vec) of rows.

use qrhint_sqlast::{Schema, SqlType};
use std::collections::BTreeMap;
use std::fmt;

/// A runtime value. All columns are NOT NULL, so there is no null variant
/// (paper §3, Limitations).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    Int(i64),
    Str(String),
}

impl Value {
    pub fn ty(&self) -> SqlType {
        match self {
            Value::Int(_) => SqlType::Int,
            Value::Str(_) => SqlType::Str,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A row: values in column declaration order.
pub type Row = Vec<Value>;

/// A table: a bag of rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    pub rows: Vec<Row>,
}

impl Table {
    pub fn new(rows: Vec<Row>) -> Self {
        Table { rows }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A database instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Insert/replace a table's contents.
    pub fn set_table(&mut self, name: &str, table: Table) {
        self.tables.insert(qrhint_sqlast::ident(name), table);
    }

    /// Builder-style row loading; panics if a row's arity or types mismatch
    /// the schema (tests construct these by hand, so fail fast).
    pub fn with_rows(mut self, schema: &Schema, name: &str, rows: Vec<Row>) -> Self {
        let ts = schema.table(name).unwrap_or_else(|| panic!("unknown table {name}"));
        for row in &rows {
            assert_eq!(row.len(), ts.columns.len(), "arity mismatch loading {name}");
            for (v, c) in row.iter().zip(&ts.columns) {
                assert_eq!(v.ty(), c.ty, "type mismatch in {name}.{}", c.name);
            }
        }
        self.set_table(name, Table::new(rows));
        self
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&qrhint_sqlast::ident(name))
    }

    /// Empty table singleton used for tables with no loaded rows.
    pub fn table_or_empty(&self, name: &str) -> Table {
        self.table(name).cloned().unwrap_or_default()
    }

    pub fn tables(&self) -> impl Iterator<Item = (&String, &Table)> {
        self.tables.iter()
    }

    /// Total row count across tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new().with_table("R", &[("a", SqlType::Int), ("b", SqlType::Str)], &["a"])
    }

    #[test]
    fn load_and_read() {
        let db = Database::new().with_rows(
            &schema(),
            "R",
            vec![vec![Value::Int(1), Value::Str("x".into())]],
        );
        assert_eq!(db.table("r").unwrap().len(), 1);
        assert_eq!(db.total_rows(), 1);
        assert!(db.table("missing").is_none());
        assert!(db.table_or_empty("missing").is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let _ = Database::new().with_rows(&schema(), "R", vec![vec![Value::Int(1)]]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn types_checked() {
        let _ = Database::new().with_rows(
            &schema(),
            "R",
            vec![vec![Value::Str("no".into()), Value::Str("x".into())]],
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Str("s".into()).ty(), SqlType::Str);
    }
}

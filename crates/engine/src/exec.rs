//! Bag-semantics execution of single-block SPJ/SPJA queries.
//!
//! Semantics follow §3 of the paper: `F(Q)` is the cross product of the
//! FROM tables, `FW(Q)` filters it by WHERE, `FWG(Q)` partitions by the
//! GROUP BY expressions, `FWGH(Q)` filters groups by HAVING, and SELECT
//! projects. Aggregates: `COUNT/SUM/MIN/MAX` are standard;
//! `AVG` is defined as the **floor** of the rational average (documented
//! deviation from SQL's implementation-defined numeric behaviour, chosen
//! so that `MIN ≤ AVG ≤ MAX` holds exactly — the property the solver's
//! aggregate context relies on).

use crate::db::{Database, Row, Value};
use qrhint_sqlast::{
    AggArg, AggCall, AggFunc, ArithOp, CmpOp, ColRef, Pred, Query, Scalar, Schema,
};
use std::collections::BTreeMap;
use std::fmt;

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    DivisionByZero,
    TypeConfusion(String),
    UnknownColumn(String),
    UnknownTable(String),
    /// Aggregate used outside an SPJA context (or nested aggregates).
    BadAggregate(String),
    /// Cross product exceeded the row budget.
    ResourceLimit,
    /// Arithmetic overflow.
    Overflow,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DivisionByZero => write!(f, "division by zero"),
            EngineError::TypeConfusion(d) => write!(f, "type confusion: {d}"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table {t}"),
            EngineError::BadAggregate(d) => write!(f, "bad aggregate: {d}"),
            EngineError::ResourceLimit => write!(f, "cross product exceeds row budget"),
            EngineError::Overflow => write!(f, "arithmetic overflow"),
        }
    }
}

impl std::error::Error for EngineError {}

type ExecResult<T> = Result<T, EngineError>;

/// Maximum number of intermediate cross-product rows.
const MAX_CROSS_ROWS: usize = 4_000_000;

/// Column addressing for the combined (concatenated) row layout.
struct Layout {
    /// (alias, column) → global slot index.
    slots: BTreeMap<(String, String), usize>,
}

impl Layout {
    fn build(query: &Query, schema: &Schema) -> ExecResult<Layout> {
        let mut slots = BTreeMap::new();
        let mut offset = 0usize;
        for tref in &query.from {
            let ts = schema
                .table(&tref.table)
                .ok_or_else(|| EngineError::UnknownTable(tref.table.clone()))?;
            for (i, col) in ts.columns.iter().enumerate() {
                slots.insert((tref.alias.clone(), col.name.clone()), offset + i);
            }
            offset += ts.columns.len();
        }
        Ok(Layout { slots })
    }

    fn slot(&self, c: &ColRef) -> ExecResult<usize> {
        self.slots
            .get(&(c.table.clone(), c.column.clone()))
            .copied()
            .ok_or_else(|| EngineError::UnknownColumn(c.to_string()))
    }
}

/// SQL LIKE matching (`%` any sequence, `_` one character).
pub(crate) fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_si) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = pi;
            star_si = si;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_si += 1;
            si = star_si;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Evaluate a scalar on one combined row (no aggregates allowed).
fn eval_scalar(e: &Scalar, row: &Row, layout: &Layout) -> ExecResult<Value> {
    match e {
        Scalar::Col(c) => Ok(row[layout.slot(c)?].clone()),
        Scalar::Int(v) => Ok(Value::Int(*v)),
        Scalar::Str(s) => Ok(Value::Str(s.clone())),
        Scalar::Arith(l, op, r) => {
            let (lv, rv) = (eval_scalar(l, row, layout)?, eval_scalar(r, row, layout)?);
            arith(&lv, *op, &rv)
        }
        Scalar::Neg(inner) => {
            let v = eval_scalar(inner, row, layout)?;
            match v {
                Value::Int(x) => x.checked_neg().map(Value::Int).ok_or(EngineError::Overflow),
                Value::Str(_) => Err(EngineError::TypeConfusion("negating a string".into())),
            }
        }
        Scalar::Agg(_) => Err(EngineError::BadAggregate(
            "aggregate evaluated in row context".into(),
        )),
    }
}

fn arith(l: &Value, op: ArithOp, r: &Value) -> ExecResult<Value> {
    let (Value::Int(a), Value::Int(b)) = (l, r) else {
        return Err(EngineError::TypeConfusion(format!("arithmetic on {l} and {r}")));
    };
    let out = match op {
        ArithOp::Add => a.checked_add(*b),
        ArithOp::Sub => a.checked_sub(*b),
        ArithOp::Mul => a.checked_mul(*b),
        ArithOp::Div => {
            if *b == 0 {
                return Err(EngineError::DivisionByZero);
            }
            a.checked_div(*b)
        }
    };
    out.map(Value::Int).ok_or(EngineError::Overflow)
}

/// Evaluate an aggregate call over the rows of a group.
fn eval_agg(call: &AggCall, group: &[&Row], layout: &Layout) -> ExecResult<Value> {
    // Materialize the input multiset.
    let inputs: Vec<Value> = match &call.arg {
        AggArg::Star => group.iter().map(|_| Value::Int(1)).collect(),
        AggArg::Expr(e) => group
            .iter()
            .map(|r| eval_scalar(e, r, layout))
            .collect::<ExecResult<_>>()?,
    };
    let inputs: Vec<Value> = if call.distinct {
        let mut seen = std::collections::BTreeSet::new();
        inputs.into_iter().filter(|v| seen.insert(v.clone())).collect()
    } else {
        inputs
    };
    match call.func {
        AggFunc::Count => Ok(Value::Int(inputs.len() as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            let mut total: i64 = 0;
            for v in &inputs {
                let Value::Int(x) = v else {
                    return Err(EngineError::TypeConfusion("SUM/AVG over strings".into()));
                };
                total = total.checked_add(*x).ok_or(EngineError::Overflow)?;
            }
            if call.func == AggFunc::Sum {
                Ok(Value::Int(total))
            } else if inputs.is_empty() {
                // Aggregates over empty groups only occur for the implicit
                // single group of a GROUP-BY-less aggregate query; SQL
                // would yield NULL, which the fragment excludes — define 0.
                Ok(Value::Int(0))
            } else {
                Ok(Value::Int(total.div_euclid(inputs.len() as i64)))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            if inputs.is_empty() {
                return Ok(Value::Int(0));
            }
            let mut best = inputs[0].clone();
            for v in &inputs[1..] {
                let better = if call.func == AggFunc::Min { v < &best } else { v > &best };
                if better {
                    best = v.clone();
                }
            }
            Ok(best)
        }
    }
}

/// Evaluate a scalar in a group context: aggregates use the whole group,
/// other subexpressions are evaluated on the group's representative row.
fn eval_scalar_grouped(e: &Scalar, group: &[&Row], layout: &Layout) -> ExecResult<Value> {
    match e {
        Scalar::Agg(call) => eval_agg(call, group, layout),
        Scalar::Arith(l, op, r) => {
            let (lv, rv) = (
                eval_scalar_grouped(l, group, layout)?,
                eval_scalar_grouped(r, group, layout)?,
            );
            arith(&lv, *op, &rv)
        }
        Scalar::Neg(inner) => {
            match eval_scalar_grouped(inner, group, layout)? {
                Value::Int(x) => x.checked_neg().map(Value::Int).ok_or(EngineError::Overflow),
                Value::Str(_) => Err(EngineError::TypeConfusion("negating a string".into())),
            }
        }
        other => {
            if group.is_empty() {
                // Empty implicit group: only aggregates are meaningful.
                return Err(EngineError::BadAggregate(
                    "non-aggregate expression over empty group".into(),
                ));
            }
            eval_scalar(other, group[0], layout)
        }
    }
}

/// Evaluate a predicate on one row.
fn eval_pred(p: &Pred, row: &Row, layout: &Layout) -> ExecResult<bool> {
    match p {
        Pred::True => Ok(true),
        Pred::False => Ok(false),
        Pred::Cmp(l, op, r) => {
            let (lv, rv) = (eval_scalar(l, row, layout)?, eval_scalar(r, row, layout)?);
            cmp_values(&lv, *op, &rv)
        }
        Pred::Like { expr, pattern, negated } => {
            let v = eval_scalar(expr, row, layout)?;
            let Value::Str(s) = v else {
                return Err(EngineError::TypeConfusion("LIKE on a non-string".into()));
            };
            let m = like_match(&s, pattern);
            Ok(if *negated { !m } else { m })
        }
        Pred::And(cs) => {
            for c in cs {
                if !eval_pred(c, row, layout)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Pred::Or(cs) => {
            for c in cs {
                if eval_pred(c, row, layout)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Pred::Not(c) => Ok(!eval_pred(c, row, layout)?),
    }
}

/// Evaluate a predicate in group context (HAVING).
fn eval_pred_grouped(p: &Pred, group: &[&Row], layout: &Layout) -> ExecResult<bool> {
    match p {
        Pred::True => Ok(true),
        Pred::False => Ok(false),
        Pred::Cmp(l, op, r) => {
            let (lv, rv) = (
                eval_scalar_grouped(l, group, layout)?,
                eval_scalar_grouped(r, group, layout)?,
            );
            cmp_values(&lv, *op, &rv)
        }
        Pred::Like { expr, pattern, negated } => {
            let v = eval_scalar_grouped(expr, group, layout)?;
            let Value::Str(s) = v else {
                return Err(EngineError::TypeConfusion("LIKE on a non-string".into()));
            };
            let m = like_match(&s, pattern);
            Ok(if *negated { !m } else { m })
        }
        Pred::And(cs) => {
            for c in cs {
                if !eval_pred_grouped(c, group, layout)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Pred::Or(cs) => {
            for c in cs {
                if eval_pred_grouped(c, group, layout)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Pred::Not(c) => Ok(!eval_pred_grouped(c, group, layout)?),
    }
}

fn cmp_values(l: &Value, op: CmpOp, r: &Value) -> ExecResult<bool> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(op.eval(a, b)),
        (Value::Str(a), Value::Str(b)) => Ok(op.eval(a, b)),
        _ => Err(EngineError::TypeConfusion(format!("comparing {l} with {r}"))),
    }
}

/// Materialize `FW(Q)`: the filtered cross product, as combined rows.
fn fw_rows(query: &Query, schema: &Schema, db: &Database) -> ExecResult<(Vec<Row>, Layout)> {
    let layout = Layout::build(query, schema)?;
    let tables: Vec<Vec<Row>> = query
        .from
        .iter()
        .map(|t| Ok(db.table_or_empty(&t.table).rows))
        .collect::<ExecResult<_>>()?;
    // Estimate size.
    let mut est: usize = 1;
    for t in &tables {
        est = est.saturating_mul(t.len().max(1));
    }
    if est > MAX_CROSS_ROWS {
        return Err(EngineError::ResourceLimit);
    }
    let mut out: Vec<Row> = Vec::new();
    let mut stack: Vec<usize> = vec![0; tables.len()];
    if tables.iter().any(|t| t.is_empty()) {
        return Ok((out, layout));
    }
    loop {
        // Build combined row for the current index vector.
        let mut row: Row = Vec::new();
        for (ti, &ri) in stack.iter().enumerate() {
            row.extend(tables[ti][ri].iter().cloned());
        }
        if eval_pred(&query.where_pred, &row, &layout)? {
            out.push(row);
        }
        // Advance odometer.
        let mut k = tables.len();
        loop {
            if k == 0 {
                return Ok((out, layout));
            }
            k -= 1;
            stack[k] += 1;
            if stack[k] < tables[k].len() {
                break;
            }
            stack[k] = 0;
        }
    }
}

/// Group FW rows by the GROUP BY expressions; returns groups as index
/// lists in first-appearance order.
fn group_rows(
    query: &Query,
    rows: &[Row],
    layout: &Layout,
) -> ExecResult<Vec<Vec<usize>>> {
    if query.group_by.is_empty() {
        // Implicit single group (possibly empty) for aggregate queries.
        return Ok(vec![(0..rows.len()).collect()]);
    }
    let mut keys: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let key: Vec<Value> = query
            .group_by
            .iter()
            .map(|g| eval_scalar(g, row, layout))
            .collect::<ExecResult<_>>()?;
        if !keys.contains_key(&key) {
            order.push(key.clone());
        }
        keys.entry(key).or_default().push(i);
    }
    Ok(order.into_iter().map(|k| keys.remove(&k).unwrap()).collect())
}

/// Execute a resolved query, returning the output bag.
pub fn execute(query: &Query, schema: &Schema, db: &Database) -> ExecResult<Vec<Row>> {
    let (rows, layout) = fw_rows(query, schema, db)?;
    let mut out: Vec<Row> = Vec::new();
    if query.is_spja() && (query.select.iter().any(|s| s.expr.has_aggregate())
        || !query.group_by.is_empty()
        || query.having.is_some())
    {
        let groups = group_rows(query, &rows, &layout)?;
        for g in groups {
            let members: Vec<&Row> = g.iter().map(|&i| &rows[i]).collect();
            if members.is_empty() && !query.group_by.is_empty() {
                continue;
            }
            if let Some(h) = &query.having {
                if !eval_pred_grouped(h, &members, &layout)? {
                    continue;
                }
            }
            let row: Row = query
                .select
                .iter()
                .map(|s| eval_scalar_grouped(&s.expr, &members, &layout))
                .collect::<ExecResult<_>>()?;
            out.push(row);
        }
    } else {
        for row in &rows {
            let o: Row = query
                .select
                .iter()
                .map(|s| eval_scalar(&s.expr, row, &layout))
                .collect::<ExecResult<_>>()?;
            out.push(o);
        }
    }
    if query.distinct {
        let mut seen = std::collections::BTreeSet::new();
        out.retain(|r| seen.insert(r.clone()));
    }
    Ok(out)
}

/// Execute `FWG(Q)`: the partitioning of FW rows produced by GROUP BY,
/// as a canonicalized set of bags (each group sorted, groups sorted).
/// Used to check the grouping-equivalence property of §6.
pub fn execute_partition(
    query: &Query,
    schema: &Schema,
    db: &Database,
) -> ExecResult<Vec<Vec<Row>>> {
    let (rows, layout) = fw_rows(query, schema, db)?;
    let groups = group_rows(query, &rows, &layout)?;
    let mut out: Vec<Vec<Row>> = groups
        .into_iter()
        .map(|g| {
            let mut rs: Vec<Row> = g.into_iter().map(|i| rows[i].clone()).collect();
            rs.sort();
            rs
        })
        .filter(|g| !g.is_empty())
        .collect();
    out.sort();
    Ok(out)
}

/// Multiset equality of result bags.
pub fn bag_equal(a: &[Row], b: &[Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort();
    b.sort();
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlast::resolve::resolve_query;
    use qrhint_sqlast::{Schema, SqlType};
    use qrhint_sqlparse::parse_query;

    fn beers_schema() -> Schema {
        Schema::new()
            .with_table(
                "Likes",
                &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
                &["drinker", "beer"],
            )
            .with_table(
                "Frequents",
                &[("drinker", SqlType::Str), ("bar", SqlType::Str)],
                &["drinker", "bar"],
            )
            .with_table(
                "Serves",
                &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
                &["bar", "beer"],
            )
    }

    fn s(v: &str) -> Value {
        Value::Str(v.into())
    }
    fn i(v: i64) -> Value {
        Value::Int(v)
    }

    fn beers_db(schema: &Schema) -> Database {
        Database::new()
            .with_rows(
                schema,
                "Likes",
                vec![
                    vec![s("Amy"), s("IPA")],
                    vec![s("Amy"), s("Stout")],
                    vec![s("Bob"), s("IPA")],
                ],
            )
            .with_rows(
                schema,
                "Frequents",
                vec![vec![s("Amy"), s("Joyce")], vec![s("Bob"), s("Joyce")]],
            )
            .with_rows(
                schema,
                "Serves",
                vec![
                    vec![s("Joyce"), s("IPA"), i(5)],
                    vec![s("Joyce"), s("Stout"), i(7)],
                    vec![s("Dive"), s("IPA"), i(3)],
                ],
            )
    }

    fn run(sql: &str, schema: &Schema, db: &Database) -> Vec<Row> {
        let q = parse_query(sql).unwrap();
        let q = resolve_query(schema, &q).unwrap();
        execute(&q, schema, db).unwrap()
    }

    #[test]
    fn simple_filter_and_project() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        let rows = run(
            "SELECT sv.beer FROM Serves sv WHERE sv.price > 4",
            &schema,
            &db,
        );
        assert!(bag_equal(&rows, &[vec![s("IPA")], vec![s("Stout")]]));
    }

    #[test]
    fn join_is_bag_cross_product() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        let rows = run(
            "SELECT l.drinker FROM Likes l, Serves sv WHERE l.beer = sv.beer",
            &schema,
            &db,
        );
        // Amy-IPA matches 2 Serves rows, Amy-Stout 1, Bob-IPA 2 → 5 rows.
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn group_by_count() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        let rows = run(
            "SELECT l.drinker, COUNT(l.beer) FROM Likes l GROUP BY l.drinker",
            &schema,
            &db,
        );
        assert!(bag_equal(&rows, &[vec![s("Amy"), i(2)], vec![s("Bob"), i(1)]]));
    }

    #[test]
    fn having_filters_groups() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        let rows = run(
            "SELECT l.drinker FROM Likes l GROUP BY l.drinker HAVING COUNT(l.beer) >= 2",
            &schema,
            &db,
        );
        assert!(bag_equal(&rows, &[vec![s("Amy")]]));
    }

    #[test]
    fn aggregate_without_group_by_over_empty_input() {
        let schema = beers_schema();
        let db = Database::new(); // all tables empty
        let rows = run("SELECT COUNT(l.beer) FROM Likes l", &schema, &db);
        assert_eq!(rows, vec![vec![i(0)]]);
        // But a grouped query over empty input yields no rows.
        let rows2 = run(
            "SELECT l.drinker, COUNT(l.beer) FROM Likes l GROUP BY l.drinker",
            &schema,
            &db,
        );
        assert!(rows2.is_empty());
    }

    #[test]
    fn distinct_dedupes() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        let rows = run("SELECT DISTINCT l.beer FROM Likes l", &schema, &db);
        assert!(bag_equal(&rows, &[vec![s("IPA")], vec![s("Stout")]]));
    }

    #[test]
    fn sum_avg_min_max() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        let rows = run(
            "SELECT SUM(sv.price), AVG(sv.price), MIN(sv.price), MAX(sv.price) FROM Serves sv",
            &schema,
            &db,
        );
        assert_eq!(rows, vec![vec![i(15), i(5), i(3), i(7)]]);
    }

    #[test]
    fn count_distinct() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        let rows = run("SELECT COUNT(DISTINCT l.beer) FROM Likes l", &schema, &db);
        assert_eq!(rows, vec![vec![i(2)]]);
    }

    #[test]
    fn paper_example1_rank_query() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        // The reference query of Example 1: rank of each Amy bar among
        // bars serving each beer Amy likes.
        let rows = run(
            "SELECT L.beer, S1.bar, COUNT(*)
             FROM Likes L, Frequents F, Serves S1, Serves S2
             WHERE L.drinker = F.drinker AND F.bar = S1.bar
               AND L.beer = S1.beer AND S1.beer = S2.beer
               AND S1.price <= S2.price
             GROUP BY F.drinker, L.beer, S1.bar
             HAVING F.drinker = 'Amy'",
            &schema,
            &db,
        );
        // Joyce serves IPA at 5; bars serving IPA: Joyce(5), Dive(3) →
        // Joyce rank 1 (count of bars with price >= 5 is 1).
        // Joyce serves Stout at 7; only Joyce serves Stout → rank 1.
        assert!(bag_equal(
            &rows,
            &[vec![s("IPA"), s("Joyce"), i(1)], vec![s("Stout"), s("Joyce"), i(1)]]
        ));
    }

    #[test]
    fn like_predicate() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        let rows = run(
            "SELECT l.drinker FROM Likes l WHERE l.drinker LIKE 'A%'",
            &schema,
            &db,
        );
        assert_eq!(rows.len(), 2);
        let rows2 = run(
            "SELECT l.drinker FROM Likes l WHERE l.drinker NOT LIKE 'A%'",
            &schema,
            &db,
        );
        assert_eq!(rows2.len(), 1);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        let q = parse_query("SELECT sv.price / 0 FROM Serves sv").unwrap();
        let q = resolve_query(&schema, &q).unwrap();
        assert_eq!(execute(&q, &schema, &db), Err(EngineError::DivisionByZero));
    }

    #[test]
    fn partition_execution() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        let q = parse_query(
            "SELECT COUNT(*) FROM Likes l GROUP BY l.drinker",
        )
        .unwrap();
        let q = resolve_query(&schema, &q).unwrap();
        let parts = execute_partition(&q, &schema, &db).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(|g| g.len()).sum::<usize>(), 3);
    }

    #[test]
    fn bag_semantics_duplicates_preserved() {
        let schema = beers_schema();
        let db = beers_db(&schema);
        // Projection without DISTINCT keeps duplicates.
        let rows = run("SELECT l.beer FROM Likes l", &schema, &db);
        assert_eq!(rows.len(), 3);
        assert!(!bag_equal(&rows, &[vec![s("IPA")], vec![s("Stout")]]));
    }

    #[test]
    fn empty_table_in_from_empties_result() {
        let schema = beers_schema();
        let db = Database::new().with_rows(
            &schema,
            "Likes",
            vec![vec![s("Amy"), s("IPA")]],
        );
        // Frequents is empty → cross product empty.
        let rows = run(
            "SELECT l.drinker FROM Likes l, Frequents f",
            &schema,
            &db,
        );
        assert!(rows.is_empty());
    }
}

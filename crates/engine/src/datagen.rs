//! Randomized database generation for differential testing.
//!
//! The generator harvests the constants appearing in the queries under
//! test and seeds value pools with them, so selective predicates like
//! `drinker = 'Amy'` have matching rows with high probability — without
//! this, random data would rarely exercise the interesting paths.

use crate::db::{Database, Row, Table, Value};
use qrhint_sqlast::{Pred, Query, Scalar, Schema, SqlType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configurable random database generator.
#[derive(Debug, Clone)]
pub struct DataGen {
    seed: u64,
    /// Rows per table (max; actual count is sampled in `1..=rows`).
    pub rows: usize,
    /// Integer pool half-range: values sampled from `-range..=range` plus
    /// harvested constants and their off-by-ones.
    pub int_range: i64,
    /// Base string pool (harvested constants are appended).
    pub str_pool: Vec<String>,
}

impl DataGen {
    pub fn new(seed: u64) -> Self {
        DataGen {
            seed,
            rows: 6,
            int_range: 12,
            str_pool: ["Amy", "Bob", "Cal", "Dan", "Eve"].iter().map(|s| s.to_string()).collect(),
        }
    }

    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Generate a database for `schema`, biasing value pools with the
    /// constants mentioned by `queries`.
    pub fn generate(&self, schema: &Schema, queries: &[&Query]) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (ints, strs) = harvest_constants(queries);
        let mut int_pool: Vec<i64> = (-self.int_range..=self.int_range).collect();
        for c in ints {
            for d in [c - 1, c, c + 1] {
                if !int_pool.contains(&d) {
                    int_pool.push(d);
                }
            }
        }
        let mut str_pool = self.str_pool.clone();
        for s in strs {
            if !str_pool.contains(&s) {
                str_pool.push(s);
            }
        }
        let mut db = Database::new();
        for table in schema.tables() {
            let n = rng.gen_range(1..=self.rows.max(1));
            let mut rows: Vec<Row> = Vec::with_capacity(n);
            for _ in 0..n {
                // Rejection sampling keeps generated data consistent with
                // the table's CHECK constraints, so differential testing
                // of constraint-aware reasoning stays sound. Rows that
                // never satisfy the checks within the attempt budget are
                // dropped (a smaller table is still a valid instance).
                const ATTEMPTS: usize = 40;
                for _ in 0..ATTEMPTS {
                    let row: Row = table
                        .columns
                        .iter()
                        .map(|c| match c.ty {
                            SqlType::Int => {
                                Value::Int(int_pool[rng.gen_range(0..int_pool.len())])
                            }
                            SqlType::Str => {
                                Value::Str(str_pool[rng.gen_range(0..str_pool.len())].clone())
                            }
                        })
                        .collect();
                    if table.checks.iter().all(|c| eval_check(c, &row, table)) {
                        rows.push(row);
                        break;
                    }
                }
            }
            db.set_table(&table.name, Table::new(rows));
        }
        db
    }
}

/// Evaluate a CHECK predicate on a single candidate row (column
/// references match by name; the table qualifier, if any, is ignored —
/// checks are table-local). Anything the evaluator cannot decide
/// (aggregates, type confusion) counts as a violation, which only makes
/// generation more conservative.
fn eval_check(p: &Pred, row: &Row, table: &qrhint_sqlast::TableSchema) -> bool {
    fn scalar(e: &Scalar, row: &Row, table: &qrhint_sqlast::TableSchema) -> Option<Value> {
        match e {
            Scalar::Col(c) => {
                let (idx, _) = table.column(&c.column)?;
                Some(row[idx].clone())
            }
            Scalar::Int(v) => Some(Value::Int(*v)),
            Scalar::Str(s) => Some(Value::Str(s.clone())),
            Scalar::Arith(l, op, r) => {
                let (Value::Int(l), Value::Int(r)) =
                    (scalar(l, row, table)?, scalar(r, row, table)?)
                else {
                    return None;
                };
                Some(Value::Int(match op {
                    qrhint_sqlast::ArithOp::Add => l.wrapping_add(r),
                    qrhint_sqlast::ArithOp::Sub => l.wrapping_sub(r),
                    qrhint_sqlast::ArithOp::Mul => l.wrapping_mul(r),
                    qrhint_sqlast::ArithOp::Div => {
                        if r == 0 {
                            return None;
                        }
                        l.div_euclid(r)
                    }
                }))
            }
            Scalar::Neg(inner) => match scalar(inner, row, table)? {
                Value::Int(v) => Some(Value::Int(-v)),
                Value::Str(_) => None,
            },
            Scalar::Agg(_) => None,
        }
    }
    match p {
        Pred::True => true,
        Pred::False => false,
        Pred::Cmp(l, op, r) => {
            match (scalar(l, row, table), scalar(r, row, table)) {
                (Some(Value::Int(l)), Some(Value::Int(r))) => op.eval(&l, &r),
                (Some(Value::Str(l)), Some(Value::Str(r))) => op.eval(&l, &r),
                _ => false,
            }
        }
        Pred::Like { expr, pattern, negated } => match scalar(expr, row, table) {
            Some(Value::Str(s)) => crate::exec::like_match(&s, pattern) != *negated,
            _ => false,
        },
        Pred::And(cs) => cs.iter().all(|c| eval_check(c, row, table)),
        Pred::Or(cs) => cs.iter().any(|c| eval_check(c, row, table)),
        Pred::Not(inner) => !eval_check(inner, row, table),
    }
}

/// Collect the integer and string literals mentioned anywhere in the
/// given queries.
pub fn harvest_constants(queries: &[&Query]) -> (Vec<i64>, Vec<String>) {
    let mut ints = Vec::new();
    let mut strs = Vec::new();
    fn scan_scalar(e: &Scalar, ints: &mut Vec<i64>, strs: &mut Vec<String>) {
        match e {
            Scalar::Int(v) => ints.push(*v),
            Scalar::Str(s) => strs.push(s.clone()),
            Scalar::Arith(l, _, r) => {
                scan_scalar(l, ints, strs);
                scan_scalar(r, ints, strs);
            }
            Scalar::Neg(inner) => scan_scalar(inner, ints, strs),
            Scalar::Agg(call) => {
                if let qrhint_sqlast::AggArg::Expr(inner) = &call.arg {
                    scan_scalar(inner, ints, strs);
                }
            }
            Scalar::Col(_) => {}
        }
    }
    fn scan_pred(p: &Pred, ints: &mut Vec<i64>, strs: &mut Vec<String>) {
        match p {
            Pred::True | Pred::False => {}
            Pred::Cmp(l, _, r) => {
                scan_scalar(l, ints, strs);
                scan_scalar(r, ints, strs);
            }
            Pred::Like { expr, pattern, .. } => {
                scan_scalar(expr, ints, strs);
                // A string matching the pattern (wildcards stripped) makes
                // LIKE selective predicates satisfiable in generated data.
                strs.push(pattern.replace(['%', '_'], ""));
            }
            Pred::And(cs) | Pred::Or(cs) => cs.iter().for_each(|c| scan_pred(c, ints, strs)),
            Pred::Not(c) => scan_pred(c, ints, strs),
        }
    }
    for q in queries {
        for item in &q.select {
            scan_scalar(&item.expr, &mut ints, &mut strs);
        }
        scan_pred(&q.where_pred, &mut ints, &mut strs);
        for g in &q.group_by {
            scan_scalar(g, &mut ints, &mut strs);
        }
        if let Some(h) = &q.having {
            scan_pred(h, &mut ints, &mut strs);
        }
    }
    ints.sort_unstable();
    ints.dedup();
    strs.sort();
    strs.dedup();
    (ints, strs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlast::resolve::resolve_query;
    use qrhint_sqlparse::parse_query;

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                "Likes",
                &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
                &["drinker", "beer"],
            )
            .with_table(
                "Serves",
                &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
                &["bar", "beer"],
            )
    }

    #[test]
    fn deterministic_given_seed() {
        let schema = schema();
        let q = parse_query("SELECT l.beer FROM Likes l WHERE l.drinker = 'Zoe'").unwrap();
        let q = resolve_query(&schema, &q).unwrap();
        let d1 = DataGen::new(7).generate(&schema, &[&q]);
        let d2 = DataGen::new(7).generate(&schema, &[&q]);
        assert_eq!(d1, d2);
        let d3 = DataGen::new(8).generate(&schema, &[&q]);
        assert_ne!(d1, d3);
    }

    #[test]
    fn harvested_constants_appear_in_pools() {
        let schema = schema();
        let q = parse_query(
            "SELECT l.beer FROM Likes l, Serves s \
             WHERE l.drinker = 'Zoe' AND s.price > 97",
        )
        .unwrap();
        let q = resolve_query(&schema, &q).unwrap();
        let (ints, strs) = harvest_constants(&[&q]);
        assert!(ints.contains(&97));
        assert!(strs.contains(&"Zoe".to_string()));
        // With harvesting, some generated database among several seeds
        // should contain a 'Zoe' row.
        let mut found = false;
        for seed in 0..20 {
            let db = DataGen::new(seed).generate(&schema, &[&q]);
            if db
                .table("likes")
                .unwrap()
                .rows
                .iter()
                .any(|r| r[0] == Value::Str("Zoe".into()))
            {
                found = true;
                break;
            }
        }
        assert!(found, "harvested string constant never sampled");
    }

    #[test]
    fn like_patterns_seed_matching_strings() {
        let (_, strs) =
            harvest_constants(&[&resolve_query(
                &schema(),
                &parse_query("SELECT l.beer FROM Likes l WHERE l.drinker LIKE 'Ev%'").unwrap(),
            )
            .unwrap()]);
        assert!(strs.contains(&"Ev".to_string()));
    }

    #[test]
    fn differential_equiv_distinguishes() {
        let schema = schema();
        let q1 = resolve_query(
            &schema,
            &parse_query("SELECT s.bar FROM Serves s WHERE s.price > 3").unwrap(),
        )
        .unwrap();
        let q2 = resolve_query(
            &schema,
            &parse_query("SELECT s.bar FROM Serves s WHERE s.price >= 3").unwrap(),
        )
        .unwrap();
        let q3 = resolve_query(
            &schema,
            &parse_query("SELECT s.bar FROM Serves s WHERE s.price >= 4").unwrap(),
        )
        .unwrap();
        // > 3 vs >= 3 differ; > 3 vs >= 4 agree on integers.
        assert!(!crate::differential_equiv(&q1, &q2, &schema, 1, 20).unwrap());
        assert!(crate::differential_equiv(&q1, &q3, &schema, 1, 20).unwrap());
    }
}

#[cfg(test)]
mod check_tests {
    use super::*;
    use qrhint_sqlparse::{parse_pred, parse_query};
    use qrhint_sqlast::resolve::resolve_query;

    fn checked_schema() -> Schema {
        Schema::new()
            .with_table(
                "Serves",
                &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
                &["bar", "beer"],
            )
            .with_check("Serves", parse_pred("price > 0").unwrap())
            .with_check("Serves", parse_pred("beer <> ''").unwrap())
    }

    #[test]
    fn generated_rows_satisfy_checks() {
        let schema = checked_schema();
        let q = parse_query("SELECT s.bar FROM Serves s WHERE s.price > 3").unwrap();
        let q = resolve_query(&schema, &q).unwrap();
        for seed in 0..30 {
            let db = DataGen::new(seed).generate(&schema, &[&q]);
            for row in &db.table("serves").unwrap().rows {
                let Value::Int(price) = &row[2] else { panic!("type") };
                assert!(*price > 0, "CHECK violated at seed {seed}: {row:?}");
            }
        }
    }

    #[test]
    fn unsatisfiable_checks_yield_empty_tables() {
        let schema = Schema::new()
            .with_table("T", &[("x", SqlType::Int)], &["x"])
            .with_check("T", parse_pred("x > 5 AND x < 3").unwrap());
        let q = parse_query("SELECT t.x FROM T t").unwrap();
        let q = resolve_query(&schema, &q).unwrap();
        let db = DataGen::new(3).generate(&schema, &[&q]);
        assert!(db.table("t").unwrap().rows.is_empty());
    }

    #[test]
    fn differential_equiv_respects_domain() {
        // Under CHECK (price > 0), `price >= 1` ⇔ TRUE over integers:
        // differential testing must *not* refute it.
        let schema = checked_schema();
        let q1 = resolve_query(
            &schema,
            &parse_query("SELECT s.bar FROM Serves s WHERE s.price >= 1").unwrap(),
        )
        .unwrap();
        let q2 = resolve_query(&schema, &parse_query("SELECT s.bar FROM Serves s").unwrap())
            .unwrap();
        assert!(crate::differential_equiv(&q1, &q2, &schema, 11, 30).unwrap());
    }
}

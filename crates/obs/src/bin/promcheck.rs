//! promcheck — validate Prometheus text exposition from a file or stdin.
//!
//! Usage: `promcheck [--min-samples N] [FILE]`
//!
//! Reads FILE (or stdin when omitted or `-`), runs
//! `qrhint_obs::expo::validate`, and prints a one-line summary. Exits
//! 0 on valid input, 1 on malformed exposition or when fewer than
//! `--min-samples` sample lines were seen (so CI can assert a scrape
//! was non-trivially populated), 2 on usage errors.

use std::io::Read;

fn main() {
    let mut min_samples = 0usize;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-samples" => {
                let v = args.next().unwrap_or_default();
                match v.parse() {
                    Ok(n) => min_samples = n,
                    Err(_) => {
                        eprintln!("promcheck: bad --min-samples value `{v}`");
                        std::process::exit(2);
                    }
                }
            }
            "-h" | "--help" => {
                println!("usage: promcheck [--min-samples N] [FILE]");
                return;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("promcheck: unexpected argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let text = match path.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("promcheck: reading stdin: {e}");
                std::process::exit(2);
            }
            buf
        }
        Some(file) => match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("promcheck: reading {file}: {e}");
                std::process::exit(2);
            }
        },
    };

    match qrhint_obs::expo::validate(&text) {
        Ok(summary) => {
            println!(
                "promcheck: ok — {} families, {} samples, {} histogram children",
                summary.families, summary.samples, summary.histograms
            );
            if summary.samples < min_samples {
                eprintln!(
                    "promcheck: only {} samples, expected at least {min_samples}",
                    summary.samples
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("promcheck: invalid exposition: {e}");
            std::process::exit(1);
        }
    }
}

//! Validator for the Prometheus text exposition format (0.0.4).
//!
//! [`validate`] checks the line grammar (comments, metric/label name
//! character sets, quoted-value escapes, numeric sample values) plus
//! the semantic rules a scraper relies on: one `# TYPE` per family
//! declared before its samples, histogram `_bucket` series cumulative
//! and non-decreasing in `le`, and the `+Inf` bucket equal to the
//! family's `_count`. The `promcheck` binary wraps this for CI; the
//! e2e server tests call it on live `/metrics` scrapes.

use std::collections::BTreeMap;

/// What a successful validation saw — handy for asserting a scrape
/// actually contained metrics rather than an empty-but-valid body.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExpoSummary {
    /// Families with a `# TYPE` line.
    pub families: usize,
    /// Total sample lines.
    pub samples: usize,
    /// Histogram children checked for bucket coherence.
    pub histograms: usize,
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse::<f64>().ok(),
    }
}

type Labels = Vec<(String, String)>;

/// Parse `{a="b",c="d"}`-style label sets. Returns the labels and the
/// rest of the line after the closing brace.
fn parse_labels(s: &str) -> Result<(Labels, &str), String> {
    debug_assert!(s.starts_with('{'));
    let mut labels = Vec::new();
    let mut rest = &s[1..];
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest.find('=').ok_or("label without '='")?;
        let name = rest[..eq].trim();
        if !is_label_name(name) {
            return Err(format!("bad label name `{name}`"));
        }
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label `{name}` value not quoted")),
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("bad escape `\\{other}` in label `{name}`")),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("unterminated value for label `{name}`"))?;
        labels.push((name.to_string(), value));
        rest = rest[end + 1..].trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        } else if !rest.starts_with('}') {
            return Err("expected ',' or '}' after label value".to_string());
        }
    }
}

/// Map `name_bucket` / `name_sum` / `name_count` back to their base
/// family name if that family is a declared histogram.
fn histogram_base<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base);
            }
        }
    }
    None
}

/// Validate `text` as Prometheus exposition. On failure the error
/// names the offending (1-based) line.
pub fn validate(text: &str) -> Result<ExpoSummary, String> {
    let mut summary = ExpoSummary::default();
    // family name -> declared type
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_samples: BTreeMap<String, bool> = BTreeMap::new();
    // (histogram base, labels-minus-le) -> [(le, cumulative count)]
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();

    let fail = |lineno: usize, msg: String| Err(format!("line {lineno}: {msg}"));

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("").trim();
                if !is_metric_name(name) {
                    return fail(lineno, format!("bad metric name `{name}` in TYPE"));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return fail(lineno, format!("unknown type `{kind}`"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return fail(lineno, format!("duplicate TYPE for `{name}`"));
                }
                if seen_samples.contains_key(name) {
                    return fail(lineno, format!("TYPE for `{name}` after its samples"));
                }
                summary.families += 1;
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !is_metric_name(name) {
                    return fail(lineno, format!("bad metric name `{name}` in HELP"));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {lineno}: sample without value"))?;
        let name = &line[..name_end];
        if !is_metric_name(name) {
            return fail(lineno, format!("bad metric name `{name}`"));
        }
        let (labels, rest) = if line[name_end..].starts_with('{') {
            parse_labels(&line[name_end..]).map_err(|e| format!("line {lineno}: {e}"))?
        } else {
            (Vec::new(), &line[name_end..])
        };
        let mut fields = rest.split_whitespace();
        let value = match fields.next() {
            Some(v) => parse_value(v)
                .ok_or_else(|| format!("line {lineno}: bad sample value `{v}`"))?,
            None => return fail(lineno, "sample without value".to_string()),
        };
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return fail(lineno, format!("bad timestamp `{ts}`"));
            }
        }
        if fields.next().is_some() {
            return fail(lineno, "trailing garbage after sample".to_string());
        }

        // Family bookkeeping: histogram-suffixed samples count toward
        // their base family; everything else must match its own TYPE.
        let base = histogram_base(name, &types);
        let family = base.unwrap_or(name);
        seen_samples.insert(family.to_string(), true);
        summary.samples += 1;

        if types.get(name).map(String::as_str) == Some("histogram") && base.is_none() {
            return fail(
                lineno,
                format!("histogram `{name}` must expose _bucket/_sum/_count samples"),
            );
        }

        if let Some(base) = base {
            let mut le = None;
            let mut key_labels: Vec<String> = Vec::new();
            for (k, v) in &labels {
                if k == "le" {
                    le = Some(v.clone());
                } else {
                    key_labels.push(format!("{k}={v}"));
                }
            }
            let child = (base.to_string(), key_labels.join(","));
            if name.ends_with("_bucket") {
                let le = le.ok_or_else(|| format!("line {lineno}: _bucket without le"))?;
                let le = parse_value(&le)
                    .ok_or_else(|| format!("line {lineno}: bad le `{le}`"))?;
                buckets.entry(child).or_default().push((le, value));
            } else if name.ends_with("_count") {
                counts.insert(child, value);
            }
        }
    }

    // Histogram coherence: buckets sorted & cumulative, +Inf == _count.
    for ((base, labels), series) in &buckets {
        summary.histograms += 1;
        let child = if labels.is_empty() { base.clone() } else { format!("{base}{{{labels}}}") };
        for w in series.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("histogram `{child}`: le bounds not ascending"));
            }
            if w[1].1 < w[0].1 {
                return Err(format!("histogram `{child}`: bucket counts not cumulative"));
            }
        }
        let last = series.last().expect("non-empty by construction");
        if last.0 != f64::INFINITY {
            return Err(format!("histogram `{child}`: missing +Inf bucket"));
        }
        match counts.get(&(base.clone(), labels.clone())) {
            Some(count) if *count == last.1 => {}
            Some(count) => {
                return Err(format!(
                    "histogram `{child}`: +Inf bucket {} != _count {count}",
                    last.1
                ));
            }
            None => return Err(format!("histogram `{child}`: missing _count")),
        }
    }

    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_full_exposition() {
        let text = "\
# HELP qrhint_requests_total Requests served.
# TYPE qrhint_requests_total counter
qrhint_requests_total{route=\"advise\",status=\"200\"} 12
qrhint_requests_total{route=\"grade\",status=\"200\"} 3
# TYPE qrhint_inflight gauge
qrhint_inflight 1
# TYPE qrhint_request_seconds histogram
qrhint_request_seconds_bucket{route=\"advise\",le=\"0.01\"} 4
qrhint_request_seconds_bucket{route=\"advise\",le=\"+Inf\"} 12
qrhint_request_seconds_sum{route=\"advise\"} 0.5
qrhint_request_seconds_count{route=\"advise\"} 12
";
        let summary = validate(text).expect("valid exposition");
        assert_eq!(summary.families, 3);
        assert_eq!(summary.samples, 7);
        assert_eq!(summary.histograms, 1);
    }

    #[test]
    fn rejects_bad_shapes() {
        for (text, needle) in [
            ("# TYPE bad-name counter\n", "bad metric name"),
            ("# TYPE m widget\n", "unknown type"),
            ("# TYPE m counter\n# TYPE m counter\n", "duplicate TYPE"),
            ("m 1\n# TYPE m counter\n", "after its samples"),
            ("m{x=\"1\" 2\n", "expected ',' or '}'"),
            ("m{x=unquoted} 2\n", "not quoted"),
            ("m notanumber\n", "bad sample value"),
            ("m 1 2 3\n", "trailing garbage"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
                "not cumulative",
            ),
            ("# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\n", "missing +Inf"),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\n",
                "missing _count",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n",
                "!= _count",
            ),
            ("# TYPE h histogram\nh 5\n", "must expose _bucket"),
        ] {
            let err = validate(text).expect_err(text);
            assert!(err.contains(needle), "`{text}` → `{err}` (wanted `{needle}`)");
        }
    }

    #[test]
    fn escaped_label_values_parse_back() {
        let text = "# TYPE esc counter\nesc{path=\"a\\\"b\\\\c\\nd\"} 1\n";
        let summary = validate(text).expect("escapes are valid");
        assert_eq!(summary.samples, 1);
    }

    #[test]
    fn empty_input_is_valid_but_empty() {
        assert_eq!(validate("").unwrap(), ExpoSummary::default());
    }
}

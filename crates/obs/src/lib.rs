//! # qrhint-obs
//!
//! The telemetry substrate shared by every qr-hint layer: one place for
//! the counters the server exposes, the spans the solver emits, and the
//! log lines the daemon writes — std-only, per the offline vendor
//! policy (no `tracing`, no `prometheus`).
//!
//! Three facilities, each usable alone:
//!
//! * [`metrics`] — a metrics [`metrics::Registry`]: atomic counters,
//!   gauges, and fixed-bucket latency histograms, grouped into named
//!   families with labels and rendered as Prometheus text exposition
//!   ([`metrics::Registry::render`]). Quantiles (p50/p99/p999) are
//!   derivable from the cumulative buckets by any scraper.
//! * [`mod@span`] — hierarchical wall-clock span timing
//!   (`advise` → `stage:where` → `oracle:equiv_batch`) recorded through
//!   thread-local span stacks. Disabled by default: the per-span cost is
//!   one relaxed atomic load. When enabled, completed spans accumulate
//!   in a process-global buffer and drain as Chrome trace-event JSON
//!   ([`span::chrome_trace_json`]) — load the file in `chrome://tracing`
//!   or Perfetto for a flame view of a single advise. Guards are
//!   panic-safe: a span that unwinds still pops its stack frame and
//!   records its duration.
//! * [`log`] — structured log events with levels and key-value fields,
//!   rendered as logfmt-style text or one-JSON-object-per-line
//!   ([`log::LogFormat`]), written to stderr. The process-global level
//!   defaults to [`log::Level::Warn`] so library consumers stay quiet;
//!   `qr-hint serve` raises it for access logs.
//!
//! [`expo::validate`] checks a rendered exposition against the text
//! format's line grammar; the `promcheck` binary wraps it for CI.

#![forbid(unsafe_code)]

pub mod expo;
pub mod log;
pub mod metrics;
pub mod span;

pub use log::{LogFormat, Level};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use span::{span, SpanGuard};

//! Structured, leveled log events with key-value fields.
//!
//! One process-global sink configured by level and format
//! ([`set_level`], [`set_format`]), written to stderr so it never
//! contaminates deterministic stdout output. Two renderings of the
//! same event:
//!
//! * [`LogFormat::Text`] — logfmt-style:
//!   `ts=1754550000.123 level=info target=server msg="advise ok" request_id=42 status=200`
//! * [`LogFormat::Json`] — one object per line:
//!   `{"ts":1754550000.123,"level":"info","target":"server","msg":"advise ok","request_id":"42","status":"200"}`
//!
//! The default level is [`Level::Warn`]: a library consumer that never
//! touches this module stays quiet, and `qr-hint serve` raises the
//! level for access logs. [`event`] costs one relaxed atomic load when
//! the level is filtered out.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// Output rendering for log events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// logfmt-style `key=value` pairs, values quoted when needed.
    Text,
    /// One JSON object per line, all field values as strings.
    Json,
}

impl LogFormat {
    /// Parse a format name (case-insensitive).
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = Text, 1 = Json

/// Set the process-global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-global log level.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Set the process-global log format.
pub fn set_format(format: LogFormat) {
    FORMAT.store(matches!(format, LogFormat::Json) as u8, Ordering::Relaxed);
}

/// The current process-global log format.
pub fn format() -> LogFormat {
    if FORMAT.load(Ordering::Relaxed) == 1 { LogFormat::Json } else { LogFormat::Text }
}

/// Whether an event at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Emit one structured event to stderr if `level` passes the filter.
/// `target` names the emitting subsystem (`server`, `cli`, …); fields
/// are rendered in the order given.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, &str)]) {
    if !enabled(level) {
        return;
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let line = render(format(), ts, level, target, msg, fields);
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

/// Render one event without emitting it — the pure core of [`event`],
/// separated so formats are testable byte-for-byte.
pub fn render(
    format: LogFormat,
    ts: f64,
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, &str)],
) -> String {
    match format {
        LogFormat::Text => {
            let mut out = format!("ts={ts:.3} level={} target={}", level.as_str(), target);
            out.push_str(" msg=");
            out.push_str(&logfmt_value(msg));
            for (k, v) in fields {
                out.push(' ');
                out.push_str(k);
                out.push('=');
                out.push_str(&logfmt_value(v));
            }
            out
        }
        LogFormat::Json => {
            let mut out = format!(
                "{{\"ts\":{ts:.3},\"level\":\"{}\",\"target\":{},\"msg\":{}",
                level.as_str(),
                json_string(target),
                json_string(msg)
            );
            for (k, v) in fields {
                out.push(',');
                out.push_str(&json_string(k));
                out.push(':');
                out.push_str(&json_string(v));
            }
            out.push('}');
            out
        }
    }
}

/// Quote a logfmt value only when it needs it (spaces, quotes, `=`,
/// control characters); bare tokens stay bare for grep-ability.
fn logfmt_value(v: &str) -> String {
    let needs_quoting =
        v.is_empty() || v.chars().any(|c| c == ' ' || c == '"' || c == '=' || (c as u32) < 0x20);
    if !needs_quoting {
        return v.to_string();
    }
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a JSON string literal with full escaping.
fn json_string(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn text_format_quotes_only_when_needed() {
        let line = render(
            LogFormat::Text,
            1754550000.1234,
            Level::Info,
            "server",
            "advise ok",
            &[("request_id", "42"), ("path", "/targets/t1/advise"), ("note", "a=b")],
        );
        assert_eq!(
            line,
            "ts=1754550000.123 level=info target=server msg=\"advise ok\" request_id=42 path=/targets/t1/advise note=\"a=b\""
        );
    }

    #[test]
    fn json_format_is_one_escaped_object() {
        let line = render(
            LogFormat::Json,
            1.0,
            Level::Warn,
            "server",
            "bad \"body\"",
            &[("err", "line1\nline2")],
        );
        assert_eq!(
            line,
            "{\"ts\":1.000,\"level\":\"warn\",\"target\":\"server\",\"msg\":\"bad \\\"body\\\"\",\"err\":\"line1\\nline2\"}"
        );
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn global_level_filters() {
        // Default must be quiet enough for library consumers.
        // (Other tests may have changed it; set explicitly.)
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Trace);
        assert!(enabled(Level::Debug));
        set_level(Level::Warn);
    }

    #[test]
    fn format_round_trip() {
        assert_eq!(LogFormat::parse("json"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("TEXT"), Some(LogFormat::Text));
        assert_eq!(LogFormat::parse("xml"), None);
    }
}

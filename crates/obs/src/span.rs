//! Hierarchical wall-clock span timing with thread-local span stacks.
//!
//! [`span("advise")`](span) returns a [`SpanGuard`]; the span covers
//! the guard's lifetime. Guards nest lexically — a guard created while
//! another is live is its child — and the nesting is tracked per
//! thread, so parallel grading workers each get their own stack.
//!
//! Recording is off by default and the disabled cost is one relaxed
//! atomic load per span, cheap enough to leave `span()` calls in the
//! solver hot path permanently. When enabled ([`enable_tracing`]),
//! each completed span appends one event to a process-global buffer;
//! [`take_events`] drains it and [`chrome_trace_json`] renders the
//! events as Chrome trace-event JSON (`"ph":"X"` complete events) for
//! `chrome://tracing` / Perfetto.
//!
//! Guards record on `Drop`, so a span that unwinds through a panic
//! still pops its stack frame and reports the time it spent — nesting
//! depth stays consistent for whoever catches the panic.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Cap on buffered events; beyond it spans are timed but not stored
/// (the drop count is reported by [`take_events`]). A single advise
/// emits tens of thousands of oracle spans at most, far below this.
const MAX_EVENTS: usize = 1 << 20;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    /// Microseconds since the process trace anchor.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Stable per-thread id (dense, assigned on first span).
    pub tid: u64,
    /// Nesting depth at the time the span opened (0 = root).
    pub depth: u32,
}

#[derive(Default)]
struct Sink {
    events: Vec<SpanEvent>,
    dropped: u64,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(Mutex::default)
}

/// Process-wide monotonic anchor so `ts_us` is comparable across
/// threads. First use pins it; timestamps are relative to it.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

thread_local! {
    /// Per-thread nesting depth. A full stack is unnecessary: the
    /// guard itself carries everything needed to emit its event, so
    /// the thread only tracks how deep it currently is.
    static DEPTH: RefCell<u32> = const { RefCell::new(0) };
    static TID: u64 = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(0);
        NEXT_TID.fetch_add(1, Ordering::Relaxed)
    };
}

/// Turn span recording on. Also pins the trace anchor so the first
/// span doesn't pay for `OnceLock` initialization.
pub fn enable_tracing() {
    anchor();
    ENABLED.store(true, Ordering::Release);
}

/// Turn span recording off. Spans already buffered stay until
/// [`take_events`]; guards currently live were created enabled and
/// will still record on drop.
pub fn disable_tracing() {
    ENABLED.store(false, Ordering::Release);
}

pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Open a span named `name`; it closes (and records, if tracing is
/// enabled) when the returned guard drops.
#[must_use = "the span covers the guard's lifetime; dropping it immediately records an empty span"]
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { rec: None };
    }
    let depth = DEPTH.with(|d| {
        let mut d = d.borrow_mut();
        let cur = *d;
        *d += 1;
        cur
    });
    SpanGuard {
        rec: Some(Recording {
            name,
            start: Instant::now(),
            depth,
            tid: TID.with(|t| *t),
        }),
    }
}

struct Recording {
    name: &'static str,
    start: Instant,
    depth: u32,
    tid: u64,
}

/// RAII guard for one span. Records on drop — including during panic
/// unwinding — and decrements the thread's nesting depth.
pub struct SpanGuard {
    /// `None` when tracing was disabled at creation: drop is a no-op.
    rec: Option<Recording>,
}

impl SpanGuard {
    /// Whether this guard will record an event on drop.
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else { return };
        let dur_us = rec.start.elapsed().as_micros() as u64;
        let ts_us = rec.start.duration_since(anchor()).as_micros() as u64;
        DEPTH.with(|d| {
            let mut d = d.borrow_mut();
            *d = d.saturating_sub(1);
        });
        let mut sink = sink().lock().unwrap_or_else(|e| e.into_inner());
        if sink.events.len() < MAX_EVENTS {
            sink.events.push(SpanEvent { name: rec.name, ts_us, dur_us, tid: rec.tid, depth: rec.depth });
        } else {
            sink.dropped += 1;
        }
    }
}

/// Current nesting depth on this thread (0 outside any span). Only
/// meaningful while tracing is enabled — disabled spans don't nest.
pub fn current_depth() -> u32 {
    DEPTH.with(|d| *d.borrow())
}

/// Drain all buffered events, returning `(events, dropped)` where
/// `dropped` counts spans discarded past the buffer cap.
pub fn take_events() -> (Vec<SpanEvent>, u64) {
    let mut sink = sink().lock().unwrap_or_else(|e| e.into_inner());
    let events = std::mem::take(&mut sink.events);
    let dropped = std::mem::take(&mut sink.dropped);
    (events, dropped)
}

/// Render events as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form, `"ph":"X"` complete events,
/// timestamps in microseconds). Loadable in `chrome://tracing` and
/// Perfetto. Names are escaped; everything else is numeric.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        for c in e.name.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str(&format!(
            "\",\"cat\":\"qrhint\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
            e.tid, e.ts_us, e.dur_us, e.depth
        ));
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the process-global ENABLED flag and sink, so
    // they serialize on one lock to avoid cross-talk.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = serial();
        disable_tracing();
        let _ = take_events();
        {
            let g = span("quiet");
            assert!(!g.is_recording());
            assert_eq!(current_depth(), 0, "disabled spans must not nest");
        }
        let (events, dropped) = take_events();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn nesting_depth_tracks_guard_scopes() {
        let _serial = serial();
        enable_tracing();
        let _ = take_events();
        {
            let _a = span("advise");
            assert_eq!(current_depth(), 1);
            {
                let _b = span("stage:where");
                assert_eq!(current_depth(), 2);
                let _c = span("oracle:equiv_batch");
                assert_eq!(current_depth(), 3);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        disable_tracing();
        let (events, _) = take_events();
        // Children drop before parents, so events arrive leaf-first.
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["oracle:equiv_batch", "stage:where", "advise"]);
        let depths: Vec<u32> = events.iter().map(|e| e.depth).collect();
        assert_eq!(depths, [2, 1, 0]);
        // All on one thread, and parents envelop children in time.
        assert!(events.iter().all(|e| e.tid == events[0].tid));
        let advise = &events[2];
        let oracle = &events[0];
        assert!(advise.ts_us <= oracle.ts_us);
        assert!(advise.ts_us + advise.dur_us >= oracle.ts_us + oracle.dur_us);
    }

    #[test]
    fn panicking_span_still_records_and_unwinds_depth() {
        let _serial = serial();
        enable_tracing();
        let _ = take_events();
        let result = std::panic::catch_unwind(|| {
            let _outer = span("outer");
            let _inner = span("inner");
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(current_depth(), 0, "unwinding must pop every frame");
        disable_tracing();
        let (events, _) = take_events();
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["inner", "outer"], "both spans record despite the panic");
    }

    #[test]
    fn chrome_trace_json_is_loadable_shape() {
        let events = vec![
            SpanEvent { name: "advise", ts_us: 10, dur_us: 500, tid: 0, depth: 0 },
            SpanEvent { name: "weird\"name\\", ts_us: 20, dur_us: 80, tid: 1, depth: 1 },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"advise\",\"cat\":\"qrhint\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":10,\"dur\":500"));
        assert!(json.contains("\"name\":\"weird\\\"name\\\\\""));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let _serial = serial();
        enable_tracing();
        let _ = take_events();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _g = span("worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        disable_tracing();
        let (events, _) = take_events();
        let worker_tids: std::collections::BTreeSet<u64> =
            events.iter().filter(|e| e.name == "worker").map(|e| e.tid).collect();
        assert_eq!(worker_tids.len(), 3, "each thread has its own tid: {events:?}");
    }
}

//! The metrics registry: atomic counters, gauges, and fixed-bucket
//! histograms, grouped into named families with labels and rendered as
//! Prometheus text exposition (version 0.0.4).
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s of
//! lock-free atomics: get-or-create them once ([`Registry::counter`] &
//! co. take a lock only on first creation per label set), then bump
//! them from any thread without contention. Rendering
//! ([`Registry::render`]) walks the families under a read lock —
//! scrapes never block a counter bump, and two scrapes with no traffic
//! between them render byte-identical text.
//!
//! Histograms are fixed-bucket by design: p50/p99/p999 are derivable
//! from the cumulative `_bucket` counts by any scraper (that is what
//! `histogram_quantile` does), while the process itself never pays for
//! quantile sketches on the request path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value. Only for mirroring a monotone total that is
    /// maintained elsewhere (e.g. the target registry's lifetime
    /// eviction count, copied in at scrape time); never mix `store`
    /// with `add` on one counter.
    pub fn store(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    pub fn set(&self, n: i64) {
        self.v.store(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.v.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Bucket counts are stored per-bucket
/// (non-cumulative) and rendered cumulatively, Prometheus-style; the
/// sum is kept in integer nanounits so observation stays a pair of
/// atomic adds.
#[derive(Debug)]
pub struct Histogram {
    /// Finite upper bounds, strictly ascending; the implicit `+Inf`
    /// bucket lives at `buckets[bounds.len()]`.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    /// Sum of observations in nanounits (seconds × 1e9 for latency
    /// histograms); saturates rather than wraps.
    sum_nano: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending: {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_nano: AtomicU64::new(0),
        }
    }

    /// Record one observation (same unit as the bounds).
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| *b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let nano = (v.max(0.0) * 1e9).min(u64::MAX as f64) as u64;
        self.sum_nano.fetch_add(nano, Ordering::Relaxed);
    }

    /// Record a duration against seconds-valued bounds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observations (same unit as the bounds).
    pub fn sum(&self) -> f64 {
        self.sum_nano.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Cumulative counts per bound, ending with the `+Inf` total. The
    /// snapshot reads bucket-by-bucket, so under concurrent observation
    /// it may straddle an update — each individual count is exact at
    /// its read point and the final entry equals [`Histogram::count`]
    /// for that same pass.
    pub fn cumulative(&self) -> Vec<(Option<f64>, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            out.push((self.bounds.get(i).copied(), acc));
        }
        out
    }
}

/// Seconds-valued bounds for request-latency histograms: 250 µs up to
/// 10 s, roughly 2.5× steps — enough resolution for p50/p99/p999 on
/// both loopback (sub-millisecond) and loaded (hundreds of ms) advises.
pub fn default_latency_buckets() -> Vec<f64> {
    vec![
        0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
        5.0, 10.0,
    ]
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Child {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Children keyed by their rendered label set (`{a="b",c="d"}` or
    /// empty) — BTreeMap so exposition order is deterministic.
    children: BTreeMap<String, Child>,
}

/// A collection of metric families, rendered together. Cheap to share
/// (`Arc<Registry>`); handle lookup locks only on first creation.
#[derive(Debug, Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
}

/// Render a label set in exposition form, values escaped. Labels are
/// sorted by name so logically equal sets are one child.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Merge an extra label (histograms' `le`) into a rendered label set.
fn with_label(key: &str, name: &str, value: &str) -> String {
    if key.is_empty() {
        format!("{{{name}=\"{value}\"}}")
    } else {
        format!("{},{name}=\"{value}\"}}", &key[..key.len() - 1])
    }
}

/// Render a bound for the `le` label: finite bounds in shortest-float
/// form, the overflow bucket as `+Inf`.
fn le_label(bound: Option<f64>) -> String {
    match bound {
        Some(b) => format!("{b}"),
        None => "+Inf".to_string(),
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry, for consumers without a natural
    /// owner. The server deliberately does *not* use it — each
    /// [`Registry`] instance is hermetic, so tests running many
    /// services in one process never share counters.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn child(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Child,
        kind: Kind,
    ) -> Child {
        let key = label_key(labels);
        if let Some(fam) = self.families.read().unwrap().get(name) {
            assert_eq!(fam.kind, kind, "metric `{name}` registered as {:?}", fam.kind);
            if let Some(child) = fam.children.get(&key) {
                return child.clone();
            }
        }
        let mut families = self.families.write().unwrap();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            children: BTreeMap::new(),
        });
        assert_eq!(fam.kind, kind, "metric `{name}` registered as {:?}", fam.kind);
        fam.children.entry(key).or_insert_with(make).clone()
    }

    /// Get or create a counter in family `name` for this label set.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let child = self.child(
            name,
            help,
            labels,
            || Child::Counter(Arc::new(Counter::default())),
            Kind::Counter,
        );
        match child {
            Child::Counter(c) => c,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Get or create a gauge in family `name` for this label set.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let child = self.child(
            name,
            help,
            labels,
            || Child::Gauge(Arc::new(Gauge::default())),
            Kind::Gauge,
        );
        match child {
            Child::Gauge(g) => g,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Get or create a histogram in family `name` for this label set.
    /// `bounds` applies on first creation; later callers inherit the
    /// family's existing buckets.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let child = self.child(
            name,
            help,
            labels,
            || Child::Histogram(Arc::new(Histogram::new(bounds))),
            Kind::Histogram,
        );
        match child {
            Child::Histogram(h) => h,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Render the whole registry as Prometheus text exposition
    /// (version 0.0.4): `# HELP` / `# TYPE` per family, one sample line
    /// per child (histograms expand to cumulative `_bucket` lines plus
    /// `_sum` and `_count`). Families and children render in
    /// deterministic (name, label) order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.read().unwrap();
        for (name, fam) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            for c in fam.help.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(fam.kind.as_str());
            out.push('\n');
            for (labels, child) in &fam.children {
                match child {
                    Child::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Child::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Child::Histogram(h) => {
                        for (bound, cum) in h.cumulative() {
                            let le = with_label(labels, "le", &le_label(bound));
                            out.push_str(&format!("{name}_bucket{le} {cum}\n"));
                        }
                        out.push_str(&format!("{name}_sum{labels} {}\n", h.sum()));
                        out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("qrhint_test_total", "test counter", &[("route", "advise")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Same (name, labels) → the same underlying atomic.
        reg.counter("qrhint_test_total", "test counter", &[("route", "advise")]).inc();
        assert_eq!(c.get(), 4);
        let g = reg.gauge("qrhint_test_inflight", "test gauge", &[]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-5);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = Registry::new();
        let a = reg.counter("m_total", "m", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("m_total", "m", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "label order must not split a child");
        assert!(reg.render().contains("m_total{a=\"1\",b=\"2\"} 1"));
    }

    #[test]
    fn histogram_bucket_boundaries_are_le_inclusive() {
        let reg = Registry::new();
        let h = reg.histogram("lat_seconds", "latency", &[], &[0.01, 0.1, 1.0]);
        // Exactly on a bound lands in that bound's bucket (Prometheus
        // `le` is ≤), above the last bound lands in +Inf.
        h.observe(0.01);
        h.observe(0.05);
        h.observe(0.1);
        h.observe(0.5);
        h.observe(2.0);
        let cum = h.cumulative();
        assert_eq!(cum.len(), 4);
        assert_eq!(cum[0], (Some(0.01), 1));
        assert_eq!(cum[1], (Some(0.1), 3));
        assert_eq!(cum[2], (Some(1.0), 4));
        assert_eq!(cum[3], (None, 5));
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 2.66).abs() < 1e-6, "{}", h.sum());
    }

    #[test]
    fn histogram_exposition_shape() {
        let reg = Registry::new();
        let h = reg.histogram("d_seconds", "durations", &[("route", "grade")], &[0.5]);
        h.observe(0.25);
        h.observe(0.75);
        let text = reg.render();
        assert!(text.contains("# TYPE d_seconds histogram"), "{text}");
        assert!(text.contains("d_seconds_bucket{route=\"grade\",le=\"0.5\"} 1"), "{text}");
        assert!(text.contains("d_seconds_bucket{route=\"grade\",le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("d_seconds_sum{route=\"grade\"} 1\n"), "{text}");
        assert!(text.contains("d_seconds_count{route=\"grade\"} 2"), "{text}");
        crate::expo::validate(&text).expect("rendered exposition must validate");
    }

    #[test]
    fn default_latency_buckets_are_ascending() {
        let b = default_latency_buckets();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b.first().copied(), Some(0.00025));
        assert_eq!(b.last().copied(), Some(10.0));
    }

    #[test]
    fn escaped_label_values_render_safely() {
        let reg = Registry::new();
        reg.counter("esc_total", "escapes", &[("path", "a\"b\\c\nd")]).inc();
        let text = reg.render();
        assert!(text.contains("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"), "{text}");
        crate::expo::validate(&text).expect("escaped exposition must validate");
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("twice", "first", &[]);
        reg.gauge("twice", "second", &[]);
    }
}

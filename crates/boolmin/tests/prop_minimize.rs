//! Property-based tests for the Quine–McCluskey minimizer: semantic
//! correctness on arbitrary tables with don't-cares, and exact minimality
//! (term count) against brute-force search on small instances.

use proptest::prelude::*;
use qrhint_boolmin::{minimize, Cube, Dnf, Out, TruthTable};

fn arb_table(nvars: usize) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(0u8..3, 1 << nvars).prop_map(move |cells| {
        TruthTable::from_fn(nvars, |row| match cells[row as usize] {
            0 => Out::Zero,
            1 => Out::One,
            _ => Out::DontCare,
        })
    })
}

fn consistent(t: &TruthTable, dnf: &Dnf) -> bool {
    (0..(1u32 << t.nvars())).all(|row| match t.get(row) {
        Out::One => dnf.eval(row),
        Out::Zero => !dnf.eval(row),
        Out::DontCare => true,
    })
}

/// Brute-force minimum term count for tiny tables: enumerate all cube
/// subsets up to size 3 over all possible cubes.
fn brute_min_terms(t: &TruthTable) -> usize {
    let nvars = t.nvars();
    let on: Vec<u32> = t.rows_with(Out::One).collect();
    if on.is_empty() {
        return 0;
    }
    // All cubes over nvars variables: choose per variable 0/1/dash.
    let mut cubes: Vec<Cube> = Vec::new();
    let n3 = 3usize.pow(nvars as u32);
    for code in 0..n3 {
        let mut c = code;
        let mut dashes = 0u32;
        let mut values = 0u32;
        for i in 0..nvars {
            match c % 3 {
                0 => {}
                1 => values |= 1 << i,
                _ => dashes |= 1 << i,
            }
            c /= 3;
        }
        cubes.push(Cube { dashes, values });
    }
    // Keep only cubes consistent with the off-set.
    let off: Vec<u32> = t.rows_with(Out::Zero).collect();
    cubes.retain(|c| off.iter().all(|&r| !c.covers(r)));
    for k in 1..=3usize {
        if has_cover(&cubes, &on, k, 0, &mut Vec::new()) {
            return k;
        }
    }
    4 // "4 or more" — enough for the assertion below
}

fn has_cover(cubes: &[Cube], on: &[u32], k: usize, start: usize, picked: &mut Vec<Cube>) -> bool {
    if picked.len() == k {
        return on.iter().all(|&r| picked.iter().any(|c| c.covers(r)));
    }
    for i in start..cubes.len() {
        picked.push(cubes[i]);
        if has_cover(cubes, on, k, i + 1, picked) {
            picked.pop();
            return true;
        }
        picked.pop();
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// The minimized DNF agrees with the table on every cared row.
    #[test]
    fn minimization_is_semantically_correct(t in (1usize..=6).prop_flat_map(arb_table)) {
        let dnf = minimize(&t);
        prop_assert!(consistent(&t, &dnf));
    }

    /// On tiny tables the term count matches the brute-force optimum
    /// (when the optimum is ≤ 3 terms; beyond that the brute force gives
    /// a lower bound of 4 and we only check ≥).
    #[test]
    fn minimization_is_term_optimal_small(t in (1usize..=3).prop_flat_map(arb_table)) {
        let dnf = minimize(&t);
        prop_assert!(consistent(&t, &dnf));
        let best = brute_min_terms(&t);
        if best <= 3 {
            prop_assert_eq!(dnf.terms.len(), best, "table {:?}", t);
        } else {
            prop_assert!(dnf.terms.len() >= 4);
        }
    }

    /// Don't-cares never hurt: replacing don't-cares with fixed outputs
    /// can only increase (or keep) the term count.
    #[test]
    fn dont_cares_never_hurt(t in (1usize..=4).prop_flat_map(arb_table)) {
        let with_dc = minimize(&t);
        // Force don't-cares to Zero.
        let forced = TruthTable::from_fn(t.nvars(), |row| match t.get(row) {
            Out::DontCare => Out::Zero,
            other => other,
        });
        let without = minimize(&forced);
        prop_assert!(
            with_dc.terms.len() <= without.terms.len(),
            "dc table needed {} terms, forced-zero {}",
            with_dc.terms.len(),
            without.terms.len()
        );
    }
}

//! Minimum cover selection over prime implicants: essential primes, then
//! exact branch-and-bound (with a node budget), then greedy fallback.

use crate::qm::Cube;

/// Cover-search configuration.
#[derive(Debug, Clone)]
pub struct CoverConfig {
    /// Maximum branch-and-bound nodes before falling back to greedy.
    pub max_nodes: usize,
}

impl Default for CoverConfig {
    fn default() -> Self {
        CoverConfig { max_nodes: 200_000 }
    }
}

/// Cost of a cover: primarily term count, secondarily literal count.
fn cost(cover: &[Cube], nvars: usize) -> (usize, usize) {
    (cover.len(), cover.iter().map(|c| c.literal_count(nvars)).sum())
}

/// Select a minimum-cost subset of `primes` covering every row of `on`.
pub fn select_cover(nvars: usize, primes: &[Cube], on: &[u32], cfg: &CoverConfig) -> Vec<Cube> {
    if on.is_empty() {
        return vec![];
    }
    // coverage[i] = bitset over `on` indices covered by primes[i],
    // represented as Vec<u64> blocks.
    let blocks = on.len().div_ceil(64);
    let coverage: Vec<Vec<u64>> = primes
        .iter()
        .map(|p| {
            let mut bits = vec![0u64; blocks];
            for (j, &m) in on.iter().enumerate() {
                if p.covers(m) {
                    bits[j / 64] |= 1 << (j % 64);
                }
            }
            bits
        })
        .collect();
    let full: Vec<u64> = {
        let mut bits = vec![u64::MAX; blocks];
        let rem = on.len() % 64;
        if rem != 0 {
            bits[blocks - 1] = (1u64 << rem) - 1;
        }
        bits
    };

    // --- Essential primes: rows covered by exactly one prime. ---
    let mut chosen: Vec<usize> = Vec::new();
    let mut covered = vec![0u64; blocks];
    for (j, &m) in on.iter().enumerate() {
        let covering: Vec<usize> =
            (0..primes.len()).filter(|&i| primes[i].covers(m)).collect();
        if covering.len() == 1 && !chosen.contains(&covering[0]) {
            chosen.push(covering[0]);
        }
        let _ = j;
    }
    for &i in &chosen {
        for (b, c) in covered.iter_mut().zip(&coverage[i]) {
            *b |= c;
        }
    }

    let uncovered_indices = |covered: &[u64]| -> Vec<usize> {
        (0..on.len()).filter(|j| covered[j / 64] & (1 << (j % 64)) == 0).collect()
    };

    if uncovered_indices(&covered).is_empty() {
        return chosen.into_iter().map(|i| primes[i]).collect();
    }

    // Candidate primes: those covering at least one uncovered row.
    let remaining: Vec<usize> = (0..primes.len())
        .filter(|i| !chosen.contains(i))
        .filter(|&i| {
            coverage[i]
                .iter()
                .zip(&covered)
                .any(|(c, v)| c & !v != 0)
        })
        .collect();

    // --- Exact branch-and-bound over the remaining rows. ---
    struct Bb<'a> {
        coverage: &'a [Vec<u64>],
        full: &'a [u64],
        candidates: &'a [usize],
        primes: &'a [Cube],
        nvars: usize,
        best: Option<Vec<usize>>,
        best_cost: (usize, usize),
        nodes: usize,
        max_nodes: usize,
    }

    impl Bb<'_> {
        fn complete(&self, covered: &[u64]) -> bool {
            covered.iter().zip(self.full).all(|(c, f)| c & f == *f)
        }

        fn search(&mut self, covered: Vec<u64>, picked: Vec<usize>) {
            self.nodes += 1;
            if self.nodes > self.max_nodes {
                return;
            }
            let picked_cubes: Vec<Cube> = picked.iter().map(|&i| self.primes[i]).collect();
            let c = cost(&picked_cubes, self.nvars);
            if c >= self.best_cost {
                return; // cannot improve (costs only grow)
            }
            if self.complete(&covered) {
                self.best_cost = c;
                self.best = Some(picked);
                return;
            }
            // Branch on the first uncovered row: one branch per candidate
            // prime covering it (classic Petrick-style branching).
            let row = (0..self.full.len() * 64).find(|&j| {
                self.full[j / 64] & (1 << (j % 64)) != 0
                    && covered[j / 64] & (1 << (j % 64)) == 0
            });
            let Some(row) = row else { return };
            let options: Vec<usize> = self
                .candidates
                .iter()
                .copied()
                .filter(|&i| self.coverage[i][row / 64] & (1 << (row % 64)) != 0)
                .collect();
            for i in options {
                if picked.contains(&i) {
                    continue;
                }
                let mut cov2 = covered.clone();
                for (b, c) in cov2.iter_mut().zip(&self.coverage[i]) {
                    *b |= c;
                }
                let mut picked2 = picked.clone();
                picked2.push(i);
                self.search(cov2, picked2);
            }
        }
    }

    let mut bb = Bb {
        coverage: &coverage,
        full: &full,
        candidates: &remaining,
        primes,
        nvars,
        best: None,
        best_cost: (usize::MAX, usize::MAX),
        nodes: 0,
        max_nodes: cfg.max_nodes,
    };
    bb.search(covered.clone(), vec![]);
    let exact_exhausted = bb.nodes <= cfg.max_nodes;

    if let (Some(extra), true) = (&bb.best, exact_exhausted) {
        let mut out: Vec<Cube> = chosen.iter().map(|&i| primes[i]).collect();
        out.extend(extra.iter().map(|&i| primes[i]));
        return out;
    }

    // --- Greedy fallback: repeatedly take the prime covering the most
    // uncovered rows (ties: fewer literals). ---
    let mut greedy_covered = covered;
    let mut out: Vec<usize> = chosen.clone();
    loop {
        let unc = uncovered_indices(&greedy_covered);
        if unc.is_empty() {
            break;
        }
        let best = remaining
            .iter()
            .copied()
            .filter(|i| !out.contains(i))
            .max_by_key(|&i| {
                let gain = coverage[i]
                    .iter()
                    .zip(&greedy_covered)
                    .map(|(c, v)| (c & !v).count_ones() as usize)
                    .sum::<usize>();
                (gain, usize::MAX - primes[i].literal_count(nvars))
            });
        let Some(i) = best else { break };
        let gain: usize = coverage[i]
            .iter()
            .zip(&greedy_covered)
            .map(|(c, v)| (c & !v).count_ones() as usize)
            .sum();
        if gain == 0 {
            break; // defensive: no progress possible
        }
        for (b, c) in greedy_covered.iter_mut().zip(&coverage[i]) {
            *b |= c;
        }
        out.push(i);
    }
    out.into_iter().map(|i| primes[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qm::prime_implicants;

    #[test]
    fn essential_only() {
        // XOR: both primes are essential.
        let on = [1u32, 2];
        let primes = prime_implicants(2, &on, &[]);
        let cover = select_cover(2, &primes, &on, &CoverConfig::default());
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn cyclic_cover_resolved_exactly() {
        // Classic cyclic core: f = Σm(0,1,2,5,6,7) over 3 vars.
        // Minimum cover has 3 terms.
        let on = [0u32, 1, 2, 5, 6, 7];
        let primes = prime_implicants(3, &on, &[]);
        let cover = select_cover(3, &primes, &on, &CoverConfig::default());
        assert_eq!(cover.len(), 3, "{cover:?}");
        for &m in &on {
            assert!(cover.iter().any(|c| c.covers(m)));
        }
    }

    #[test]
    fn greedy_fallback_still_covers() {
        let on = [0u32, 1, 2, 5, 6, 7];
        let primes = prime_implicants(3, &on, &[]);
        // Force greedy with a zero node budget.
        let cover = select_cover(3, &primes, &on, &CoverConfig { max_nodes: 0 });
        for &m in &on {
            assert!(cover.iter().any(|c| c.covers(m)));
        }
    }

    #[test]
    fn empty_on_set() {
        let cover = select_cover(3, &[], &[], &CoverConfig::default());
        assert!(cover.is_empty());
    }
}

//! Truth tables with don't-care outputs.

/// Output value of one truth-table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Out {
    Zero,
    One,
    DontCare,
}

/// A complete truth table over `nvars ≤ 20` variables. Row `r` assigns
/// variable `i` the value of bit `i` of `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    nvars: usize,
    outs: Vec<Out>,
}

/// Hard cap keeping tables within memory (2^20 rows ≈ 1M entries).
pub const MAX_VARS: usize = 20;

impl TruthTable {
    /// Build a table by evaluating `f` on every row.
    pub fn from_fn(nvars: usize, mut f: impl FnMut(u32) -> Out) -> TruthTable {
        assert!(nvars <= MAX_VARS, "truth table too large: {nvars} vars");
        let outs = (0..(1u32 << nvars)).map(&mut f).collect();
        TruthTable { nvars, outs }
    }

    /// Build a table from explicit on-set and dc-set row lists.
    pub fn from_sets(nvars: usize, on: &[u32], dc: &[u32]) -> TruthTable {
        let mut t = TruthTable::from_fn(nvars, |_| Out::Zero);
        for &r in dc {
            t.set(r, Out::DontCare);
        }
        for &r in on {
            t.set(r, Out::One);
        }
        t
    }

    pub fn nvars(&self) -> usize {
        self.nvars
    }

    pub fn len(&self) -> usize {
        self.outs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.outs.is_empty()
    }

    pub fn get(&self, row: u32) -> Out {
        self.outs[row as usize]
    }

    pub fn set(&mut self, row: u32, out: Out) {
        self.outs[row as usize] = out;
    }

    /// Iterate over the rows having a given output.
    pub fn rows_with(&self, out: Out) -> impl Iterator<Item = u32> + '_ {
        self.outs
            .iter()
            .enumerate()
            .filter(move |(_, o)| **o == out)
            .map(|(i, _)| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let t = TruthTable::from_fn(2, |r| if r == 3 { Out::One } else { Out::Zero });
        assert_eq!(t.nvars(), 2);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(3), Out::One);
        assert_eq!(t.get(0), Out::Zero);
    }

    #[test]
    fn from_sets() {
        let t = TruthTable::from_sets(3, &[1, 2], &[7]);
        assert_eq!(t.get(1), Out::One);
        assert_eq!(t.get(2), Out::One);
        assert_eq!(t.get(7), Out::DontCare);
        assert_eq!(t.get(0), Out::Zero);
        assert_eq!(t.rows_with(Out::One).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(t.rows_with(Out::DontCare).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    #[should_panic(expected = "truth table too large")]
    fn too_many_vars_panics() {
        let _ = TruthTable::from_fn(MAX_VARS + 1, |_| Out::Zero);
    }
}

//! Quine–McCluskey prime implicant generation.

use std::collections::HashSet;

/// A cube (product term): `dashes` marks positions that are don't-care in
/// the term; `values` fixes the cared positions (bits under `!dashes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    pub dashes: u32,
    pub values: u32,
}

impl Cube {
    /// A cube fixing exactly the bits of `minterm`.
    pub fn minterm(m: u32) -> Cube {
        Cube { dashes: 0, values: m }
    }

    /// Whether the cube covers a row.
    pub fn covers(&self, row: u32) -> bool {
        (row & !self.dashes) == (self.values & !self.dashes)
    }

    /// Number of literals (cared positions) given the variable count.
    pub fn literal_count(&self, nvars: usize) -> usize {
        nvars - (self.dashes & crate::mask(nvars)).count_ones() as usize
    }

    /// Literals as (var index, polarity) pairs.
    pub fn literals(&self, nvars: usize) -> Vec<(usize, bool)> {
        (0..nvars)
            .filter(|i| self.dashes & (1 << i) == 0)
            .map(|i| (i, self.values & (1 << i) != 0))
            .collect()
    }

    /// Attempt to merge with another cube (same dashes, values differing
    /// in exactly one bit).
    fn merge(&self, other: &Cube) -> Option<Cube> {
        if self.dashes != other.dashes {
            return None;
        }
        let diff = (self.values ^ other.values) & !self.dashes;
        if diff.count_ones() == 1 {
            Some(Cube { dashes: self.dashes | diff, values: self.values & !diff })
        } else {
            None
        }
    }
}

/// Compute all prime implicants of the function whose on-set is `on` and
/// don't-care set is `dc` (don't-cares join the merging but are never
/// required to be covered).
pub fn prime_implicants(nvars: usize, on: &[u32], dc: &[u32]) -> Vec<Cube> {
    let mut current: HashSet<Cube> = on.iter().chain(dc).map(|&m| Cube::minterm(m)).collect();
    let mut primes: Vec<Cube> = Vec::new();
    while !current.is_empty() {
        // Group by (dashes, popcount of cared ones) so only adjacent
        // groups need pairwise comparison.
        let mut cubes: Vec<Cube> = current.iter().copied().collect();
        cubes.sort_by_key(|c| (c.dashes, (c.values & !c.dashes).count_ones()));
        let mut merged_flag = vec![false; cubes.len()];
        let mut next: HashSet<Cube> = HashSet::new();
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if cubes[j].dashes != cubes[i].dashes {
                    break; // sorted: different dash patterns follow
                }
                let pi = (cubes[i].values & !cubes[i].dashes).count_ones();
                let pj = (cubes[j].values & !cubes[j].dashes).count_ones();
                if pj > pi + 1 {
                    break;
                }
                if let Some(m) = cubes[i].merge(&cubes[j]) {
                    merged_flag[i] = true;
                    merged_flag[j] = true;
                    next.insert(m);
                }
            }
        }
        for (i, c) in cubes.iter().enumerate() {
            if !merged_flag[i] {
                primes.push(*c);
            }
        }
        current = next;
    }
    primes.sort();
    primes.dedup();
    // Drop primes that cover no required (on-set) row; they only covered
    // don't-cares and are useless for the cover.
    primes.retain(|p| on.iter().any(|&m| p.covers(m)));
    // The `nvars` parameter bounds the cube domain; assert consistency in
    // debug builds.
    debug_assert!(primes.iter().all(|p| p.values <= crate::mask(nvars)));
    primes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_cover_and_merge() {
        let a = Cube::minterm(0b101);
        assert!(a.covers(0b101));
        assert!(!a.covers(0b100));
        let b = Cube::minterm(0b100);
        let m = a.merge(&b).unwrap();
        assert_eq!(m.dashes, 0b001);
        assert!(m.covers(0b101) && m.covers(0b100));
        assert!(!m.covers(0b001));
        // Non-adjacent minterms don't merge.
        assert!(Cube::minterm(0b000).merge(&Cube::minterm(0b011)).is_none());
    }

    #[test]
    fn literals_extraction() {
        let c = Cube { dashes: 0b010, values: 0b101 };
        assert_eq!(c.literal_count(3), 2);
        assert_eq!(c.literals(3), vec![(0, true), (2, true)]);
    }

    #[test]
    fn full_cube_from_complete_on_set() {
        // on-set = all rows of 2 vars → single prime with all dashes.
        let primes = prime_implicants(2, &[0, 1, 2, 3], &[]);
        assert_eq!(primes.len(), 1);
        assert_eq!(primes[0].dashes, 0b11);
    }

    #[test]
    fn xor_primes_are_minterms() {
        let primes = prime_implicants(2, &[1, 2], &[]);
        assert_eq!(primes.len(), 2);
        assert!(primes.iter().all(|p| p.dashes == 0));
    }

    #[test]
    fn dc_participates_but_is_not_required() {
        // on = {3}, dc = {1, 2}: primes should include merged cubes using
        // the dc rows; useless dc-only primes are dropped.
        let primes = prime_implicants(2, &[3], &[1, 2]);
        assert!(primes.iter().all(|p| p.covers(3)));
        assert!(primes.iter().any(|p| p.literal_count(2) == 1));
    }

    #[test]
    fn textbook_primes() {
        // f = Σm(0,1,2,5,6,7) over 3 vars: primes are known to be
        // {a'b', b'c, a'c', bc, ab, ac'} (6 primes).
        let primes = prime_implicants(3, &[0, 1, 2, 5, 6, 7], &[]);
        assert_eq!(primes.len(), 6);
        for p in &primes {
            assert_eq!(p.literal_count(3), 2);
        }
    }
}

//! # qrhint-boolmin
//!
//! Two-level Boolean minimization with don't-cares — the role ESPRESSO
//! (via PyEDA) plays in the paper's `MinBoolExp` primitive (§5.2).
//!
//! Given a truth table over `n` variables whose rows are labelled
//! `0` / `1` / `don't-care`, [`minimize`] returns a minimum disjunctive
//! normal form:
//!
//! 1. **Prime implicant generation** by the Quine–McCluskey merging
//!    procedure (don't-cares participate in merging but never require
//!    coverage) — [`prime_implicants`];
//! 2. **Cover selection**: essential primes first, then an exact
//!    branch-and-bound set cover (optimal for the sizes Qr-Hint produces),
//!    falling back to a greedy cover under a node budget — exactly
//!    ESPRESSO's "heuristic beyond small sizes" behaviour.
//!
//! The cover is optimized lexicographically by (number of terms, total
//! literal count), which is the natural notion of "smallest formula" for
//! the repair cost model of Definition 3.

#![forbid(unsafe_code)]

pub mod cover;
pub mod qm;
pub mod table;

pub use cover::{select_cover, CoverConfig};
pub use qm::{prime_implicants, Cube};
pub use table::{Out, TruthTable};

/// A minimized sum-of-products: a disjunction of cubes (conjunctions of
/// literals). An empty term list denotes FALSE; a single all-dash cube
/// denotes TRUE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dnf {
    pub nvars: usize,
    pub terms: Vec<Cube>,
}

impl Dnf {
    /// FALSE.
    pub fn zero(nvars: usize) -> Dnf {
        Dnf { nvars, terms: vec![] }
    }

    /// TRUE.
    pub fn one(nvars: usize) -> Dnf {
        Dnf { nvars, terms: vec![Cube { dashes: mask(nvars), values: 0 }] }
    }

    /// Total number of literals across all terms.
    pub fn literal_count(&self) -> usize {
        self.terms.iter().map(|c| c.literal_count(self.nvars)).sum()
    }

    /// Evaluate the DNF on a row (bit i of `row` = value of variable i).
    pub fn eval(&self, row: u32) -> bool {
        self.terms.iter().any(|c| c.covers(row))
    }

    /// Is this the constant TRUE function?
    pub fn is_true(&self) -> bool {
        self.terms.iter().any(|c| c.dashes == mask(self.nvars))
    }

    /// Is this the constant FALSE function?
    pub fn is_false(&self) -> bool {
        self.terms.is_empty()
    }
}

pub(crate) fn mask(nvars: usize) -> u32 {
    if nvars >= 32 {
        u32::MAX
    } else {
        (1u32 << nvars) - 1
    }
}

/// Minimize a truth table with don't-cares into a minimum DNF.
///
/// ```
/// use qrhint_boolmin::{minimize, Out, TruthTable};
/// // f(a, b) = a XOR b has no smaller DNF than a'b + ab'.
/// let t = TruthTable::from_fn(2, |row| {
///     if (row.count_ones() % 2) == 1 { Out::One } else { Out::Zero }
/// });
/// let dnf = minimize(&t);
/// assert_eq!(dnf.terms.len(), 2);
/// assert_eq!(dnf.literal_count(), 4);
/// ```
pub fn minimize(table: &TruthTable) -> Dnf {
    minimize_with(table, &CoverConfig::default())
}

/// [`minimize`] with an explicit cover-search configuration.
pub fn minimize_with(table: &TruthTable, cfg: &CoverConfig) -> Dnf {
    let nvars = table.nvars();
    let on: Vec<u32> = table.rows_with(Out::One).collect();
    if on.is_empty() {
        return Dnf::zero(nvars);
    }
    let dc: Vec<u32> = table.rows_with(Out::DontCare).collect();
    if on.len() + dc.len() == (1usize << nvars) {
        return Dnf::one(nvars);
    }
    let primes = prime_implicants(nvars, &on, &dc);
    let chosen = select_cover(nvars, &primes, &on, cfg);
    Dnf { nvars, terms: chosen }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_check(t: &TruthTable, dnf: &Dnf) {
        for row in 0..(1u32 << t.nvars()) {
            match t.get(row) {
                Out::One => assert!(dnf.eval(row), "row {row:b} must be covered"),
                Out::Zero => assert!(!dnf.eval(row), "row {row:b} must not be covered"),
                Out::DontCare => {}
            }
        }
    }

    #[test]
    fn constants() {
        let all_one = TruthTable::from_fn(3, |_| Out::One);
        assert!(minimize(&all_one).is_true());
        let all_zero = TruthTable::from_fn(3, |_| Out::Zero);
        assert!(minimize(&all_zero).is_false());
        // All don't-care minimizes to FALSE (nothing must be covered).
        let all_dc = TruthTable::from_fn(3, |_| Out::DontCare);
        assert!(minimize(&all_dc).is_false());
        // Mixed one/dc minimizes to TRUE.
        let mixed = TruthTable::from_fn(2, |r| if r == 0 { Out::One } else { Out::DontCare });
        assert!(minimize(&mixed).is_true());
    }

    #[test]
    fn single_variable_projection() {
        // f(a,b,c) = b  (variable index 1)
        let t = TruthTable::from_fn(3, |r| if r & 2 != 0 { Out::One } else { Out::Zero });
        let dnf = minimize(&t);
        assert_eq!(dnf.terms.len(), 1);
        assert_eq!(dnf.literal_count(), 1);
        exhaustive_check(&t, &dnf);
    }

    #[test]
    fn dont_cares_enable_simplification() {
        // f = 1 on {11}, 0 on {00}, dc on {01, 10}: minimal DNF is a single
        // one-literal term (either a or b).
        let t = TruthTable::from_fn(2, |r| match r {
            0b11 => Out::One,
            0b00 => Out::Zero,
            _ => Out::DontCare,
        });
        let dnf = minimize(&t);
        assert_eq!(dnf.terms.len(), 1);
        assert_eq!(dnf.literal_count(), 1);
        exhaustive_check(&t, &dnf);
    }

    #[test]
    fn xor_is_irreducible() {
        let t = TruthTable::from_fn(2, |r| {
            if r.count_ones() % 2 == 1 {
                Out::One
            } else {
                Out::Zero
            }
        });
        let dnf = minimize(&t);
        assert_eq!(dnf.terms.len(), 2);
        assert_eq!(dnf.literal_count(), 4);
        exhaustive_check(&t, &dnf);
    }

    #[test]
    fn classic_qm_example() {
        // Standard textbook example: minterms {4,8,10,11,12,15},
        // dc {9,14} over 4 vars → 2-3 terms depending on convention.
        let on = [4u32, 8, 10, 11, 12, 15];
        let dc = [9u32, 14];
        let t = TruthTable::from_fn(4, |r| {
            if on.contains(&r) {
                Out::One
            } else if dc.contains(&r) {
                Out::DontCare
            } else {
                Out::Zero
            }
        });
        let dnf = minimize(&t);
        exhaustive_check(&t, &dnf);
        // Known minimum: 3 terms (e.g. BC' + AB'... in textbook form).
        assert_eq!(dnf.terms.len(), 3, "{:?}", dnf.terms);
    }

    #[test]
    fn majority_function() {
        // maj(a,b,c): minimal DNF = ab + ac + bc (3 terms, 6 literals).
        let t = TruthTable::from_fn(3, |r| {
            if r.count_ones() >= 2 {
                Out::One
            } else {
                Out::Zero
            }
        });
        let dnf = minimize(&t);
        assert_eq!(dnf.terms.len(), 3);
        assert_eq!(dnf.literal_count(), 6);
        exhaustive_check(&t, &dnf);
    }

    #[test]
    fn randomized_tables_roundtrip() {
        // Deterministic pseudo-random tables; check semantic equivalence.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for nvars in 1..=5 {
            for _ in 0..20 {
                let t = TruthTable::from_fn(nvars, |_| match next() % 3 {
                    0 => Out::Zero,
                    1 => Out::One,
                    _ => Out::DontCare,
                });
                let dnf = minimize(&t);
                exhaustive_check(&t, &dnf);
            }
        }
    }

    #[test]
    fn larger_table_stays_correct() {
        // 8 variables, structured function with don't-cares.
        let t = TruthTable::from_fn(8, |r| {
            if r % 7 == 0 {
                Out::One
            } else if r % 7 == 1 {
                Out::DontCare
            } else {
                Out::Zero
            }
        });
        let dnf = minimize(&t);
        exhaustive_check(&t, &dnf);
    }
}

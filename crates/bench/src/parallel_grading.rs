//! Parallel-grading benchmark: sequential [`PreparedTarget::grade_batch`]
//! vs [`PreparedTarget::grade_batch_parallel`] at 2/4/8 worker threads,
//! on distinct-submission classroom batches (students question (b) and
//! the fault-injected beers batch — the same workloads as the
//! session-API benchmark, deduplicated so the advice cache cannot mask
//! the scaling story).
//!
//! Every timed repetition compiles a **fresh** prepared target: the
//! whole-advice cache would otherwise serve the second run from the
//! first run's answers and report a fictitious speedup. Parity is
//! checked advice-by-advice (serde-JSON fingerprints, errors included)
//! against the sequential output — the parallel path must be
//! byte-identical in input order, not just "roughly equal".
//!
//! The acceptance gate is ≥2.5× throughput at 4 threads on at least one
//! of the distinct-submission batches. That target needs ≥4 hardware
//! threads; on smaller hosts (CI sandboxes are often pinned to one
//! core) the gate is recorded as **waived** — `cores`,
//! `gate_waived_low_cores` and the measured speedups all land in
//! `BENCH_parallel_grading.json`, so a reader can tell "the machine
//! couldn't" from "the code didn't".
//!
//! Results are persisted as `BENCH_parallel_grading.json` in the
//! working directory (run from the repo root: `cargo run --release
//! --bin exp_parallel_grading`).

use crate::session_api;
use qr_hint::prelude::*;
use qrhint_core::QrResult;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// One (workload, mode) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelGradingRow {
    pub workload: String,
    /// Distinct submissions graded against the one target.
    pub batch_size: usize,
    /// `"sequential"` (`grade_batch`) or `"parallel"`
    /// (`grade_batch_parallel`).
    pub mode: String,
    /// Worker threads (1 for the sequential baseline).
    pub jobs: usize,
    /// Min-of-reps wall-clock for the whole batch, compile included.
    pub ms: f64,
    /// Submissions per second at that wall-clock.
    pub throughput_per_s: f64,
    /// This row's throughput over the sequential baseline's.
    pub speedup_vs_sequential: f64,
    /// Advice-by-advice serde-JSON equality with the sequential output
    /// (trivially true for the baseline row).
    pub parity_ok: bool,
}

/// The full benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelGradingReport {
    /// `std::thread::available_parallelism()` on the host that produced
    /// the numbers — the context every speedup below must be read in.
    pub cores: usize,
    pub rows: Vec<ParallelGradingRow>,
    /// 4-thread speedup per workload.
    pub speedup_at_4_by_workload: BTreeMap<String, f64>,
    pub best_speedup_at_4: f64,
    /// The acceptance gate: ≥ this speedup at 4 threads on some
    /// distinct-submission batch.
    pub gate_threshold: f64,
    /// Did a 4-thread run actually hit the gate?
    pub speedup_at_4_ok: bool,
    /// True when the host has fewer than 4 cores, where the gate is
    /// physically unachievable and therefore waived (never claimed).
    pub gate_waived_low_cores: bool,
    /// `speedup_at_4_ok`, or waived on low-core hosts.
    pub gate_ok: bool,
    /// Every parallel run matched the sequential output exactly.
    pub parity_ok: bool,
}

/// Worker counts measured against the sequential baseline.
pub const JOB_COUNTS: [usize; 3] = [2, 4, 8];

const GATE_THRESHOLD: f64 = 2.5;
const TIMED_REPS: usize = 3;

/// Deduplicate a submission batch (first occurrence wins, order kept):
/// duplicates are answered by the whole-advice cache in *both* paths,
/// so they dilute the scaling measurement without informing it.
pub fn dedupe(subs: Vec<String>) -> Vec<String> {
    let mut seen = BTreeSet::new();
    subs.into_iter().filter(|s| seen.insert(s.clone())).collect()
}

/// The distinct-submission workloads: (name, schema, target, batch).
pub fn workloads(batch_size: usize) -> Vec<(String, Schema, String, Vec<String>)> {
    // Oversample, dedupe, then truncate, so duplicates inside the raw
    // corpus sampling don't shrink the batch below `batch_size`.
    let (schema, target, subs) = session_api::students_batch(batch_size * 2);
    let mut subs = dedupe(subs);
    subs.truncate(batch_size);
    let students = ("students-b".to_string(), schema, target, subs);
    let (schema, target, subs) = session_api::beers_batch(batch_size * 2);
    let mut subs = dedupe(subs);
    subs.truncate(batch_size);
    let beers = ("beers-inject-c".to_string(), schema, target, subs);
    vec![students, beers]
}

/// Min-of-reps wall clock for `run`, with `check` invoked on **every**
/// rep's output (warmup included) *outside* the timed window — so
/// parity validation covers all reps without inflating the timings it
/// guards. Shared with the instrumentation-overhead benchmark
/// ([`crate::obs`]).
pub fn min_time_ms<T>(mut run: impl FnMut() -> T, mut check: impl FnMut(&T)) -> f64 {
    check(&run()); // warmup: page faults, allocator growth, thread stacks
    let mut best = f64::INFINITY;
    for _ in 0..TIMED_REPS {
        let started = Instant::now();
        let out = run();
        let ms = started.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        check(&out);
    }
    best
}

/// Serde-JSON fingerprint of a graded batch, errors included, index
/// aligned — equality means the outputs are interchangeable.
pub fn fingerprint(advices: &[QrResult<Advice>]) -> Vec<String> {
    advices
        .iter()
        .map(|r| match r {
            Ok(a) => serde_json::to_string(a).expect("advice serializes"),
            Err(e) => format!("error: {e}"),
        })
        .collect()
}

/// Measure one workload at the sequential baseline plus [`JOB_COUNTS`].
pub fn run_workload(
    workload: &str,
    schema: &Schema,
    target: &str,
    subs: &[String],
) -> Vec<ParallelGradingRow> {
    let qr = QrHint::new(schema.clone());
    // Parity is checked on *every* repetition (warmup included), not
    // just the best-timed one: a concurrency bug that corrupts output
    // usually also adds latency, which would make the corrupted rep the
    // one min-of-reps throws away.
    let mut seq_fp: Option<Vec<String>> = None;
    let mut seq_parity = true;
    let seq_ms = min_time_ms(
        || {
            // Fresh target per rep: no cross-rep cache leakage.
            let prepared = qr.compile_target(target).expect("target compiles");
            prepared.grade_batch(subs)
        },
        |advices| {
            let fp = fingerprint(advices);
            match &seq_fp {
                None => seq_fp = Some(fp),
                Some(first) => seq_parity &= &fp == first,
            }
        },
    );
    let seq_fp = seq_fp.expect("warmup rep ran");
    let throughput = |ms: f64| subs.len() as f64 / (ms / 1e3).max(1e-9);
    let mut rows = vec![ParallelGradingRow {
        workload: workload.to_string(),
        batch_size: subs.len(),
        mode: "sequential".to_string(),
        jobs: 1,
        ms: seq_ms,
        throughput_per_s: throughput(seq_ms),
        speedup_vs_sequential: 1.0,
        parity_ok: seq_parity,
    }];
    for jobs in JOB_COUNTS {
        let mut parity_ok = true;
        let ms = min_time_ms(
            || {
                let prepared = qr.compile_target(target).expect("target compiles");
                prepared.grade_batch_parallel(subs, jobs)
            },
            |advices| parity_ok &= fingerprint(advices) == seq_fp,
        );
        rows.push(ParallelGradingRow {
            workload: workload.to_string(),
            batch_size: subs.len(),
            mode: "parallel".to_string(),
            jobs,
            ms,
            throughput_per_s: throughput(ms),
            speedup_vs_sequential: seq_ms / ms.max(1e-9),
            parity_ok,
        });
    }
    rows
}

/// Run the full comparison (students + beers distinct batches).
pub fn run(batch_size: usize) -> ParallelGradingReport {
    let cores = crate::report::host_cores();
    let mut rows = Vec::new();
    for (name, schema, target, subs) in workloads(batch_size) {
        rows.extend(run_workload(&name, &schema, &target, &subs));
    }
    let speedup_at_4_by_workload: BTreeMap<String, f64> = rows
        .iter()
        .filter(|r| r.jobs == 4)
        .map(|r| (r.workload.clone(), r.speedup_vs_sequential))
        .collect();
    let best_speedup_at_4 =
        speedup_at_4_by_workload.values().copied().fold(0.0, f64::max);
    let speedup_at_4_ok = best_speedup_at_4 >= GATE_THRESHOLD;
    let gate_waived_low_cores = cores < 4 && !speedup_at_4_ok;
    let parity_ok = rows.iter().all(|r| r.parity_ok);
    ParallelGradingReport {
        cores,
        rows,
        speedup_at_4_by_workload,
        best_speedup_at_4,
        gate_threshold: GATE_THRESHOLD,
        speedup_at_4_ok,
        gate_waived_low_cores,
        gate_ok: speedup_at_4_ok || gate_waived_low_cores,
        parity_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_batches_are_distinct() {
        for (name, _, _, subs) in workloads(24) {
            let unique: BTreeSet<&String> = subs.iter().collect();
            assert_eq!(unique.len(), subs.len(), "{name} batch has duplicates");
            assert!(!subs.is_empty(), "{name} batch is empty");
        }
    }

    #[test]
    fn small_run_has_parity_and_all_modes() {
        let (name, schema, target, subs) = workloads(6).remove(1);
        let rows = run_workload(&name, &schema, &target, &subs);
        assert_eq!(rows.len(), 1 + JOB_COUNTS.len());
        assert!(rows.iter().all(|r| r.parity_ok), "{rows:?}");
        assert_eq!(rows[0].mode, "sequential");
        // Timing is environment-dependent; parity is the invariant.
    }
}

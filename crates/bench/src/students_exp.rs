//! E1/E10/E11 — the Students+ coverage experiment (§9.1, Appendix
//! Tables 4 and 5): run the whole synthetic corpus plus the Brass-issue
//! pairs through the pipeline, classify the handling of every issue, and
//! measure the average per-query running time.

use qr_hint::prelude::*;
use qrhint_workloads::{brass, students};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Per-question corpus statistics (Appendix Table 4 regeneration).
#[derive(Debug, Clone, Default, Serialize)]
pub struct QuestionStats {
    pub total: usize,
    pub unsupported: usize,
    pub first_stage: BTreeMap<String, usize>,
    pub converged: usize,
}

/// Observed handling of a Brass issue (the §9.1 three-way split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Observed {
    ErrorFixed,
    EquivalentNoFlag,
    EquivalentButFlagged,
}

/// One Brass-issue result row (Appendix Table 5 regeneration).
#[derive(Debug, Clone, Serialize)]
pub struct BrassRow {
    pub issue: u32,
    pub description: String,
    pub paper_category: String,
    pub observed: Vec<Observed>,
    pub matches_paper: bool,
}

/// Complete E1 output.
#[derive(Debug, Clone, Serialize)]
pub struct StudentsReport {
    pub per_question: BTreeMap<String, QuestionStats>,
    pub supported: usize,
    pub unsupported: usize,
    pub avg_ms_per_query: f64,
    pub brass: Vec<BrassRow>,
}

/// Run the full corpus + Brass matrix.
pub fn run() -> StudentsReport {
    let qr = QrHint::new(students::schema());
    let corpus = students::corpus();
    let mut per_question: BTreeMap<String, QuestionStats> = BTreeMap::new();
    let mut supported = 0usize;
    let mut unsupported = 0usize;
    let started = Instant::now();

    for entry in &corpus {
        let stats = per_question.entry(entry.question.to_string()).or_default();
        stats.total += 1;
        if entry.category == "UNSUPPORTED" {
            stats.unsupported += 1;
            unsupported += 1;
            continue;
        }
        supported += 1;
        let target = qr.prepare(&entry.pair.target_sql).expect("target parses");
        let working = qr.prepare(&entry.pair.working_sql).expect("working parses");
        let advice = qr.advise(&target, &working).expect("advise succeeds");
        *stats
            .first_stage
            .entry(advice.stage.to_string())
            .or_insert(0) += 1;
        if advice.is_equivalent() {
            stats.converged += 1;
            continue;
        }
        if let Ok((_, trail)) = qr.fix_fully(&target, &working) {
            if trail.last().map(|a| a.is_equivalent()).unwrap_or(false) {
                stats.converged += 1;
            }
        }
    }
    let avg_ms = started.elapsed().as_secs_f64() * 1e3 / supported.max(1) as f64;

    // ---- Brass-issue matrix ----
    let brass_qr = QrHint::new(brass::schema());
    let mut brass_rows = Vec::new();
    for issue in brass::issues() {
        if issue.category == brass::PaperCategory::Unsupported {
            continue;
        }
        let mut observed = Vec::new();
        for pair in &issue.pairs {
            let target = brass_qr.prepare(&pair.target_sql).expect("target parses");
            let working = brass_qr.prepare(&pair.working_sql).expect("working parses");
            let advice = brass_qr.advise(&target, &working).expect("advise succeeds");
            let obs = if advice.is_equivalent() {
                Observed::EquivalentNoFlag
            } else if issue.category == brass::PaperCategory::ErrorFixed {
                Observed::ErrorFixed
            } else {
                Observed::EquivalentButFlagged
            };
            observed.push(obs);
        }
        let expected = match issue.category {
            brass::PaperCategory::ErrorFixed => Observed::ErrorFixed,
            brass::PaperCategory::EquivalentNoFlag => Observed::EquivalentNoFlag,
            brass::PaperCategory::EquivalentButFlagged => Observed::EquivalentButFlagged,
            brass::PaperCategory::Unsupported => unreachable!(),
        };
        let matches_paper = observed.iter().all(|o| *o == expected);
        brass_rows.push(BrassRow {
            issue: issue.number,
            description: issue.description.to_string(),
            paper_category: format!("{:?}", issue.category),
            observed,
            matches_paper,
        });
    }

    StudentsReport {
        per_question,
        supported,
        unsupported,
        avg_ms_per_query: avg_ms,
        brass: brass_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full-corpus run (~1 min); executed by exp_students / CI nightly"]
    fn full_corpus_report() {
        let report = run();
        assert_eq!(report.supported, 306);
        assert_eq!(report.unsupported, 35);
        // Every supported query converges.
        for (q, stats) in &report.per_question {
            assert_eq!(
                stats.converged + stats.unsupported,
                stats.total,
                "question {q} has non-converging queries"
            );
        }
    }
}

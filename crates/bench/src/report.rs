//! Plain-text table rendering and JSON artifact output shared by the
//! experiment binaries.

use serde::Serialize;
use std::fmt::Write as _;

/// Render an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Write a serializable artifact to `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = crate::results_path(&format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed for {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "count"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].contains("12345"));
    }
}

//! Plain-text table rendering and JSON artifact output shared by the
//! experiment binaries.

use serde::Serialize;
use std::fmt::Write as _;

/// Render an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Cores on the measuring host, recorded in every gated benchmark
/// report: wall-clock gates are waived below 4 cores (CI runners and
/// laptops on battery make timing gates flaky there).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Write a gated benchmark artifact to `BENCH_<name>.json` in the
/// working directory — the `exp_*` binaries run from the repo root, and
/// CI archives the files from there. Unlike [`write_json`], failure is
/// fatal: a bench whose artifact can't be persisted should fail the job
/// loudly, not pass with a warning.
pub fn write_bench<T: Serialize>(name: &str, value: &T) {
    let file = format!("BENCH_{name}.json");
    let json =
        serde_json::to_string_pretty(value).unwrap_or_else(|e| panic!("{file} serialize: {e}"));
    std::fs::write(&file, json).unwrap_or_else(|e| panic!("write {file}: {e}"));
    println!("(wrote {file})");
}

/// Write a serializable artifact to `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = crate::results_path(&format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed for {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "count"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].contains("12345"));
    }
}

//! Scale-out soak benchmark (PR 10): sustained mixed load through the
//! `qr-hint route` consistent-hash router in front of two backend
//! daemons, all in-process over real TCP.
//!
//! Five phases, each answering one question about the serving tier:
//!
//! 1. **Parity** — is an advice response forwarded through the router
//!    byte-identical (status line included) to the same submission
//!    advised directly against the owning backend? The router must be
//!    a transparent placement layer, never a re-serializer.
//! 2. **Unloaded baseline** — single-client advise p50/p99/p999
//!    through the router; the denominator for the overload gate.
//! 3. **Steady mixed load** — several keep-alive clients driving the
//!    register/advise/grade mix the paper's classroom deployment
//!    implies (mostly advise, periodic batch grades, occasional new
//!    target registrations).
//! 4. **Overload** — offered load ≥ 2× the router's worker+queue
//!    capacity. The bounded dispatch queue must shed the excess as
//!    `429 Too Many Requests` while the *accepted* requests' p99 stays
//!    within 10× the unloaded p99 (the whole point of shedding: queues
//!    stay short, so latency stays bounded). Every request must be
//!    accounted for as ok, shed, or error — no silent drops.
//! 5. **Ingest** — a seeded [`qrhint_workloads::mutate`] fuzz corpus
//!    streamed through the advise route, surfacing registry-level
//!    cache behaviour under real traffic; then **failover**: one of
//!    the two backends is shut down mid-serve and the time until the
//!    router re-shards its targets onto the survivor and answers again
//!    is measured against the health-check interval.
//!
//! Latency-sensitive gates (overload ratio, failover budget) are
//! recorded as waived on hosts with < 4 cores, where router, backends,
//! clients and health prober all contend for the same core — same
//! policy as the PR 3/PR 8 scaling gates. Parity, shed accounting and
//! the fact of failover recovery are gated everywhere.
//!
//! Results land in `BENCH_soak.json` (run from the repo root:
//! `cargo run --release --bin exp_soak`).

use qr_hint::server::{
    Client, RegistryConfig, Router, RouterConfig, Server, ServerConfig, ServiceConfig,
};
use qrhint_workloads::mutate::Fuzzer;
use serde::Serialize;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// One load phase's aggregate measurement. Percentiles are over
/// *accepted* (non-429) requests — shed responses return in
/// microseconds and would make overload latency look better than it is.
#[derive(Debug, Clone, Serialize)]
pub struct SoakRow {
    /// `"unloaded"`, `"steady"`, `"overload"` or `"ingest"`.
    pub phase: String,
    /// Concurrent keep-alive clients.
    pub concurrency: usize,
    /// Total requests issued.
    pub requests: usize,
    /// `200`/`201`/`422` responses (422 = unsupported-fragment advise,
    /// a correct answer for some fuzzed mutants).
    pub ok: usize,
    /// `429` overload sheds.
    pub shed: usize,
    /// Transport errors and unexpected statuses.
    pub errors: usize,
    pub req_per_s: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    /// `shed / requests`.
    pub shed_rate: f64,
}

/// Knob block so the in-tree smoke test can run the whole topology in
/// seconds while the exp binary soaks properly.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    pub steady_clients: usize,
    pub steady_requests_per_client: usize,
    pub overload_clients: usize,
    pub overload_requests_per_client: usize,
    /// Fuzz pairs streamed in the ingest phase (the PR 4 corpus scale
    /// is 10⁴; `exp_soak --ingest` runs it in full).
    pub ingest_pairs: usize,
    pub health_interval: Duration,
    /// Router request workers — kept small and explicit so "capacity"
    /// (workers + queue) is a known constant the overload phase can
    /// deliberately exceed.
    pub router_workers: usize,
    /// Router bounded-queue depth.
    pub router_max_pending: usize,
    /// Corpus seed (`generate` is deterministic given seed + index).
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            steady_clients: 4,
            steady_requests_per_client: 120,
            overload_clients: 12,
            overload_requests_per_client: 60,
            ingest_pairs: 2_000,
            health_interval: Duration::from_millis(150),
            router_workers: 2,
            router_max_pending: 4,
            seed: 42,
        }
    }
}

/// The full benchmark artifact (`BENCH_soak.json`).
#[derive(Debug, Clone, Serialize)]
pub struct SoakReport {
    pub cores: usize,
    pub backends: usize,
    /// Targets registered through the router before load starts.
    pub targets: usize,
    pub rows: Vec<SoakRow>,
    /// Routed advice byte-identical to direct-to-backend advice.
    pub parity_ok: bool,
    pub unloaded_p99_ms: f64,
    pub overload_p99_ms: f64,
    /// `overload_p99_ms / unloaded_p99_ms`.
    pub overload_ratio: f64,
    pub overload_threshold: f64,
    pub overload_ok: bool,
    /// `429`s during the overload phase; must be nonzero (offered load
    /// exceeds capacity by construction) and every request accounted.
    pub overload_shed: usize,
    pub shed_accounted_ok: bool,
    /// The router answered for a target homed on the killed backend.
    pub failover_recovered: bool,
    pub failover_recovery_ms: f64,
    /// Probe cycles + re-registration headroom the recovery must fit.
    pub failover_budget_ms: f64,
    pub failover_ok: bool,
    pub health_interval_ms: u64,
    /// Backend registry counters after ingest (summed over backends):
    /// cache sheds and target evictions the corpus provoked.
    pub registry_shed_total: u64,
    pub registry_evicted_total: u64,
    /// Router→backend connection pool hit rate over the whole soak.
    pub pool_hit_rate: f64,
    pub gate_waived_low_cores: bool,
    pub gate_ok: bool,
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    serde_json::to_string(s).expect("string serializes")
}

/// Cheap structural extraction of a string field from a flat JSON
/// object — the same trick the throughput bench uses for `"id"`.
fn json_str_field(body: &str, key: &str) -> Option<String> {
    body.split(&format!("\"{key}\":\""))
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .map(str::to_string)
}

/// Extraction of a numeric field from a flat JSON object.
fn json_u64_field(body: &str, key: &str) -> Option<u64> {
    let rest = body.split(&format!("\"{key}\":")).nth(1)?;
    let digits: String = rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// One prepared request.
#[derive(Debug, Clone)]
struct Op {
    method: &'static str,
    path: String,
    body: String,
}

#[derive(Debug, Default)]
struct Tally {
    accepted_ms: Vec<f64>,
    ok: usize,
    shed: usize,
    errors: usize,
}

/// Drive `clients` threads through the shared op list (client `c`
/// starts at offset `c`, stride 1) and merge the tallies. Shed (`429`)
/// and transport errors drop the connection and reconnect — exactly
/// what a well-behaved client does after `Connection: close`.
fn blast(addr: SocketAddr, ops: &[Op], clients: usize, per_client: usize) -> (Tally, f64) {
    let started = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    let mut conn: Option<Client> = None;
                    for r in 0..per_client {
                        let op = &ops[(c + r) % ops.len()];
                        let mut client = match conn.take() {
                            Some(existing) => existing,
                            None => match Client::connect(addr) {
                                Ok(fresh) => fresh,
                                Err(_) => {
                                    tally.errors += 1;
                                    continue;
                                }
                            },
                        };
                        let t = Instant::now();
                        match client.request(op.method, &op.path, &op.body) {
                            Ok((status, _body)) => {
                                match status {
                                    200 | 201 | 422 => {
                                        tally.ok += 1;
                                        tally
                                            .accepted_ms
                                            .push(t.elapsed().as_secs_f64() * 1e3);
                                    }
                                    429 => tally.shed += 1,
                                    _ => tally.errors += 1,
                                }
                                if client.is_reusable() {
                                    conn = Some(client);
                                }
                            }
                            Err(_) => tally.errors += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("soak client panicked")).collect()
    });
    let wall_s = started.elapsed().as_secs_f64();
    let mut merged = Tally::default();
    for t in tallies {
        merged.accepted_ms.extend(t.accepted_ms);
        merged.ok += t.ok;
        merged.shed += t.shed;
        merged.errors += t.errors;
    }
    merged.accepted_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (merged, wall_s)
}

fn row(phase: &str, clients: usize, per_client: usize, tally: &Tally, wall_s: f64) -> SoakRow {
    let requests = clients * per_client;
    SoakRow {
        phase: phase.into(),
        concurrency: clients,
        requests,
        ok: tally.ok,
        shed: tally.shed,
        errors: tally.errors,
        req_per_s: requests as f64 / wall_s,
        p50_ms: percentile(&tally.accepted_ms, 0.50),
        p99_ms: percentile(&tally.accepted_ms, 0.99),
        p999_ms: percentile(&tally.accepted_ms, 0.999),
        shed_rate: tally.shed as f64 / requests as f64,
    }
}

fn request_ok(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    Client::connect(addr)
        .and_then(|mut c| c.request(method, path, body))
        .unwrap_or_else(|e| panic!("{method} {path}: {e}"))
}

// ---------------------------------------------------------------------------
// The benchmark
// ---------------------------------------------------------------------------

/// Run the full soak against a fresh in-process topology: two backend
/// daemons joined (not spawned — same process, real sockets) behind a
/// router.
pub fn run(cfg: &SoakConfig) -> SoakReport {
    let cores = crate::report::host_cores();
    let fuzzer = Fuzzer::for_schema("students").expect("students workload");
    let schema_ddl = fuzzer.schema().to_ddl();
    let corpus_len = cfg.ingest_pairs.max(256);
    let cases = fuzzer.generate(corpus_len, cfg.seed);

    // ---- Topology: two backends + router, all on ephemeral ports.
    let backend_cfg = || ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        service: ServiceConfig { jobs: 1, registry: RegistryConfig::default() },
        ..ServerConfig::default()
    };
    let b0 = Server::bind(backend_cfg()).expect("bind backend 0");
    let b1 = Server::bind(backend_cfg()).expect("bind backend 1");
    let backend_addrs = [b0.addr(), b1.addr()];
    let b0_thread = std::thread::spawn(move || b0.run());
    let b1_thread = std::thread::spawn(move || b1.run());

    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        backends: backend_addrs.to_vec(),
        health_interval: cfg.health_interval,
        workers: cfg.router_workers,
        max_pending: cfg.router_max_pending,
        ..RouterConfig::default()
    })
    .expect("start router");
    let router_addr = router.addr();
    let router_thread = std::thread::spawn(move || router.run());

    // ---- Register every base target through the router; remember each
    // gid's home backend for the parity and failover phases.
    let mut gid_of_base: Vec<(String, String, String)> = Vec::new(); // (base_id, gid, home)
    for (base_id, target) in fuzzer.bases() {
        let body = format!(
            "{{\"schema\": {}, \"target\": {}}}",
            json_escape(&schema_ddl),
            json_escape(&target.to_string())
        );
        let (status, resp) = request_ok(router_addr, "POST", "/targets", &body);
        assert_eq!(status, 201, "register {base_id} through router: {resp}");
        let gid = json_str_field(&resp, "id").expect("gid in register response");
        let home = json_str_field(&resp, "backend").expect("backend in register response");
        gid_of_base.push((base_id.clone(), gid, home));
    }
    let targets = gid_of_base.len();
    let gid_for = |base_id: &str| -> &str {
        &gid_of_base.iter().find(|(b, _, _)| b == base_id).expect("registered base").1
    };

    // ---- Phase 1: parity. Register the first base directly on its
    // home backend and compare direct vs routed advice byte-for-byte.
    let parity_case = &cases[0];
    let (base_id, gid, home) = gid_of_base
        .iter()
        .find(|(b, _, _)| *b == parity_case.base_id)
        .expect("case base registered")
        .clone();
    let home_addr: SocketAddr = home.parse().expect("backend addr");
    let reg_body = format!(
        "{{\"schema\": {}, \"target\": {}}}",
        json_escape(&schema_ddl),
        json_escape(&parity_case.target.to_string())
    );
    let (status, resp) = request_ok(home_addr, "POST", "/targets", &reg_body);
    assert_eq!(status, 201, "direct register {base_id}: {resp}");
    let local_id = json_str_field(&resp, "id").expect("local id");
    let advise_body = format!("{{\"sql\": {}}}", json_escape(&parity_case.working.to_string()));
    let direct = request_ok(home_addr, "POST", &format!("/targets/{local_id}/advise"), &advise_body);
    let routed = request_ok(router_addr, "POST", &format!("/targets/{gid}/advise"), &advise_body);
    let parity_ok = direct == routed;

    // ---- Shared op lists, derived from the corpus prefix.
    let advise_op = |case_idx: usize| -> Op {
        let case = &cases[case_idx % cases.len()];
        Op {
            method: "POST",
            path: format!("/targets/{}/advise", gid_for(&case.base_id)),
            body: format!("{{\"sql\": {}}}", json_escape(&case.working.to_string())),
        }
    };
    let advise_ops: Vec<Op> = (0..128).map(advise_op).collect();

    // ---- Phase 2: unloaded baseline (1 client, advise only).
    let (tally, wall_s) = blast(router_addr, &advise_ops, 1, 64);
    assert_eq!(tally.errors, 0, "unloaded phase saw transport errors");
    let unloaded = row("unloaded", 1, 64, &tally, wall_s);
    let unloaded_p99_ms = unloaded.p99_ms;

    // ---- Phase 3: steady mixed load. Every 10th op a 2-submission
    // grade batch, every 25th a fresh registration, advise otherwise.
    let steady_ops: Vec<Op> = (0..100)
        .map(|i| {
            if i % 25 == 24 {
                let (_, target) = &fuzzer.bases()[i % fuzzer.bases().len()];
                Op {
                    method: "POST",
                    path: "/targets".into(),
                    body: format!(
                        "{{\"schema\": {}, \"target\": {}}}",
                        json_escape(&schema_ddl),
                        json_escape(&target.to_string())
                    ),
                }
            } else if i % 10 == 9 {
                let a = &cases[i % cases.len()];
                let b = &cases[(i + 1) % cases.len()];
                Op {
                    method: "POST",
                    path: format!("/targets/{}/grade", gid_for(&a.base_id)),
                    body: format!(
                        "{{\"submissions\": [{}, {}]}}",
                        json_escape(&a.working.to_string()),
                        json_escape(&b.working.to_string())
                    ),
                }
            } else {
                advise_op(i)
            }
        })
        .collect();
    let (tally, wall_s) =
        blast(router_addr, &steady_ops, cfg.steady_clients, cfg.steady_requests_per_client);
    let steady = row("steady", cfg.steady_clients, cfg.steady_requests_per_client, &tally, wall_s);

    // ---- Phase 4: overload. Advise-only blast from enough clients to
    // exceed workers + queue (offered ≥ 2× capacity by construction).
    let capacity = cfg.router_workers + cfg.router_max_pending;
    assert!(
        cfg.overload_clients >= 2 * capacity,
        "overload clients ({}) must offer ≥ 2× router capacity ({capacity})",
        cfg.overload_clients
    );
    let (tally, wall_s) =
        blast(router_addr, &advise_ops, cfg.overload_clients, cfg.overload_requests_per_client);
    let overload =
        row("overload", cfg.overload_clients, cfg.overload_requests_per_client, &tally, wall_s);
    let overload_p99_ms = overload.p99_ms;
    let overload_shed = overload.shed;
    let shed_accounted_ok =
        overload.ok + overload.shed + overload.errors == overload.requests && overload.errors == 0;

    // ---- Phase 5a: ingest — stream the fuzz corpus through advise.
    let ingest_clients = 2;
    let per_client = cfg.ingest_pairs.div_ceil(ingest_clients);
    let ingest_ops: Vec<Op> = (0..cfg.ingest_pairs).map(advise_op).collect();
    let (tally, wall_s) = blast(router_addr, &ingest_ops, ingest_clients, per_client);
    let ingest = row("ingest", ingest_clients, per_client, &tally, wall_s);
    let mut registry_shed_total = 0;
    let mut registry_evicted_total = 0;
    for addr in backend_addrs {
        let (status, health) = request_ok(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        registry_shed_total += json_u64_field(&health, "shed_total").unwrap_or(0);
        registry_evicted_total += json_u64_field(&health, "evicted_total").unwrap_or(0);
    }

    // ---- Phase 5b: failover. Kill the backend homing the first base
    // gid if possible, else the other one; measure until the router
    // answers for a target that lived there.
    let victim_addr = backend_addrs[1];
    let moved_gid = gid_of_base
        .iter()
        .find(|(_, _, home)| home == &victim_addr.to_string())
        .map(|(_, gid, _)| gid.clone());
    let (status, _) = request_ok(victim_addr, "POST", "/shutdown", "");
    assert_eq!(status, 200, "backend shutdown");
    let killed_at = Instant::now();
    let probe_gid = moved_gid.unwrap_or_else(|| gid_of_base[0].1.clone());
    let probe_path = format!("/targets/{probe_gid}/advise");
    let probe_body = &advise_ops[0].body;
    let deadline = killed_at + Duration::from_secs(15);
    let mut failover_recovered = false;
    while Instant::now() < deadline {
        let answered = Client::connect(router_addr)
            .and_then(|mut c| c.request("POST", &probe_path, probe_body))
            .map(|(status, _)| status == 200 || status == 422)
            .unwrap_or(false);
        if answered {
            let (_, health) = request_ok(router_addr, "GET", "/healthz", "");
            if json_u64_field(&health, "healthy_backends") == Some(1) {
                failover_recovered = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let failover_recovery_ms = killed_at.elapsed().as_secs_f64() * 1e3;
    b1_thread.join().expect("backend 1 thread").expect("backend 1 run");

    // ---- Pool statistics before teardown.
    let (_, metrics) = request_ok(router_addr, "GET", "/metrics", "");
    let pool_hits = prom_counter(&metrics, "qrhint_router_pool_hits_total");
    let pool_checkouts = prom_counter(&metrics, "qrhint_router_pool_checkouts_total").max(1);
    let pool_hit_rate = pool_hits as f64 / pool_checkouts as f64;

    // ---- Teardown: drain router, then the surviving backend.
    let (status, _) = request_ok(router_addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    router_thread.join().expect("router thread").expect("router run");
    let (status, _) = request_ok(backend_addrs[0], "POST", "/shutdown", "");
    assert_eq!(status, 200);
    b0_thread.join().expect("backend 0 thread").expect("backend 0 run");

    let overload_threshold = 10.0;
    let overload_ratio =
        if unloaded_p99_ms > 0.0 { overload_p99_ms / unloaded_p99_ms } else { f64::INFINITY };
    let gate_waived_low_cores = cores < 4;
    let overload_ok = overload_ratio <= overload_threshold;
    let health_interval_ms = cfg.health_interval.as_millis() as u64;
    // Detection can take a full probe cycle; re-registering the moved
    // targets on the survivor costs target compilation on top.
    let failover_budget_ms = (4 * health_interval_ms + 1_000) as f64;
    let failover_ok = failover_recovered && failover_recovery_ms <= failover_budget_ms;
    let gate_ok = parity_ok
        && shed_accounted_ok
        && overload_shed > 0
        && failover_recovered
        && (overload_ok || gate_waived_low_cores)
        && (failover_ok || gate_waived_low_cores);
    SoakReport {
        cores,
        backends: backend_addrs.len(),
        targets,
        rows: vec![unloaded, steady, overload, ingest],
        parity_ok,
        unloaded_p99_ms,
        overload_p99_ms,
        overload_ratio,
        overload_threshold,
        overload_ok,
        overload_shed,
        shed_accounted_ok,
        failover_recovered,
        failover_recovery_ms,
        failover_budget_ms,
        failover_ok,
        health_interval_ms,
        registry_shed_total,
        registry_evicted_total,
        pool_hit_rate,
        gate_waived_low_cores,
        gate_ok,
    }
}

/// Sum a counter's samples (across label sets) out of a Prometheus
/// text exposition.
fn prom_counter(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .filter(|l| l.starts_with(name) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum::<f64>() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_counter_sums_label_sets() {
        let text = "# TYPE x counter\nx_total{a=\"1\"} 3\nx_total{a=\"2\"} 4\ny_total 9\n";
        assert_eq!(prom_counter(text, "x_total"), 7);
        assert_eq!(prom_counter(text, "y_total"), 9);
        assert_eq!(prom_counter(text, "z_total"), 0);
    }

    #[test]
    fn json_field_extraction() {
        let body = "{\"id\":\"t3\",\"backend\":\"127.0.0.1:9\",\"healthy_backends\":2}";
        assert_eq!(json_str_field(body, "id").as_deref(), Some("t3"));
        assert_eq!(json_str_field(body, "backend").as_deref(), Some("127.0.0.1:9"));
        assert_eq!(json_u64_field(body, "healthy_backends"), Some(2));
        assert_eq!(json_u64_field(body, "missing"), None);
    }

    /// A miniature end-to-end soak: tiny sizes, but the full topology —
    /// parity, shedding accounting, failover. The real numbers come
    /// from `exp_soak`.
    #[test]
    fn smoke_soak_runs_the_full_topology() {
        let report = run(&SoakConfig {
            steady_clients: 2,
            steady_requests_per_client: 15,
            overload_clients: 12,
            overload_requests_per_client: 15,
            ingest_pairs: 60,
            health_interval: Duration::from_millis(100),
            ..SoakConfig::default()
        });
        assert!(report.parity_ok, "routed advice must match direct advice");
        assert!(report.shed_accounted_ok);
        assert!(report.failover_recovered, "router never re-sharded after backend kill");
        assert_eq!(report.rows.len(), 4);
        assert!(report.rows.iter().all(|r| r.requests > 0));
    }
}

//! Incremental-solver benchmark (PR 8): what the push/pop assumption
//! stack, the per-node lowering memo, and shared-prefix candidate
//! batches buy on the cold path.
//!
//! One story, on the same 50-distinct-submission students/beers batches
//! as the oracle-cache benchmark: a **cold** batch graded with the
//! incremental assumption-stack solver (`incremental_solver: true`, the
//! default) against the same batch graded with the from-scratch solver
//! (`incremental_solver: false`, which retranslates the full conjunction
//! at every branch leaf and pruning stride — the O(depth²) theory work
//! this PR removed). Target compilation sits outside both timed windows
//! and the whole-advice cache is disabled for both modes, so the numbers
//! compare solver-layer work with solver-layer work.
//!
//! Parity is enforced on every rep: both modes must fingerprint equal to
//! a sequential baseline (the assumption stack may only *refine*
//! `Unknown` verdicts, and on these corpora every check is definitive).
//! The speedup gate (incremental ≥ [`SPEEDUP_GATE`]× from-scratch on
//! every workload) is recorded as waived, never met, on <4-core hosts
//! where a loaded shared host makes wall-clock ratios unreliable.
//! Results land in `BENCH_incremental.json` (run from the repo root:
//! `cargo run --release --bin exp_incremental`).

use crate::oracle_cache::workloads;
use crate::parallel_grading::fingerprint;
use qr_hint::prelude::*;
use qrhint_core::SessionStats;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// One (workload, solver-mode) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct IncrementalRow {
    pub workload: String,
    pub batch_size: usize,
    /// `"incremental"` (assumption stack) or `"from_scratch"`.
    pub mode: String,
    /// Min-of-reps wall-clock for the whole cold batch.
    pub ms: f64,
    pub throughput_per_s: f64,
    pub parity_ok: bool,
    /// Solver checks issued (identical across modes by construction —
    /// the stack changes *how* a check runs, not how many run).
    pub solver_calls: u64,
    /// Literals translated into the theory across the batch. From
    /// scratch retranslates the full conjunction at every full check;
    /// the stack pushes each branch literal once per edge — which side
    /// ends up smaller depends on how early quick conflicts prune, and
    /// the gap grows with formula depth (see the smt crate's linearity
    /// regression test for the asymptotic claim).
    pub theory_pushes: u64,
    pub theory_full_checks: u64,
    pub quick_conflicts: u64,
    /// Shared-prefix candidate batches and their member checks.
    pub equiv_batches: u64,
    pub equiv_batch_candidates: u64,
    /// Lowering-memo traffic (per-node tree extraction).
    pub lowering_memo_hits: u64,
    pub lowering_memo_misses: u64,
}

/// The full benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct IncrementalReport {
    /// Host hardware threads — context for every number below.
    pub cores: usize,
    pub rows: Vec<IncrementalRow>,
    /// Incremental-over-from-scratch cold speedup per workload.
    pub speedup_by_workload: BTreeMap<String, f64>,
    pub min_speedup: f64,
    /// Translation-work ratio per workload
    /// (from-scratch `theory_pushes` / incremental `theory_pushes`) —
    /// the machine-independent view of the same win.
    pub theory_work_ratio_by_workload: BTreeMap<String, f64>,
    /// The wall-clock gate: incremental ≥ this × from-scratch on every
    /// workload.
    pub speedup_gate: f64,
    pub speedup_ok: bool,
    /// True when the host has <4 cores and the speedup gate did not pass
    /// on its own: shared small hosts make wall-clock ratios unreliable,
    /// so the gate is recorded as waived, not met. The translation-work
    /// ratios above stay meaningful regardless.
    pub gate_waived_low_cores: bool,
    /// Speedup gate (or waiver) ∧ parity.
    pub gate_ok: bool,
    pub parity_ok: bool,
}

pub const SPEEDUP_GATE: f64 = 3.0;
const TIMED_REPS: usize = 3;

fn config(incremental: bool) -> QrHintConfig {
    QrHintConfig {
        advice_cache_capacity: 0,
        incremental_solver: incremental,
        ..QrHintConfig::default()
    }
}

/// Cold-batch min-of-reps for one solver mode: fresh target per rep,
/// compilation outside the window, parity checked on every rep.
fn measure_mode(
    workload: &str,
    schema: &Schema,
    target: &str,
    subs: &[String],
    incremental: bool,
    baseline: &[String],
) -> IncrementalRow {
    let qr = QrHint::with_config(schema.clone(), config(incremental));
    let mut parity = true;
    let mut stats = SessionStats::default();
    let mut best = f64::INFINITY;
    // Warmup rep (outside the measurement) plus timed reps; the
    // published stats always describe the last rep (each rep is a fresh
    // target, so every rep's counters are a full cold batch).
    for rep in 0..=TIMED_REPS {
        let prepared = qr.compile_target(target).expect("target compiles");
        let started = Instant::now();
        let out = prepared.grade_batch(subs);
        let ms = started.elapsed().as_secs_f64() * 1e3;
        if rep > 0 {
            best = best.min(ms);
        }
        parity &= fingerprint(&out) == baseline;
        stats = prepared.stats();
    }
    IncrementalRow {
        workload: workload.to_string(),
        batch_size: subs.len(),
        mode: if incremental { "incremental" } else { "from_scratch" }.to_string(),
        ms: best,
        throughput_per_s: subs.len() as f64 / (best / 1e3).max(1e-9),
        parity_ok: parity,
        solver_calls: stats.solver_calls,
        theory_pushes: stats.theory_pushes,
        theory_full_checks: stats.theory_full_checks,
        quick_conflicts: stats.quick_conflicts,
        equiv_batches: stats.equiv_batches,
        equiv_batch_candidates: stats.equiv_batch_candidates,
        lowering_memo_hits: stats.lowering_memo_hits,
        lowering_memo_misses: stats.lowering_memo_misses,
    }
}

/// Measure one workload in both solver modes.
pub fn run_workload(
    workload: &str,
    schema: &Schema,
    target: &str,
    subs: &[String],
) -> Vec<IncrementalRow> {
    // Baseline fingerprint from the default (incremental) configuration;
    // both timed modes must reproduce it byte-for-byte.
    let qr = QrHint::with_config(schema.clone(), config(true));
    let baseline = {
        let prepared = qr.compile_target(target).expect("target compiles");
        fingerprint(&prepared.grade_batch(subs))
    };
    vec![
        measure_mode(workload, schema, target, subs, true, &baseline),
        measure_mode(workload, schema, target, subs, false, &baseline),
    ]
}

/// Run the full benchmark (students + beers distinct batches).
pub fn run(batch_size: usize) -> IncrementalReport {
    let cores = crate::report::host_cores();
    let mut rows = Vec::new();
    for (name, schema, target, subs) in workloads(batch_size) {
        rows.extend(run_workload(&name, &schema, &target, &subs));
    }
    let mut speedup_by_workload = BTreeMap::new();
    let mut theory_work_ratio_by_workload = BTreeMap::new();
    for inc in rows.iter().filter(|r| r.mode == "incremental") {
        if let Some(fs) = rows
            .iter()
            .find(|r| r.mode == "from_scratch" && r.workload == inc.workload)
        {
            speedup_by_workload.insert(inc.workload.clone(), fs.ms / inc.ms.max(1e-9));
            theory_work_ratio_by_workload.insert(
                inc.workload.clone(),
                fs.theory_pushes as f64 / (inc.theory_pushes as f64).max(1.0),
            );
        }
    }
    let min_speedup = speedup_by_workload.values().copied().fold(f64::INFINITY, f64::min);
    let speedup_ok =
        !speedup_by_workload.is_empty() && speedup_by_workload.values().all(|s| *s >= SPEEDUP_GATE);
    let gate_waived_low_cores = cores < 4 && !speedup_ok;
    let parity_ok = rows.iter().all(|r| r.parity_ok);
    IncrementalReport {
        cores,
        rows,
        speedup_by_workload,
        min_speedup,
        theory_work_ratio_by_workload,
        speedup_gate: SPEEDUP_GATE,
        speedup_ok,
        gate_waived_low_cores,
        gate_ok: parity_ok && (speedup_ok || gate_waived_low_cores),
        parity_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_has_both_modes_and_parity() {
        let (name, schema, target, subs) = workloads(6).remove(1);
        let rows = run_workload(&name, &schema, &target, &subs);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.parity_ok), "{rows:?}");
        let inc = rows.iter().find(|r| r.mode == "incremental").unwrap();
        let fs = rows.iter().find(|r| r.mode == "from_scratch").unwrap();
        // The stack changes how a check runs, not how many run.
        assert_eq!(inc.solver_calls, fs.solver_calls, "{rows:?}");
        // Both modes must actually reach the theory; which one translates
        // fewer literals is workload-dependent (quick conflicts prune
        // different branches), so direction is reported, not asserted.
        assert!(inc.theory_pushes > 0 && fs.theory_pushes > 0, "{rows:?}");
        assert!(inc.equiv_batches > 0, "{inc:?}");
        assert!(inc.lowering_memo_misses > 0, "{inc:?}");
        // Timing is environment-dependent; structure and counters are
        // the invariants.
    }
}

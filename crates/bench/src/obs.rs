//! Instrumentation-overhead benchmark: batch grading with span tracing
//! **off** (the production default — one relaxed atomic load per
//! would-be span) vs **on** (every span recorded into the global
//! sink), on the same distinct-submission classroom batches as the
//! parallel-grading benchmark.
//!
//! Observability that taxes the hot path gets turned off in
//! production, after which it observes nothing. The acceptance gate is
//! therefore ≤5% wall-clock overhead with tracing fully enabled — the
//! worst case; the disabled path is strictly cheaper — and **advice
//! parity**: the instrumented runs must produce byte-identical advice
//! JSON to the uninstrumented baseline (instrumentation must never
//! change answers). Parity is a correctness gate and is never waived;
//! the overhead gate follows the repo's timing-gate idiom and is
//! recorded as waived (never claimed) on hosts with fewer than 4
//! cores, where scheduler noise dwarfs a 5% budget.
//!
//! Timing is min-of-reps with a fresh compiled target per rep (the
//! whole-advice cache would otherwise serve rep 2 from rep 1's
//! answers); the span sink is drained outside the timed window, so the
//! measured overhead is the recording cost grading actually pays, not
//! the drain cost only `--trace-out` pays.
//!
//! Results are persisted as `BENCH_obs.json` in the working directory
//! (run from the repo root: `cargo run --release --bin exp_obs`).

use crate::parallel_grading::{fingerprint, min_time_ms, workloads};
use qr_hint::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;

/// One (workload, mode) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ObsRow {
    pub workload: String,
    /// Distinct submissions graded against the one target.
    pub batch_size: usize,
    /// `"off"` (tracing disabled) or `"tracing"` (span recording on).
    pub mode: String,
    /// Min-of-reps wall-clock for the whole batch, compile included.
    pub ms: f64,
    pub throughput_per_s: f64,
    /// Span events recorded per repetition (0 with tracing off).
    pub span_events: u64,
    /// Advice-by-advice serde-JSON equality with the uninstrumented
    /// baseline (trivially true for the baseline row).
    pub parity_ok: bool,
}

/// The full benchmark artifact (`BENCH_obs.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ObsReport {
    /// Cores on the measuring host — context for the timing gate.
    pub cores: usize,
    pub rows: Vec<ObsRow>,
    /// Tracing-on wall-clock overhead vs the off baseline, percent,
    /// per workload (negative = within noise, faster).
    pub overhead_pct_by_workload: BTreeMap<String, f64>,
    pub max_overhead_pct: f64,
    /// The acceptance gate: tracing-on overhead ≤ this, percent.
    pub overhead_gate_pct: f64,
    /// Did every workload come in under the overhead gate?
    pub overhead_ok: bool,
    /// True when the host has fewer than 4 cores, where a 5% timing
    /// budget is indistinguishable from scheduler noise and the
    /// overhead gate is waived (never claimed).
    pub gate_waived_low_cores: bool,
    /// Instrumented advice JSON matched the baseline on every rep.
    /// Never waived.
    pub parity_ok: bool,
    /// `parity_ok` and (`overhead_ok` or waived on low-core hosts).
    pub gate_ok: bool,
}

const OVERHEAD_GATE_PCT: f64 = 5.0;

/// Measure one workload with tracing off, then on. Leaves global
/// tracing disabled and the span sink drained.
pub fn run_workload(
    workload: &str,
    schema: &Schema,
    target: &str,
    subs: &[String],
) -> Vec<ObsRow> {
    let qr = QrHint::new(schema.clone());
    let grade = || {
        // Fresh target per rep: no cross-rep cache leakage.
        let prepared = qr.compile_target(target).expect("target compiles");
        prepared.grade_batch(subs)
    };
    let throughput = |ms: f64| subs.len() as f64 / (ms / 1e3).max(1e-9);

    // Baseline: tracing off (and the sink clear of other runs' events).
    qrhint_obs::span::disable_tracing();
    let _ = qrhint_obs::span::take_events();
    let mut base_fp: Option<Vec<String>> = None;
    let mut base_parity = true;
    let base_ms = min_time_ms(grade, |advices| {
        let fp = fingerprint(advices);
        match &base_fp {
            None => base_fp = Some(fp),
            Some(first) => base_parity &= &fp == first,
        }
    });
    let base_fp = base_fp.expect("warmup rep ran");

    // Instrumented: every span records. The drain in the check closure
    // runs outside the timed window (see module docs) and keeps the
    // bounded sink from filling across reps.
    qrhint_obs::span::enable_tracing();
    let mut on_parity = true;
    let mut span_events = 0u64;
    let on_ms = min_time_ms(grade, |advices| {
        on_parity &= fingerprint(advices) == base_fp;
        let (events, dropped) = qrhint_obs::span::take_events();
        on_parity &= dropped == 0; // a lossy profile would undercount
        span_events = events.len() as u64;
    });
    qrhint_obs::span::disable_tracing();
    let _ = qrhint_obs::span::take_events();

    vec![
        ObsRow {
            workload: workload.to_string(),
            batch_size: subs.len(),
            mode: "off".to_string(),
            ms: base_ms,
            throughput_per_s: throughput(base_ms),
            span_events: 0,
            parity_ok: base_parity,
        },
        ObsRow {
            workload: workload.to_string(),
            batch_size: subs.len(),
            mode: "tracing".to_string(),
            ms: on_ms,
            throughput_per_s: throughput(on_ms),
            span_events,
            parity_ok: on_parity,
        },
    ]
}

/// Run the full comparison (students + beers distinct batches).
pub fn run(batch_size: usize) -> ObsReport {
    let cores = crate::report::host_cores();
    let mut rows = Vec::new();
    for (name, schema, target, subs) in workloads(batch_size) {
        rows.extend(run_workload(&name, &schema, &target, &subs));
    }
    let mut overhead_pct_by_workload = BTreeMap::new();
    for pair in rows.chunks(2) {
        let [off, on] = pair else { unreachable!("rows come in off/tracing pairs") };
        overhead_pct_by_workload
            .insert(off.workload.clone(), (on.ms / off.ms.max(1e-9) - 1.0) * 100.0);
    }
    let max_overhead_pct =
        overhead_pct_by_workload.values().copied().fold(f64::NEG_INFINITY, f64::max);
    let overhead_ok = max_overhead_pct <= OVERHEAD_GATE_PCT;
    let gate_waived_low_cores = cores < 4 && !overhead_ok;
    let parity_ok = rows.iter().all(|r| r.parity_ok);
    ObsReport {
        cores,
        rows,
        overhead_pct_by_workload,
        max_overhead_pct,
        overhead_gate_pct: OVERHEAD_GATE_PCT,
        overhead_ok,
        gate_waived_low_cores,
        parity_ok,
        gate_ok: parity_ok && (overhead_ok || gate_waived_low_cores),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test touches the process-global tracing switch; keeping it a
    // single test (not several) avoids cross-test interference without
    // a lock shared across crates.
    #[test]
    fn small_run_has_parity_and_records_spans() {
        let report = run(4);
        assert_eq!(report.rows.len(), 4, "{report:?}");
        assert!(report.parity_ok, "{report:?}");
        for pair in report.rows.chunks(2) {
            assert_eq!(pair[0].mode, "off");
            assert_eq!(pair[1].mode, "tracing");
            assert_eq!(pair[0].span_events, 0);
            assert!(
                pair[1].span_events > 0,
                "tracing rows must record spans: {pair:?}"
            );
        }
        assert!(!qrhint_obs::span::tracing_enabled(), "run() must leave tracing off");
        // Timing is environment-dependent; parity + span presence are
        // the invariants a debug-profile test can hold.
    }
}

//! Oracle-cache benchmark (PR 5): what the hash-consed interner and the
//! shared cross-slot verdict cache buy on the hottest path.
//!
//! Two stories, on the same 50-distinct-submission students/beers
//! batches as the parallel-grading benchmark:
//!
//! 1. **Cold vs hot advise latency.** A fresh prepared target grades the
//!    batch (cold: every verdict is a solver run), then grades it again
//!    (hot: stage memos + the shared verdict cache answer). Target
//!    compilation sits *outside* both timed windows, so the numbers
//!    compare advise latency with advise latency, and the whole-advice
//!    duplicate cache is *disabled* for both passes — it would
//!    otherwise serve the hot pass from PR 2's memo layer and mask the
//!    solver-layer caches this PR rebuilt. The gate is that hot advise
//!    is **no slower than cold** (threshold 1.0× with measurement noise
//!    absorbed by min-of-reps). This is a same-host *proxy* for the
//!    "no slower than the PR 4 baseline" acceptance criterion — PR 4's
//!    binaries cannot be rebuilt in this run; its per-slot tree-keyed
//!    caches sat between today's cold (no verdict reuse) and hot (full
//!    reuse), so a hot pass regressing below cold would necessarily
//!    also regress below that baseline.
//! 2. **Shared-verdict hit rates at 1/4/8 threads.** Fresh target per
//!    job count; after the batch, the target's [`SessionStats`] report
//!    the shared-cache hit rate and — the new capability — hits on
//!    verdicts *other threads* paid for. Cross-thread hits need ≥2
//!    slots to exist, which needs claim contention; each job count
//!    retries on a fresh target a bounded number of rounds, and the
//!    cross-hit gate is waived (recorded, never claimed) on <4-core
//!    hosts where the scheduler may never force a second slot.
//!
//! Parity is enforced on every rep: all passes must fingerprint equal to
//! the sequential baseline. Results land in `BENCH_oracle_cache.json`
//! (run from the repo root: `cargo run --release --bin exp_oracle_cache`).

use crate::parallel_grading::{dedupe, fingerprint};
use crate::session_api;
use qr_hint::prelude::*;
use qrhint_core::SessionStats;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// One (workload, mode, jobs) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct OracleCacheRow {
    pub workload: String,
    pub batch_size: usize,
    /// `"cold"` (fresh target) or `"hot"` (same target, second pass) for
    /// the latency story; `"parallel"` for the hit-rate story.
    pub mode: String,
    pub jobs: usize,
    /// Min-of-reps wall-clock for the whole batch.
    pub ms: f64,
    pub throughput_per_s: f64,
    pub parity_ok: bool,
    /// Shared-verdict-cache counters after the measured pass.
    pub verdict_hits: u64,
    pub verdict_misses: u64,
    pub cross_thread_hits: u64,
    /// `hits / (hits + misses)` — 0 when no solver calls ran.
    pub hit_rate: f64,
    /// Interner occupancy after the pass (dedup proof).
    pub interned_formulas: u64,
    pub interner_dedup_hits: u64,
}

/// The full benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct OracleCacheReport {
    /// Host hardware threads — context for every number below.
    pub cores: usize,
    pub rows: Vec<OracleCacheRow>,
    /// Hot-over-cold speedup per workload (latency story).
    pub hot_speedup_by_workload: BTreeMap<String, f64>,
    pub best_hot_speedup: f64,
    /// The latency gate: hot ≥ this × cold throughput (i.e. hot advise
    /// no slower than cold).
    pub hot_gate_threshold: f64,
    pub hot_not_slower_ok: bool,
    /// Cross-thread shared-verdict hits observed at `--jobs 8`.
    pub cross_thread_hits_at_8: u64,
    /// Shared-cache hit rate at `--jobs 8`.
    pub hit_rate_at_8: f64,
    /// Did some 8-thread round reuse another thread's verdict?
    pub cross_hits_at_8_ok: bool,
    /// True when the host has <4 cores and the cross-hit gate did not
    /// pass on its own: slot growth needs scheduler-dependent claim
    /// contention there, so the gate is recorded as waived, not met.
    pub gate_waived_low_cores: bool,
    /// Latency gate ∧ (cross-hit gate ∨ waiver).
    pub gate_ok: bool,
    pub parity_ok: bool,
}

const HOT_GATE_THRESHOLD: f64 = 1.0;
const TIMED_REPS: usize = 3;
/// Bounded retries for the scheduling-dependent cross-thread hits.
const CROSS_HIT_ROUNDS: usize = 5;

/// Advice-cache-free config: both latency passes and the hit-rate runs
/// must exercise the solver-layer caches, not PR 2's whole-advice memo.
fn config() -> QrHintConfig {
    QrHintConfig { advice_cache_capacity: 0, ..QrHintConfig::default() }
}

fn hit_rate(stats: &SessionStats) -> f64 {
    let total = stats.verdict_cache_hits + stats.verdict_cache_misses;
    if total == 0 {
        0.0
    } else {
        stats.verdict_cache_hits as f64 / total as f64
    }
}

/// The distinct-submission workloads (shared with the parallel bench).
pub fn workloads(batch_size: usize) -> Vec<(String, Schema, String, Vec<String>)> {
    let (schema, target, subs) = session_api::students_batch(batch_size * 2);
    let mut subs = dedupe(subs);
    subs.truncate(batch_size);
    let students = ("students-b".to_string(), schema, target, subs);
    let (schema, target, subs) = session_api::beers_batch(batch_size * 2);
    let mut subs = dedupe(subs);
    subs.truncate(batch_size);
    let beers = ("beers-inject-c".to_string(), schema, target, subs);
    vec![students, beers]
}

/// Min-of-reps over a run that measures its own window (so setup like
/// target compilation stays outside the timed region), with `check`
/// invoked on every rep's output (warmup included) outside the timing.
fn min_inner_ms<T>(
    reps: usize,
    mut run: impl FnMut() -> (f64, T),
    mut check: impl FnMut(&T),
) -> f64 {
    let (_, out) = run(); // warmup outside the measurement
    check(&out);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (ms, out) = run();
        best = best.min(ms);
        check(&out);
    }
    best
}

fn row(
    workload: &str,
    batch: usize,
    mode: &str,
    jobs: usize,
    ms: f64,
    parity_ok: bool,
    stats: &SessionStats,
) -> OracleCacheRow {
    OracleCacheRow {
        workload: workload.to_string(),
        batch_size: batch,
        mode: mode.to_string(),
        jobs,
        ms,
        throughput_per_s: batch as f64 / (ms / 1e3).max(1e-9),
        parity_ok,
        verdict_hits: stats.verdict_cache_hits,
        verdict_misses: stats.verdict_cache_misses,
        cross_thread_hits: stats.verdict_cache_cross_thread_hits,
        hit_rate: hit_rate(stats),
        interned_formulas: stats.interned_formulas,
        interner_dedup_hits: stats.interner_dedup_hits,
    }
}

/// Measure one workload: the cold/hot latency pair plus the 1/4/8-thread
/// hit-rate runs.
pub fn run_workload(
    workload: &str,
    schema: &Schema,
    target: &str,
    subs: &[String],
) -> Vec<OracleCacheRow> {
    let qr = QrHint::with_config(schema.clone(), config());
    let baseline = {
        let prepared = qr.compile_target(target).expect("target compiles");
        fingerprint(&prepared.grade_batch(subs))
    };
    let mut rows = Vec::new();

    // ---- Latency story: cold vs hot on one resident target ----
    // Target compilation happens *outside* the timed window on both
    // sides: the comparison is advise latency vs advise latency, so the
    // hot-not-slower gate measures the solver-layer caches, not the
    // (constant) compile cost a fresh target pays either way.
    let mut cold_parity = true;
    let mut cold_stats = SessionStats::default();
    let cold_ms = min_inner_ms(
        TIMED_REPS,
        || {
            let prepared = qr.compile_target(target).expect("target compiles");
            let started = Instant::now();
            let out = prepared.grade_batch(subs);
            let ms = started.elapsed().as_secs_f64() * 1e3;
            (ms, (prepared.stats(), out))
        },
        |(stats, out)| {
            cold_parity &= fingerprint(out) == baseline;
            cold_stats = *stats;
        },
    );
    rows.push(row(workload, subs.len(), "cold", 1, cold_ms, cold_parity, &cold_stats));

    let resident = qr.compile_target(target).expect("target compiles");
    resident.grade_batch(subs); // warm the memo layers
    let mut hot_parity = true;
    let mut hot_stats = SessionStats::default();
    let hot_ms = min_inner_ms(
        TIMED_REPS,
        || {
            let started = Instant::now();
            let out = resident.grade_batch(subs);
            (started.elapsed().as_secs_f64() * 1e3, out)
        },
        |out| {
            hot_parity &= fingerprint(out) == baseline;
            hot_stats = resident.stats();
        },
    );
    rows.push(row(workload, subs.len(), "hot", 1, hot_ms, hot_parity, &hot_stats));

    // ---- Hit-rate story: fresh target per job count ----
    for jobs in [1usize, 4, 8] {
        let mut parity_all = true;
        let mut final_ms = f64::INFINITY;
        let mut final_stats = SessionStats::default();
        for _round in 0..CROSS_HIT_ROUNDS {
            let prepared = qr.compile_target(target).expect("target compiles");
            let started = Instant::now();
            let out = prepared.grade_batch_parallel(subs, jobs);
            // The published (ms, stats) pair always describes the same
            // round — the one the loop settles on — so the hit rate and
            // cross-thread counters explain exactly the latency shown.
            final_ms = started.elapsed().as_secs_f64() * 1e3;
            parity_all &= fingerprint(&out) == baseline;
            final_stats = prepared.stats();
            // Cross-thread hits are scheduling-dependent; retry fresh
            // targets until one round shows them (or the bound hits).
            if jobs == 1 || final_stats.verdict_cache_cross_thread_hits > 0 {
                break;
            }
        }
        rows.push(row(workload, subs.len(), "parallel", jobs, final_ms, parity_all, &final_stats));
    }
    rows
}

/// Run the full benchmark (students + beers distinct batches).
pub fn run(batch_size: usize) -> OracleCacheReport {
    let cores = crate::report::host_cores();
    let mut rows = Vec::new();
    for (name, schema, target, subs) in workloads(batch_size) {
        rows.extend(run_workload(&name, &schema, &target, &subs));
    }
    let mut hot_speedup_by_workload = BTreeMap::new();
    for w in rows.iter().filter(|r| r.mode == "cold") {
        if let Some(hot) = rows
            .iter()
            .find(|r| r.mode == "hot" && r.workload == w.workload)
        {
            hot_speedup_by_workload
                .insert(w.workload.clone(), w.ms / hot.ms.max(1e-9));
        }
    }
    let best_hot_speedup =
        hot_speedup_by_workload.values().copied().fold(0.0, f64::max);
    // The gate reads "no slower", so *every* workload must clear it.
    let hot_not_slower_ok = hot_speedup_by_workload
        .values()
        .all(|s| *s >= HOT_GATE_THRESHOLD);
    let at_8: Vec<&OracleCacheRow> =
        rows.iter().filter(|r| r.mode == "parallel" && r.jobs == 8).collect();
    let cross_thread_hits_at_8 = at_8.iter().map(|r| r.cross_thread_hits).sum();
    let hit_rate_at_8 = at_8
        .iter()
        .map(|r| r.hit_rate)
        .fold(0.0, f64::max);
    let cross_hits_at_8_ok = cross_thread_hits_at_8 > 0;
    let gate_waived_low_cores = cores < 4 && !cross_hits_at_8_ok;
    let parity_ok = rows.iter().all(|r| r.parity_ok);
    OracleCacheReport {
        cores,
        rows,
        hot_speedup_by_workload,
        best_hot_speedup,
        hot_gate_threshold: HOT_GATE_THRESHOLD,
        hot_not_slower_ok,
        cross_thread_hits_at_8,
        hit_rate_at_8,
        cross_hits_at_8_ok,
        gate_waived_low_cores,
        gate_ok: hot_not_slower_ok && (cross_hits_at_8_ok || gate_waived_low_cores),
        parity_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_has_all_modes_and_parity() {
        let (name, schema, target, subs) = workloads(6).remove(1);
        let rows = run_workload(&name, &schema, &target, &subs);
        // cold + hot + jobs {1,4,8}.
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.parity_ok), "{rows:?}");
        let hot = rows.iter().find(|r| r.mode == "hot").unwrap();
        assert!(
            hot.verdict_hits > 0,
            "hot pass must be answered by the shared cache: {hot:?}"
        );
        let cold = rows.iter().find(|r| r.mode == "cold").unwrap();
        assert!(cold.interned_formulas > 0);
        // Timing is environment-dependent; structure and counters are
        // the invariants.
    }
}

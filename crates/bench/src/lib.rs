//! # qrhint-bench
//!
//! The experiment harness regenerating every table and figure of the
//! Qr-Hint paper's evaluation (§9) and user study (§10). Each experiment
//! has a library function (reused by the Criterion benches) and a binary
//! that prints the paper-shaped rows and emits machine-readable JSON
//! next to them:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `exp_students` | §9.1 Students+ coverage, App. Tables 4–5 (E1/E10/E11) |
//! | `exp_fig2` | Figure 2a/2b — conjunctive WHERE, 4–11 atoms |
//! | `exp_fig3` | Figure 3a/3b — nested AND/OR, 1–5 errors |
//! | `exp_fig4` | Figure 4a/4b — cost-over-time traces |
//! | `exp_user_study` | Figures 5–6 — simulated-participant replay |
//! | `exp_dblp_hints` | App. Tables 2–3 — study hints regeneration |
//! | `exp_session_api` | Session API: cold vs prepared-target grading (`BENCH_session_api.json`) |
//! | `exp_parallel_grading` | Worker-pool batch grading: sequential vs 2/4/8 threads (`BENCH_parallel_grading.json`) |
//! | `exp_server_throughput` | `qr-hint serve` daemon: req/s + p50/p99, cold vs hot target, 1/4/8 clients (`BENCH_server_throughput.json`) |
//! | `exp_oracle_cache` | Interned oracle: cold vs hot advise, shared-verdict hit rates at 1/4/8 threads (`BENCH_oracle_cache.json`) |
//! | `exp_fuzz` | Mutation-fuzz grading: pairs/sec at 1/4/8 threads + verdict-cache eviction cliff (`BENCH_fuzz.json`) |
//! | `exp_analyze` | Static analyzer: corpus throughput + interval-prescreen ablation on a contradiction-seeded batch (`BENCH_analyze.json`) |
//! | `exp_incremental` | Incremental solver: push/pop assumption stack vs from-scratch, verdict parity enforced (`BENCH_incremental.json`) |
//! | `exp_obs` | Telemetry overhead: batch grading with span tracing off vs on, ≤5% wall-clock + advice parity (`BENCH_obs.json`) |
//! | `exp_soak` | Scale-out serving soak: router + 2 backends, mixed load, overload shedding, fuzz-corpus ingest, failover recovery (`BENCH_soak.json`) |

#![forbid(unsafe_code)]

pub mod analyze;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fuzz;
pub mod incremental;
pub mod obs;
pub mod oracle_cache;
pub mod parallel_grading;
pub mod report;
pub mod server_throughput;
pub mod session_api;
pub mod soak;
pub mod students_exp;
pub mod userstudy;

/// Default output directory for experiment artifacts.
pub const RESULTS_DIR: &str = "target/experiments";

/// Ensure the results directory exists and return the path for a file.
pub fn results_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(RESULTS_DIR);
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

//! Figure 3 (a: repair cost, b: running time): TPC-H Q7's nested AND/OR
//! WHERE with 1–5 injected errors, `DeriveFixes` vs `DeriveFixesOPT`
//! (both capped at two repair sites, as in the paper).

use qrhint_core::repair::{repair_where, FixStrategy, RepairConfig};
use qrhint_core::Oracle;
use qrhint_workloads::{inject, tpch};
use serde::Serialize;

/// One measurement row.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    pub errors: usize,
    pub strategy: String,
    pub cost: f64,
    pub nsites: usize,
    /// Whole-predicate repair selected (the 4–5 error degradation the
    /// paper reports).
    pub whole_predicate: bool,
    pub total_time_ms: f64,
    pub viable_repairs_seen: usize,
}

/// Run the Figure-3 experiment for `errors` in `1..=max_errors`.
pub fn run(max_errors: usize, seed: u64) -> Vec<Fig3Row> {
    let target = tpch::q7_nested();
    let mut rows = Vec::new();
    for errors in 1..=max_errors {
        let (wrong, _) = inject::inject_mixed_errors(&target, errors, seed + errors as u64);
        for (strategy, label) in
            [(FixStrategy::Basic, "DeriveFixes"), (FixStrategy::Optimized, "DeriveFixesOPT")]
        {
            let cfg = RepairConfig {
                strategy,
                collect_trace: true,
                ..RepairConfig::default()
            };
            let mut oracle = Oracle::for_preds(&[&wrong, &target]);
            let outcome = repair_where(&mut oracle, &[], &wrong, &target, &cfg);
            let repair = outcome.repair.as_ref();
            rows.push(Fig3Row {
                errors,
                strategy: label.to_string(),
                cost: outcome.cost,
                nsites: repair.map(|r| r.sites.len()).unwrap_or(0),
                whole_predicate: repair
                    .map(|r| r.sites.len() == 1 && r.sites[0].is_empty())
                    .unwrap_or(false),
                total_time_ms: outcome.total_time.as_secs_f64() * 1e3,
                viable_repairs_seen: outcome.trace.len(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_error_both_strategies_find_single_site() {
        // Lemma 5.2 / Figure 3a at x = 1: a single injected error admits a
        // single-site optimal repair, found by both strategies.
        let rows = run(1, 0xF3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.cost.is_finite(),
                "{}: no repair found for 1 error",
                r.strategy
            );
            assert!(r.nsites >= 1);
        }
        // Both strategies agree on cost at a single site.
        assert!((rows[0].cost - rows[1].cost).abs() < 1e-9);
    }

    #[test]
    #[ignore = "multi-second solver sweep; covered by exp_fig3"]
    fn opt_no_worse_than_basic_at_two_errors() {
        let rows = run(2, 0xF3);
        let two: Vec<&Fig3Row> = rows.iter().filter(|r| r.errors == 2).collect();
        let basic = two.iter().find(|r| r.strategy == "DeriveFixes").unwrap();
        let opt = two.iter().find(|r| r.strategy == "DeriveFixesOPT").unwrap();
        assert!(opt.cost <= basic.cost + 1e-9);
    }
}

//! Session-API benchmark: cold per-call grading vs. prepared-target
//! batch grading.
//!
//! The deployment scenario is one hidden target graded against a
//! classroom's worth of submissions. The **cold** baseline calls the
//! stateless [`QrHint::advise_sql`] per submission — re-parsing,
//! re-resolving and re-lowering the target, and re-deriving the table
//! mapping, every time. The **prepared** path compiles the target once
//! ([`QrHint::compile_target`]) and grades the same batch through
//! [`qrhint_core::PreparedTarget::grade_batch`], engaging the session
//! memo layers (per-FROM-binding oracle + mapping reuse, duplicate-
//! submission advice cache).
//!
//! Results are persisted as `BENCH_session_api.json` in the working
//! directory (run from the repo root: `cargo run --release --bin
//! exp_session_api`).

use qr_hint::prelude::*;
use qrhint_workloads::{beers, inject, students};
use serde::Serialize;
use std::time::Instant;

/// One workload's cold-vs-prepared comparison.
#[derive(Debug, Clone, Serialize)]
pub struct SessionApiRow {
    pub workload: String,
    /// Number of submissions graded against the one target.
    pub batch_size: usize,
    /// Submissions that graded as equivalent (sanity: identical across
    /// both paths).
    pub equivalent: usize,
    pub cold_ms: f64,
    pub prepared_ms: f64,
    /// `cold_ms / prepared_ms`.
    pub speedup: f64,
    /// Session counters after the prepared run.
    pub prepared_stats: SessionStats,
}

/// The full benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct SessionApiReport {
    pub rows: Vec<SessionApiRow>,
    /// The acceptance gate: prepared-target batch grading must beat the
    /// cold loop by ≥ 2× on the 50-submission students batch.
    pub students_speedup: f64,
    pub students_speedup_ok: bool,
}

/// The students-workload batch: one question's target and up to
/// `cap` supported submissions against it (question (b) of the
/// Students+ corpus, its largest — every entry shares the same hidden
/// target, the shape of a real grading run).
pub fn students_batch(cap: usize) -> (Schema, String, Vec<String>) {
    let mut target = None;
    let mut all = Vec::new();
    for e in students::corpus() {
        if e.question != "b" || e.category == "UNSUPPORTED" {
            continue;
        }
        target.get_or_insert_with(|| e.pair.target_sql.clone());
        all.push(e.pair.working_sql.clone());
    }
    // The corpus generator emits entries grouped by error category
    // (FROM, then WHERE, …, SELECT); sample uniformly across the whole
    // question so the batch carries the corpus's Table-4 category mix
    // instead of the first category only.
    let n = all.len();
    let subs: Vec<String> =
        (0..cap.min(n)).map(|i| all[i * n / cap.min(n)].clone()).collect();
    (students::schema(), target.expect("question (b) has entries"), subs)
}

/// The beers-workload batch: fault-injected variants of one course
/// question (deterministic seeds), the shape of the §9 robustness
/// experiments.
pub fn beers_batch(cap: usize) -> (Schema, String, Vec<String>) {
    let schema = beers::course_schema();
    let target_sql = beers::course_questions()
        .into_iter()
        .find(|(id, _)| *id == "c")
        .map(|(_, sql)| sql.to_string())
        .expect("question (c) exists");
    let target = parse_query(&target_sql).expect("target parses");
    let mut subs = Vec::new();
    'outer: for seed in 0..u64::MAX {
        for k in 1..=2usize {
            if subs.len() >= cap {
                break 'outer;
            }
            let (broken, _) = inject::inject_atom_errors(&target.where_pred, k, seed);
            let mut wrong = target.clone();
            wrong.where_pred = broken;
            subs.push(wrong.to_string());
        }
    }
    (schema, target_sql, subs)
}

/// Warmup + timed repetitions, keeping the minimum (the standard
/// noise-robust estimator for short wall-clock measurements).
const TIMED_REPS: usize = 5;

fn min_time_ms<T>(mut run: impl FnMut() -> T) -> (f64, T) {
    run(); // warmup: page-faults, allocator growth
    let mut best: Option<(f64, T)> = None;
    for _ in 0..TIMED_REPS {
        let started = Instant::now();
        let out = run();
        let ms = started.elapsed().as_secs_f64() * 1e3;
        if best.as_ref().is_none_or(|(b, _)| ms < *b) {
            best = Some((ms, out));
        }
    }
    best.expect("at least one rep")
}

fn grade_cold(schema: &Schema, target: &str, subs: &[String]) -> (f64, usize) {
    let qr = QrHint::new(schema.clone());
    min_time_ms(|| {
        let mut equivalent = 0usize;
        for sub in subs {
            if let Ok(advice) = qr.advise_sql(target, sub) {
                if advice.is_equivalent() {
                    equivalent += 1;
                }
            }
        }
        equivalent
    })
}

fn grade_prepared(
    schema: &Schema,
    target: &str,
    subs: &[String],
) -> (f64, usize, SessionStats) {
    let qr = QrHint::new(schema.clone());
    let (ms, (equivalent, stats)) = min_time_ms(|| {
        // Each rep compiles its own target: the point is to time the
        // whole prepared path, compilation included.
        let prepared = qr.compile_target(target).expect("target compiles");
        let advices = prepared.grade_batch(subs);
        let equivalent = advices
            .iter()
            .filter(|a| a.as_ref().is_ok_and(|a| a.is_equivalent()))
            .count();
        (equivalent, prepared.stats())
    });
    (ms, equivalent, stats)
}

/// Grade one workload both ways and compare.
pub fn run_workload(
    workload: &str,
    schema: &Schema,
    target: &str,
    subs: &[String],
) -> SessionApiRow {
    let (cold_ms, cold_equivalent) = grade_cold(schema, target, subs);
    let (prepared_ms, prepared_equivalent, prepared_stats) =
        grade_prepared(schema, target, subs);
    assert_eq!(
        cold_equivalent, prepared_equivalent,
        "{workload}: prepared grading must agree with the cold loop"
    );
    SessionApiRow {
        workload: workload.to_string(),
        batch_size: subs.len(),
        equivalent: prepared_equivalent,
        cold_ms,
        prepared_ms,
        speedup: cold_ms / prepared_ms.max(1e-9),
        prepared_stats,
    }
}

/// Run the full comparison (students + beers workloads).
pub fn run(batch_size: usize) -> SessionApiReport {
    let (schema, target, subs) = students_batch(batch_size);
    let students_row = run_workload("students-b", &schema, &target, &subs);
    let (schema, target, subs) = beers_batch(batch_size);
    let beers_row = run_workload("beers-inject-c", &schema, &target, &subs);
    let students_speedup = students_row.speedup;
    SessionApiReport {
        rows: vec![students_row, beers_row],
        students_speedup,
        students_speedup_ok: students_speedup >= 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_submissions_and_agree() {
        let (schema, target, subs) = students_batch(8);
        assert_eq!(subs.len(), 8);
        let row = run_workload("students-b", &schema, &target, &subs);
        assert_eq!(row.batch_size, 8);
        // Timing is environment-dependent; agreement is asserted inside
        // run_workload. The memo layers must at least have engaged.
        assert!(row.prepared_stats.advise_calls >= 8);
    }

    #[test]
    fn beers_batch_is_deterministic() {
        let (_, _, a) = beers_batch(10);
        let (_, _, b) = beers_batch(10);
        assert_eq!(a, b);
    }
}

//! `qr-hint serve` throughput benchmark: requests/sec and latency
//! percentiles against an in-process daemon over real TCP.
//!
//! Two questions, mirroring the registry's reason to exist:
//!
//! 1. **Cold vs hot** — how much does target *residency* buy? "Cold" is
//!    a register + first advise (what every one-shot CLI invocation
//!    pays: target compilation included); "hot" is the steady-state
//!    advise latency once the prepared target's memo layers are warm.
//! 2. **Concurrency** — does throughput scale with concurrent clients
//!    hammering one target? 1/4/8 keep-alive clients, per-request
//!    latencies recorded for p50/p99.
//!
//! Advice parity is enforced along the way: every response observed at
//! 4 or 8 clients must be byte-identical to the single-client response
//! for the same submission.
//!
//! Gates (recorded in `BENCH_server_throughput.json`):
//! * residency: hot p50 must beat the cold first request by ≥ 2× — this
//!   holds on any host, it measures caching, not parallelism;
//! * scaling: 4-client throughput ≥ 1.5× 1-client throughput — needs
//!   real hardware parallelism, so on hosts with < 4 cores it is
//!   recorded as **waived** (`cores`/`gate_waived_low_cores`), exactly
//!   like the PR 3 parallel-grading gate.

use crate::session_api;
use qr_hint::server::{Client, RegistryConfig, Server, ServerConfig, ServiceConfig};
use serde::Serialize;
use std::net::SocketAddr;
use std::time::Instant;

/// One (mode, concurrency) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ServerThroughputRow {
    /// `"cold"` (register + first advise) or `"hot"` (steady state).
    pub mode: String,
    /// Concurrent keep-alive clients.
    pub concurrency: usize,
    /// Total requests measured.
    pub requests: usize,
    pub req_per_s: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// One latency schema across BENCH files: `BENCH_soak.json` rows
    /// carry p999 too, and the PR 9 histograms already resolve it.
    pub p999_ms: f64,
}

/// The full benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct ServerThroughputReport {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub cores: usize,
    /// Distinct submissions in the advise mix.
    pub submissions: usize,
    pub rows: Vec<ServerThroughputRow>,
    /// Register + first advise, min over repetitions (ms).
    pub cold_first_request_ms: f64,
    /// Steady-state p50 at one client (ms).
    pub hot_p50_ms: f64,
    /// `cold_first_request_ms / hot_p50_ms`.
    pub residency_speedup: f64,
    pub residency_threshold: f64,
    pub residency_ok: bool,
    /// 4-client over 1-client throughput.
    pub scaling_at_4_clients: f64,
    pub scaling_threshold: f64,
    pub scaling_ok: bool,
    /// The scaling gate needs ≥ 4 hardware threads; under that it is
    /// recorded as waived rather than failed.
    pub gate_waived_low_cores: bool,
    /// Responses at 4/8 clients byte-identical to the 1-client ones.
    pub parity_ok: bool,
    /// Overall verdict the exp binary exits on.
    pub gate_ok: bool,
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(addr).expect("connect to bench server")
}

fn json_escape(s: &str) -> String {
    serde_json::to_string(s).expect("string serializes")
}

fn register(addr: SocketAddr, schema_ddl: &str, target_sql: &str) -> String {
    let body = format!(
        "{{\"schema\": {}, \"target\": {}}}",
        json_escape(schema_ddl),
        json_escape(target_sql)
    );
    let (status, resp) =
        connect(addr).request("POST", "/targets", &body).expect("register request");
    assert_eq!(status, 201, "register failed: {resp}");
    // `{"id":"tN","evicted":[...]}` — cheap structural extraction.
    resp.split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| panic!("no id in {resp}"))
        .to_string()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Per-client measurement: request latencies plus (submission index,
/// response) pairs for cross-client parity checks.
type ClientRun = (Vec<f64>, Vec<(usize, String)>);

/// One concurrency level: `clients` threads, each issuing
/// `requests_per_client` advises round-robin over the submission mix on
/// one keep-alive connection. Returns (row, responses-by-submission).
fn run_level(
    addr: SocketAddr,
    target_id: &str,
    bodies: &[String],
    clients: usize,
    requests_per_client: usize,
) -> (ServerThroughputRow, Vec<String>) {
    let path = format!("/targets/{target_id}/advise");
    let started = Instant::now();
    let per_client: Vec<ClientRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let path = &path;
                scope.spawn(move || {
                    let mut client = connect(addr);
                    let mut latencies = Vec::with_capacity(requests_per_client);
                    let mut responses = Vec::new();
                    for r in 0..requests_per_client {
                        let i = (c + r) % bodies.len();
                        let t = Instant::now();
                        let (status, resp) =
                            client.request("POST", path, &bodies[i]).expect("advise");
                        latencies.push(t.elapsed().as_secs_f64() * 1e3);
                        // Unsupported-fragment submissions answer 422;
                        // both outcomes must be stable across clients.
                        assert!(status == 200 || status == 422, "advise failed: {resp}");
                        responses.push((i, format!("{status} {resp}")));
                    }
                    (latencies, responses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("bench client panicked")).collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut all_ms: Vec<f64> = Vec::new();
    let mut by_submission: Vec<String> = vec![String::new(); bodies.len()];
    let mut parity = true;
    for (latencies, responses) in per_client {
        all_ms.extend(latencies);
        for (i, resp) in responses {
            if by_submission[i].is_empty() {
                by_submission[i] = resp;
            } else if by_submission[i] != resp {
                parity = false;
            }
        }
    }
    assert!(parity, "responses diverged across clients at concurrency {clients}");
    all_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = clients * requests_per_client;
    (
        ServerThroughputRow {
            mode: "hot".into(),
            concurrency: clients,
            requests,
            req_per_s: requests as f64 / wall_s,
            p50_ms: percentile(&all_ms, 0.50),
            p99_ms: percentile(&all_ms, 0.99),
            p999_ms: percentile(&all_ms, 0.999),
        },
        by_submission,
    )
}

/// Run the full benchmark against a freshly bound in-process daemon.
pub fn run(batch_cap: usize, requests_per_client: usize) -> ServerThroughputReport {
    let cores = crate::report::host_cores();
    let (schema, target_sql, subs) = session_api::students_batch(batch_cap);
    let schema_ddl = schema.to_ddl();
    let bodies: Vec<String> =
        subs.iter().map(|sql| format!("{{\"sql\": {}}}", json_escape(sql))).collect();

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 16,
        service: ServiceConfig { jobs: 0, registry: RegistryConfig::default() },
        ..ServerConfig::default()
    })
    .expect("bind bench server");
    let addr = server.addr();
    let handle = std::thread::spawn(move || server.run());

    // ---- Cold: register + first advise, min over repetitions. Each
    // repetition registers a fresh target, so the first advise pays the
    // whole memo build exactly as a one-shot CLI run would.
    let mut cold_ms = f64::INFINITY;
    for _ in 0..3 {
        let mut client = connect(addr);
        let t = Instant::now();
        let id = register(addr, &schema_ddl, &target_sql);
        let (status, resp) =
            client
            .request("POST", &format!("/targets/{id}/advise"), &bodies[0])
            .expect("cold advise");
        cold_ms = cold_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert!(status == 200 || status == 422, "cold advise failed: {resp}");
    }

    // ---- Hot: one resident target, warmed by a full pass over the mix.
    let target_id = register(addr, &schema_ddl, &target_sql);
    {
        let mut client = connect(addr);
        for body in &bodies {
            let (status, _) =
                client
                .request("POST", &format!("/targets/{target_id}/advise"), body)
                .expect("warmup advise");
            assert!(status == 200 || status == 422);
        }
    }

    let mut rows = vec![ServerThroughputRow {
        mode: "cold".into(),
        concurrency: 1,
        requests: 1,
        req_per_s: 1e3 / cold_ms,
        p50_ms: cold_ms,
        p99_ms: cold_ms,
        p999_ms: cold_ms,
    }];
    let mut baseline: Vec<String> = Vec::new();
    let mut hot_p50 = f64::NAN;
    let mut one_client_rps = f64::NAN;
    let mut four_client_rps = f64::NAN;
    let mut parity_ok = true;
    for clients in [1usize, 4, 8] {
        let (row, by_submission) =
            run_level(addr, &target_id, &bodies, clients, requests_per_client);
        if clients == 1 {
            hot_p50 = row.p50_ms;
            one_client_rps = row.req_per_s;
            baseline = by_submission;
        } else {
            for (i, resp) in by_submission.iter().enumerate() {
                if !resp.is_empty() && !baseline[i].is_empty() && resp != &baseline[i] {
                    parity_ok = false;
                }
            }
            if clients == 4 {
                four_client_rps = row.req_per_s;
            }
        }
        rows.push(row);
    }

    // Drain the daemon before reporting.
    let (status, _) = connect(addr).request("POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread").expect("server run");

    let residency_threshold = 2.0;
    let scaling_threshold = 1.5;
    let residency_speedup = cold_ms / hot_p50;
    let residency_ok = residency_speedup >= residency_threshold;
    let scaling_at_4_clients = four_client_rps / one_client_rps;
    let gate_waived_low_cores = cores < 4;
    let scaling_ok = scaling_at_4_clients >= scaling_threshold;
    ServerThroughputReport {
        cores,
        submissions: bodies.len(),
        rows,
        cold_first_request_ms: cold_ms,
        hot_p50_ms: hot_p50,
        residency_speedup,
        residency_threshold,
        residency_ok,
        scaling_at_4_clients,
        scaling_threshold,
        scaling_ok,
        gate_waived_low_cores,
        parity_ok,
        gate_ok: parity_ok && residency_ok && (scaling_ok || gate_waived_low_cores),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_bounds() {
        let ms = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&ms, 0.0), 1.0);
        assert_eq!(percentile(&ms, 1.0), 4.0);
        assert!(percentile(&ms, 0.5) >= 2.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    /// A miniature end-to-end run so `cargo test` exercises the whole
    /// harness (tiny sizes; the real numbers come from the exp binary).
    #[test]
    fn smoke_run_produces_a_coherent_report() {
        let report = run(6, 4);
        assert!(report.parity_ok);
        assert!(report.cold_first_request_ms > 0.0);
        assert!(report.hot_p50_ms > 0.0);
        assert_eq!(report.rows.len(), 4, "cold + 3 hot levels");
    }
}

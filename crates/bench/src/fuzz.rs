//! Fuzz-throughput benchmark (PR 6): how fast the batch grader chews
//! through the seeded mutation corpora, and what the shared verdict
//! cache does under that load.
//!
//! The differential oracle (`qr-hint fuzz`) spends most of its time
//! *executing* repaired queries on generated databases; this benchmark
//! isolates the grading half. It generates deterministic
//! [`qrhint_workloads::mutate`] corpora for two cheap schemas, groups
//! the working queries by fuzz base, and drives each group through
//! [`PreparedTarget::grade_batch_parallel`] against a per-base prepared
//! target (the same shape `qr-hint fuzz` uses):
//!
//! 1. **Throughput at 1/4/8 worker threads.** Pairs/sec over the whole
//!    corpus; every parallel pass must fingerprint equal to the
//!    sequential baseline. The whole-advice cache is *disabled*
//!    (fuzzed mutants are near-duplicates by construction — PR 2's memo
//!    would otherwise answer most of the batch and hide the solver).
//! 2. **Verdict-cache eviction cliff.** The same corpus graded once
//!    with the default 32 MiB shared-verdict budget and once with a
//!    deliberately tiny budget. Mutants of one base share most of their
//!    solver obligations, so the default run should see a high hit
//!    rate and zero evictions, while the tiny-budget run must show the
//!    eviction counter moving — evidence the byte bound actually
//!    sheds entries under fuzz-shaped load (parity must hold anyway:
//!    evictions cost time, never answers).
//!
//! The speed-up gate is waived (recorded, never claimed) on hosts with
//! fewer than 4 cores, where the pool cannot scale; parity and the
//! eviction cliff are gated everywhere. Results land in
//! `BENCH_fuzz.json` (run from the repo root:
//! `cargo run --release --bin exp_fuzz`).

use crate::parallel_grading::fingerprint;
use qr_hint::prelude::*;
use qrhint_core::SessionStats;
use qrhint_workloads::mutate::Fuzzer;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Corpus seed: the same default `qr-hint fuzz` advertises.
pub const SEED: u64 = 42;
/// Tiny verdict budget for the eviction-cliff run (bytes).
pub const TIGHT_VERDICT_BUDGET: usize = 16 * 1024;
const TIMED_REPS: usize = 3;

/// One (schema, mode, jobs) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzBenchRow {
    pub schema: String,
    /// Number of fuzz bases (prepared targets) the corpus spans.
    pub bases: usize,
    /// Total working queries graded per pass.
    pub pairs: usize,
    /// `"parallel"` for the scaling story, `"tight-budget"` for the
    /// eviction-cliff run.
    pub mode: String,
    pub jobs: usize,
    /// Min-of-reps wall clock for grading the whole corpus.
    pub ms: f64,
    pub pairs_per_s: f64,
    /// All passes must fingerprint equal to the sequential baseline.
    pub parity_ok: bool,
    /// Shared-verdict-cache counters summed over the per-base targets
    /// after the measured pass.
    pub verdict_hits: u64,
    pub verdict_misses: u64,
    pub verdict_evictions: u64,
    /// `hits / (hits + misses)` — 0 when no solver calls ran.
    pub hit_rate: f64,
}

/// The full benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzBenchReport {
    /// Host hardware threads — context for the scaling rows.
    pub cores: usize,
    pub seed: u64,
    pub rows: Vec<FuzzBenchRow>,
    /// Best parallel-over-sequential speedup across schemas.
    pub best_speedup: f64,
    /// Did any multi-thread pass beat the sequential baseline?
    pub parallel_faster_ok: bool,
    /// True when the host has <4 cores: the pool cannot scale there, so
    /// the speed-up gate is recorded as waived, not met.
    pub gate_waived_low_cores: bool,
    /// Default-budget runs must not evict; the tight-budget run must.
    pub eviction_cliff_ok: bool,
    pub parity_ok: bool,
    /// Parity ∧ eviction cliff ∧ (speedup ∨ waiver).
    pub gate_ok: bool,
}

/// Advice-cache-free config with an explicit shared-verdict budget:
/// fuzz mutants are near-duplicates, so the whole-advice memo would
/// otherwise answer the batch and hide the layer under test.
fn config(verdict_cache_max_bytes: usize) -> QrHintConfig {
    QrHintConfig {
        advice_cache_capacity: 0,
        verdict_cache_max_bytes,
        ..QrHintConfig::default()
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 { 0.0 } else { hits as f64 / total as f64 }
}

/// A fuzz corpus grouped by base: `base id -> (target SQL, workings)`.
pub type Corpus = BTreeMap<String, (String, Vec<String>)>;

/// Generate the deterministic corpus for one schema and group the
/// working queries under their base's target (the unit
/// `grade_batch_parallel` runs over).
pub fn corpus(schema_name: &str, count: usize, seed: u64) -> (Schema, Corpus) {
    let fuzzer = Fuzzer::for_schema(schema_name)
        .unwrap_or_else(|| panic!("unknown fuzz schema {schema_name}"));
    let mut grouped: Corpus = BTreeMap::new();
    for case in fuzzer.generate(count, seed) {
        grouped
            .entry(case.base_id.clone())
            .or_insert_with(|| (case.target.to_string(), Vec::new()))
            .1
            .push(case.working.to_string());
    }
    (fuzzer.schema().clone(), grouped)
}

/// Grade every base group at `jobs` threads on fresh per-base targets;
/// returns (wall ms, per-base fingerprints, summed stats).
fn grade_pass(
    schema: &Schema,
    corpus: &Corpus,
    jobs: usize,
    verdict_budget: usize,
) -> (f64, Vec<Vec<String>>, SessionStats) {
    let qr = QrHint::with_config(schema.clone(), config(verdict_budget));
    let targets: Vec<(&Vec<String>, _)> = corpus
        .values()
        .map(|(target, workings)| {
            (workings, qr.compile_target(target).expect("fuzz target compiles"))
        })
        .collect();
    let started = Instant::now();
    let outs: Vec<_> = targets
        .iter()
        .map(|(workings, prepared)| prepared.grade_batch_parallel(workings, jobs))
        .collect();
    let ms = started.elapsed().as_secs_f64() * 1e3;
    let mut stats = SessionStats::default();
    for (_, prepared) in &targets {
        let s = prepared.stats();
        stats.verdict_cache_hits += s.verdict_cache_hits;
        stats.verdict_cache_misses += s.verdict_cache_misses;
        stats.verdict_cache_evictions += s.verdict_cache_evictions;
    }
    (ms, outs.iter().map(|o| fingerprint(o)).collect(), stats)
}

/// The corpus shape shared by every row of one schema.
struct CorpusShape<'a> {
    schema: &'a str,
    bases: usize,
    pairs: usize,
}

fn row(
    shape: &CorpusShape<'_>,
    mode: &str,
    jobs: usize,
    ms: f64,
    parity_ok: bool,
    stats: &SessionStats,
) -> FuzzBenchRow {
    let &CorpusShape { schema, bases, pairs } = shape;
    FuzzBenchRow {
        schema: schema.to_string(),
        bases,
        pairs,
        mode: mode.to_string(),
        jobs,
        ms,
        pairs_per_s: pairs as f64 / (ms / 1e3).max(1e-9),
        parity_ok,
        verdict_hits: stats.verdict_cache_hits,
        verdict_misses: stats.verdict_cache_misses,
        verdict_evictions: stats.verdict_cache_evictions,
        hit_rate: hit_rate(stats.verdict_cache_hits, stats.verdict_cache_misses),
    }
}

/// Measure one schema's corpus: the 1/4/8-thread scaling rows plus the
/// tight-budget eviction run.
pub fn run_schema(schema_name: &str, count: usize) -> Vec<FuzzBenchRow> {
    let (schema, corpus) = corpus(schema_name, count, SEED);
    let shape = CorpusShape {
        schema: schema_name,
        bases: corpus.len(),
        pairs: corpus.values().map(|(_, w)| w.len()).sum(),
    };
    let default_budget = QrHintConfig::default().verdict_cache_max_bytes;

    // Sequential baseline: fingerprints every later pass must match.
    let (_, baseline, _) = grade_pass(&schema, &corpus, 1, default_budget);

    let mut rows = Vec::new();
    for jobs in [1usize, 4, 8] {
        let mut parity = true;
        let mut stats = SessionStats::default();
        let mut best = f64::INFINITY;
        for rep in 0..=TIMED_REPS {
            let (ms, prints, s) = grade_pass(&schema, &corpus, jobs, default_budget);
            parity &= prints == baseline;
            stats = s;
            if rep > 0 {
                // rep 0 is warmup
                best = best.min(ms);
            }
        }
        rows.push(row(&shape, "parallel", jobs, best, parity, &stats));
    }

    // Eviction cliff: one sequential pass under a tiny byte budget.
    let (ms, prints, stats) = grade_pass(&schema, &corpus, 1, TIGHT_VERDICT_BUDGET);
    let parity = prints == baseline;
    rows.push(row(&shape, "tight-budget", 1, ms, parity, &stats));
    rows
}

/// Run the full benchmark over the two cheap fuzz schemas.
pub fn run(count: usize) -> FuzzBenchReport {
    let cores = crate::report::host_cores();
    let mut rows = Vec::new();
    for schema in ["students", "beers"] {
        rows.extend(run_schema(schema, count));
    }
    let mut best_speedup: f64 = 0.0;
    for base in rows.iter().filter(|r| r.mode == "parallel" && r.jobs == 1) {
        for multi in rows
            .iter()
            .filter(|r| r.mode == "parallel" && r.jobs > 1 && r.schema == base.schema)
        {
            best_speedup = best_speedup.max(base.ms / multi.ms.max(1e-9));
        }
    }
    let parallel_faster_ok = best_speedup > 1.0;
    let gate_waived_low_cores = cores < 4 && !parallel_faster_ok;
    let eviction_cliff_ok = rows
        .iter()
        .filter(|r| r.mode == "tight-budget")
        .all(|r| r.verdict_evictions > 0)
        && rows
            .iter()
            .filter(|r| r.mode == "parallel")
            .all(|r| r.verdict_evictions == 0);
    let parity_ok = rows.iter().all(|r| r.parity_ok);
    FuzzBenchReport {
        cores,
        seed: SEED,
        rows,
        best_speedup,
        parallel_faster_ok,
        gate_waived_low_cores,
        eviction_cliff_ok,
        parity_ok,
        gate_ok: parity_ok && eviction_cliff_ok && (parallel_faster_ok || gate_waived_low_cores),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_groups_by_base_and_is_deterministic() {
        let (_, a) = corpus("students", 16, SEED);
        let (_, b) = corpus("students", 16, SEED);
        assert_eq!(a, b);
        assert_eq!(a.values().map(|(_, w)| w.len()).sum::<usize>(), 16);
        assert!(!a.is_empty());
    }

    #[test]
    fn small_run_has_parity_and_eviction_cliff() {
        let rows = run_schema("beers", 12);
        // jobs {1,4,8} + tight-budget.
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.parity_ok), "{rows:?}");
        let tight = rows.iter().find(|r| r.mode == "tight-budget").unwrap();
        assert!(
            tight.verdict_evictions > 0,
            "tiny verdict budget must evict under fuzz load: {tight:?}"
        );
        for r in rows.iter().filter(|r| r.mode == "parallel") {
            assert_eq!(r.verdict_evictions, 0, "default budget must not evict: {r:?}");
        }
    }
}

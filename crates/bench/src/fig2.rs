//! Figure 2 (a: repair cost, b: running time): conjunctive WHERE
//! conditions with 4–11 atomic predicates (TPC-H derived), two injected
//! atom errors, comparing `DeriveFixes` vs `DeriveFixesOPT` plus the
//! time-to-first-viable-site series.

use qrhint_core::repair::{repair_where, CostModel, FixStrategy, Repair, RepairConfig};
use qrhint_core::Oracle;
use qrhint_sqlparse::parse_pred;
use qrhint_workloads::{inject, tpch};
use serde::Serialize;

/// One measurement row.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    pub case: String,
    pub natoms: usize,
    pub strategy: String,
    /// Cost of the repair Qr-Hint found.
    pub cost: f64,
    /// Cost of the ground-truth repair (undoing the injected errors).
    pub ground_truth_cost: f64,
    /// Did Qr-Hint match (or beat) the ground truth?
    pub optimal: bool,
    pub total_time_ms: f64,
    pub first_viable_ms: f64,
    pub sets_examined: usize,
}

/// Run the Figure-2 experiment. `errors_per_case` is 2 in the paper.
pub fn run(errors_per_case: usize, seed: u64) -> Vec<Fig2Row> {
    run_up_to(errors_per_case, seed, usize::MAX)
}

/// Like [`run`] but restricted to cases with at most `max_atoms` atomic
/// predicates (used by the fast test suite; the binary runs the full
/// 4–11 sweep).
pub fn run_up_to(errors_per_case: usize, seed: u64, max_atoms: usize) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    for case in tpch::conjunctive_suite().into_iter().filter(|c| c.natoms <= max_atoms) {
        let target = parse_pred(case.where_sql).expect("suite parses");
        let (wrong, injected) = inject::inject_atom_errors(&target, errors_per_case, seed);
        // Ground truth: repair exactly the injected sites back to the
        // original atoms.
        let gt_sites: Vec<Vec<usize>> = injected
            .iter()
            .map(|e| match e {
                inject::InjectedError::OpChanged { path, .. }
                | inject::InjectedError::ConstChanged { path, .. }
                | inject::InjectedError::StrChanged { path, .. }
                | inject::InjectedError::ConnectiveFlipped { path } => path.clone(),
            })
            .collect();
        let gt_fixes: Vec<_> = gt_sites
            .iter()
            .map(|p| target.at_path(p).expect("path valid").clone())
            .collect();
        let gt = Repair { sites: gt_sites, fixes: gt_fixes };
        let gt_cost = CostModel::default().cost(&wrong, &target, &gt);

        for (strategy, label) in
            [(FixStrategy::Basic, "DeriveFixes"), (FixStrategy::Optimized, "DeriveFixesOPT")]
        {
            let cfg = RepairConfig { strategy, ..RepairConfig::default() };
            let mut oracle = Oracle::for_preds(&[&wrong, &target]);
            let outcome = repair_where(&mut oracle, &[], &wrong, &target, &cfg);
            rows.push(Fig2Row {
                case: case.name.to_string(),
                natoms: case.natoms,
                strategy: label.to_string(),
                cost: outcome.cost,
                ground_truth_cost: gt_cost,
                optimal: outcome.cost <= gt_cost + 1e-9,
                total_time_ms: outcome.total_time.as_secs_f64() * 1e3,
                first_viable_ms: outcome
                    .first_viable
                    .map(|d| d.as_secs_f64() * 1e3)
                    .unwrap_or(f64::NAN),
                sets_examined: outcome.sets_examined,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cases_are_optimal_for_both_strategies() {
        // Figure 2a's claim: for conjunctive WHERE, both strategies find
        // ground-truth-optimal repairs. Test on the smaller cases to keep
        // CI fast; the full sweep runs in the experiment binary.
        let rows: Vec<Fig2Row> = run_up_to(2, 0xF16, 6);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.optimal,
                "{} ({}) found cost {} vs ground truth {}",
                r.case, r.strategy, r.cost, r.ground_truth_cost
            );
        }
    }
}

//! Session-API benchmark binary: cold per-call grading vs prepared-
//! target batch grading on the students/beers workloads. Persists the
//! comparison as `BENCH_session_api.json` in the working directory (run
//! from the repo root) and exits nonzero if the ≥2× acceptance gate
//! fails, so CI can assert the optimization stays real.

use qrhint_bench::{report, session_api};

fn main() {
    let report = session_api::run(50);
    println!(
        "{}",
        report::table(
            &["workload", "batch", "equiv", "cold ms", "prepared ms", "speedup"],
            &report
                .rows
                .iter()
                .map(|r| vec![
                    r.workload.clone(),
                    r.batch_size.to_string(),
                    r.equivalent.to_string(),
                    format!("{:.1}", r.cold_ms),
                    format!("{:.1}", r.prepared_ms),
                    format!("{:.2}x", r.speedup),
                ])
                .collect::<Vec<_>>(),
        )
    );
    for r in &report.rows {
        println!(
            "{}: {} advise calls, {} advice-cache hits, {} FROM groups, \
             {} mapping reuses, {} solver calls",
            r.workload,
            r.prepared_stats.advise_calls,
            r.prepared_stats.advice_cache_hits,
            r.prepared_stats.from_groups,
            r.prepared_stats.mapping_reuses,
            r.prepared_stats.solver_calls,
        );
    }
    report::write_bench("session_api", &report);
    if !report.students_speedup_ok {
        eprintln!(
            "FAIL: students speedup {:.2}x below the 2x acceptance gate",
            report.students_speedup
        );
        std::process::exit(1);
    }
}

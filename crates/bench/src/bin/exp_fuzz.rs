//! Fuzz-throughput benchmark binary (PR 6): pairs/sec through
//! `grade_batch_parallel` over the seeded mutation corpora, parallel
//! fingerprint parity against the sequential baseline, and the shared
//! verdict cache's eviction cliff under a deliberately tiny byte
//! budget. Persists `BENCH_fuzz.json` in the working directory (run
//! from the repo root) and exits nonzero if parity breaks, if the
//! eviction cliff fails to appear, or if no multi-thread pass beats the
//! sequential baseline on a ≥4-core host (<4-core hosts record a
//! waiver — the pool cannot scale there).

use qrhint_bench::{fuzz, report};

fn main() {
    let report = fuzz::run(120);
    println!(
        "{}",
        report::table(
            &["schema", "mode", "jobs", "bases", "pairs", "ms", "pairs/s", "hit rate", "evictions", "parity"],
            &report
                .rows
                .iter()
                .map(|r| vec![
                    r.schema.clone(),
                    r.mode.clone(),
                    r.jobs.to_string(),
                    r.bases.to_string(),
                    r.pairs.to_string(),
                    format!("{:.1}", r.ms),
                    format!("{:.0}", r.pairs_per_s),
                    format!("{:.0}%", r.hit_rate * 100.0),
                    r.verdict_evictions.to_string(),
                    if r.parity_ok { "ok".into() } else { "MISMATCH".into() },
                ])
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "host cores: {} · corpus seed: {} · best parallel speedup: {:.2}x · eviction cliff: {}{}",
        report.cores,
        report.seed,
        report.best_speedup,
        if report.eviction_cliff_ok { "ok" } else { "MISSING" },
        if report.gate_waived_low_cores { " (speedup gate waived: <4 cores)" } else { "" }
    );
    report::write_bench("fuzz", &report);
    if !report.gate_ok {
        eprintln!(
            "FAIL: parity={} eviction-cliff={} parallel-faster={} on a {}-core host",
            report.parity_ok, report.eviction_cliff_ok, report.parallel_faster_ok, report.cores
        );
        std::process::exit(1);
    }
}

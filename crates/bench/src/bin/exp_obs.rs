//! Telemetry-overhead experiment: batch grading with span tracing off
//! vs fully on, gating ≤5% wall-clock overhead (waived on <4-core
//! hosts) and byte-identical advice JSON. Writes `BENCH_obs.json` in
//! the working directory (run from the repo root) and exits nonzero on
//! a parity failure or an unwaived overhead-gate miss.

use qrhint_bench::{obs, report};

fn main() {
    let rep = obs::run(48);
    let rows: Vec<Vec<String>> = rep
        .rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.mode.clone(),
                format!("{:.1}", r.ms),
                format!("{:.0}", r.throughput_per_s),
                r.span_events.to_string(),
                if r.parity_ok { "ok" } else { "DIVERGED" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["workload", "mode", "ms", "sub/s", "spans", "parity"], &rows)
    );
    for (w, pct) in &rep.overhead_pct_by_workload {
        println!("{w}: tracing overhead {pct:+.1}%");
    }
    println!(
        "cores={} max_overhead={:+.1}% gate(<= {:.0}%)={} waived_low_cores={} parity={}",
        rep.cores,
        rep.max_overhead_pct,
        rep.overhead_gate_pct,
        rep.overhead_ok,
        rep.gate_waived_low_cores,
        rep.parity_ok
    );
    report::write_bench("obs", &rep);
    if !rep.gate_ok {
        eprintln!(
            "FAIL: parity={} max_overhead={:+.1}% on a {}-core host",
            rep.parity_ok, rep.max_overhead_pct, rep.cores
        );
        std::process::exit(1);
    }
}

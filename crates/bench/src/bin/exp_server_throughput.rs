//! `qr-hint serve` throughput benchmark binary: requests/sec and
//! p50/p99 latency against an in-process daemon over real TCP — cold
//! (register + first advise) vs hot (resident target), at 1/4/8
//! concurrent keep-alive clients on the students question-(b) mix.
//! Persists `BENCH_server_throughput.json` in the working directory
//! (run from the repo root) and exits nonzero if response parity breaks
//! or a gate fails on a host that could have met it (< 4-core hosts
//! record the scaling gate as waived; the residency gate applies
//! everywhere).

use qrhint_bench::{report, server_throughput};

fn main() {
    let result = server_throughput::run(50, 50);
    println!(
        "{}",
        report::table(
            &["mode", "clients", "requests", "req/s", "p50 ms", "p99 ms", "p999 ms"],
            &result
                .rows
                .iter()
                .map(|r| vec![
                    r.mode.clone(),
                    r.concurrency.to_string(),
                    r.requests.to_string(),
                    format!("{:.0}", r.req_per_s),
                    format!("{:.2}", r.p50_ms),
                    format!("{:.2}", r.p99_ms),
                    format!("{:.2}", r.p999_ms),
                ])
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "host cores: {} · residency speedup (cold/hot p50): {:.1}x (gate ≥{:.1}x) · \
         4-client scaling: {:.2}x (gate ≥{:.1}x{})",
        result.cores,
        result.residency_speedup,
        result.residency_threshold,
        result.scaling_at_4_clients,
        result.scaling_threshold,
        if result.gate_waived_low_cores { ", waived: <4 cores" } else { "" }
    );
    report::write_bench("server_throughput", &result);
    if !result.parity_ok {
        eprintln!("FAIL: concurrent clients observed diverging advice JSON");
        std::process::exit(1);
    }
    if !result.gate_ok {
        eprintln!(
            "FAIL: residency {:.2}x (≥{:.1}x) / scaling {:.2}x (≥{:.1}x) on a {}-core host",
            result.residency_speedup,
            result.residency_threshold,
            result.scaling_at_4_clients,
            result.scaling_threshold,
            result.cores
        );
        std::process::exit(1);
    }
}

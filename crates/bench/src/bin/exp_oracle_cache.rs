//! Oracle-cache benchmark binary (PR 5): cold vs hot advise latency on a
//! resident target (stage memos + the shared interned verdict cache) and
//! shared-cache hit rates at 1/4/8 worker threads, including hits on
//! verdicts other threads paid for. Persists `BENCH_oracle_cache.json`
//! in the working directory (run from the repo root) and exits nonzero
//! if parity breaks, if hot advise is slower than cold, or if 8 threads
//! never share a verdict on a host with ≥4 cores (<4-core hosts record
//! a waiver — slot growth needs scheduler-dependent contention there).

use qrhint_bench::{oracle_cache, report};

fn main() {
    let report = oracle_cache::run(50);
    println!(
        "{}",
        report::table(
            &["workload", "mode", "jobs", "batch", "ms", "subs/s", "hit rate", "cross hits", "parity"],
            &report
                .rows
                .iter()
                .map(|r| vec![
                    r.workload.clone(),
                    r.mode.clone(),
                    r.jobs.to_string(),
                    r.batch_size.to_string(),
                    format!("{:.1}", r.ms),
                    format!("{:.0}", r.throughput_per_s),
                    format!("{:.0}%", r.hit_rate * 100.0),
                    r.cross_thread_hits.to_string(),
                    if r.parity_ok { "ok".into() } else { "MISMATCH".into() },
                ])
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "host cores: {} · best hot speedup: {:.2}x (gate: hot ≥ {:.1}x cold) · \
         hit rate @8 threads: {:.0}% · cross-thread hits @8: {}{}",
        report.cores,
        report.best_hot_speedup,
        report.hot_gate_threshold,
        report.hit_rate_at_8 * 100.0,
        report.cross_thread_hits_at_8,
        if report.gate_waived_low_cores { " (gate waived: <4 cores)" } else { "" }
    );
    report::write_bench("oracle_cache", &report);
    if !report.parity_ok {
        eprintln!("FAIL: a cached or parallel pass diverged from the sequential baseline");
        std::process::exit(1);
    }
    if !report.gate_ok {
        eprintln!(
            "FAIL: hot-not-slower={} cross-hits-at-8={} on a {}-core host",
            report.hot_not_slower_ok, report.cross_hits_at_8_ok, report.cores
        );
        std::process::exit(1);
    }
}

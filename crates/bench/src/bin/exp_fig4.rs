//! E6 — regenerate Figure 4 (a: DeriveFixes, b: DeriveFixesOPT): the
//! (time, cost) trace of every unpruned viable repair found during
//! execution, one trace per injected-error count.
//!
//! Run with: `cargo run --release -p qrhint-bench --bin exp_fig4`

use qrhint_bench::{fig4, report};

fn main() {
    println!("== Figure 4: viable repairs over the course of execution ==\n");
    let traces = fig4::run(5, 0xF4);
    for strategy in ["DeriveFixes", "DeriveFixesOPT"] {
        println!("--- {strategy} (Figure 4{}) ---", if strategy == "DeriveFixes" { "a" } else { "b" });
        for t in traces.iter().filter(|t| t.strategy == strategy) {
            print!("  {} error(s): {:>2} viable repairs | ", t.errors, t.points.len());
            // An ASCII sparkline of costs in discovery order.
            let (min, max) = t.points.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
                (lo.min(p.cost), hi.max(p.cost))
            });
            let glyphs = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
            for p in &t.points {
                let scaled = if max > min { (p.cost - min) / (max - min) } else { 0.0 };
                let idx = (scaled * (glyphs.len() - 1) as f64).round() as usize;
                print!("{}", glyphs[idx.min(glyphs.len() - 1)]);
            }
            println!("  (best {:.3})", t.final_cost);
            if t.points.len() <= 1 {
                println!(
                    "      (degenerates into a single dot, as the paper reports for \
                     heavily-broken predicates)"
                );
            } else if let Some(early) = fig4::lowest_cost_surfaces_early(t) {
                println!(
                    "      lowest-cost repair surfaced early: {}",
                    if early { "yes" } else { "no" }
                );
            }
        }
    }
    println!(
        "\nFig 4 shape — costs fluctuate, general trend up, lowest-cost repairs \
         tend to surface early; single-dot traces for highly-constrained cases."
    );
    report::write_json("fig4", &traces);
}

//! Static-analysis benchmark binary (PR 7): analyzer throughput over
//! the seed-42 fuzz corpora plus the interval-prescreen ablation on a
//! contradiction-seeded 50-submission batch. Persists
//! `BENCH_analyze.json` in the working directory (run from the repo
//! root) and exits nonzero if the prescreen changed any advice or
//! skipped no solver call; throughput is report-only.

use qrhint_bench::{analyze, report};

fn main() {
    let report = analyze::run();
    println!(
        "{}",
        report::table(
            &["schema", "queries", "diagnostics", "ms", "queries/s"],
            &report
                .rows
                .iter()
                .map(|r| vec![
                    r.schema.clone(),
                    r.queries.to_string(),
                    r.diagnostics.to_string(),
                    format!("{:.2}", r.ms),
                    format!("{:.0}", r.queries_per_s),
                ])
                .collect::<Vec<_>>(),
        )
    );
    let a = &report.ablation;
    println!(
        "prescreen ablation: {} submissions ({} contradiction-seeded) · \
         advice parity: {} · solver calls {} → {} ({} skipped, {} stage \
         checks short-circuited) · {:.1} ms on / {:.1} ms off",
        a.submissions,
        a.contradiction_seeded,
        if a.advice_parity { "ok" } else { "MISMATCH" },
        a.solver_calls_without,
        a.solver_calls,
        a.solver_calls_skipped,
        a.stages_short_circuited,
        a.ms_prescreen_on,
        a.ms_prescreen_off,
    );
    report::write_bench("analyze", &report);
    if !report.gate_ok {
        eprintln!(
            "FAIL: advice-parity={} solver-calls-skipped={}",
            a.advice_parity, a.solver_calls_skipped
        );
        std::process::exit(1);
    }
}

//! E9 — Appendix Tables 2–3: run Qr-Hint on the four study queries and
//! print the generated repairs next to the hints the study used
//! (validating that the blue "Qr-Hint" rows of Table 3 regenerate).
//!
//! Run with: `cargo run --release -p qrhint-bench --bin exp_dblp_hints`

use qr_hint::prelude::*;
use qrhint_workloads::dblp;
use serde::Serialize;

#[derive(Serialize)]
struct SessionLog {
    question: String,
    rounds: Vec<RoundLog>,
    converged: bool,
}

#[derive(Serialize)]
struct RoundLog {
    stage: String,
    hints: Vec<String>,
}

fn main() {
    let qr = QrHint::new(dblp::schema());
    let mut logs = Vec::new();
    for q in dblp::questions() {
        println!("==== {} ====", q.id);
        println!("{}\n", q.statement);
        let target = qr.prepare(q.correct_sql).expect("correct query parses");
        let mut working = qr.prepare(q.wrong_sql).expect("wrong query parses");
        let mut rounds = Vec::new();
        let mut converged = false;
        for _ in 0..12 {
            let advice = qr.advise(&target, &working).expect("advise");
            if advice.is_equivalent() {
                converged = true;
                break;
            }
            println!("stage {}:", advice.stage);
            for h in &advice.hints {
                println!("  {h}");
            }
            rounds.push(RoundLog {
                stage: advice.stage.to_string(),
                hints: advice.hints.iter().map(|h| h.to_string()).collect(),
            });
            working = advice.fixed.expect("fix");
        }
        println!(
            "converged: {converged}\nstudy hints (Appendix Table 3, Qr-Hint rows):"
        );
        for h in q.hints.iter().filter(|h| h.source == dblp::HintSource::QrHint) {
            println!("  [paper] {}", h.text);
        }
        println!();
        logs.push(SessionLog { question: q.id.to_string(), rounds, converged });
    }
    qrhint_bench::report::write_json("dblp_hints", &logs);
}

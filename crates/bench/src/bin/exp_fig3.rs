//! E4/E5 — regenerate Figure 3 (a: repair cost, b: running time) for the
//! TPC-H Q7 nested AND/OR WHERE with 1–5 injected errors.
//!
//! Run with: `cargo run --release -p qrhint-bench --bin exp_fig3`

use qrhint_bench::{fig3, report};

fn main() {
    println!("== Figure 3: nested AND/OR (TPC-H Q7), 1-5 injected errors ==\n");
    let rows = fig3::run(5, 0xF3);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.errors.to_string(),
                r.strategy.clone(),
                format!("{:.3}", r.cost),
                r.nsites.to_string(),
                if r.whole_predicate { "yes".into() } else { "no".into() },
                format!("{:.1}", r.total_time_ms),
                r.viable_repairs_seen.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &["errors", "strategy", "cost", "sites", "whole-pred", "time(ms)", "viable-seen"],
            &table_rows,
        )
    );
    // Paper-shape summaries.
    let at = |e: usize, s: &str| rows.iter().find(|r| r.errors == e && r.strategy == s);
    if let (Some(b1), Some(o1)) = (at(1, "DeriveFixes"), at(1, "DeriveFixesOPT")) {
        println!(
            "Fig 3a @1 error — both find the same (optimal single-site) cost: {}",
            (b1.cost - o1.cost).abs() < 1e-9
        );
    }
    for e in 2..=3 {
        if let (Some(b), Some(o)) = (at(e, "DeriveFixes"), at(e, "DeriveFixesOPT")) {
            println!(
                "Fig 3a @{e} errors — OPT ≤ basic: {} ({:.3} vs {:.3})",
                o.cost <= b.cost + 1e-9,
                o.cost,
                b.cost
            );
        }
    }
    for e in 4..=5 {
        if let Some(b) = at(e, "DeriveFixes") {
            println!(
                "Fig 3a @{e} errors — degradation toward whole-predicate repair: \
                 sites={} whole={}",
                b.nsites, b.whole_predicate
            );
        }
    }
    // Timing shape: 4-5 errors run *faster* than 2-3 (viable options shrink).
    let avg = |es: &[usize]| {
        let sel: Vec<f64> = rows
            .iter()
            .filter(|r| es.contains(&r.errors))
            .map(|r| r.total_time_ms)
            .collect();
        sel.iter().sum::<f64>() / sel.len().max(1) as f64
    };
    println!(
        "Fig 3b shape — mean time @4-5 errors ({:.1} ms) < @2-3 errors ({:.1} ms): {}",
        avg(&[4, 5]),
        avg(&[2, 3]),
        avg(&[4, 5]) < avg(&[2, 3])
    );
    report::write_json("fig3", &rows);
}

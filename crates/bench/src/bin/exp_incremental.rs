//! Incremental-solver experiment: cold-batch grading with the push/pop
//! assumption stack vs the from-scratch solver, with verdict parity
//! enforced. Writes `BENCH_incremental.json` and exits nonzero on a
//! parity failure or an unwaived speedup-gate miss.

use qrhint_bench::{incremental, report};

fn main() {
    let rep = incremental::run(50);
    let rows: Vec<Vec<String>> = rep
        .rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.mode.clone(),
                format!("{:.1}", r.ms),
                format!("{:.0}", r.throughput_per_s),
                r.solver_calls.to_string(),
                r.theory_pushes.to_string(),
                r.theory_full_checks.to_string(),
                r.equiv_batches.to_string(),
                if r.parity_ok { "ok" } else { "DIVERGED" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "workload", "mode", "ms", "sub/s", "solver", "pushes", "fulls", "batches",
                "parity"
            ],
            &rows
        )
    );
    for (w, s) in &rep.speedup_by_workload {
        let ratio = rep.theory_work_ratio_by_workload.get(w).copied().unwrap_or(1.0);
        println!("{w}: cold speedup {s:.2}x, theory-work ratio {ratio:.2}x");
    }
    println!(
        "cores={} min_speedup={:.2}x gate(>= {:.1}x)={} waived_low_cores={} parity={}",
        rep.cores,
        rep.min_speedup,
        rep.speedup_gate,
        rep.speedup_ok,
        rep.gate_waived_low_cores,
        rep.parity_ok
    );
    report::write_bench("incremental", &rep);
    if !rep.gate_ok {
        std::process::exit(1);
    }
}

//! Parallel-grading benchmark binary: sequential `grade_batch` vs
//! `grade_batch_parallel` at 2/4/8 threads on 50-distinct-submission
//! students/beers batches. Persists `BENCH_parallel_grading.json` in
//! the working directory (run from the repo root) and exits nonzero if
//! parity breaks or the ≥2.5×-at-4-threads gate fails on a host that
//! could have met it (<4-core hosts record a waiver instead — the gate
//! needs hardware parallelism to exist).

use qrhint_bench::{parallel_grading, report};

fn main() {
    let report = parallel_grading::run(50);
    println!(
        "{}",
        report::table(
            &["workload", "mode", "jobs", "batch", "ms", "subs/s", "speedup", "parity"],
            &report
                .rows
                .iter()
                .map(|r| vec![
                    r.workload.clone(),
                    r.mode.clone(),
                    r.jobs.to_string(),
                    r.batch_size.to_string(),
                    format!("{:.1}", r.ms),
                    format!("{:.0}", r.throughput_per_s),
                    format!("{:.2}x", r.speedup_vs_sequential),
                    if r.parity_ok { "ok".into() } else { "MISMATCH".into() },
                ])
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "host cores: {} · best 4-thread speedup: {:.2}x (gate ≥{:.1}x{})",
        report.cores,
        report.best_speedup_at_4,
        report.gate_threshold,
        if report.gate_waived_low_cores { ", waived: <4 cores" } else { "" }
    );
    report::write_bench("parallel_grading", &report);
    if !report.parity_ok {
        eprintln!("FAIL: a parallel run diverged from the sequential output");
        std::process::exit(1);
    }
    if !report.gate_ok {
        eprintln!(
            "FAIL: best 4-thread speedup {:.2}x below the {:.1}x gate on a {}-core host",
            report.best_speedup_at_4, report.gate_threshold, report.cores
        );
        std::process::exit(1);
    }
}

//! Scale-out serving soak binary: a consistent-hash router in front of
//! two in-process backend daemons, driven through five phases —
//! routed-vs-direct advice parity, unloaded baseline, sustained mixed
//! register/advise/grade load, ≥2×-capacity overload (bounded-queue
//! `429` shedding with p99 held within 10× of unloaded), a fuzz-corpus
//! ingest, and a backend-kill failover recovery measurement. Persists
//! `BENCH_soak.json` in the working directory (run from the repo root)
//! and exits nonzero if a gate fails on a host that could have met it
//! (< 4-core hosts record the latency gates as waived; parity, shed
//! accounting and failover recovery are gated everywhere).
//!
//! `--ingest` streams the full 10⁴-pair mutation corpus through the
//! router (the PR 4 fuzz scale); the default run uses a 2 000-pair
//! prefix of the same deterministic corpus.

use qrhint_bench::{report, soak};

fn main() {
    let full_ingest = std::env::args().any(|a| a == "--ingest");
    let mut cfg = soak::SoakConfig::default();
    if full_ingest {
        cfg.ingest_pairs = 10_000;
    }
    let result = soak::run(&cfg);
    println!(
        "{}",
        report::table(
            &[
                "phase", "clients", "requests", "ok", "shed", "errors", "req/s", "p50 ms",
                "p99 ms", "p999 ms", "shed rate",
            ],
            &result
                .rows
                .iter()
                .map(|r| vec![
                    r.phase.clone(),
                    r.concurrency.to_string(),
                    r.requests.to_string(),
                    r.ok.to_string(),
                    r.shed.to_string(),
                    r.errors.to_string(),
                    format!("{:.0}", r.req_per_s),
                    format!("{:.2}", r.p50_ms),
                    format!("{:.2}", r.p99_ms),
                    format!("{:.2}", r.p999_ms),
                    format!("{:.1}%", r.shed_rate * 100.0),
                ])
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "host cores: {} · backends: {} · targets: {} · routed/direct parity: {} · pool hit rate: {:.0}%",
        result.cores,
        result.backends,
        result.targets,
        if result.parity_ok { "ok" } else { "BROKEN" },
        result.pool_hit_rate * 100.0,
    );
    println!(
        "overload: {} sheds, accepted p99 {:.2} ms = {:.1}x unloaded (gate ≤{:.0}x{}) · accounting: {}",
        result.overload_shed,
        result.overload_p99_ms,
        result.overload_ratio,
        result.overload_threshold,
        if result.gate_waived_low_cores { ", waived: < 4 cores" } else { "" },
        if result.shed_accounted_ok { "ok" } else { "BROKEN" },
    );
    println!(
        "failover: recovered={} in {:.0} ms (budget {:.0} ms at {} ms health interval{})",
        result.failover_recovered,
        result.failover_recovery_ms,
        result.failover_budget_ms,
        result.health_interval_ms,
        if result.gate_waived_low_cores { ", waived: < 4 cores" } else { "" },
    );
    println!(
        "ingest: {} pairs · registry cache sheds: {} · target evictions: {}",
        result.rows.last().map_or(0, |r| r.requests),
        result.registry_shed_total,
        result.registry_evicted_total,
    );
    report::write_bench("soak", &result);
    if !result.gate_ok {
        eprintln!("GATE FAILED");
        std::process::exit(1);
    }
    println!("gates: OK");
}

//! E2/E3 — regenerate Figure 2 (a: repair cost, b: running time) for the
//! conjunctive TPC-H WHERE suite with two injected errors.
//!
//! Run with: `cargo run --release -p qrhint-bench --bin exp_fig2`

use qrhint_bench::{fig2, report};

fn main() {
    println!("== Figure 2: conjunctive WHERE, 2 injected errors ==\n");
    let rows = fig2::run(2, 0xF16);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.case.clone(),
                r.natoms.to_string(),
                r.strategy.clone(),
                format!("{:.3}", r.cost),
                format!("{:.3}", r.ground_truth_cost),
                if r.optimal { "yes".into() } else { "NO".into() },
                format!("{:.1}", r.total_time_ms),
                format!("{:.1}", r.first_viable_ms),
                r.sets_examined.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "case", "atoms", "strategy", "cost", "gt-cost", "optimal", "time(ms)",
                "first-site(ms)", "sets",
            ],
            &table_rows,
        )
    );
    // Shape checks the paper reports (printed, not asserted, so a partial
    // environment still yields the full table).
    let all_optimal = rows.iter().all(|r| r.optimal);
    println!("Fig 2a shape — both strategies ground-truth-optimal: {all_optimal}");
    let mut slower = 0;
    let mut comparisons = 0;
    for pair in rows.chunks(2) {
        if let [basic, opt] = pair {
            comparisons += 1;
            if opt.total_time_ms >= basic.total_time_ms {
                slower += 1;
            }
        }
    }
    println!(
        "Fig 2b shape — DeriveFixesOPT slower than DeriveFixes: {slower}/{comparisons} cases"
    );
    let first_site_faster = rows
        .iter()
        .filter(|r| r.first_viable_ms.is_finite() && r.first_viable_ms <= r.total_time_ms)
        .count();
    println!(
        "Fig 2b shape — first viable site found before total completion: {first_site_faster}/{} rows",
        rows.len()
    );
    report::write_json("fig2", &rows);
}

//! E1/E10/E11 — the Students+ coverage experiment (§9.1, Appendix
//! Tables 4 and 5).
//!
//! Run with: `cargo run --release -p qrhint-bench --bin exp_students`

use qrhint_bench::{report, students_exp};

fn main() {
    println!("== E1: Students+ coverage (§9.1) ==\n");
    let r = students_exp::run();

    println!("-- Appendix Table 4 regeneration: per-question statistics --");
    let mut rows = Vec::new();
    for (q, s) in &r.per_question {
        let mut stage_summary: Vec<String> = s
            .first_stage
            .iter()
            .map(|(stage, n)| format!("{stage}:{n}"))
            .collect();
        stage_summary.sort();
        rows.push(vec![
            q.clone(),
            s.total.to_string(),
            s.unsupported.to_string(),
            s.converged.to_string(),
            stage_summary.join(" "),
        ]);
    }
    println!(
        "{}",
        report::table(&["question", "total", "unsupported", "converged", "first-stage"], &rows)
    );
    println!(
        "supported wrong queries: {} / unsupported: {} (paper: 306 / 35)",
        r.supported, r.unsupported
    );
    println!(
        "average running time per supported query: {:.1} ms (paper: ~200 ms in Python)\n",
        r.avg_ms_per_query
    );

    println!("-- Appendix Table 5 regeneration: Brass et al. issue handling --");
    let brass_rows: Vec<Vec<String>> = r
        .brass
        .iter()
        .map(|b| {
            vec![
                b.issue.to_string(),
                b.description.chars().take(48).collect(),
                b.paper_category.clone(),
                format!("{:?}", b.observed),
                if b.matches_paper { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["issue", "description", "paper", "observed", "match"], &brass_rows)
    );
    let matched = r.brass.iter().filter(|b| b.matches_paper).count();
    println!(
        "issues handled as the paper reports: {matched}/{} \
         (11 fixed / 3 proven-equivalent / 11 flagged-but-correct)",
        r.brass.len()
    );
    report::write_json("students", &r);
}

//! E7/E8 — regenerate Figures 5 and 6 with the simulated-participant
//! model (see DESIGN.md for the substitution argument).
//!
//! Run with: `cargo run --release -p qrhint-bench --bin exp_user_study`

use qrhint_bench::{report, userstudy};

fn main() {
    println!("== Figure 5: error identification with/without Qr-Hint hints ==");
    println!("(simulated participants; observability measured by differential execution)\n");
    let det = userstudy::detection(200, 0x57D);
    let rows: Vec<Vec<String>> = det
        .iter()
        .map(|d| {
            vec![
                d.question.clone(),
                format!("{:.2}", d.observability),
                format!("{:.1}%", 100.0 * d.no_hint_detect_rate),
                format!("{:.1}%", 100.0 * d.with_hint_detect_rate),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["question", "observability", "no hints", "Qr-Hint hints"], &rows)
    );
    println!(
        "paper: Q1 14.3% → 100%; Q2 71.4% → 87.3% (7-8 humans per arm; our \
         simulation uses 200 per arm, so rates are smoother)\n"
    );

    println!("== Figure 6: hint categorization votes (Q3/Q4) ==\n");
    let votes = userstudy::votes(100, 0x57E);
    for v in &votes {
        println!("--- {} ---", v.question);
        let rows: Vec<Vec<String>> = v
            .hints
            .iter()
            .map(|h| {
                vec![
                    h.source.clone(),
                    h.text.chars().take(58).collect(),
                    h.unhelpful.to_string(),
                    h.helpful.to_string(),
                    h.obvious.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            report::table(&["source", "hint", "unhelpful", "helpful", "obvious"], &rows)
        );
    }
    println!(
        "paper shape: TA hint quality varies widely; Qr-Hint hints are \
         consistently 'helpful but require thinking'."
    );
    report::write_json("user_study_fig5", &det);
    report::write_json("user_study_fig6", &votes);
}

//! E12 — front-end recovery of unsupported Students queries
//! (EXPERIMENTS.md; extension, DESIGN.md §8.1): how many of the 35
//! UNSUPPORTED corpus entries become hintable under each front-end
//! configuration, with every recovered query driven to verified
//! equivalence by the pipeline.
//!
//! Run with: `cargo run --release -p qrhint-bench --bin exp_recovery`

use qr_hint::prelude::*;
use qrhint_bench::report;
use qrhint_engine::differential_equiv;
use qrhint_workloads::students;
use serde::Serialize;

#[derive(Serialize)]
struct RecoveryRow {
    config: String,
    recovered: usize,
    total: usize,
    converged: usize,
    verified: usize,
}

fn run_config(name: &str, opts: Option<&FlattenOptions>) -> RecoveryRow {
    let qr = QrHint::new(students::schema());
    let corpus = students::corpus();
    let unsupported: Vec<_> =
        corpus.iter().filter(|e| e.category == "UNSUPPORTED").collect();
    let total = unsupported.len();
    let mut recovered = 0;
    let mut converged = 0;
    let mut verified = 0;
    for e in &unsupported {
        let parsed = match opts {
            None => qr.prepare(&e.pair.working_sql),
            Some(o) => qr.prepare_extended(&e.pair.working_sql, o),
        };
        let Ok(working) = parsed else { continue };
        recovered += 1;
        let target = match opts {
            None => qr.prepare(&e.pair.target_sql),
            Some(o) => qr.prepare_extended(&e.pair.target_sql, o),
        }
        .expect("reference query parses");
        if let Ok((final_q, trail)) = qr.fix_fully(&target, &working) {
            if trail.last().is_some_and(|a| a.is_equivalent()) {
                converged += 1;
                if differential_equiv(&target, &final_q, qr.schema(), 0xE12, 15)
                    .unwrap_or(false)
                {
                    verified += 1;
                }
            }
        }
    }
    RecoveryRow { config: name.to_string(), recovered, total, converged, verified }
}

fn main() {
    let rows = vec![
        run_config("strict §3 parser (paper)", None),
        run_config("footnote-2 rewrites", Some(&FlattenOptions::default())),
        run_config(
            "+ positive-subquery rewrite",
            Some(&FlattenOptions::with_subquery_rewrite()),
        ),
    ];
    println!("E12 — front-end recovery of the 35 UNSUPPORTED Students queries\n");
    println!(
        "{}",
        report::table(
            &["configuration", "recovered", "converged", "verified"],
            &rows
                .iter()
                .map(|r| vec![
                    r.config.clone(),
                    format!("{}/{}", r.recovered, r.total),
                    r.converged.to_string(),
                    r.verified.to_string(),
                ])
                .collect::<Vec<_>>(),
        )
    );
    report::write_json("exp_recovery", &rows);
    let last = rows.last().unwrap();
    assert_eq!(last.recovered, last.converged, "every recovered query must converge");
    assert_eq!(last.converged, last.verified, "every converged query must verify");
}

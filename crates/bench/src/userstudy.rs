//! Figures 5–6 — the user study, replayed with simulated participants.
//!
//! Humans cannot be re-run inside a library, so this module substitutes
//! a calibrated participant model (documented in DESIGN.md):
//!
//! * **Error detection (Fig. 5).** A participant examining a wrong query
//!   detects a given error with probability depending on (a) whether a
//!   hint localizes the error's clause and (b) the error's
//!   *observability* — the fraction of random databases on which the
//!   wrong and correct queries actually disagree, measured with
//!   `qrhint-engine`. Hints raise detection sharply; subtle errors
//!   (low observability) are rarely found unaided.
//! * **Hint rating (Fig. 6).** A participant rates each hint as
//!   "Unhelpful", "Helpful (requires thinking)" or "Obvious (gives away
//!   the answer)" from its *specificity*: hints that state the exact
//!   replacement are obvious; hints that only localize a site are
//!   helpful; vague clause-level remarks trend unhelpful.
//!
//! The absolute percentages depend on the noise calibration; the
//! *mechanism* (localized hints help; Qr-Hint hints cluster in the
//! "helpful" band while TA hints spread across all three) is what the
//! figures demonstrate and what this simulation reproduces.

use qr_hint::prelude::*;
use qrhint_engine::{execute, bag_equal};
use qrhint_workloads::dblp::{self, HintSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Figure-5 style result for one question.
#[derive(Debug, Clone, Serialize)]
pub struct DetectionResult {
    pub question: String,
    pub participants_per_arm: usize,
    /// Share of unaided participants identifying ≥ 1 error.
    pub no_hint_detect_rate: f64,
    /// Share of hinted participants identifying ≥ 1 error.
    pub with_hint_detect_rate: f64,
    /// Error observability measured by differential execution.
    pub observability: f64,
}

/// Figure-6 style vote tallies for one question.
#[derive(Debug, Clone, Serialize)]
pub struct VoteResult {
    pub question: String,
    pub hints: Vec<HintVotes>,
}

#[derive(Debug, Clone, Serialize)]
pub struct HintVotes {
    pub source: String,
    pub text: String,
    pub unhelpful: usize,
    pub helpful: usize,
    pub obvious: usize,
}

/// Measure how observable the wrong query's errors are: the fraction of
/// random small databases on which wrong and correct outputs differ.
pub fn observability(qr: &QrHint, correct: &Query, wrong: &Query, trials: usize) -> f64 {
    let mut differing = 0usize;
    let mut valid = 0usize;
    // Keep the cross product tractable for wide joins (Q1 joins 8 tables)
    // while giving narrow queries enough data for differences to surface.
    let rows = if correct.from.len() >= 6 { 2 } else { 8 };
    for seed in 0..trials as u64 {
        let db = DataGen::new(seed).with_rows(rows).generate(qr.schema(), &[correct, wrong]);
        let (Ok(a), Ok(b)) = (
            execute(correct, qr.schema(), &db),
            execute(wrong, qr.schema(), &db),
        ) else {
            continue;
        };
        valid += 1;
        if !bag_equal(&a, &b) {
            differing += 1;
        }
    }
    if valid == 0 {
        return 0.0;
    }
    differing as f64 / valid as f64
}

/// Simulate the Fig-5 detection experiment for Q1 and Q2.
pub fn detection(participants_per_arm: usize, seed: u64) -> Vec<DetectionResult> {
    let qr = QrHint::new(dblp::schema());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for q in dblp::questions().into_iter().filter(|q| q.id == "Q1" || q.id == "Q2") {
        let correct = qr.prepare(q.correct_sql).expect("parses");
        let wrong = qr.prepare(q.wrong_sql).expect("parses");
        let obs = observability(&qr, &correct, &wrong, 24);
        // Calibrate unaided detection to the errors' *clause visibility*,
        // derived from the pipeline's own stage trail: errors surfacing in
        // SELECT/GROUP BY are visually prominent (Q2's COUNT(*) and extra
        // grouping column); errors buried inside WHERE/HAVING atoms (Q1's
        // `>` vs `>=` deep in an 8-table join) are subtle. This matches
        // the paper's observed asymmetry (Q1 14.3% vs Q2 71.4% unaided).
        let stages: Vec<String> = qr
            .fix_fully(&correct, &wrong)
            .map(|(_, trail)| trail.iter().map(|a| a.stage.to_string()).collect())
            .unwrap_or_default();
        let visible = stages.iter().any(|s| s == "SELECT" || s == "GROUP BY");
        let p_unaided = if visible { 0.50 } else { 0.08 };
        let p_hinted = 0.90;
        let detected = |p: f64, rng: &mut StdRng| -> usize {
            (0..participants_per_arm)
                .filter(|_| {
                    // ≥1 of num_errors errors found.
                    (0..q.num_errors).any(|_| rng.gen_bool(p))
                })
                .count()
        };
        let unaided = detected(p_unaided, &mut rng);
        let hinted = detected(p_hinted, &mut rng);
        out.push(DetectionResult {
            question: q.id.to_string(),
            participants_per_arm,
            no_hint_detect_rate: unaided as f64 / participants_per_arm as f64,
            with_hint_detect_rate: hinted as f64 / participants_per_arm as f64,
            observability: obs,
        });
    }
    out
}

/// Hint specificity classes driving the rating model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Specificity {
    /// States the exact replacement ("should be = 'Systems'").
    GivesAway,
    /// Localizes a site without the fix.
    Localizing,
    /// Clause-level or vaguer.
    Vague,
}

fn classify(text: &str) -> Specificity {
    let t = text.to_lowercase();
    if t.contains("should be") || t.contains("this fix alone") {
        return Specificity::GivesAway;
    }
    // "X.y is incorrect" localizes when it names a qualified expression.
    if let Some(pos) = t.find(" is incorrect") {
        if t[..pos].contains('.') || t[..pos].contains("count(") {
            return Specificity::Localizing;
        }
        return Specificity::Vague;
    }
    if t.contains("try to fix")
        || t.contains("you are missing")
        || t.contains("should not appear")
        || t.contains("should change")
        || t.contains("should not include")
    {
        Specificity::Localizing
    } else {
        Specificity::Vague
    }
}

/// Simulate the Fig-6 vote experiment for Q3 and Q4.
pub fn votes(participants: usize, seed: u64) -> Vec<VoteResult> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for q in dblp::questions().into_iter().filter(|q| q.id == "Q3" || q.id == "Q4") {
        let mut hints = Vec::new();
        for h in &q.hints {
            let spec = classify(h.text);
            // Vote distribution per specificity class (calibrated so the
            // paper's qualitative result holds: Qr-Hint hints cluster in
            // "helpful"; TA hints spread).
            let (p_unhelpful, p_helpful) = match spec {
                Specificity::GivesAway => (0.08, 0.17), // rest: obvious
                Specificity::Localizing => (0.10, 0.75),
                Specificity::Vague => (0.55, 0.35),
            };
            let mut tally = HintVotes {
                source: match h.source {
                    HintSource::Ta => "TA".into(),
                    HintSource::QrHint => "Qr-Hint".into(),
                },
                text: h.text.to_string(),
                unhelpful: 0,
                helpful: 0,
                obvious: 0,
            };
            for _ in 0..participants {
                let x: f64 = rng.gen();
                if x < p_unhelpful {
                    tally.unhelpful += 1;
                } else if x < p_unhelpful + p_helpful {
                    tally.helpful += 1;
                } else {
                    tally.obvious += 1;
                }
            }
            hints.push(tally);
        }
        out.push(VoteResult { question: q.id.to_string(), hints });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_shows_the_figure5_shape() {
        let results = detection(40, 0x57D);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(
                r.with_hint_detect_rate >= r.no_hint_detect_rate,
                "{}: hints must not hurt ({} vs {})",
                r.question,
                r.with_hint_detect_rate,
                r.no_hint_detect_rate
            );
            assert!(r.with_hint_detect_rate > 0.7, "{}: hints should help a lot", r.question);
        }
        // Q1's errors are subtler than Q2's (the paper: 14.3% vs 71.4%
        // unaided): observability ordering should reflect that.
        let q1 = &results[0];
        let q2 = &results[1];
        assert!(
            q1.no_hint_detect_rate <= q2.no_hint_detect_rate + 0.15,
            "Q1 should be (roughly) harder unaided: {} vs {}",
            q1.no_hint_detect_rate,
            q2.no_hint_detect_rate
        );
    }

    #[test]
    fn votes_show_the_figure6_shape() {
        let results = votes(60, 0x57E);
        for r in &results {
            // Qr-Hint hints cluster in "helpful".
            for h in r.hints.iter().filter(|h| h.source == "Qr-Hint") {
                assert!(
                    h.helpful > h.unhelpful && h.helpful > h.obvious,
                    "{}: Qr-Hint hint should be mostly helpful: {h:?}",
                    r.question
                );
            }
            // TA hints vary more: at least one TA hint is NOT
            // helpful-dominated across the two questions combined.
        }
        let any_ta_not_helpful_dominated = results.iter().flat_map(|r| &r.hints).any(|h| {
            h.source == "TA" && (h.obvious >= h.helpful || h.unhelpful >= h.helpful)
        });
        assert!(any_ta_not_helpful_dominated, "TA hint quality should vary");
    }

    #[test]
    fn specificity_classifier() {
        assert_eq!(
            classify("In HAVING, conference_paper.area = 'System' should be = 'Systems'."),
            Specificity::GivesAway
        );
        assert_eq!(
            classify("In GROUP BY: authorship.author is incorrect."),
            Specificity::Localizing
        );
        assert_eq!(classify("GROUP BY is incorrect."), Specificity::Vague);
    }
}

//! Figure 4 (a: `DeriveFixes`, b: `DeriveFixesOPT`): all unpruned viable
//! repairs discovered during execution, as (time, cost) traces — one
//! trace per error count on the Q7 nested workload.

use qrhint_core::repair::{repair_where, FixStrategy, RepairConfig};
use qrhint_core::Oracle;
use qrhint_workloads::{inject, tpch};
use serde::Serialize;

/// A (time, cost) event within one execution trace.
#[derive(Debug, Clone, Serialize)]
pub struct TracePoint {
    pub time_ms: f64,
    pub cost: f64,
    pub nsites: usize,
}

/// One execution's trace.
#[derive(Debug, Clone, Serialize)]
pub struct Trace {
    pub errors: usize,
    pub strategy: String,
    pub points: Vec<TracePoint>,
    pub final_cost: f64,
}

/// Collect traces for 1..=max_errors with both strategies.
pub fn run(max_errors: usize, seed: u64) -> Vec<Trace> {
    let target = tpch::q7_nested();
    let mut traces = Vec::new();
    for errors in 1..=max_errors {
        let (wrong, _) = inject::inject_mixed_errors(&target, errors, seed + errors as u64);
        for (strategy, label) in
            [(FixStrategy::Basic, "DeriveFixes"), (FixStrategy::Optimized, "DeriveFixesOPT")]
        {
            let cfg = RepairConfig {
                strategy,
                collect_trace: true,
                // No early stopping: Figure 4 shows *all* viable repairs
                // found during the course of execution.
                disable_early_stop: true,
                ..RepairConfig::default()
            };
            let mut oracle = Oracle::for_preds(&[&wrong, &target]);
            let outcome = repair_where(&mut oracle, &[], &wrong, &target, &cfg);
            traces.push(Trace {
                errors,
                strategy: label.to_string(),
                points: outcome
                    .trace
                    .iter()
                    .map(|t| TracePoint {
                        time_ms: t.elapsed.as_secs_f64() * 1e3,
                        cost: t.cost,
                        nsites: t.nsites,
                    })
                    .collect(),
                final_cost: outcome.cost,
            });
        }
    }
    traces
}

/// Summarize a trace the way the paper reads Figure 4: does the lowest
/// cost surface early (in the first half of the events)?
pub fn lowest_cost_surfaces_early(trace: &Trace) -> Option<bool> {
    if trace.points.len() < 2 {
        return None;
    }
    let best = trace
        .points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cost.partial_cmp(&b.1.cost).unwrap())?;
    Some(best.0 <= trace.points.len() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_surfacing_summary() {
        let t = Trace {
            errors: 1,
            strategy: "x".into(),
            points: vec![
                TracePoint { time_ms: 1.0, cost: 0.4, nsites: 1 },
                TracePoint { time_ms: 2.0, cost: 0.9, nsites: 1 },
                TracePoint { time_ms: 3.0, cost: 1.1, nsites: 2 },
            ],
            final_cost: 0.4,
        };
        assert_eq!(lowest_cost_surfaces_early(&t), Some(true));
        let single = Trace { points: vec![t.points[0].clone()], ..t.clone() };
        assert_eq!(lowest_cost_surfaces_early(&single), None);
    }

    #[test]
    #[ignore = "multi-second solver sweep; covered by exp_fig4"]
    fn traces_record_viable_repairs_in_time_order() {
        let traces = run(1, 0xF4);
        assert_eq!(traces.len(), 2);
        for t in &traces {
            assert!(!t.points.is_empty(), "{} e={} empty trace", t.strategy, t.errors);
            // Monotone timestamps.
            assert!(t
                .points
                .windows(2)
                .all(|w| w[0].time_ms <= w[1].time_ms + 1e-6));
            // The reported final cost is the minimum over the trace.
            let min = t.points.iter().map(|p| p.cost).fold(f64::INFINITY, f64::min);
            assert!((min - t.final_cost).abs() < 1e-9);
        }
    }
}

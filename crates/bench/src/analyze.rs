//! Static-analysis benchmark (PR 7): analyzer throughput over the
//! seeded fuzz corpora, and what the interval prescreen saves on a
//! contradiction-seeded grading batch.
//!
//! Two measurements:
//!
//! 1. **Analyzer throughput.** `qrhint_analysis::analyze` over every
//!    working query of each workload's seed-42 mutation corpus
//!    (min-of-reps wall clock). The analyzer sits on the hot path of
//!    `advise`/`lint`/`serve`, so queries/sec is the number that bounds
//!    how much latency the new pass adds per submission.
//! 2. **Prescreen ablation.** A 50-submission batch against one
//!    prepared target, every other submission seeded with an interval
//!    contradiction (`x > k AND x < k-10`) in its WHERE clause. The
//!    batch is graded twice on *fresh* targets — prescreen on
//!    (default) and off ([`QrHintConfig::static_prescreen`]) — and the
//!    per-submission advice must be byte-identical (the prescreen may
//!    only skip solver work, never change verdicts) while
//!    [`SessionStats::solver_calls_skipped`] must move on the
//!    prescreen-on run.
//!
//! The binary exits nonzero if advice parity breaks or no solver call
//! was skipped; throughput numbers are report-only (CI runs this
//! without gating on speed). Results land in `BENCH_analyze.json` (run
//! from the repo root: `cargo run --release --bin exp_analyze`).

use qr_hint::prelude::*;
use qrhint_workloads::mutate::{Fuzzer, SCHEMA_NAMES};
use serde::Serialize;
use std::time::Instant;

/// Corpus seed: the same default `qr-hint fuzz` advertises.
pub const SEED: u64 = 42;
/// Working queries analyzed per schema in the throughput pass.
pub const CORPUS_PER_SCHEMA: usize = 120;
/// Submissions in the prescreen-ablation batch.
pub const BATCH: usize = 50;
const TIMED_REPS: usize = 3;

/// Analyzer throughput over one workload corpus.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    pub schema: String,
    pub queries: usize,
    /// Total diagnostics across the corpus (mutants included, so
    /// nonzero is expected — contradictions and ungrouped columns are
    /// exactly what the fuzzer injects).
    pub diagnostics: usize,
    /// Min-of-reps wall clock for analyzing the whole corpus.
    pub ms: f64,
    pub queries_per_s: f64,
}

/// The prescreen on/off ablation on the contradiction-seeded batch.
#[derive(Debug, Clone, Serialize)]
pub struct PrescreenAblation {
    pub submissions: usize,
    /// Submissions carrying a seeded interval contradiction.
    pub contradiction_seeded: usize,
    /// Per-submission advice JSON identical between the two runs.
    pub advice_parity: bool,
    pub ms_prescreen_on: f64,
    pub ms_prescreen_off: f64,
    /// Stats from the prescreen-on target.
    pub solver_calls: u64,
    pub solver_calls_skipped: u64,
    pub stages_short_circuited: u64,
    /// Solver calls the prescreen-off target paid for the same batch.
    pub solver_calls_without: u64,
}

#[derive(Debug, Clone, Serialize)]
pub struct AnalyzeReport {
    pub seed: u64,
    pub rows: Vec<ThroughputRow>,
    pub ablation: PrescreenAblation,
    /// `advice_parity && solver_calls_skipped > 0`.
    pub gate_ok: bool,
}

fn throughput() -> Vec<ThroughputRow> {
    SCHEMA_NAMES
        .iter()
        .map(|name| {
            let fuzzer = Fuzzer::for_schema(name).expect("known schema");
            let cases = fuzzer.generate(CORPUS_PER_SCHEMA, SEED);
            let schema = fuzzer.schema();
            let mut diagnostics = 0usize;
            let mut best_ms = f64::INFINITY;
            for rep in 0..TIMED_REPS {
                let started = Instant::now();
                let mut count = 0usize;
                for case in &cases {
                    count += qr_hint::analysis::analyze(schema, &case.working).len();
                }
                best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1e3);
                if rep == 0 {
                    diagnostics = count;
                }
            }
            ThroughputRow {
                schema: name.to_string(),
                queries: cases.len(),
                diagnostics,
                ms: best_ms,
                queries_per_s: cases.len() as f64 / (best_ms / 1e3),
            }
        })
        .collect()
}

/// The ablation batch: every even submission gets an interval
/// contradiction appended to its WHERE clause, odd ones a satisfiable
/// tightening, so the batch mixes statically-decidable and genuinely
/// solver-bound work.
fn batch_submissions() -> Vec<String> {
    (0..BATCH)
        .map(|i| {
            if i % 2 == 0 {
                format!(
                    "SELECT f.drinker FROM Frequents f \
                     WHERE f.times_a_week >= 2 AND f.times_a_week > {} AND f.times_a_week < {}",
                    i,
                    i as i64 - 10
                )
            } else {
                format!(
                    "SELECT f.drinker FROM Frequents f WHERE f.times_a_week > {}",
                    i % 5
                )
            }
        })
        .collect()
}

fn grade_batch(prescreen: bool, subs: &[String]) -> (Vec<String>, SessionStats, f64) {
    let schema = qrhint_workloads::students::schema();
    let cfg = QrHintConfig { static_prescreen: prescreen, ..QrHintConfig::default() };
    let qr = QrHint::with_config(schema, cfg);
    let prepared = qr
        .compile_target("SELECT f.drinker FROM Frequents f WHERE f.times_a_week >= 2")
        .expect("target compiles");
    let started = Instant::now();
    let advice: Vec<String> = subs
        .iter()
        .map(|sql| match prepared.advise_sql(sql) {
            Ok(a) => serde_json::to_string(&AdviceReport::new(a)).expect("advice serializes"),
            Err(e) => format!("error: {e}"),
        })
        .collect();
    let ms = started.elapsed().as_secs_f64() * 1e3;
    (advice, prepared.stats(), ms)
}

pub fn run() -> AnalyzeReport {
    let rows = throughput();
    let subs = batch_submissions();
    let (with_advice, with_stats, ms_on) = grade_batch(true, &subs);
    let (without_advice, without_stats, ms_off) = grade_batch(false, &subs);
    let advice_parity = with_advice == without_advice;
    let ablation = PrescreenAblation {
        submissions: subs.len(),
        contradiction_seeded: subs.len().div_ceil(2),
        advice_parity,
        ms_prescreen_on: ms_on,
        ms_prescreen_off: ms_off,
        solver_calls: with_stats.solver_calls,
        solver_calls_skipped: with_stats.solver_calls_skipped,
        stages_short_circuited: with_stats.stages_short_circuited,
        solver_calls_without: without_stats.solver_calls,
    };
    let gate_ok = advice_parity && ablation.solver_calls_skipped > 0;
    AnalyzeReport { seed: SEED, rows, ablation, gate_ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_gate_holds_on_the_seeded_batch() {
        let report = run();
        assert!(report.ablation.advice_parity, "prescreen changed advice");
        assert!(
            report.ablation.solver_calls_skipped > 0,
            "no solver call skipped: {:?}",
            report.ablation
        );
        assert!(report.gate_ok);
    }
}

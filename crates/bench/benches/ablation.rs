//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **A1** — Algorithm 1's cost-bound early stopping on/off;
//! * **A2** — signature-based table mapping vs exhaustive enumeration of
//!   all alias permutations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrhint_core::mapping::{all_table_mappings, table_mapping};
use qrhint_core::repair::{repair_where, RepairConfig};
use qrhint_core::Oracle;
use qrhint_sqlparse::{parse_pred, parse_query};
use qrhint_workloads::{inject, tpch};

fn ablation_early_stop(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_early_stopping");
    group.sample_size(10);
    let case = tpch::conjunctive_suite()
        .into_iter()
        .find(|c| c.natoms == 6)
        .unwrap();
    let target = parse_pred(case.where_sql).unwrap();
    let (wrong, _) = inject::inject_atom_errors(&target, 2, 0xA1);
    for (label, disable) in [("with_early_stop", false), ("no_early_stop", true)] {
        group.bench_with_input(
            BenchmarkId::new(label, case.name),
            &(&wrong, &target),
            |b, (wrong, target)| {
                b.iter(|| {
                    let cfg = RepairConfig { disable_early_stop: disable, ..Default::default() };
                    let mut oracle = Oracle::for_preds(&[wrong, target]);
                    repair_where(&mut oracle, &[], wrong, target, &cfg)
                })
            },
        );
    }
    group.finish();
}

fn ablation_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_table_mapping");
    // The paper's own self-join example: Serves twice, plus three more
    // aliased tables.
    let q_star = parse_query(
        "SELECT L.beer, S1.bar, COUNT(*)
         FROM Likes L, Frequents F, Serves S1, Serves S2
         WHERE L.drinker = F.drinker AND F.bar = S1.bar
           AND L.beer = S1.beer AND S1.beer = S2.beer
           AND S1.price <= S2.price
         GROUP BY F.drinker, L.beer, S1.bar
         HAVING F.drinker = 'Amy'",
    )
    .unwrap();
    let q = parse_query(
        "SELECT s2.beer, s2.bar, COUNT(*)
         FROM Likes, Frequents, Serves s1, Serves s2
         WHERE likes.drinker = 'Amy'
           AND likes.beer = s1.beer AND likes.beer = s2.beer
           AND s1.price > s2.price
         GROUP BY s2.beer, s2.bar",
    )
    .unwrap();
    group.bench_function("signature_matching", |b| {
        b.iter(|| table_mapping(&q_star, &q))
    });
    group.bench_function("exhaustive_enumeration", |b| {
        b.iter(|| all_table_mappings(&q_star, &q))
    });
    group.finish();
}

criterion_group!(benches, ablation_early_stop, ablation_mapping);
criterion_main!(benches);

//! Criterion microbench for the session-oriented grading API: cold
//! stateless `advise_sql` per submission vs one `compile_target` +
//! `grade_batch` over the same classroom batch. The full comparison
//! (with the persisted `BENCH_session_api.json` artifact and the 2×
//! acceptance gate) lives in the `exp_session_api` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use qr_hint::prelude::*;
use qrhint_bench::session_api;

fn session_grading(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_api");
    group.sample_size(10);
    let (schema, target, subs) = session_api::students_batch(16);
    group.bench_function("cold_advise_sql_loop", |b| {
        b.iter(|| {
            let qr = QrHint::new(schema.clone());
            subs.iter().filter_map(|s| qr.advise_sql(&target, s).ok()).count()
        })
    });
    group.bench_function("prepared_grade_batch", |b| {
        b.iter(|| {
            let qr = QrHint::new(schema.clone());
            let prepared = qr.compile_target(&target).unwrap();
            prepared.grade_batch(&subs).into_iter().filter(|a| a.is_ok()).count()
        })
    });
    group.finish();
}

criterion_group!(benches, session_grading);
criterion_main!(benches);

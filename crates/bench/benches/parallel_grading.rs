//! Criterion microbench for parallel batch grading: one shared
//! `PreparedTarget` graded sequentially vs through the scoped worker
//! pool. The full comparison (with the persisted
//! `BENCH_parallel_grading.json` artifact, parity checks and the
//! 4-thread gate) lives in the `exp_parallel_grading` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use qr_hint::prelude::*;
use qrhint_bench::parallel_grading;

fn parallel_batch_grading(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_grading");
    group.sample_size(10);
    let (_, schema, target, subs) = parallel_grading::workloads(16).remove(1);
    let qr = QrHint::new(schema);
    group.bench_function("grade_batch_sequential", |b| {
        b.iter(|| {
            let prepared = qr.compile_target(&target).unwrap();
            prepared.grade_batch(&subs).into_iter().filter(|a| a.is_ok()).count()
        })
    });
    for jobs in [2usize, 4] {
        group.bench_function(format!("grade_batch_parallel_j{jobs}"), |b| {
            b.iter(|| {
                let prepared = qr.compile_target(&target).unwrap();
                prepared
                    .grade_batch_parallel(&subs, jobs)
                    .into_iter()
                    .filter(|a| a.is_ok())
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, parallel_batch_grading);
criterion_main!(benches);

//! Benches for the DESIGN.md §8 extensions: overhead of the multi-block
//! front-end (flattening vs strict parsing) and of the NULL prototype's
//! 3VL encoding + equivalence check. These quantify the cost of the
//! opt-in relaxations so EXPERIMENTS.md can state that enabling them
//! does not change the order of magnitude of a hinting session.

use criterion::{criterion_group, criterion_main, Criterion};
use qrhint_core::nullsafe::{encode_where_3vl, where_equiv_3vl};
use qrhint_sqlast::ColRef;
use qrhint_sqlparse::{parse_pred, parse_query, parse_query_extended, FlattenOptions};
use std::collections::BTreeSet;
use std::hint::black_box;

const COMMA_SQL: &str = "SELECT l.beer, s1.bar, COUNT(*) \
    FROM likes l, frequents f, serves s1, serves s2 \
    WHERE l.drinker = f.drinker AND f.bar = s1.bar \
      AND l.beer = s1.beer AND s1.beer = s2.beer AND s1.price <= s2.price \
    GROUP BY f.drinker, l.beer, s1.bar HAVING f.drinker = 'Amy'";

const JOIN_SQL: &str = "SELECT l.beer, s1.bar, COUNT(*) \
    FROM likes l JOIN frequents f ON l.drinker = f.drinker \
                 JOIN serves s1 ON f.bar = s1.bar AND l.beer = s1.beer \
                 JOIN serves s2 ON s1.beer = s2.beer \
    WHERE s1.price <= s2.price \
    GROUP BY f.drinker, l.beer, s1.bar HAVING f.drinker = 'Amy'";

const CTE_SQL: &str = "WITH amy AS (SELECT l.drinker, l.beer FROM likes l \
                                    WHERE l.drinker = 'Amy') \
    SELECT a.beer, s1.bar, COUNT(*) \
    FROM amy a, frequents f, serves s1, serves s2 \
    WHERE a.drinker = f.drinker AND f.bar = s1.bar \
      AND a.beer = s1.beer AND s1.beer = s2.beer AND s1.price <= s2.price \
    GROUP BY f.drinker, a.beer, s1.bar";

fn frontend_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_frontend");
    group.sample_size(40);
    group.bench_function("strict_parse", |b| {
        b.iter(|| parse_query(black_box(COMMA_SQL)).unwrap())
    });
    group.bench_function("extended_parse_same_fragment", |b| {
        b.iter(|| {
            parse_query_extended(black_box(COMMA_SQL), &FlattenOptions::default()).unwrap()
        })
    });
    group.bench_function("flatten_join_syntax", |b| {
        b.iter(|| {
            parse_query_extended(black_box(JOIN_SQL), &FlattenOptions::default()).unwrap()
        })
    });
    group.bench_function("flatten_cte", |b| {
        b.iter(|| {
            parse_query_extended(black_box(CTE_SQL), &FlattenOptions::default()).unwrap()
        })
    });
    group.finish();
}

fn nullsafe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_nullsafe");
    group.sample_size(30);
    let p = parse_pred(
        "t.a > 5 AND (t.b < 3 OR NOT (t.c = t.a)) AND (t.b = 2 OR t.c >= 1)",
    )
    .unwrap();
    let q = parse_pred(
        "(t.b = 2 OR t.c >= 1) AND t.a >= 6 AND (t.b <= 2 OR t.c <> t.a)",
    )
    .unwrap();
    let ns: BTreeSet<ColRef> =
        [ColRef::new("t", "a"), ColRef::new("t", "b")].into_iter().collect();
    group.bench_function("encode_3vl", |b| {
        b.iter(|| encode_where_3vl(black_box(&p), black_box(&ns)))
    });
    group.bench_function("equiv_2vl_baseline", |b| {
        b.iter(|| {
            let mut oracle = qrhint_core::Oracle::for_preds(&[&p, &q]);
            oracle.equiv_pred(black_box(&p), black_box(&q), &[])
        })
    });
    group.bench_function("equiv_3vl", |b| {
        b.iter(|| where_equiv_3vl(black_box(&p), black_box(&q), black_box(&ns)))
    });
    group.finish();
}

criterion_group!(benches, frontend_overhead, nullsafe_overhead);
criterion_main!(benches);

//! Microbenchmarks for the substrates: the SMT-lite solver's equivalence
//! primitive on the suite predicates, and Boolean minimization on random
//! truth tables (the two dominant costs inside `MinFix`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrhint_boolmin::{minimize, Out, TruthTable};
use qrhint_core::Oracle;
use qrhint_sqlparse::parse_pred;
use qrhint_workloads::tpch;

fn bench_equiv(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt_equiv");
    group.sample_size(20);
    for case in tpch::conjunctive_suite().into_iter().filter(|c| c.natoms <= 9) {
        let p = parse_pred(case.where_sql).unwrap();
        group.bench_with_input(
            BenchmarkId::new("self_equiv", format!("{}atoms", case.natoms)),
            &p,
            |b, p| {
                b.iter(|| {
                    let mut oracle = Oracle::for_preds(&[p]);
                    oracle.equiv_pred(p, p, &[])
                })
            },
        );
    }
    group.finish();
}

fn bench_boolmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("boolmin_qm");
    for nvars in [6usize, 8, 10] {
        // Deterministic structured function with don't-cares.
        let t = TruthTable::from_fn(nvars, |r| match r % 5 {
            0 => Out::One,
            1 => Out::DontCare,
            _ => Out::Zero,
        });
        group.bench_with_input(BenchmarkId::new("minimize", nvars), &t, |b, t| {
            b.iter(|| minimize(t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_equiv, bench_boolmin);
criterion_main!(benches);

//! Criterion bench for Figures 2b/3b: `RepairWhere` running time on the
//! conjunctive TPC-H suite (4–7 atoms kept in the default run; the full
//! 4–11 sweep is in `exp_fig2`) and on the Q7 nested predicate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrhint_core::repair::{repair_where, FixStrategy, RepairConfig};
use qrhint_core::Oracle;
use qrhint_sqlparse::parse_pred;
use qrhint_workloads::{inject, tpch};

fn bench_conjunctive(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2b_conjunctive_where");
    group.sample_size(10);
    for case in tpch::conjunctive_suite().into_iter().filter(|c| c.natoms <= 7) {
        let target = parse_pred(case.where_sql).unwrap();
        let (wrong, _) = inject::inject_atom_errors(&target, 2, 0xF16);
        for (strategy, label) in
            [(FixStrategy::Basic, "basic"), (FixStrategy::Optimized, "opt")]
        {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{}-{}atoms", case.name, case.natoms)),
                &(&wrong, &target),
                |b, (wrong, target)| {
                    b.iter(|| {
                        let cfg = RepairConfig { strategy, ..RepairConfig::default() };
                        let mut oracle = Oracle::for_preds(&[wrong, target]);
                        repair_where(&mut oracle, &[], wrong, target, &cfg)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3b_nested_where");
    group.sample_size(10);
    let target = tpch::q7_nested();
    // One injected error only: higher error counts take tens of seconds
    // per repair (see exp_fig3 for the full 1–5 sweep with wall times).
    for errors in 1..=1usize {
        let (wrong, _) = inject::inject_mixed_errors(&target, errors, 0xF3 + errors as u64);
        group.bench_with_input(
            BenchmarkId::new("basic", format!("{errors}err")),
            &(&wrong, &target),
            |b, (wrong, target)| {
                b.iter(|| {
                    let cfg = RepairConfig::default();
                    let mut oracle = Oracle::for_preds(&[wrong, target]);
                    repair_where(&mut oracle, &[], wrong, target, &cfg)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_conjunctive, bench_nested);
criterion_main!(benches);

//! Seeded whole-query mutation fuzzer.
//!
//! Generalizes [`crate::inject`] (which only perturbs WHERE atoms, the §9
//! setup) to the full Brass-et-al. error surface already catalogued in
//! [`crate::brass`]: SELECT-list swaps and drops, GROUP BY column
//! confusion, predicates misplaced between WHERE and HAVING,
//! aggregate-function substitution (COUNT↔SUM, missing DISTINCT),
//! join-table drops and alias swaps. Given a schema name, a count and a
//! seed it produces a deterministic corpus of [`FuzzCase`]s — each a
//! known-good base query from the bundled workloads plus 1–3 applied
//! mutations — that downstream differential testing
//! ([`crate::differential`]) can grade, repair and execute.
//!
//! Every emitted mutant is *well-formed by construction*: it resolves
//! against the schema and round-trips through the pretty-printer and
//! parser unchanged, so any divergence seen later is a property of the
//! grading/repair/execution pipeline, never of corpus generation.
//! Mutants are not guaranteed to be *semantically* wrong — some mutations
//! (e.g. swapping between aliases of the same table) produce equivalent
//! queries, which the differential harness classifies as such.

use qrhint_sqlast::pred::PredPath;
use qrhint_sqlast::resolve::{resolve_query, Scope};
use qrhint_sqlast::{
    AggArg, AggCall, AggFunc, ColRef, Pred, Query, Scalar, Schema, SelectItem, SqlType, TableRef,
};
use qrhint_sqlparse::{parse_pred, parse_query};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::cell::Cell;

use crate::inject::mutate_atom_once;
use crate::QueryPair;

/// Schema names accepted by [`Fuzzer::for_schema`] (and the
/// `qr-hint fuzz --schema` flag).
pub const SCHEMA_NAMES: &[&str] = &["beers", "beers-course", "brass", "dblp", "students", "tpch"];

/// The kind of a single applied mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MutationKind {
    /// A WHERE atom perturbed via the §9 injector (operator/constant).
    WhereAtom,
    /// An AND↔OR connective flipped inside the WHERE predicate.
    WhereConnective,
    /// An agg-free WHERE conjunct over grouped columns moved to HAVING.
    WhereToHaving,
    /// An agg-free HAVING conjunct moved down into WHERE.
    HavingToWhere,
    /// A HAVING atom perturbed (threshold/operator changes).
    HavingAtom,
    /// A SELECT output column replaced by a sibling column.
    SelectSwap,
    /// A SELECT output item dropped (arity error).
    SelectDrop,
    /// An aggregate function substituted (COUNT↔SUM↔AVG↔MIN↔MAX).
    AggFunc,
    /// DISTINCT toggled inside an aggregate call.
    AggDistinct,
    /// A GROUP BY column replaced by a sibling column.
    GroupBySwap,
    /// A GROUP BY column dropped (under-grouping).
    GroupByDrop,
    /// A spurious GROUP BY column added (over-grouping).
    GroupByAdd,
    /// An unreferenced FROM table dropped with its join predicates.
    JoinDrop,
    /// One column occurrence re-qualified to a different alias.
    AliasSwap,
}

impl MutationKind {
    /// Short stable label (used in error descriptions and reports).
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::WhereAtom => "where-atom",
            MutationKind::WhereConnective => "where-connective",
            MutationKind::WhereToHaving => "where-to-having",
            MutationKind::HavingToWhere => "having-to-where",
            MutationKind::HavingAtom => "having-atom",
            MutationKind::SelectSwap => "select-swap",
            MutationKind::SelectDrop => "select-drop",
            MutationKind::AggFunc => "agg-func",
            MutationKind::AggDistinct => "agg-distinct",
            MutationKind::GroupBySwap => "group-by-swap",
            MutationKind::GroupByDrop => "group-by-drop",
            MutationKind::GroupByAdd => "group-by-add",
            MutationKind::JoinDrop => "join-drop",
            MutationKind::AliasSwap => "alias-swap",
        }
    }
}

/// One applied mutation, with enough provenance for minimality checks.
#[derive(Debug, Clone)]
pub struct Mutation {
    pub kind: MutationKind,
    /// The clause where the hint pipeline should first flag the damage
    /// (matches [`qrhint_core::Stage`]'s display strings): `"FROM"`,
    /// `"WHERE"`, `"GROUP BY"`, `"HAVING"` or `"SELECT"`.
    pub clause: &'static str,
    /// Human-readable description of what changed.
    pub description: String,
    /// For WHERE-predicate mutations: the [`PredPath`] of the mutated
    /// node inside the working query's WHERE at the time of mutation.
    pub where_path: Option<PredPath>,
}

/// A fuzz corpus entry: a base query plus 1–3 applied mutations.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Corpus-unique id, e.g. `"fuzz-students-42-00017"`.
    pub id: String,
    /// Which base query this mutant derives from, e.g. `"students-d2"`.
    pub base_id: String,
    /// The (resolved) reference query.
    pub target: Query,
    /// The mutated working query (resolved, round-trip stable).
    pub working: Query,
    /// The mutations applied, in order.
    pub mutations: Vec<Mutation>,
}

impl FuzzCase {
    /// View as the workspace-standard [`QueryPair`].
    pub fn pair(&self) -> QueryPair {
        QueryPair {
            id: self.id.clone(),
            target_sql: self.target.to_string(),
            working_sql: self.working.to_string(),
            errors: self.mutations.iter().map(|m| m.description.clone()).collect(),
        }
    }
}

/// A seeded corpus generator for one workload schema.
pub struct Fuzzer {
    name: &'static str,
    schema: Schema,
    /// (base id, resolved target query).
    bases: Vec<(String, Query)>,
}

impl Fuzzer {
    /// Build the fuzzer for a named workload schema. Returns `None` for
    /// unknown names; see [`SCHEMA_NAMES`].
    pub fn for_schema(name: &str) -> Option<Fuzzer> {
        let (name, schema, raw): (&'static str, Schema, Vec<(String, String)>) = match name {
            "beers" => (
                "beers",
                crate::beers::schema(),
                vec![("example1".into(), crate::beers::EXAMPLE1_TARGET.into())],
            ),
            "beers-course" => (
                "beers-course",
                crate::beers::course_schema(),
                crate::beers::course_questions()
                    .into_iter()
                    .map(|(id, sql)| (id.to_string(), sql.to_string()))
                    .collect(),
            ),
            "students" => {
                let mut raw: Vec<(String, String)> = crate::beers::course_questions()
                    .into_iter()
                    .map(|(id, sql)| (id.to_string(), sql.to_string()))
                    .collect();
                // The second question-(d) target of the Students corpus:
                // self-join with DISTINCT.
                raw.push((
                    "d2".into(),
                    "SELECT DISTINCT l1.drinker FROM Likes l1, Likes l2 \
                     WHERE l1.drinker = l2.drinker AND l1.beer <> l2.beer"
                        .into(),
                ));
                ("students", crate::students::schema(), raw)
            }
            "brass" => {
                // Ids must stay unique per *target*: one issue number can
                // carry several pairs with different reference queries,
                // and the differential harness keys prepared targets by
                // base id.
                let mut seen = std::collections::BTreeSet::new();
                let raw = crate::brass::supported_pairs()
                    .into_iter()
                    .filter(|(_, _, p)| seen.insert(p.target_sql.clone()))
                    .enumerate()
                    .map(|(i, (n, _, p))| (format!("issue{n}-{i}"), p.target_sql))
                    .collect();
                ("brass", crate::brass::schema(), raw)
            }
            "dblp" => (
                "dblp",
                crate::dblp::schema(),
                crate::dblp::questions()
                    .into_iter()
                    .map(|q| (q.id.to_lowercase(), q.correct_sql.to_string()))
                    .collect(),
            ),
            "tpch" => {
                let mut raw: Vec<(String, String)> = crate::tpch::conjunctive_suite()
                    .into_iter()
                    .map(|c| (c.name.to_string(), tpch_query_sql(c.where_sql)))
                    .collect();
                raw.push(("q7".into(), tpch_query_sql(crate::tpch::Q7_NESTED)));
                ("tpch", crate::tpch::schema(), raw)
            }
            _ => return None,
        };
        let bases = raw
            .into_iter()
            .filter_map(|(id, sql)| {
                let q = parse_query(&sql).ok()?;
                let resolved = resolve_query(&schema, &q).ok()?;
                Some((id, resolved))
            })
            .collect::<Vec<_>>();
        let probe = Fuzzer { name, schema, bases };
        // Keep only bases with at least one applicable mutation site:
        // e.g. `SELECT COUNT(*) FROM Likes l` (brass issue 20) offers the
        // fuzzer nothing to perturb and would starve case generation.
        let mutable: Vec<(String, Query)> = probe
            .bases
            .iter()
            .filter(|(_, q)| {
                (0..4).any(|attempt| {
                    let mut rng = StdRng::seed_from_u64(attempt);
                    KIND_POOL.iter().any(|k| probe.try_kind(q, *k, &mut rng).is_some())
                })
            })
            .cloned()
            .collect();
        assert!(!mutable.is_empty(), "workload {} produced no usable base queries", probe.name);
        Some(Fuzzer { bases: mutable, ..probe })
    }

    /// The workload schema the corpus resolves against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The (id, resolved query) base targets mutants derive from.
    pub fn bases(&self) -> &[(String, Query)] {
        &self.bases
    }

    /// Generate `count` cases with 1–3 mutations each. Deterministic
    /// given (schema, `count` position, `seed`): case `i` of a larger run
    /// equals case `i` of a smaller one.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<FuzzCase> {
        (0..count).map(|i| self.case(i, seed, 3)).collect()
    }

    /// Generate `count` cases with exactly one mutation each (the corpus
    /// for hint-minimality checks).
    pub fn generate_single(&self, count: usize, seed: u64) -> Vec<FuzzCase> {
        (0..count).map(|i| self.case(i, seed, 1)).collect()
    }

    fn case(&self, i: usize, seed: u64, max_mutations: usize) -> FuzzCase {
        let mut rng = StdRng::seed_from_u64(
            seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xA076_1D64_78BD_642F),
        );
        let (base_id, target) = &self.bases[rng.gen_range(0..self.bases.len())];
        let wanted = if max_mutations <= 1 { 1 } else { rng.gen_range(1..=max_mutations) };
        let mut working = target.clone();
        let mut mutations = Vec::new();
        for _ in 0..wanted {
            if let Some((next, m)) = self.mutate_once(&working, &mut rng) {
                working = next;
                mutations.push(m);
            }
        }
        if mutations.is_empty() || working == *target {
            // Deterministic fallback: sweep every kind in fixed order so a
            // case never comes out unmutated — either no mutation applied,
            // or a chain of mutations happened to cancel out and land back
            // on the target (two constant deltas summing to zero, say).
            for kind in KIND_POOL {
                if let Some((next, m)) = self.try_kind(&working, *kind, &mut rng) {
                    working = next;
                    mutations.push(m);
                    break;
                }
            }
        }
        assert!(
            !mutations.is_empty() && working != *target,
            "fuzzer could not mutate base {base_id} of workload {}",
            self.name
        );
        FuzzCase {
            id: format!("fuzz-{}-{}-{:05}", self.name, seed, i),
            base_id: base_id.clone(),
            target: target.clone(),
            working,
            mutations,
        }
    }

    /// One mutation attempt loop: pick kinds at random until one applies
    /// and validates (bounded retries).
    fn mutate_once(&self, q: &Query, rng: &mut StdRng) -> Option<(Query, Mutation)> {
        for _ in 0..24 {
            let kind = *KIND_POOL.choose(rng).unwrap();
            if let Some(hit) = self.try_kind(q, kind, rng) {
                return Some(hit);
            }
        }
        None
    }

    fn try_kind(&self, q: &Query, kind: MutationKind, rng: &mut StdRng) -> Option<(Query, Mutation)> {
        let (mutant, mutation) = match kind {
            MutationKind::WhereAtom => mutate_where_atom(q, rng)?,
            MutationKind::WhereConnective => mutate_where_connective(q, rng)?,
            MutationKind::WhereToHaving => mutate_where_to_having(q, rng)?,
            MutationKind::HavingToWhere => mutate_having_to_where(q, rng)?,
            MutationKind::HavingAtom => mutate_having_atom(q, rng)?,
            MutationKind::SelectSwap => mutate_select_swap(q, &self.schema, rng)?,
            MutationKind::SelectDrop => mutate_select_drop(q, rng)?,
            MutationKind::AggFunc => mutate_agg_func(q, &self.schema, rng)?,
            MutationKind::AggDistinct => mutate_agg_distinct(q, rng)?,
            MutationKind::GroupBySwap => mutate_group_by_swap(q, &self.schema, rng)?,
            MutationKind::GroupByDrop => mutate_group_by_drop(q, rng)?,
            MutationKind::GroupByAdd => mutate_group_by_add(q, &self.schema, rng)?,
            MutationKind::JoinDrop => mutate_join_drop(q, rng)?,
            MutationKind::AliasSwap => mutate_alias_swap(q, &self.schema, rng)?,
        };
        let resolved = validate_mutant(&self.schema, q, &mutant)?;
        Some((resolved, mutation))
    }
}

/// Kind pool sampled per mutation. WHERE-atom and alias confusion are the
/// dominant real-world error classes (Appendix Tables 4–5), so they get
/// double weight.
const KIND_POOL: &[MutationKind] = &[
    MutationKind::WhereAtom,
    MutationKind::WhereAtom,
    MutationKind::WhereConnective,
    MutationKind::WhereToHaving,
    MutationKind::HavingToWhere,
    MutationKind::HavingAtom,
    MutationKind::SelectSwap,
    MutationKind::SelectDrop,
    MutationKind::AggFunc,
    MutationKind::AggDistinct,
    MutationKind::GroupBySwap,
    MutationKind::GroupByDrop,
    MutationKind::GroupByAdd,
    MutationKind::JoinDrop,
    MutationKind::AliasSwap,
    MutationKind::AliasSwap,
];

/// A mutant is only emitted if it resolves against the schema and its
/// pretty-printed SQL parses back to the same resolved query — corpus
/// entries must be consumable through the text interfaces (CLI, server)
/// without drift.
fn validate_mutant(schema: &Schema, prev: &Query, mutant: &Query) -> Option<Query> {
    if mutant == prev {
        return None;
    }
    let resolved = resolve_query(schema, mutant).ok()?;
    if &resolved == prev {
        return None;
    }
    let reparsed = parse_query(&resolved.to_string()).ok()?;
    let re_resolved = resolve_query(schema, &reparsed).ok()?;
    if re_resolved != resolved {
        return None;
    }
    Some(resolved)
}

// ---------------------------------------------------------------------
// Individual mutation operators. Each returns `None` when the query has
// no applicable site; validation happens in the caller.
// ---------------------------------------------------------------------

fn atom_paths(p: &Pred) -> Vec<PredPath> {
    p.all_paths()
        .into_iter()
        .filter(|path| p.at_path(path).is_some_and(Pred::is_atomic))
        .collect()
}

fn mutate_where_atom(q: &Query, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    let mut paths = atom_paths(&q.where_pred);
    paths.shuffle(rng);
    for path in paths {
        let atom = q.where_pred.at_path(&path)?.clone();
        if let Some((mutated, err)) = mutate_atom_once(&atom, &path, rng) {
            let mut next = q.clone();
            next.where_pred = q.where_pred.replace_at(&path, &mutated);
            let mutation = Mutation {
                kind: MutationKind::WhereAtom,
                clause: "WHERE",
                description: format!("where-atom: {err:?}"),
                where_path: Some(path),
            };
            return Some((next, mutation));
        }
    }
    None
}

fn mutate_where_connective(q: &Query, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    let internal: Vec<PredPath> = q
        .where_pred
        .all_paths()
        .into_iter()
        .filter(|p| matches!(q.where_pred.at_path(p), Some(Pred::And(_)) | Some(Pred::Or(_))))
        .collect();
    let path = internal.choose(rng)?.clone();
    let node = q.where_pred.at_path(&path)?.clone();
    let flipped = match node {
        Pred::And(cs) => Pred::Or(cs),
        Pred::Or(cs) => Pred::And(cs),
        _ => return None,
    };
    let mut next = q.clone();
    next.where_pred = q.where_pred.replace_at(&path, &flipped);
    let mutation = Mutation {
        kind: MutationKind::WhereConnective,
        clause: "WHERE",
        description: format!("where-connective: AND/OR flipped at {path:?}"),
        where_path: Some(path),
    };
    Some((next, mutation))
}

fn top_conjuncts(p: &Pred) -> Vec<Pred> {
    match p {
        Pred::True => vec![],
        Pred::And(cs) => cs.clone(),
        other => vec![other.clone()],
    }
}

fn mutate_where_to_having(q: &Query, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    if q.group_by.is_empty() {
        return None;
    }
    let conjuncts = top_conjuncts(&q.where_pred);
    let grouped: std::collections::BTreeSet<&Scalar> = q.group_by.iter().collect();
    let movable: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            let mut cols = Vec::new();
            c.collect_columns(&mut cols);
            !cols.is_empty()
                && cols.iter().all(|col| grouped.contains(&Scalar::Col(col.clone())))
        })
        .map(|(i, _)| i)
        .collect();
    let pick = *movable.choose(rng)?;
    let moved = conjuncts[pick].clone();
    let mut rest = conjuncts;
    rest.remove(pick);
    let mut next = q.clone();
    next.where_pred = Pred::and(rest);
    next.having = Some(match &q.having {
        Some(h) => Pred::and(vec![h.clone(), moved.clone()]),
        None => moved.clone(),
    });
    let mutation = Mutation {
        kind: MutationKind::WhereToHaving,
        clause: "WHERE",
        description: format!("where-to-having: `{moved}` moved into HAVING"),
        where_path: None,
    };
    Some((next, mutation))
}

fn mutate_having_to_where(q: &Query, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    let having = q.having.as_ref()?;
    let conjuncts = top_conjuncts(having);
    let movable: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.has_aggregate())
        .map(|(i, _)| i)
        .collect();
    let pick = *movable.choose(rng)?;
    let moved = conjuncts[pick].clone();
    let mut rest = conjuncts;
    rest.remove(pick);
    let mut next = q.clone();
    next.where_pred = Pred::and(vec![q.where_pred.clone(), moved.clone()]);
    next.having = if rest.is_empty() { None } else { Some(Pred::and(rest)) };
    let mutation = Mutation {
        kind: MutationKind::HavingToWhere,
        clause: "WHERE",
        description: format!("having-to-where: `{moved}` moved into WHERE"),
        where_path: None,
    };
    Some((next, mutation))
}

fn mutate_having_atom(q: &Query, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    let having = q.having.as_ref()?;
    let mut paths = atom_paths(having);
    paths.shuffle(rng);
    for path in paths {
        let atom = having.at_path(&path)?.clone();
        if let Some((mutated, err)) = mutate_atom_once(&atom, &path, rng) {
            let mut next = q.clone();
            next.having = Some(having.replace_at(&path, &mutated));
            // Aggregate-free HAVING atoms are group-invariant filters:
            // the pipeline grades them as WHERE-stage content (same
            // normalization as the Where↔Having move mutations), so
            // clause attribution must follow the semantics, not the
            // syntax.
            let clause = if atom.has_aggregate() { "HAVING" } else { "WHERE" };
            let mutation = Mutation {
                kind: MutationKind::HavingAtom,
                clause,
                description: format!("having-atom: {err:?}"),
                where_path: None,
            };
            return Some((next, mutation));
        }
    }
    None
}

fn mutate_select_swap(q: &Query, schema: &Schema, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    let candidates: Vec<usize> = q
        .select
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.expr, Scalar::Col(_)))
        .map(|(i, _)| i)
        .collect();
    let pick = *candidates.choose(rng)?;
    let Scalar::Col(c) = &q.select[pick].expr else { return None };
    let table = q.table_of_alias(&c.table)?;
    let tschema = schema.table(table)?;
    let others: Vec<&str> = tschema.column_names().filter(|n| *n != c.column).collect();
    let new_col = *others.choose(rng)?;
    let mut next = q.clone();
    next.select[pick] =
        SelectItem { expr: Scalar::col(&c.table, new_col), alias: q.select[pick].alias.clone() };
    let mutation = Mutation {
        kind: MutationKind::SelectSwap,
        clause: "SELECT",
        description: format!("select-swap: output {c} replaced by {}.{new_col}", c.table),
        where_path: None,
    };
    Some((next, mutation))
}

fn mutate_select_drop(q: &Query, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    if q.select.len() < 2 {
        return None;
    }
    let pick = rng.gen_range(0..q.select.len());
    let dropped = q.select[pick].clone();
    let mut next = q.clone();
    next.select.remove(pick);
    let mutation = Mutation {
        kind: MutationKind::SelectDrop,
        clause: "SELECT",
        description: format!("select-drop: output `{dropped}` removed"),
        where_path: None,
    };
    Some((next, mutation))
}

/// Where an aggregate call sits (for clause attribution).
#[derive(Clone, Copy, PartialEq)]
enum AggSlot {
    Select,
    Having,
}

fn collect_aggs(q: &Query) -> Vec<(AggCall, AggSlot)> {
    fn scan_scalar(e: &Scalar, slot: AggSlot, out: &mut Vec<(AggCall, AggSlot)>) {
        match e {
            Scalar::Agg(call) => out.push((call.clone(), slot)),
            Scalar::Arith(l, _, r) => {
                scan_scalar(l, slot, out);
                scan_scalar(r, slot, out);
            }
            Scalar::Neg(inner) => scan_scalar(inner, slot, out),
            _ => {}
        }
    }
    fn scan_pred(p: &Pred, slot: AggSlot, out: &mut Vec<(AggCall, AggSlot)>) {
        match p {
            Pred::Cmp(l, _, r) => {
                scan_scalar(l, slot, out);
                scan_scalar(r, slot, out);
            }
            Pred::Like { expr, .. } => scan_scalar(expr, slot, out),
            Pred::And(cs) | Pred::Or(cs) => cs.iter().for_each(|c| scan_pred(c, slot, out)),
            Pred::Not(inner) => scan_pred(inner, slot, out),
            Pred::True | Pred::False => {}
        }
    }
    let mut out = Vec::new();
    for s in &q.select {
        scan_scalar(&s.expr, AggSlot::Select, &mut out);
    }
    if let Some(h) = &q.having {
        scan_pred(h, AggSlot::Having, &mut out);
    }
    out
}

/// Rebuild `q` applying `f` to the `idx`-th aggregate call (in the
/// SELECT-then-HAVING visit order of [`collect_aggs`]).
fn map_agg_at(q: &Query, idx: usize, f: &impl Fn(&AggCall) -> AggCall) -> Query {
    let counter = Cell::new(0usize);
    fn go_scalar(
        e: &Scalar,
        counter: &Cell<usize>,
        idx: usize,
        f: &impl Fn(&AggCall) -> AggCall,
    ) -> Scalar {
        match e {
            Scalar::Agg(call) => {
                let me = counter.get();
                counter.set(me + 1);
                if me == idx {
                    Scalar::Agg(f(call))
                } else {
                    e.clone()
                }
            }
            Scalar::Arith(l, op, r) => Scalar::Arith(
                Box::new(go_scalar(l, counter, idx, f)),
                *op,
                Box::new(go_scalar(r, counter, idx, f)),
            ),
            Scalar::Neg(inner) => Scalar::Neg(Box::new(go_scalar(inner, counter, idx, f))),
            _ => e.clone(),
        }
    }
    fn go_pred(
        p: &Pred,
        counter: &Cell<usize>,
        idx: usize,
        f: &impl Fn(&AggCall) -> AggCall,
    ) -> Pred {
        match p {
            Pred::Cmp(l, op, r) => Pred::Cmp(
                go_scalar(l, counter, idx, f),
                *op,
                go_scalar(r, counter, idx, f),
            ),
            Pred::Like { expr, pattern, negated } => Pred::Like {
                expr: go_scalar(expr, counter, idx, f),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Pred::And(cs) => Pred::And(cs.iter().map(|c| go_pred(c, counter, idx, f)).collect()),
            Pred::Or(cs) => Pred::Or(cs.iter().map(|c| go_pred(c, counter, idx, f)).collect()),
            Pred::Not(inner) => Pred::Not(Box::new(go_pred(inner, counter, idx, f))),
            Pred::True | Pred::False => p.clone(),
        }
    }
    Query {
        distinct: q.distinct,
        select: q
            .select
            .iter()
            .map(|s| SelectItem {
                expr: go_scalar(&s.expr, &counter, idx, f),
                alias: s.alias.clone(),
            })
            .collect(),
        from: q.from.clone(),
        where_pred: q.where_pred.clone(),
        group_by: q.group_by.clone(),
        having: q.having.as_ref().map(|h| go_pred(h, &counter, idx, f)),
    }
}

fn mutate_agg_func(q: &Query, schema: &Schema, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    let aggs = collect_aggs(q);
    if aggs.is_empty() {
        return None;
    }
    let scope = Scope::for_query(schema, q).ok()?;
    let idx = rng.gen_range(0..aggs.len());
    let (call, slot) = &aggs[idx];
    let AggArg::Expr(inner) = &call.arg else { return None };
    let candidates: Vec<AggFunc> = match scope.type_of(inner).ok()? {
        SqlType::Int => vec![AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max],
        SqlType::Str => vec![AggFunc::Count, AggFunc::Min, AggFunc::Max],
    }
    .into_iter()
    .filter(|f| *f != call.func)
    .collect();
    let to = *candidates.choose(rng)?;
    let next = map_agg_at(q, idx, &|c: &AggCall| AggCall { func: to, distinct: c.distinct, arg: c.arg.clone() });
    let mutation = Mutation {
        kind: MutationKind::AggFunc,
        clause: if *slot == AggSlot::Select { "SELECT" } else { "HAVING" },
        description: format!("agg-func: {} changed to {} in `{call}`", call.func.sql(), to.sql()),
        where_path: None,
    };
    Some((next, mutation))
}

fn mutate_agg_distinct(q: &Query, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    let aggs = collect_aggs(q);
    // DISTINCT only matters for COUNT/SUM/AVG; toggling it on MIN/MAX
    // would synthesize a guaranteed-equivalent mutant.
    let candidates: Vec<usize> = aggs
        .iter()
        .enumerate()
        .filter(|(_, (c, _))| {
            matches!(c.arg, AggArg::Expr(_))
                && matches!(c.func, AggFunc::Count | AggFunc::Sum | AggFunc::Avg)
        })
        .map(|(i, _)| i)
        .collect();
    let idx = *candidates.choose(rng)?;
    let (call, slot) = &aggs[idx];
    let next = map_agg_at(q, idx, &|c: &AggCall| AggCall {
        func: c.func,
        distinct: !c.distinct,
        arg: c.arg.clone(),
    });
    let mutation = Mutation {
        kind: MutationKind::AggDistinct,
        clause: if *slot == AggSlot::Select { "SELECT" } else { "HAVING" },
        description: format!(
            "agg-distinct: DISTINCT {} in `{call}`",
            if call.distinct { "dropped" } else { "added" }
        ),
        where_path: None,
    };
    Some((next, mutation))
}

fn mutate_group_by_swap(q: &Query, schema: &Schema, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    let candidates: Vec<usize> = q
        .group_by
        .iter()
        .enumerate()
        .filter(|(_, g)| matches!(g, Scalar::Col(_)))
        .map(|(i, _)| i)
        .collect();
    let pick = *candidates.choose(rng)?;
    let Scalar::Col(c) = &q.group_by[pick] else { return None };
    let table = q.table_of_alias(&c.table)?;
    let tschema = schema.table(table)?;
    let others: Vec<&str> = tschema
        .column_names()
        .filter(|n| *n != c.column)
        .filter(|n| !q.group_by.contains(&Scalar::col(&c.table, n)))
        .collect();
    let new_col = *others.choose(rng)?;
    let mut next = q.clone();
    next.group_by[pick] = Scalar::col(&c.table, new_col);
    let mutation = Mutation {
        kind: MutationKind::GroupBySwap,
        clause: "GROUP BY",
        description: format!("group-by-swap: {c} replaced by {}.{new_col}", c.table),
        where_path: None,
    };
    Some((next, mutation))
}

fn mutate_group_by_drop(q: &Query, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    if q.group_by.len() < 2 {
        return None;
    }
    let pick = rng.gen_range(0..q.group_by.len());
    let dropped = q.group_by[pick].clone();
    let mut next = q.clone();
    next.group_by.remove(pick);
    let mutation = Mutation {
        kind: MutationKind::GroupByDrop,
        clause: "GROUP BY",
        description: format!("group-by-drop: `{dropped}` removed"),
        where_path: None,
    };
    Some((next, mutation))
}

fn mutate_group_by_add(q: &Query, schema: &Schema, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    // Only on queries that already group: adding GROUP BY to a plain SPJ
    // query changes the query class, which the pipeline treats as a
    // structural (not clause-local) error.
    if q.group_by.is_empty() {
        return None;
    }
    let tref = q.from.get(rng.gen_range(0..q.from.len()))?.clone();
    let tschema = schema.table(&tref.table)?;
    let candidates: Vec<&str> = tschema
        .column_names()
        .filter(|n| !q.group_by.contains(&Scalar::col(&tref.alias, n)))
        .collect();
    let new_col = *candidates.choose(rng)?;
    let mut next = q.clone();
    next.group_by.push(Scalar::col(&tref.alias, new_col));
    let mutation = Mutation {
        kind: MutationKind::GroupByAdd,
        clause: "GROUP BY",
        description: format!("group-by-add: spurious `{}.{new_col}` added", tref.alias),
        where_path: None,
    };
    Some((next, mutation))
}

fn mutate_join_drop(q: &Query, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    if q.from.len() < 2 {
        return None;
    }
    // Candidate aliases: referenced only from WHERE (dropping them must
    // not orphan SELECT / GROUP BY / HAVING columns).
    let mut pinned = Vec::new();
    for s in &q.select {
        s.expr.collect_columns(&mut pinned);
    }
    for g in &q.group_by {
        g.collect_columns(&mut pinned);
    }
    if let Some(h) = &q.having {
        h.collect_columns(&mut pinned);
    }
    let pinned: std::collections::BTreeSet<&str> =
        pinned.iter().map(|c| c.table.as_str()).collect();
    let candidates: Vec<&TableRef> =
        q.from.iter().filter(|t| !pinned.contains(t.alias.as_str())).collect();
    let dropped = (*candidates.choose(rng)?).clone();
    let mut next = q.clone();
    next.from.retain(|t| t.alias != dropped.alias);
    let retained: Vec<Pred> = top_conjuncts(&q.where_pred)
        .into_iter()
        .filter(|c| {
            let mut cols = Vec::new();
            c.collect_columns(&mut cols);
            cols.iter().all(|col| col.table != dropped.alias)
        })
        .collect();
    next.where_pred = Pred::and(retained);
    let mutation = Mutation {
        kind: MutationKind::JoinDrop,
        clause: "FROM",
        description: format!("join-drop: `{dropped}` removed with its join predicates"),
        where_path: None,
    };
    Some((next, mutation))
}

fn mutate_alias_swap(q: &Query, schema: &Schema, rng: &mut StdRng) -> Option<(Query, Mutation)> {
    let cols = q.collect_columns();
    if cols.is_empty() {
        return None;
    }
    // Clause boundaries in collect_columns order: SELECT, WHERE,
    // GROUP BY, HAVING.
    let mut n_select = 0usize;
    for s in &q.select {
        let mut v = Vec::new();
        s.expr.collect_columns(&mut v);
        n_select += v.len();
    }
    let mut n_where = Vec::new();
    q.where_pred.collect_columns(&mut n_where);
    let n_where = n_where.len();
    let mut n_group = 0usize;
    for g in &q.group_by {
        let mut v = Vec::new();
        g.collect_columns(&mut v);
        n_group += v.len();
    }
    let idx = rng.gen_range(0..cols.len());
    let c = &cols[idx];
    let ty = {
        let table = q.table_of_alias(&c.table)?;
        schema.table(table)?.column(&c.column)?.1
    };
    let candidates: Vec<&str> = q
        .from
        .iter()
        .filter(|t| t.alias != c.table)
        .filter(|t| {
            schema
                .table(&t.table)
                .and_then(|ts| ts.column(&c.column))
                .is_some_and(|(_, t2)| t2 == ty)
        })
        .map(|t| t.alias.as_str())
        .collect();
    let new_alias = (*candidates.choose(rng)?).to_string();
    let counter = Cell::new(0usize);
    let next = q.map_columns(&|col: &ColRef| {
        let me = counter.get();
        counter.set(me + 1);
        if me == idx {
            ColRef::new(&new_alias, &col.column)
        } else {
            col.clone()
        }
    });
    let clause = if idx < n_select {
        "SELECT"
    } else if idx < n_select + n_where {
        "WHERE"
    } else if idx < n_select + n_where + n_group {
        "GROUP BY"
    } else {
        "HAVING"
    };
    let mutation = Mutation {
        kind: MutationKind::AliasSwap,
        clause,
        description: format!("alias-swap: occurrence of {c} re-qualified as {new_alias}.{}", c.column),
        where_path: None,
    };
    Some((next, mutation))
}

/// Synthesize a full single-block query around a TPC-H WHERE predicate
/// from the conjunctive suite: SELECT + GROUP BY on the first referenced
/// column, COUNT(*) output and a HAVING threshold, so every clause the
/// fuzzer targets exists.
fn tpch_query_sql(where_sql: &str) -> String {
    let pred = parse_pred(where_sql).expect("suite predicate parses");
    let mut cols = Vec::new();
    pred.collect_columns(&mut cols);
    let mut aliases: Vec<&str> = Vec::new();
    for c in &cols {
        if !aliases.contains(&c.table.as_str()) {
            aliases.push(&c.table);
        }
    }
    let from = aliases
        .iter()
        .map(|a| format!("{} {a}", tpch_alias_table(a)))
        .collect::<Vec<_>>()
        .join(", ");
    let first = &cols[0];
    format!(
        "SELECT {first}, COUNT(*) FROM {from} WHERE {where_sql} GROUP BY {first} HAVING COUNT(*) >= 2"
    )
}

/// Conventional alias → table mapping used by the TPC-H predicate suite.
fn tpch_alias_table(alias: &str) -> &'static str {
    match alias {
        "l" | "l1" | "l2" | "l3" => "lineitem",
        "o" => "orders",
        "c" => "customer",
        "s" => "supplier",
        "n" | "n1" | "n2" => "nation",
        "r" => "region",
        "p" => "part",
        "ps" => "partsupp",
        other => panic!("unknown TPC-H alias {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_schemas_produce_valid_corpora() {
        for name in SCHEMA_NAMES {
            let fuzzer = Fuzzer::for_schema(name).unwrap();
            let cases = fuzzer.generate(40, 7);
            assert_eq!(cases.len(), 40, "{name}");
            for case in &cases {
                assert!(!case.mutations.is_empty(), "{name}/{}", case.id);
                assert_ne!(case.working, case.target, "{name}/{}", case.id);
                // Round-trip stability through the text interface.
                let sql = case.working.to_string();
                let reparsed = parse_query(&sql).unwrap();
                let resolved = resolve_query(fuzzer.schema(), &reparsed).unwrap();
                assert_eq!(resolved, case.working, "{name}/{}", case.id);
            }
        }
    }

    #[test]
    fn corpora_are_deterministic_and_prefix_stable() {
        let fuzzer = Fuzzer::for_schema("students").unwrap();
        let a = fuzzer.generate(30, 42);
        let b = fuzzer.generate(30, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.working, y.working);
            assert_eq!(x.target, y.target);
        }
        // Case i is independent of count: a longer run extends, never
        // reshuffles, a shorter one.
        let long = fuzzer.generate(60, 42);
        for (x, y) in a.iter().zip(&long) {
            assert_eq!(x.working, y.working);
        }
        let other = fuzzer.generate(30, 43);
        assert!(a.iter().zip(&other).any(|(x, y)| x.working != y.working));
    }

    #[test]
    fn mutation_taxonomy_is_broadly_reachable() {
        let mut seen: BTreeSet<MutationKind> = BTreeSet::new();
        for name in SCHEMA_NAMES {
            let fuzzer = Fuzzer::for_schema(name).unwrap();
            for case in fuzzer.generate(150, 11) {
                for m in &case.mutations {
                    seen.insert(m.kind);
                }
            }
        }
        // Every kind in the pool must be exercised somewhere across the
        // six schemas at this sample size.
        for kind in KIND_POOL {
            assert!(seen.contains(kind), "mutation kind {kind:?} never applied");
        }
    }

    #[test]
    fn single_mutation_corpus_has_exactly_one_mutation() {
        let fuzzer = Fuzzer::for_schema("tpch").unwrap();
        for case in fuzzer.generate_single(50, 5) {
            assert_eq!(case.mutations.len(), 1, "{}", case.id);
        }
    }

    #[test]
    fn pairs_expose_descriptions() {
        let fuzzer = Fuzzer::for_schema("beers").unwrap();
        let case = &fuzzer.generate(1, 3)[0];
        let pair = case.pair();
        assert_eq!(pair.errors.len(), case.mutations.len());
        assert!(pair.id.starts_with("fuzz-beers-3-"));
        assert!(!pair.target_sql.is_empty() && !pair.working_sql.is_empty());
    }
}

//! The drinkers-and-bars schema of Example 1 and the paper's running
//! queries.

use qrhint_sqlast::{Schema, SqlType};

/// `Likes(drinker, beer)`, `Frequents(drinker, bar)`,
/// `Serves(bar, beer, price)` — keys underlined in the paper.
pub fn schema() -> Schema {
    Schema::new()
        .with_table(
            "Likes",
            &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
            &["drinker", "beer"],
        )
        .with_table(
            "Frequents",
            &[("drinker", SqlType::Str), ("bar", SqlType::Str)],
            &["drinker", "bar"],
        )
        .with_table(
            "Serves",
            &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
            &["bar", "beer"],
        )
}

/// The reference solution `Q★` of Example 1 (bar rank by price).
pub const EXAMPLE1_TARGET: &str = "SELECT L.beer, S1.bar, COUNT(*)
    FROM Likes L, Frequents F, Serves S1, Serves S2
    WHERE L.drinker = F.drinker AND F.bar = S1.bar
      AND L.beer = S1.beer AND S1.beer = S2.beer
      AND S1.price <= S2.price
    GROUP BY F.drinker, L.beer, S1.bar
    HAVING F.drinker = 'Amy'";

/// The wrong student query `Q` of Example 1.
pub const EXAMPLE1_WORKING: &str = "SELECT s2.beer, s2.bar, COUNT(*)
    FROM Likes, Serves s1, Serves s2
    WHERE drinker = 'Amy'
      AND Likes.beer = s1.beer AND Likes.beer = s2.beer
      AND s1.price > s2.price
    GROUP BY s2.beer, s2.bar";

/// The four classroom-style questions of the Students dataset
/// (Appendix Table 4), with reference solutions.
pub fn course_questions() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "a",
            "SELECT s.beer FROM Serves s WHERE s.bar = 'James Joyce Pub'",
        ),
        (
            "b",
            "SELECT b.name, b.address FROM Bar b, Serves s \
             WHERE b.name = s.bar AND s.beer = 'Budweiser' AND s.price > 220",
        ),
        (
            "c",
            "SELECT l.drinker FROM Likes l, Frequents f \
             WHERE l.beer = 'Corona' AND l.drinker = f.drinker \
               AND f.bar = 'James Joyce Pub' AND f.times_a_week >= 2",
        ),
        (
            "d",
            "SELECT l.drinker FROM Likes l GROUP BY l.drinker HAVING COUNT(*) >= 2",
        ),
    ]
}

/// Extended schema for the course questions (adds `Bar` and the
/// `times_a_week` column used by question (c); prices are in cents).
pub fn course_schema() -> Schema {
    Schema::new()
        .with_table(
            "Likes",
            &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
            &["drinker", "beer"],
        )
        .with_table(
            "Frequents",
            &[
                ("drinker", SqlType::Str),
                ("bar", SqlType::Str),
                ("times_a_week", SqlType::Int),
            ],
            &["drinker", "bar"],
        )
        .with_table(
            "Serves",
            &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
            &["bar", "beer"],
        )
        .with_table(
            "Bar",
            &[("name", SqlType::Str), ("address", SqlType::Str)],
            &["name"],
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlast::resolve::resolve_query;
    use qrhint_sqlparse::parse_query;

    #[test]
    fn example1_queries_resolve() {
        let s = schema();
        for sql in [EXAMPLE1_TARGET, EXAMPLE1_WORKING] {
            let q = parse_query(sql).unwrap();
            resolve_query(&s, &q).unwrap();
        }
    }

    #[test]
    fn course_questions_resolve() {
        let s = course_schema();
        for (id, sql) in course_questions() {
            let q = parse_query(sql).unwrap_or_else(|e| panic!("q{id}: {e}"));
            resolve_query(&s, &q).unwrap_or_else(|e| panic!("q{id}: {e}"));
        }
    }
}

//! TPC-H based stress workload (§9 "Test Data Preparation").
//!
//! The paper evaluates `RepairWhere` on the WHERE conditions of TPC-H
//! queries: conjunctive predicates with 4, 5, 6, 7, 9, 10 and 11 atomic
//! predicates (TPC-H Q4, Q3, Q10, Q9, Q5, Q8, Q21 respectively), a
//! synthesized 8-atom predicate (Q5 minus one atom), and — for the nested
//! AND/OR experiments — TPC-H Q7's predicate with 10 unique atoms.
//!
//! Dates are encoded as `YYYYMMDD` integers; money amounts as cents
//! (the fragment is integer-valued — see DESIGN.md).

use qrhint_sqlast::{Pred, Schema, SqlType};
use qrhint_sqlparse::parse_pred;

/// The TPC-H schema restricted to the columns the predicate suite
/// touches.
pub fn schema() -> Schema {
    use SqlType::*;
    Schema::new()
        .with_table(
            "lineitem",
            &[
                ("orderkey", Int),
                ("partkey", Int),
                ("suppkey", Int),
                ("quantity", Int),
                ("extendedprice", Int),
                ("discount", Int),
                ("returnflag", Str),
                ("shipdate", Int),
                ("commitdate", Int),
                ("receiptdate", Int),
            ],
            &["orderkey"],
        )
        .with_table(
            "orders",
            &[
                ("orderkey", Int),
                ("custkey", Int),
                ("orderstatus", Str),
                ("totalprice", Int),
                ("orderdate", Int),
            ],
            &["orderkey"],
        )
        .with_table(
            "customer",
            &[("custkey", Int), ("name", Str), ("nationkey", Int), ("mktsegment", Str)],
            &["custkey"],
        )
        .with_table(
            "supplier",
            &[("suppkey", Int), ("name", Str), ("nationkey", Int)],
            &["suppkey"],
        )
        .with_table(
            "nation",
            &[("nationkey", Int), ("name", Str), ("regionkey", Int)],
            &["nationkey"],
        )
        .with_table("region", &[("regionkey", Int), ("name", Str)], &["regionkey"])
        .with_table(
            "part",
            &[("partkey", Int), ("name", Str), ("type", Str), ("size", Int)],
            &["partkey"],
        )
        .with_table(
            "partsupp",
            &[("partkey", Int), ("suppkey", Int), ("supplycost", Int)],
            &["partkey", "suppkey"],
        )
}

/// A conjunctive WHERE case from the suite.
#[derive(Debug, Clone)]
pub struct ConjunctiveCase {
    /// TPC-H derivation, e.g. `"q4"` or `"q5-synth8"`.
    pub name: &'static str,
    /// Number of atomic predicates.
    pub natoms: usize,
    /// The reference WHERE condition.
    pub where_sql: &'static str,
}

/// The conjunctive suite, ordered by atom count (4–11), exactly the
/// x-axis of Figure 2.
pub fn conjunctive_suite() -> Vec<ConjunctiveCase> {
    vec![
        ConjunctiveCase {
            name: "q4",
            natoms: 4,
            where_sql: "o.orderdate >= 19930701 AND o.orderdate < 19931001 \
                        AND l.orderkey = o.orderkey AND l.commitdate < l.receiptdate",
        },
        ConjunctiveCase {
            name: "q3",
            natoms: 5,
            where_sql: "c.mktsegment = 'BUILDING' AND c.custkey = o.custkey \
                        AND l.orderkey = o.orderkey AND o.orderdate < 19950315 \
                        AND l.shipdate > 19950315",
        },
        ConjunctiveCase {
            name: "q10",
            natoms: 6,
            where_sql: "c.custkey = o.custkey AND l.orderkey = o.orderkey \
                        AND o.orderdate >= 19931001 AND o.orderdate < 19940101 \
                        AND l.returnflag = 'R' AND c.nationkey = n.nationkey",
        },
        ConjunctiveCase {
            name: "q9",
            natoms: 7,
            where_sql: "s.suppkey = l.suppkey AND ps.suppkey = l.suppkey \
                        AND ps.partkey = l.partkey AND p.partkey = l.partkey \
                        AND o.orderkey = l.orderkey AND s.nationkey = n.nationkey \
                        AND p.name LIKE '%green%'",
        },
        ConjunctiveCase {
            name: "q5-synth8",
            natoms: 8,
            where_sql: "c.custkey = o.custkey AND l.orderkey = o.orderkey \
                        AND l.suppkey = s.suppkey AND c.nationkey = s.nationkey \
                        AND s.nationkey = n.nationkey AND n.regionkey = r.regionkey \
                        AND r.name = 'ASIA' AND o.orderdate >= 19940101",
        },
        ConjunctiveCase {
            name: "q5",
            natoms: 9,
            where_sql: "c.custkey = o.custkey AND l.orderkey = o.orderkey \
                        AND l.suppkey = s.suppkey AND c.nationkey = s.nationkey \
                        AND s.nationkey = n.nationkey AND n.regionkey = r.regionkey \
                        AND r.name = 'ASIA' AND o.orderdate >= 19940101 \
                        AND o.orderdate < 19950101",
        },
        ConjunctiveCase {
            name: "q8",
            natoms: 10,
            where_sql: "p.partkey = l.partkey AND s.suppkey = l.suppkey \
                        AND l.orderkey = o.orderkey AND o.custkey = c.custkey \
                        AND c.nationkey = n1.nationkey AND n1.regionkey = r.regionkey \
                        AND r.name = 'AMERICA' AND s.nationkey = n2.nationkey \
                        AND o.orderdate >= 19950101 AND p.type = 'ECONOMY ANODIZED STEEL'",
        },
        ConjunctiveCase {
            name: "q21",
            natoms: 11,
            where_sql: "s.suppkey = l1.suppkey AND o.orderkey = l1.orderkey \
                        AND o.orderstatus = 'F' AND l1.receiptdate > l1.commitdate \
                        AND s.nationkey = n.nationkey AND n.name = 'SAUDI ARABIA' \
                        AND l2.orderkey = l1.orderkey AND l2.suppkey <> l1.suppkey \
                        AND l3.orderkey = l1.orderkey AND l3.suppkey <> l1.suppkey \
                        AND l3.receiptdate > l3.commitdate",
        },
    ]
}

/// TPC-H Q7's WHERE condition: multiple nested AND/OR with 10 unique
/// atomic predicates (the Figure 3/4 workload).
pub const Q7_NESTED: &str = "s.suppkey = l.suppkey AND o.orderkey = l.orderkey \
     AND c.custkey = o.custkey AND s.nationkey = n1.nationkey \
     AND c.nationkey = n2.nationkey \
     AND ((n1.name = 'FRANCE' AND n2.name = 'GERMANY') \
          OR (n1.name = 'GERMANY' AND n2.name = 'FRANCE')) \
     AND l.shipdate >= 19950101";

/// Parse the Q7 nested predicate.
pub fn q7_nested() -> Pred {
    parse_pred(Q7_NESTED).expect("Q7 predicate parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_atom_counts_match_figure2_axis() {
        let suite = conjunctive_suite();
        let counts: Vec<usize> = suite.iter().map(|c| c.natoms).collect();
        assert_eq!(counts, vec![4, 5, 6, 7, 8, 9, 10, 11]);
        for case in &suite {
            let p = parse_pred(case.where_sql).unwrap();
            assert_eq!(
                p.atom_count(),
                case.natoms,
                "atom count mismatch for {}",
                case.name
            );
            // Conjunctive shape: root AND of atoms.
            match p {
                Pred::And(cs) => assert!(cs.iter().all(Pred::is_atomic)),
                other => panic!("{} is not conjunctive: {other}", case.name),
            }
        }
    }

    #[test]
    fn q7_has_ten_unique_atoms_and_nesting() {
        let p = q7_nested();
        assert_eq!(p.atoms().len(), 10);
        // It must contain an OR below the root AND.
        let Pred::And(cs) = &p else { panic!("root must be AND") };
        assert!(cs.iter().any(|c| matches!(c, Pred::Or(_))));
    }

    #[test]
    fn schema_covers_all_suite_columns() {
        // All predicates type-infer to consistent sorts: resolve against
        // a synthetic query is overkill here; check that every referenced
        // column name exists in some table.
        let s = schema();
        for case in conjunctive_suite() {
            let p = parse_pred(case.where_sql).unwrap();
            let mut cols = Vec::new();
            p.collect_columns(&mut cols);
            for c in cols {
                assert!(
                    s.tables().any(|t| t.column(&c.column).is_some()),
                    "column {c} not in schema"
                );
            }
        }
    }
}

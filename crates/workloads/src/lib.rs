//! # qrhint-workloads
//!
//! Schemas, query suites, error injectors and synthetic corpora backing
//! the Qr-Hint evaluation (§9) and user study (§10):
//!
//! * [`beers`] — the drinkers/bars schema of Example 1 with the paper's
//!   running queries;
//! * [`tpch`] — a TPC-H schema and the single-block query suite used by
//!   Figures 2–4 (conjunctive WHEREs with 4–11 atoms from Q4, Q3, Q10,
//!   Q9, Q5, Q8, Q21 plus a synthesized 8-atom query, and the nested
//!   AND/OR predicate of Q7);
//! * [`dblp`] — the user-study schema with the four study queries, their
//!   seeded wrong versions and the TA hints of Appendix Table 3;
//! * [`students`] — a synthetic "Students+" corpus reproducing the error
//!   mix of Appendix Table 4 (the real 341-query dataset is IRB-gated and
//!   unpublished; see DESIGN.md for the substitution argument);
//! * [`brass`] — the Brass-et-al. semantic-error taxonomy (Appendix
//!   Table 5) with two handcrafted query pairs per supported issue;
//! * [`inject`] — the synthetic error injectors used to stress-test
//!   WHERE repair on TPC-H predicates;
//! * [`mutate`] — the seeded whole-query mutation fuzzer (SELECT /
//!   GROUP BY / HAVING / FROM mutations beyond WHERE atoms);
//! * [`differential`] — the execution-validated differential oracle
//!   that grades fuzzed pairs, applies repairs and compares repaired
//!   vs. target under bag semantics on generated databases.

#![forbid(unsafe_code)]

pub mod beers;
pub mod brass;
pub mod dblp;
pub mod differential;
pub mod inject;
pub mod mutate;
pub mod students;
pub mod tpch;

/// A (target, working) query pair with provenance metadata.
#[derive(Debug, Clone)]
pub struct QueryPair {
    /// Identifier, e.g. `"tpch-q3"` or `"students-b-17"`.
    pub id: String,
    /// The reference solution.
    pub target_sql: String,
    /// The wrong working query.
    pub working_sql: String,
    /// Free-form description of the seeded error(s).
    pub errors: Vec<String>,
}

#[cfg(test)]
mod registerable_fixtures {
    //! Every bundled workload schema must round-trip through
    //! [`qrhint_sqlast::Schema::to_ddl`] and the front-end's DDL parser:
    //! that equivalence is what lets the corpora be registered with the
    //! `qr-hint serve` daemon (whose API takes DDL text) and graded
    //! identically to the in-process paths.

    #[test]
    fn workload_schemas_round_trip_through_ddl() {
        for (name, schema) in [
            ("beers", crate::beers::schema()),
            ("beers-course", crate::beers::course_schema()),
            ("brass", crate::brass::schema()),
            ("dblp", crate::dblp::schema()),
            ("students", crate::students::schema()),
            ("tpch", crate::tpch::schema()),
        ] {
            let ddl = schema.to_ddl();
            let parsed = qrhint_sqlparse::parse_schema(&ddl)
                .unwrap_or_else(|e| panic!("{name}: generated DDL failed to parse: {e}\n{ddl}"));
            assert_eq!(parsed, schema, "{name}: DDL round-trip changed the schema\n{ddl}");
        }
    }
}

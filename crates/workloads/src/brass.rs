//! The Brass & Goldberg semantic-error taxonomy (Appendix Table 5):
//! all 43 issues with their paper-reported support status, frequency
//! group, and — for every issue Qr-Hint supports — two handcrafted
//! (reference, working) query pairs over the beers course schema
//! ("we handcrafted two queries according to each issue", §9).

use crate::beers;
use crate::QueryPair;
use qrhint_sqlast::Schema;

/// The paper's three-way handling classification of supported issues
/// (§9.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperCategory {
    /// Genuine logical errors: Qr-Hint identifies and fixes them.
    ErrorFixed,
    /// Efficiency/stylistic issue where the query is still correct and
    /// Qr-Hint proves equivalence (no flag).
    EquivalentNoFlag,
    /// Efficiency/stylistic issue where equivalence needs database
    /// constraints Qr-Hint does not model; fixes are suggested (they
    /// still lead to correct queries).
    EquivalentButFlagged,
    /// Outside the Qr-Hint fragment.
    Unsupported,
}

/// One taxonomy entry.
#[derive(Debug, Clone)]
pub struct BrassIssue {
    /// Issue number in Brass et al. (1–43).
    pub number: u32,
    pub description: &'static str,
    pub category: PaperCategory,
    /// Whether the paper found it represented in the Students queries.
    pub in_students: bool,
    /// Two handcrafted pairs for supported issues (empty otherwise).
    pub pairs: Vec<QueryPair>,
}

/// Corpus schema.
pub fn schema() -> Schema {
    beers::course_schema()
}

fn p(number: u32, variant: u32, target: &str, working: &str) -> QueryPair {
    QueryPair {
        id: format!("brass-{number}-{variant}"),
        target_sql: target.to_string(),
        working_sql: working.to_string(),
        errors: vec![format!("Brass issue {number}")],
    }
}

/// The full 43-issue taxonomy.
pub fn issues() -> Vec<BrassIssue> {
    use PaperCategory::*;
    let mut out = Vec::new();
    let mut add = |number: u32,
                   description: &'static str,
                   category: PaperCategory,
                   in_students: bool,
                   pairs: Vec<QueryPair>| {
        out.push(BrassIssue { number, description, category, in_students, pairs });
    };

    add(
        1,
        "Inconsistent condition",
        ErrorFixed,
        true,
        vec![
            p(
                1,
                1,
                "SELECT s.beer FROM Serves s WHERE s.price > 100 AND s.price < 500",
                "SELECT s.beer FROM Serves s WHERE s.price > 500 AND s.price < 100",
            ),
            p(
                1,
                2,
                "SELECT l.drinker FROM Likes l WHERE l.beer = 'Corona'",
                "SELECT l.drinker FROM Likes l WHERE l.beer = 'Corona' AND l.beer = 'Bud'",
            ),
        ],
    );
    add(
        3,
        "Constant output columns",
        ErrorFixed,
        true,
        vec![
            p(
                3,
                1,
                "SELECT l.drinker FROM Likes l WHERE l.beer = 'Corona'",
                "SELECT l.drinker, l.beer FROM Likes l WHERE l.beer = 'Corona'",
            ),
            p(
                3,
                2,
                "SELECT s.bar, s.price FROM Serves s WHERE s.beer = 'Bud'",
                "SELECT s.bar, s.beer FROM Serves s WHERE s.beer = 'Bud'",
            ),
        ],
    );
    add(
        4,
        "Duplicate output columns",
        ErrorFixed,
        true,
        vec![
            p(
                4,
                1,
                "SELECT l.drinker FROM Likes l",
                "SELECT l.drinker, l.drinker FROM Likes l",
            ),
            p(
                4,
                2,
                "SELECT s.bar, s.price FROM Serves s",
                "SELECT s.bar, s.bar, s.price FROM Serves s",
            ),
        ],
    );
    add(
        5,
        "Unused tuple variables",
        ErrorFixed,
        true,
        vec![
            p(
                5,
                1,
                "SELECT l.drinker FROM Likes l",
                "SELECT l.drinker FROM Likes l, Frequents f",
            ),
            p(
                5,
                2,
                "SELECT s.beer FROM Serves s WHERE s.price > 5",
                "SELECT s.beer FROM Serves s, Bar b WHERE s.price > 5",
            ),
        ],
    );
    add(
        12,
        "LIKE without wildcard",
        ErrorFixed,
        false,
        vec![
            p(
                12,
                1,
                "SELECT b.name FROM Bar b WHERE b.name LIKE '%Joyce%'",
                "SELECT b.name FROM Bar b WHERE b.name LIKE 'Joyce'",
            ),
            p(
                12,
                2,
                "SELECT l.drinker FROM Likes l WHERE l.beer LIKE 'Bud%'",
                "SELECT l.drinker FROM Likes l WHERE l.beer LIKE 'Bud'",
            ),
        ],
    );
    add(
        27,
        "Missing join conditions",
        ErrorFixed,
        true,
        vec![
            p(
                27,
                1,
                "SELECT l.drinker FROM Likes l, Frequents f \
                 WHERE l.drinker = f.drinker AND f.bar = 'Joyce'",
                "SELECT l.drinker FROM Likes l, Frequents f WHERE f.bar = 'Joyce'",
            ),
            p(
                27,
                2,
                "SELECT b.address FROM Bar b, Serves s \
                 WHERE b.name = s.bar AND s.beer = 'Bud'",
                "SELECT b.address FROM Bar b, Serves s WHERE s.beer = 'Bud'",
            ),
        ],
    );
    add(
        31,
        "Comparison between different domains",
        ErrorFixed,
        true,
        vec![
            p(
                31,
                1,
                "SELECT s.beer FROM Serves s, Frequents f WHERE s.bar = f.bar",
                "SELECT s.beer FROM Serves s, Frequents f WHERE s.beer = f.bar",
            ),
            p(
                31,
                2,
                "SELECT l.drinker FROM Likes l, Frequents f WHERE l.drinker = f.drinker",
                "SELECT l.drinker FROM Likes l, Frequents f WHERE l.beer = f.bar",
            ),
        ],
    );
    add(
        33,
        "DISTINCT in SUM and AVG",
        ErrorFixed,
        false,
        vec![
            p(
                33,
                1,
                "SELECT s.bar, SUM(s.price) FROM Serves s GROUP BY s.bar",
                "SELECT s.bar, SUM(DISTINCT s.price) FROM Serves s GROUP BY s.bar",
            ),
            p(
                33,
                2,
                "SELECT s.beer, AVG(s.price) FROM Serves s GROUP BY s.beer",
                "SELECT s.beer, AVG(DISTINCT s.price) FROM Serves s GROUP BY s.beer",
            ),
        ],
    );
    add(
        34,
        "Wildcards without LIKE",
        ErrorFixed,
        true,
        vec![
            p(
                34,
                1,
                "SELECT b.name FROM Bar b WHERE b.name LIKE '%Joyce%'",
                "SELECT b.name FROM Bar b WHERE b.name = '%Joyce%'",
            ),
            p(
                34,
                2,
                "SELECT l.drinker FROM Likes l WHERE l.beer LIKE 'Bud%'",
                "SELECT l.drinker FROM Likes l WHERE l.beer = 'Bud%'",
            ),
        ],
    );
    add(
        37,
        "Many duplicates",
        ErrorFixed,
        true,
        vec![
            p(
                37,
                1,
                "SELECT DISTINCT l.beer FROM Likes l",
                "SELECT l.beer FROM Likes l",
            ),
            p(
                37,
                2,
                "SELECT DISTINCT f.bar FROM Frequents f, Likes l \
                 WHERE f.drinker = l.drinker",
                "SELECT f.bar FROM Frequents f, Likes l WHERE f.drinker = l.drinker",
            ),
        ],
    );
    add(
        38,
        "DISTINCT that might remove important duplicates",
        ErrorFixed,
        true,
        vec![
            p(
                38,
                1,
                "SELECT l.beer FROM Likes l",
                "SELECT DISTINCT l.beer FROM Likes l",
            ),
            p(
                38,
                2,
                "SELECT s.price FROM Serves s WHERE s.beer = 'Bud'",
                "SELECT DISTINCT s.price FROM Serves s WHERE s.beer = 'Bud'",
            ),
        ],
    );

    // ---- Efficiency/stylistic issues the paper reports as *flagged*
    // (equivalence requires constraints Qr-Hint does not model). ----
    add(
        2,
        "Unnecessary DISTINCT",
        EquivalentButFlagged,
        true,
        vec![
            p(
                2,
                1,
                "SELECT l.drinker FROM Likes l WHERE l.beer = 'Corona'",
                "SELECT DISTINCT l.drinker FROM Likes l WHERE l.beer = 'Corona'",
            ),
            p(
                2,
                2,
                "SELECT b.name FROM Bar b",
                "SELECT DISTINCT b.name FROM Bar b",
            ),
        ],
    );
    add(
        6,
        "Unnecessary join",
        EquivalentButFlagged,
        true,
        vec![
            p(
                6,
                1,
                "SELECT s.bar FROM Serves s WHERE s.beer = 'Bud'",
                "SELECT s.bar FROM Serves s, Bar b WHERE s.bar = b.name AND s.beer = 'Bud'",
            ),
            p(
                6,
                2,
                "SELECT f.drinker FROM Frequents f",
                "SELECT f.drinker FROM Frequents f, Bar b WHERE f.bar = b.name",
            ),
        ],
    );
    add(
        7,
        "Tuple variables are always identical",
        EquivalentButFlagged,
        true,
        vec![
            p(
                7,
                1,
                "SELECT l.drinker FROM Likes l",
                "SELECT l1.drinker FROM Likes l1, Likes l2 \
                 WHERE l1.drinker = l2.drinker AND l1.beer = l2.beer",
            ),
            p(
                7,
                2,
                "SELECT b.address FROM Bar b",
                "SELECT b1.address FROM Bar b1, Bar b2 WHERE b1.name = b2.name",
            ),
        ],
    );
    add(
        15,
        "Unnecessary aggregation function",
        EquivalentButFlagged,
        false,
        vec![
            p(
                15,
                1,
                "SELECT s.bar, s.price FROM Serves s WHERE s.beer = 'Bud'",
                "SELECT s.bar, MAX(s.price) FROM Serves s WHERE s.beer = 'Bud' \
                 GROUP BY s.bar, s.price",
            ),
            p(
                15,
                2,
                "SELECT f.drinker, f.times_a_week FROM Frequents f",
                "SELECT f.drinker, MIN(f.times_a_week) FROM Frequents f \
                 GROUP BY f.drinker, f.times_a_week",
            ),
        ],
    );
    add(
        16,
        "Unnecessary DISTINCT in aggregation function",
        EquivalentButFlagged,
        false,
        vec![
            p(
                16,
                1,
                "SELECT l.drinker, COUNT(l.beer) FROM Likes l GROUP BY l.drinker",
                "SELECT l.drinker, COUNT(DISTINCT l.beer) FROM Likes l GROUP BY l.drinker",
            ),
            p(
                16,
                2,
                "SELECT s.bar, COUNT(s.beer) FROM Serves s GROUP BY s.bar",
                "SELECT s.bar, COUNT(DISTINCT s.beer) FROM Serves s GROUP BY s.bar",
            ),
        ],
    );
    add(
        17,
        "Unnecessary argument of COUNT",
        EquivalentNoFlag,
        false,
        vec![
            p(
                17,
                1,
                "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker",
                "SELECT l.drinker, COUNT(l.beer) FROM Likes l GROUP BY l.drinker",
            ),
            p(
                17,
                2,
                "SELECT s.bar, COUNT(*) FROM Serves s GROUP BY s.bar",
                "SELECT s.bar, COUNT(s.price) FROM Serves s GROUP BY s.bar",
            ),
        ],
    );
    add(
        19,
        "GROUP BY with singleton groups",
        EquivalentButFlagged,
        true,
        vec![
            p(
                19,
                1,
                "SELECT b.name, b.address FROM Bar b",
                "SELECT b.name, b.address FROM Bar b GROUP BY b.name, b.address",
            ),
            p(
                19,
                2,
                "SELECT l.drinker, l.beer FROM Likes l",
                "SELECT l.drinker, l.beer FROM Likes l GROUP BY l.drinker, l.beer",
            ),
        ],
    );
    add(
        20,
        "GROUP BY with only a single group",
        EquivalentButFlagged,
        false,
        vec![
            p(
                20,
                1,
                "SELECT COUNT(*) FROM Likes l",
                "SELECT COUNT(*) FROM Likes l GROUP BY 1 + 1",
            ),
            p(
                20,
                2,
                "SELECT SUM(s.price) FROM Serves s",
                "SELECT SUM(s.price) FROM Serves s GROUP BY 7",
            ),
        ],
    );
    add(
        22,
        "GROUP BY can be replaced by DISTINCT",
        EquivalentButFlagged,
        false,
        vec![
            p(
                22,
                1,
                "SELECT DISTINCT l.beer FROM Likes l",
                "SELECT l.beer FROM Likes l GROUP BY l.beer",
            ),
            p(
                22,
                2,
                "SELECT DISTINCT f.bar FROM Frequents f",
                "SELECT f.bar FROM Frequents f GROUP BY f.bar",
            ),
        ],
    );
    add(
        24,
        "Unnecessary ORDER BY term",
        EquivalentNoFlag,
        true,
        vec![
            p(
                24,
                1,
                "SELECT l.drinker FROM Likes l WHERE l.beer = 'Corona'",
                "SELECT l.drinker FROM Likes l WHERE l.beer = 'Corona' \
                 ORDER BY l.drinker, l.beer",
            ),
            p(
                24,
                2,
                "SELECT s.bar FROM Serves s ORDER BY s.bar",
                "SELECT s.bar FROM Serves s ORDER BY s.bar, s.price DESC",
            ),
        ],
    );
    add(
        32,
        "Strange HAVING (without GROUP BY)",
        EquivalentNoFlag,
        false,
        vec![
            p(
                32,
                1,
                "SELECT COUNT(*) FROM Likes l",
                "SELECT COUNT(*) FROM Likes l HAVING COUNT(*) >= 1",
            ),
            p(
                32,
                2,
                "SELECT SUM(s.price) FROM Serves s",
                "SELECT SUM(s.price) FROM Serves s HAVING COUNT(*) > 0",
            ),
        ],
    );

    // ---- Efficiency/stylistic issues Qr-Hint proves equivalent. ----
    add(
        8,
        "Implied, tautological, or inconsistent subcondition",
        EquivalentNoFlag,
        true,
        vec![
            p(
                8,
                1,
                "SELECT s.beer FROM Serves s",
                "SELECT s.beer FROM Serves s WHERE s.price >= 1 OR s.price < 1",
            ),
            p(
                8,
                2,
                "SELECT s.beer FROM Serves s WHERE s.price > 5",
                "SELECT s.beer FROM Serves s WHERE s.price > 5 AND s.price > 3",
            ),
        ],
    );
    add(
        21,
        "Unnecessary GROUP BY attribute",
        EquivalentNoFlag,
        true,
        vec![
            p(
                21,
                1,
                "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker",
                "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker, l.drinker",
            ),
            p(
                21,
                2,
                "SELECT s.bar, COUNT(*) FROM Serves s GROUP BY s.bar",
                "SELECT s.bar, COUNT(*) FROM Serves s GROUP BY s.bar, s.bar, s.bar",
            ),
        ],
    );
    add(
        25,
        "Inefficient HAVING (condition could be in WHERE)",
        EquivalentNoFlag,
        true,
        vec![
            p(
                25,
                1,
                "SELECT s.bar, COUNT(*) FROM Serves s WHERE s.bar = 'Joyce' GROUP BY s.bar",
                "SELECT s.bar, COUNT(*) FROM Serves s GROUP BY s.bar HAVING s.bar = 'Joyce'",
            ),
            p(
                25,
                2,
                "SELECT l.drinker, COUNT(*) FROM Likes l WHERE l.drinker = 'Amy' \
                 GROUP BY l.drinker",
                "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker \
                 HAVING l.drinker = 'Amy'",
            ),
        ],
    );

    // ---- Unsupported issues (18 of 43). ----
    for (n, d) in [
        (9u32, "Comparison with NULL"),
        (10, "NULL value in IN/ANY/ALL subquery"),
        (11, "Unnecessarily general comparison operator"),
        (13, "Unnecessarily complicated SELECT in EXISTS-subquery"),
        (14, "IN/EXISTS condition can be replaced by comparison"),
        (18, "Unnecessary GROUP BY in EXISTS subquery"),
        (23, "UNION can be replaced by OR"),
        (26, "Inefficient UNION"),
        (28, "Uncorrelated EXISTS subquery"),
        (29, "IN-subquery with only one possible result value"),
        (30, "Condition in the subquery that can be moved up"),
        (35, "Condition on left table in left outer join"),
        (36, "Outer join can be replaced by inner join"),
        (39, "Subquery term that might return more than one tuple"),
        (40, "SELECT INTO that might return more than one tuple"),
        (41, "No indicator variable for nullable argument"),
        (42, "Difficult type conversion"),
        (43, "Runtime error in datatype function (e.g. divide by 0)"),
    ] {
        add(n, d, Unsupported, false, vec![]);
    }

    out.sort_by_key(|i| i.number);
    out
}

/// All pairs of supported issues, flattened.
pub fn supported_pairs() -> Vec<(u32, PaperCategory, QueryPair)> {
    issues()
        .into_iter()
        .filter(|i| i.category != PaperCategory::Unsupported)
        .flat_map(|i| {
            i.pairs
                .into_iter()
                .map(move |p| (i.number, i.category, p))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlast::resolve::resolve_query;
    use qrhint_sqlparse::parse_query;

    #[test]
    fn taxonomy_counts_match_table5() {
        let all = issues();
        assert_eq!(all.len(), 43);
        let supported =
            all.iter().filter(|i| i.category != PaperCategory::Unsupported).count();
        assert_eq!(supported, 25, "25 supported issues");
        let errors =
            all.iter().filter(|i| i.category == PaperCategory::ErrorFixed).count();
        assert_eq!(errors, 11, "11 genuine-error issues");
        let in_students = all
            .iter()
            .filter(|i| i.category != PaperCategory::Unsupported && i.in_students)
            .count();
        assert_eq!(in_students, 17, "17 issues already in the Students corpus");
    }

    #[test]
    fn supported_pairs_parse_and_resolve() {
        let s = schema();
        for (n, _, pair) in supported_pairs() {
            for (label, sql) in
                [("target", &pair.target_sql), ("working", &pair.working_sql)]
            {
                let q = parse_query(sql)
                    .unwrap_or_else(|e| panic!("issue {n} {label}: {e}\n{sql}"));
                resolve_query(&s, &q)
                    .unwrap_or_else(|e| panic!("issue {n} {label}: {e}\n{sql}"));
            }
        }
    }

    #[test]
    fn two_pairs_per_supported_issue() {
        for issue in issues() {
            if issue.category == PaperCategory::Unsupported {
                assert!(issue.pairs.is_empty());
            } else {
                assert_eq!(issue.pairs.len(), 2, "issue {}", issue.number);
            }
        }
    }
}

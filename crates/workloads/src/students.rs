//! The synthetic **Students+** corpus (§9 "Test Data Preparation",
//! Appendix Table 4).
//!
//! The paper's corpus of 341 real wrong queries is IRB-gated and
//! unpublished, so this module regenerates a corpus with the *same
//! composition*: four introductory questions over the beers schema, with
//! per-question error-category counts matching Appendix Table 4 exactly
//! (306 supported wrong queries + 35 queries using unsupported SQL
//! features), plus the Brass-et-al. issue pairs from [`crate::brass`]
//! that round the corpus up to "Students+".

use crate::beers;
use crate::QueryPair;
use qrhint_sqlast::Schema;

/// A corpus entry: the pair plus classification metadata.
#[derive(Debug, Clone)]
pub struct StudentEntry {
    pub pair: QueryPair,
    /// Question id: "a" | "b" | "c" | "d".
    pub question: &'static str,
    /// Error clause per Table 4: "FROM" | "WHERE" | "SELECT" |
    /// "GROUP BY" | "HAVING" | "UNSUPPORTED".
    pub category: &'static str,
}

/// The corpus schema.
pub fn schema() -> Schema {
    beers::course_schema()
}

fn pair(
    question: &'static str,
    idx: usize,
    target: &str,
    working: String,
    error: &str,
) -> QueryPair {
    QueryPair {
        id: format!("students-{question}-{idx}"),
        target_sql: target.to_string(),
        working_sql: working,
        errors: vec![error.to_string()],
    }
}

/// Generate the full corpus: 341 entries (306 supported + 35 unsupported)
/// distributed per Appendix Table 4.
pub fn corpus() -> Vec<StudentEntry> {
    let mut out: Vec<StudentEntry> = Vec::new();
    let mut idx = 0usize;
    let mut push = |question: &'static str,
                    category: &'static str,
                    target: &str,
                    working: String,
                    error: &str,
                    out: &mut Vec<StudentEntry>| {
        idx += 1;
        out.push(StudentEntry {
            pair: pair(question, idx, target, working, error),
            question,
            category,
        });
    };

    // ---------- Question (a): beers served at James Joyce Pub ----------
    let ta = "SELECT s.beer FROM Serves s WHERE s.bar = 'James Joyce Pub'";
    // FROM errors (8): wrong table (4), extra table (4).
    for i in 0..4 {
        let (wrong_table, sel_col, cond_col) = [
            ("Likes", "beer", "beer"),
            ("Frequents", "bar", "bar"),
            ("Bar", "name", "name"),
            ("Likes", "drinker", "beer"),
        ][i];
        push(
            "a",
            "FROM",
            ta,
            format!(
                "SELECT t.{sel_col} FROM {wrong_table} t WHERE t.{cond_col} = 'James Joyce Pub'"
            ),
            "wrong table",
            &mut out,
        );
    }
    for i in 0..4 {
        let extra = ["Bar", "Likes", "Frequents", "Bar"][i];
        push(
            "a",
            "FROM",
            ta,
            format!(
                "SELECT s.beer FROM Serves s, {extra} x WHERE s.bar = 'James Joyce Pub'"
            ),
            "extra table (cross join)",
            &mut out,
        );
    }
    // WHERE errors (9): wrong bar name / typo.
    for i in 0..9 {
        let name = [
            "James Joyce",
            "Joyce Pub",
            "james joyce pub",
            "James Joyce Pub ",
            "The James Joyce Pub",
            "JamesJoycePub",
            "James  Joyce Pub",
            "J. Joyce Pub",
            "Joyce",
        ][i];
        push(
            "a",
            "WHERE",
            ta,
            format!("SELECT s.beer FROM Serves s WHERE s.bar = '{name}'"),
            "wrong bar name or typo",
            &mut out,
        );
    }
    // SELECT errors (5): bar or price instead of beer.
    for i in 0..5 {
        let cols = ["s.bar", "s.bar, s.beer", "s.price", "s.beer, s.price", "s.bar, s.price"][i];
        push(
            "a",
            "SELECT",
            ta,
            format!("SELECT {cols} FROM Serves s WHERE s.bar = 'James Joyce Pub'"),
            "wrong output columns",
            &mut out,
        );
    }

    // ---------- Question (b): bars serving Budweiser above 2.20 ----------
    let tb = "SELECT b.name, b.address FROM Bar b, Serves s \
              WHERE b.name = s.bar AND s.beer = 'Budweiser' AND s.price > 220";
    // FROM errors (10): missing Bar or Serves.
    for i in 0..10 {
        let working = if i % 2 == 0 {
            // Missing the Bar table (address unavailable → selects bar).
            format!(
                "SELECT s.bar, s.beer FROM Serves s \
                 WHERE s.beer = 'Budweiser' AND s.price > {}",
                210 + i
            )
        } else {
            format!(
                "SELECT b.name, b.address FROM Bar b WHERE b.name = 'Budweiser{i}'"
            )
        };
        push("b", "FROM", tb, working, "missing table", &mut out);
    }
    // WHERE errors (96): missing join condition (48), >= instead of > (24),
    // wrong constants (24).
    for i in 0..48 {
        push(
            "b",
            "WHERE",
            tb,
            format!(
                "SELECT b.name, b.address FROM Bar b, Serves s \
                 WHERE s.beer = 'Budweiser' AND s.price > {}",
                196 + i
            ),
            "missing join condition",
            &mut out,
        );
    }
    for i in 0..24 {
        push(
            "b",
            "WHERE",
            tb,
            format!(
                "SELECT b.name, b.address FROM Bar b, Serves s \
                 WHERE b.name = s.bar AND s.beer = 'Budweiser' AND s.price >= {}",
                220 - (i as i64 % 3)
            ),
            ">= instead of >",
            &mut out,
        );
    }
    for i in 0..24 {
        let beer = ["budweiser", "Budweiser Light", "Bud", "BUDWEISER"][i % 4];
        push(
            "b",
            "WHERE",
            tb,
            format!(
                "SELECT b.name, b.address FROM Bar b, Serves s \
                 WHERE b.name = s.bar AND s.beer = '{beer}' AND s.price > {}",
                220 + (i as i64 % 5)
            ),
            "wrong constant",
            &mut out,
        );
    }
    // SELECT errors (17): missing columns / wrong order.
    for i in 0..17 {
        let cols = match i % 3 {
            0 => "b.name",
            1 => "b.address, b.name",
            _ => "b.address",
        };
        push(
            "b",
            "SELECT",
            tb,
            format!(
                "SELECT {cols} FROM Bar b, Serves s \
                 WHERE b.name = s.bar AND s.beer = 'Budweiser' AND s.price > {}",
                220 + (i as i64 % 2)
            ),
            "missing/reordered output columns",
            &mut out,
        );
    }
    // Unsupported (3): set operations / outer joins.
    for i in 0..3 {
        let working = match i {
            0 => "SELECT b.name, b.address FROM Bar b WHERE b.name = 'x' \
                  UNION SELECT s.bar, s.beer FROM Serves s"
                .to_string(),
            1 => "SELECT b.name, b.address FROM Bar b LEFT JOIN Serves s \
                  ON b.name = s.bar WHERE s.beer = 'Budweiser'"
                .to_string(),
            _ => "SELECT b.name, b.address FROM Bar b WHERE b.name IN \
                  (SELECT s.bar FROM Serves s WHERE s.beer = 'Budweiser')"
                .to_string(),
        };
        push("b", "UNSUPPORTED", tb, working, "unsupported SQL feature", &mut out);
    }

    // ---------- Question (c): Corona drinkers at James Joyce ≥ 2/week ----------
    let tc = "SELECT l.drinker FROM Likes l, Frequents f \
              WHERE l.beer = 'Corona' AND l.drinker = f.drinker \
                AND f.bar = 'James Joyce Pub' AND f.times_a_week >= 2";
    // FROM errors (11): wrong/extra table.
    for i in 0..11 {
        let working = if i % 2 == 0 {
            format!(
                "SELECT l.drinker FROM Likes l, Serves s \
                 WHERE l.beer = 'Corona' AND s.bar = 'James Joyce Pub' AND s.price >= {}",
                i + 1
            )
        } else {
            format!(
                "SELECT l.drinker FROM Likes l, Frequents f, Serves s \
                 WHERE l.beer = 'Corona' AND l.drinker = f.drinker \
                   AND f.bar = 'James Joyce Pub' AND f.times_a_week >= {}",
                2 + (i as i64 % 2)
            )
        };
        push("c", "FROM", tc, working, "wrong/extra table", &mut out);
    }
    // WHERE errors (105): missing join (45), wrong comparison (30),
    // missing beer/bar condition (30).
    for i in 0..45 {
        push(
            "c",
            "WHERE",
            tc,
            format!(
                "SELECT l.drinker FROM Likes l, Frequents f \
                 WHERE l.beer = 'Corona' AND f.bar = 'James Joyce Pub' \
                   AND f.times_a_week >= {}",
                2 + (i as i64 % 3)
            ),
            "missing join condition",
            &mut out,
        );
    }
    for i in 0..30 {
        let (op, k) = [(">", 2i64), (">", 1), ("=", 2), (">=", 3), (">", 3), ("=", 3)][i % 6];
        push(
            "c",
            "WHERE",
            tc,
            format!(
                "SELECT l.drinker FROM Likes l, Frequents f \
                 WHERE l.beer = 'Corona' AND l.drinker = f.drinker \
                   AND f.bar = 'James Joyce Pub' AND f.times_a_week {op} {k}"
            ),
            "wrong comparison against times_a_week",
            &mut out,
        );
    }
    for i in 0..30 {
        let working = if i % 2 == 0 {
            "SELECT l.drinker FROM Likes l, Frequents f \
             WHERE l.drinker = f.drinker AND f.bar = 'James Joyce Pub' \
               AND f.times_a_week >= 2"
                .to_string()
        } else {
            "SELECT l.drinker FROM Likes l, Frequents f \
             WHERE l.beer = 'Corona' AND l.drinker = f.drinker \
               AND f.times_a_week >= 2"
                .to_string()
        };
        push("c", "WHERE", tc, working, "missing beer or bar condition", &mut out);
    }
    // SELECT errors (6).
    for i in 0..6 {
        let cols = ["l.beer", "f.drinker, f.bar", "l.drinker, l.beer"][i % 3];
        push(
            "c",
            "SELECT",
            tc,
            format!(
                "SELECT {cols} FROM Likes l, Frequents f \
                 WHERE l.beer = 'Corona' AND l.drinker = f.drinker \
                   AND f.bar = 'James Joyce Pub' AND f.times_a_week >= 2"
            ),
            "wrong output columns",
            &mut out,
        );
    }
    // GROUP BY error (1).
    push(
        "c",
        "GROUP BY",
        tc,
        "SELECT l.drinker FROM Likes l, Frequents f \
         WHERE l.beer = 'Corona' AND l.drinker = f.drinker \
           AND f.bar = 'James Joyce Pub' AND f.times_a_week >= 2 \
         GROUP BY l.drinker, l.beer"
            .to_string(),
        "grouping where none is needed",
        &mut out,
    );
    // Unsupported (20).
    for i in 0..20 {
        let working = match i % 4 {
            0 => "SELECT l.drinker FROM Likes l WHERE l.beer = 'Corona' \
                  INTERSECT SELECT f.drinker FROM Frequents f"
                .to_string(),
            1 => "SELECT l.drinker FROM Likes l WHERE EXISTS \
                  (SELECT 1 FROM Frequents f WHERE f.drinker = l.drinker)"
                .to_string(),
            2 => "SELECT l.drinker FROM Likes l JOIN Frequents f \
                  ON l.drinker = f.drinker WHERE l.beer = 'Corona'"
                .to_string(),
            _ => "SELECT f.drinker FROM Frequents f WHERE f.drinker IN \
                  (SELECT l.drinker FROM Likes l WHERE l.beer = 'Corona')"
                .to_string(),
        };
        push("c", "UNSUPPORTED", tc, working, "unsupported SQL feature", &mut out);
    }

    // ---------- Question (d): drinkers who like ≥ 2 beers ----------
    let td1 = "SELECT l.drinker FROM Likes l GROUP BY l.drinker HAVING COUNT(*) >= 2";
    let td2 = "SELECT DISTINCT l1.drinker FROM Likes l1, Likes l2 \
               WHERE l1.drinker = l2.drinker AND l1.beer <> l2.beer";
    // Solution-1 style errors: FROM (1), GROUP BY (1), HAVING (18), SELECT (4).
    push(
        "d",
        "FROM",
        td1,
        "SELECT f.drinker FROM Frequents f GROUP BY f.drinker HAVING COUNT(*) >= 2"
            .to_string(),
        "wrong table",
        &mut out,
    );
    push(
        "d",
        "GROUP BY",
        td1,
        "SELECT l.drinker FROM Likes l GROUP BY l.drinker, l.beer HAVING COUNT(*) >= 2"
            .to_string(),
        "grouping by extra column",
        &mut out,
    );
    for i in 0..18 {
        let having = match i % 3 {
            0 => "COUNT(*) > 2".to_string(),
            1 => format!("COUNT(*) >= {}", 3 + (i as i64 % 2)),
            _ => "COUNT(DISTINCT l.drinker) >= 2".to_string(),
        };
        push(
            "d",
            "HAVING",
            td1,
            format!("SELECT l.drinker FROM Likes l GROUP BY l.drinker HAVING {having}"),
            "wrong HAVING condition",
            &mut out,
        );
    }
    for i in 0..4 {
        let cols = ["l.drinker, COUNT(*)", "COUNT(*)", "l.drinker, COUNT(l.beer)", "l.beer"][i];
        push(
            "d",
            "SELECT",
            td1,
            format!("SELECT {cols} FROM Likes l GROUP BY l.drinker HAVING COUNT(*) >= 2"),
            "extra aggregate output column",
            &mut out,
        );
    }
    // Solution-2 style errors: FROM (5), WHERE (2), SELECT (7).
    for i in 0..5 {
        let working = if i % 2 == 0 {
            "SELECT DISTINCT l1.drinker FROM Likes l1 WHERE l1.beer <> 'x'".to_string()
        } else {
            "SELECT DISTINCT l1.drinker FROM Likes l1, Likes l2, Frequents f \
             WHERE l1.drinker = l2.drinker AND l1.beer <> l2.beer"
                .to_string()
        };
        push("d", "FROM", td2, working, "missing/extra table in self-join", &mut out);
    }
    for (i, cond) in [
        "l1.beer = l2.beer AND l1.drinker = l2.drinker",
        "l1.drinker <> l2.drinker AND l1.beer <> l2.beer",
    ]
    .iter()
    .enumerate()
    {
        let _ = i;
        push(
            "d",
            "WHERE",
            td2,
            format!("SELECT DISTINCT l1.drinker FROM Likes l1, Likes l2 WHERE {cond}"),
            "wrong self-join conditions",
            &mut out,
        );
    }
    for i in 0..7 {
        let working = if i % 2 == 0 {
            "SELECT l1.drinker FROM Likes l1, Likes l2 \
             WHERE l1.drinker = l2.drinker AND l1.beer <> l2.beer"
                .to_string()
        } else {
            "SELECT DISTINCT l1.beer FROM Likes l1, Likes l2 \
             WHERE l1.drinker = l2.drinker AND l1.beer <> l2.beer"
                .to_string()
        };
        push("d", "SELECT", td2, working, "missing DISTINCT / wrong column", &mut out);
    }
    // Unsupported (12).
    for i in 0..12 {
        let working = match i % 3 {
            0 => "SELECT l.drinker FROM Likes l GROUP BY l.drinker \
                  HAVING COUNT(*) >= 2 \
                  EXCEPT SELECT f.drinker FROM Frequents f"
                .to_string(),
            1 => "SELECT l.drinker FROM Likes l WHERE l.drinker IN \
                  (SELECT l2.drinker FROM Likes l2 GROUP BY l2.drinker \
                   HAVING COUNT(*) >= 2)"
                .to_string(),
            _ => "SELECT l1.drinker FROM Likes l1 FULL OUTER JOIN Likes l2 \
                  ON l1.drinker = l2.drinker"
                .to_string(),
        };
        push("d", "UNSUPPORTED", td1, working, "unsupported SQL feature", &mut out);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlast::resolve::resolve_query;
    use qrhint_sqlparse::{parse_query, ParseError};

    #[test]
    fn corpus_matches_table4_composition() {
        let corpus = corpus();
        assert_eq!(corpus.len(), 341, "341 wrong queries as in §9");
        let unsupported = corpus.iter().filter(|e| e.category == "UNSUPPORTED").count();
        assert_eq!(unsupported, 35, "35 unsupported queries (11%)");
        // Per-question totals of Table 4.
        let count = |q: &str| corpus.iter().filter(|e| e.question == q).count();
        assert_eq!(count("a"), 22);
        assert_eq!(count("b"), 126);
        assert_eq!(count("c"), 143);
        assert_eq!(count("d"), 50);
    }

    #[test]
    fn supported_queries_parse_and_resolve() {
        let s = schema();
        for e in corpus() {
            if e.category == "UNSUPPORTED" {
                continue;
            }
            let q = parse_query(&e.pair.working_sql)
                .unwrap_or_else(|err| panic!("{}: {err}\n{}", e.pair.id, e.pair.working_sql));
            resolve_query(&s, &q)
                .unwrap_or_else(|err| panic!("{}: {err}\n{}", e.pair.id, e.pair.working_sql));
            let t = parse_query(&e.pair.target_sql).unwrap();
            resolve_query(&s, &t).unwrap();
        }
    }

    #[test]
    fn unsupported_queries_are_rejected_by_the_parser() {
        for e in corpus() {
            if e.category != "UNSUPPORTED" {
                continue;
            }
            match parse_query(&e.pair.working_sql) {
                Err(ParseError::Unsupported { .. }) => {}
                other => panic!(
                    "{} should be Unsupported, got {other:?}\n{}",
                    e.pair.id, e.pair.working_sql
                ),
            }
        }
    }

    #[test]
    fn working_queries_are_distinct_within_category_mostly() {
        // At least 80% of the supported corpus should be textually
        // distinct (the generator varies constants).
        let corpus = corpus();
        let supported: Vec<&StudentEntry> =
            corpus.iter().filter(|e| e.category != "UNSUPPORTED").collect();
        let distinct: std::collections::BTreeSet<&str> =
            supported.iter().map(|e| e.pair.working_sql.as_str()).collect();
        assert!(
            distinct.len() * 10 >= supported.len() * 4,
            "too many duplicates: {} distinct of {}",
            distinct.len(),
            supported.len()
        );
    }
}

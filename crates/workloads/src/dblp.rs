//! The DBLP user-study workload (§10, Appendix G.2 Tables 2–3): schema,
//! the four study questions with correct queries, the seeded wrong
//! queries, and the TA hints used for the hint-quality comparison
//! (Figures 5–6).

use qrhint_sqlast::{Schema, SqlType};

/// DBLP study schema (table names as shown to participants).
pub fn schema() -> Schema {
    use SqlType::*;
    Schema::new()
        .with_table(
            "conference_paper",
            &[
                ("pubkey", Str),
                ("title", Str),
                ("conference_name", Str),
                ("year", Int),
                ("area", Str),
            ],
            &["pubkey"],
        )
        .with_table(
            "journal_paper",
            &[("pubkey", Str), ("title", Str), ("journal_name", Str), ("year", Int)],
            &["pubkey"],
        )
        .with_table("authorship", &[("pubkey", Str), ("author", Str)], &["pubkey", "author"])
}

/// Who authored a study hint (for the Figure-6 categorization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintSource {
    Ta,
    QrHint,
}

/// One hint shown to participants, with its provenance.
#[derive(Debug, Clone)]
pub struct StudyHint {
    pub source: HintSource,
    pub text: &'static str,
}

/// One study question.
#[derive(Debug, Clone)]
pub struct StudyQuestion {
    pub id: &'static str,
    pub statement: &'static str,
    pub correct_sql: &'static str,
    pub wrong_sql: &'static str,
    /// Number of seeded errors (per §10 "Preparation").
    pub num_errors: usize,
    /// The union of hints shown for Q3/Q4 (TA + Qr-Hint), in the order
    /// they appear in Appendix Table 3.
    pub hints: Vec<StudyHint>,
}

/// All four study questions (Appendix Tables 2 and 3).
pub fn questions() -> Vec<StudyQuestion> {
    vec![
        StudyQuestion {
            id: "Q1",
            statement: "Find names of the authors, such that among the years when \
                        he/she published both conference paper and journal paper, 2 \
                        of the published papers are at least 20 years apart.",
            correct_sql: "SELECT au1.author
                FROM conference_paper i1, conference_paper i2, journal_paper a1,
                     journal_paper a2, authorship au1, authorship au2,
                     authorship au3, authorship au4
                WHERE i1.pubkey = au1.pubkey AND i2.pubkey = au2.pubkey
                  AND a1.pubkey = au3.pubkey AND a2.pubkey = au4.pubkey
                  AND au1.author = au2.author AND au2.author = au3.author
                  AND au3.author = au4.author AND i1.year + 20 >= i2.year
                  AND i1.year = a1.year AND i2.year = a2.year
                GROUP BY au1.author",
            wrong_sql: "SELECT e.author
                FROM conference_paper a, authorship e, conference_paper b, authorship f,
                     journal_paper c, authorship g, journal_paper d, authorship h
                WHERE a.pubkey = e.pubkey AND b.pubkey = g.pubkey
                  AND c.pubkey = f.pubkey AND e.author = h.author
                  AND d.pubkey = h.pubkey AND e.author = g.author
                  AND f.author = h.author AND a.year + 20 > d.year
                GROUP BY e.author",
            num_errors: 2,
            hints: vec![StudyHint {
                source: HintSource::QrHint,
                text: "In WHERE: You should change \"a.year + 20 > d.year\" to some \
                       other conditions.",
            }],
        },
        StudyQuestion {
            id: "Q2",
            statement: "For each author who has published conference papers in the \
                        database area, find the number of their conference paper \
                        collaborators in the database area by years before 2018.",
            correct_sql: "SELECT t2.author, t1.year, COUNT(DISTINCT t3.author)
                FROM conference_paper t1, authorship t2, authorship t3
                WHERE t1.pubkey = t2.pubkey AND t3.pubkey = t1.pubkey
                  AND t3.author <> t2.author AND t1.year < 2018
                  AND t1.area = 'Database'
                GROUP BY t2.author, t1.year",
            wrong_sql: "SELECT a.author, year, COUNT(*)
                FROM conference_paper, authorship, authorship a
                WHERE conference_paper.pubkey = a.pubkey AND authorship.pubkey = a.pubkey
                  AND a.author <> authorship.author AND year < 2018
                GROUP BY a.author, area, year, authorship.author
                HAVING area = 'Database' AND conference_paper.year < 2018",
            num_errors: 2,
            hints: vec![
                StudyHint {
                    source: HintSource::QrHint,
                    text: "In GROUP BY: authorship.author is incorrect.",
                },
                StudyHint {
                    source: HintSource::QrHint,
                    text: "In SELECT: COUNT(*) is incorrect.",
                },
            ],
        },
        StudyQuestion {
            id: "Q3",
            statement: "Excluding publications in the year of 2015, find authors who \
                        publish conference papers in at least 2 areas.",
            correct_sql: "SELECT t1.author
                FROM conference_paper t1x, authorship t1, conference_paper t3, authorship t4
                WHERE t1x.pubkey = t1.pubkey AND t1.author = t4.author
                  AND t3.pubkey = t4.pubkey AND t1x.year = t3.year
                  AND t1x.area <> t3.area AND t1x.year <> 2015
                  AND t1x.area <> 'UNKNOWN' AND t3.area <> 'UNKNOWN'
                GROUP BY t1.author",
            wrong_sql: "SELECT b.author
                FROM conference_paper, authorship b, conference_paper a, authorship
                WHERE conference_paper.pubkey = authorship.pubkey AND a.year < 2015
                   OR a.year > 2015 AND b.author = authorship.author
                  AND a.pubkey = b.pubkey AND conference_paper.year = a.year
                  AND a.area <> conference_paper.area AND a.area <> 'UNKNOWN'
                  AND conference_paper.area <> 'UNKNOWN'
                GROUP BY b.author",
            num_errors: 1,
            hints: vec![
                StudyHint {
                    source: HintSource::Ta,
                    text: "In WHERE, try to fix the whole condition by adding a pair \
                           of parentheses - in SQL AND takes higher precedence than \
                           OR (this fix alone should make the query correct)",
                },
                StudyHint {
                    source: HintSource::QrHint,
                    text: "In WHERE, you are missing a pair of parentheses around \
                           a.year < 2015 OR a.year > 2015.",
                },
                StudyHint { source: HintSource::Ta, text: "GROUP BY is incorrect." },
                StudyHint {
                    source: HintSource::Ta,
                    text: "GROUP BY is incorrect without an aggregate function.",
                },
            ],
        },
        StudyQuestion {
            id: "Q4",
            statement: "Among the authors who publish in the Systems-area \
                        conferences, find the ones that have no co-authors on such \
                        publications.",
            correct_sql: "SELECT t2.author
                FROM conference_paper t1, authorship t2, authorship t3
                WHERE t1.pubkey = t2.pubkey
                  AND t2.pubkey = t3.pubkey AND t1.area = 'Systems'
                GROUP BY t2.author
                HAVING COUNT(DISTINCT t3.author) <= 1",
            wrong_sql: "SELECT a.author
                FROM authorship, conference_paper, authorship a
                WHERE conference_paper.pubkey = a.pubkey AND a.pubkey = authorship.pubkey
                GROUP BY a.author, conference_paper.area
                HAVING conference_paper.area = 'System' AND COUNT(DISTINCT a.author) <= 1",
            num_errors: 2,
            hints: vec![
                StudyHint {
                    source: HintSource::Ta,
                    text: "GROUP BY should not include t1.area.",
                },
                StudyHint {
                    source: HintSource::Ta,
                    text: "In HAVING, conference_paper.area = 'System' should not appear.",
                },
                StudyHint {
                    source: HintSource::QrHint,
                    text: "In HAVING, try to fix conference_paper.area = 'System' (this \
                           plus another fix in HAVING will make the query right).",
                },
                StudyHint {
                    source: HintSource::Ta,
                    text: "In HAVING, conference_paper.area = 'System' should be = 'Systems'.",
                },
                StudyHint {
                    source: HintSource::QrHint,
                    text: "In HAVING, try to fix COUNT(DISTINCT a.author) <= 1 (this plus \
                           another fix in HAVING will make the query right).",
                },
                StudyHint {
                    source: HintSource::Ta,
                    text: "In HAVING, COUNT(DISTINCT a.author) <= 1 is referring to the \
                           same author attribute as the GROUP BY.",
                },
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlast::resolve::resolve_query;
    use qrhint_sqlparse::parse_query;

    #[test]
    fn all_study_queries_parse_and_resolve() {
        let s = schema();
        for q in questions() {
            for (label, sql) in [("correct", q.correct_sql), ("wrong", q.wrong_sql)] {
                let parsed = parse_query(sql)
                    .unwrap_or_else(|e| panic!("{} {label}: {e}", q.id));
                resolve_query(&s, &parsed)
                    .unwrap_or_else(|e| panic!("{} {label}: {e}", q.id));
            }
        }
    }

    #[test]
    fn hint_provenance_counts_match_the_paper() {
        let qs = questions();
        // Q3: four TA hints? The paper says "four TA hints and one from
        // Qr-Hint" for Q3 and "four TA hints and two Qr-Hint" for Q4; our
        // Table-3 transcription keeps the per-question totals.
        let q3 = qs.iter().find(|q| q.id == "Q3").unwrap();
        assert_eq!(q3.hints.iter().filter(|h| h.source == HintSource::QrHint).count(), 1);
        let q4 = qs.iter().find(|q| q.id == "Q4").unwrap();
        assert_eq!(q4.hints.iter().filter(|h| h.source == HintSource::QrHint).count(), 2);
        assert_eq!(q4.hints.iter().filter(|h| h.source == HintSource::Ta).count(), 4);
    }

    #[test]
    fn wrong_queries_differ_from_correct() {
        for q in questions() {
            assert_ne!(q.correct_sql, q.wrong_sql, "{}", q.id);
        }
    }
}

//! Execution-validated differential oracle.
//!
//! The paper argues each repair is *provably* correct inside its stage
//! semantics; this module checks the end-to-end claim empirically. For
//! every fuzzed pair ([`crate::mutate`]) it drives the full tutor loop
//! ([`qrhint_core::TutorSession::run_to_completion`]) — grading the
//! working query and auto-applying every suggested repair — then
//! *executes* the finished query against the hidden target on randomly
//! generated database instances (`qrhint_engine::DataGen`, with
//! constants harvested from the queries so predicates are non-vacuous)
//! and asserts bag equality.
//!
//! Every case lands in exactly one [`CaseClass`]:
//!
//! | class | meaning |
//! |---|---|
//! | `equivalent-mutant`    | fuzzer produced a semantically equivalent query; nothing to repair |
//! | `repaired-validated`   | ≥1 repair applied, repaired ≡ target on all instances |
//! | `repair-unsound`       | a repaired query disagreed with the target on some instance — a soundness bug |
//! | `repair-non-convergent`| the advise/apply loop exceeded its stage-application cap |
//! | `exec-gap`             | the engine could not execute a query the pipeline accepted |
//! | `statically-rejected`  | the static analyzer proves the working query or its repair ill-formed (error-severity diagnostics); not an engine divergence |
//! | `unsupported-fragment` | the pipeline rejected the mutant (parse/resolve/unsupported) |
//! | `unclassified`         | anything else (an internal error) — always a bug, CI fails on it |
//!
//! The [`TaxonomyReport`] is machine-readable (serde) and contains no
//! timing fields, so a run's report is byte-identical regardless of
//! `--jobs`.

use crate::mutate::{FuzzCase, Fuzzer};
use qrhint_core::parallel::{resolve_jobs, run_indexed};
use qrhint_core::{PreparedTarget, QrHint, QrHintError};
use qrhint_engine::{bag_equal, execute, DataGen};
use qrhint_sqlast::Schema;
use serde::Serialize;
use std::collections::BTreeMap;

/// Differential outcome taxonomy (see the module table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CaseClass {
    EquivalentMutant,
    RepairedValidated,
    RepairUnsound,
    RepairNonConvergent,
    ExecGap,
    StaticallyRejected,
    UnsupportedFragment,
    Unclassified,
}

impl CaseClass {
    /// Stable machine-readable key.
    pub fn key(self) -> &'static str {
        match self {
            CaseClass::EquivalentMutant => "equivalent-mutant",
            CaseClass::RepairedValidated => "repaired-validated",
            CaseClass::RepairUnsound => "repair-unsound",
            CaseClass::RepairNonConvergent => "repair-non-convergent",
            CaseClass::ExecGap => "exec-gap",
            CaseClass::StaticallyRejected => "statically-rejected",
            CaseClass::UnsupportedFragment => "unsupported-fragment",
            CaseClass::Unclassified => "unclassified",
        }
    }

    /// All classes, in report order.
    pub fn all() -> [CaseClass; 8] {
        [
            CaseClass::EquivalentMutant,
            CaseClass::RepairedValidated,
            CaseClass::RepairUnsound,
            CaseClass::RepairNonConvergent,
            CaseClass::ExecGap,
            CaseClass::StaticallyRejected,
            CaseClass::UnsupportedFragment,
            CaseClass::Unclassified,
        ]
    }

    /// Classes that represent a divergence worth a reproducer (everything
    /// that is not expected green-path behavior).
    pub fn is_divergence(self) -> bool {
        matches!(
            self,
            CaseClass::RepairUnsound
                | CaseClass::RepairNonConvergent
                | CaseClass::ExecGap
                | CaseClass::Unclassified
        )
    }
}

/// Per-case classification result.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    pub class: CaseClass,
    /// Number of repair applications the tutor loop performed (0 for an
    /// equivalent mutant).
    pub stages: usize,
    /// Free-form evidence (error text, differing instance index, …).
    pub detail: String,
}

/// Knobs for a differential run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads (0 = all available cores).
    pub jobs: usize,
    /// Database instances per case (distinct seeds).
    pub instances: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { jobs: 1, instances: 3 }
    }
}

/// One divergent case, with everything needed to reproduce it offline.
#[derive(Debug, Clone, Serialize)]
pub struct DivergentCase {
    pub id: String,
    pub class: String,
    pub mutations: Vec<String>,
    pub detail: String,
    pub target_sql: String,
    pub working_sql: String,
}

/// Machine-readable taxonomy report for a whole run. Deliberately free of
/// timing/thread fields: serialized output is byte-identical across
/// `--jobs` settings for the same (schema, count, seed, instances).
#[derive(Debug, Clone, Serialize)]
pub struct TaxonomyReport {
    pub schema: String,
    pub count: usize,
    pub seed: u64,
    pub exec_instances: usize,
    pub total: usize,
    /// class key → case count (every key present, zero or not).
    pub classes: BTreeMap<String, usize>,
    /// Number of `unclassified` cases (the CI failure signal).
    pub unclassified: usize,
    /// Divergent cases (capped at [`MAX_REPORTED_DIVERGENCES`]).
    pub divergent: Vec<DivergentCase>,
    pub divergent_truncated: bool,
}

/// Cap on embedded reproducers so a pathological run cannot produce an
/// unbounded report.
pub const MAX_REPORTED_DIVERGENCES: usize = 100;

/// Distinct error-severity diagnostic codes, for `statically-rejected`
/// case details (`QH-A04, QH-T01`, …).
fn error_codes(diags: &[qrhint_core::Diagnostic]) -> String {
    let mut codes: Vec<&'static str> =
        diags.iter().filter(|d| d.is_error()).map(|d| d.code.as_str()).collect();
    codes.sort_unstable();
    codes.dedup();
    codes.join(", ")
}

/// Rows per generated table, scaled down as the FROM list grows so the
/// cross product stays well under the engine's `MAX_CROSS_ROWS` even for
/// the 8-way DBLP self-joins.
fn rows_for(from_len: usize) -> usize {
    match from_len {
        0..=2 => 6,
        3..=4 => 4,
        _ => 3,
    }
}

/// Classify a single fuzz case against its prepared target.
///
/// `exec_seed` parameterizes the generated database instances; it must
/// not depend on scheduling (the caller passes the corpus seed) so the
/// classification is reproducible and jobs-independent.
pub fn classify_case(
    prepared: &PreparedTarget,
    schema: &Schema,
    case: &FuzzCase,
    instances: usize,
    exec_seed: u64,
) -> CaseOutcome {
    // Enter through the SQL text interface: the corpus is consumed the
    // same way a student submission would be.
    let working = match prepared.prepare(&case.working.to_string()) {
        Ok(q) => q,
        Err(e @ (QrHintError::Parse(_) | QrHintError::Resolve(_) | QrHintError::Unsupported(_))) => {
            return CaseOutcome {
                class: CaseClass::UnsupportedFragment,
                stages: 0,
                detail: e.to_string(),
            }
        }
        Err(e) => {
            return CaseOutcome { class: CaseClass::Unclassified, stages: 0, detail: e.to_string() }
        }
    };
    // A mutant the static analyzer rejects outright (error-severity
    // diagnostics) is the fuzzer's doing, not a grading divergence: the
    // analyzer proves some instance (e.g. an empty group) cannot be
    // evaluated, so the execution oracle would only rediscover that.
    let working_diags = qrhint_core::analysis::analyze(schema, &working);
    if qrhint_core::analysis::has_errors(&working_diags) {
        return CaseOutcome {
            class: CaseClass::StaticallyRejected,
            stages: 0,
            detail: format!(
                "working query is statically ill-formed: {}",
                error_codes(&working_diags)
            ),
        };
    }
    let (fixed, trail) = match prepared.tutor(working.clone()).run_to_completion() {
        Ok(ok) => ok,
        Err(QrHintError::Unsupported(d)) => {
            return CaseOutcome { class: CaseClass::UnsupportedFragment, stages: 0, detail: d }
        }
        Err(QrHintError::Internal(d)) if d.contains("did not converge") => {
            return CaseOutcome { class: CaseClass::RepairNonConvergent, stages: 0, detail: d }
        }
        Err(e) => {
            return CaseOutcome { class: CaseClass::Unclassified, stages: 0, detail: e.to_string() }
        }
    };
    let stages = trail.len().saturating_sub(1);
    // The repair loop can synthesize a statically ill-formed query from a
    // well-formed mutant — the GROUP-BY-elision family drops a GROUP BY
    // whose column is WHERE-pinned, leaving a mixed ungrouped SELECT that
    // errors on empty instances (QH-A04). The analyzer predicts exactly
    // the engine rejection, so there is nothing for execution to decide:
    // separate these from true engine divergences without running them.
    let fixed_diags = qrhint_core::analysis::analyze(schema, &fixed);
    if qrhint_core::analysis::has_errors(&fixed_diags) {
        return CaseOutcome {
            class: CaseClass::StaticallyRejected,
            stages,
            detail: format!(
                "repair `{fixed}` is statically ill-formed: {}",
                error_codes(&fixed_diags)
            ),
        };
    }
    let rows = rows_for(case.target.from.len().max(fixed.from.len()));
    for k in 0..instances {
        // Seed depends only on (corpus seed, instance index): two runs of
        // the same corpus see identical databases regardless of jobs.
        let db_seed = exec_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(k as u64);
        let db = DataGen::new(db_seed)
            .with_rows(rows)
            .generate(schema, &[&case.target, &fixed, &working]);
        let expect = match execute(&case.target, schema, &db) {
            Ok(r) => r,
            Err(e) => {
                return CaseOutcome {
                    class: CaseClass::ExecGap,
                    stages,
                    detail: format!("target failed on instance {k}: {e}"),
                }
            }
        };
        let got = match execute(&fixed, schema, &db) {
            Ok(r) => r,
            Err(e) => {
                return CaseOutcome {
                    class: CaseClass::ExecGap,
                    stages,
                    detail: format!("repaired query failed on instance {k}: {e}"),
                }
            }
        };
        if !bag_equal(&expect, &got) {
            return CaseOutcome {
                class: CaseClass::RepairUnsound,
                stages,
                detail: format!(
                    "repaired `{fixed}` disagreed with target on instance {k} \
                     ({} vs {} rows)",
                    got.len(),
                    expect.len()
                ),
            };
        }
    }
    if stages == 0 {
        CaseOutcome { class: CaseClass::EquivalentMutant, stages, detail: String::new() }
    } else {
        CaseOutcome {
            class: CaseClass::RepairedValidated,
            stages,
            detail: format!("{stages} repair(s) applied"),
        }
    }
}

/// Run the full differential pipeline for one schema: fuzz `count`
/// cases from `seed`, grade + repair + execute each, and aggregate the
/// taxonomy. Returns `None` for an unknown schema name.
pub fn run(schema_name: &str, count: usize, seed: u64, cfg: &RunConfig) -> Option<TaxonomyReport> {
    let fuzzer = Fuzzer::for_schema(schema_name)?;
    let cases = fuzzer.generate(count, seed);
    Some(run_cases(schema_name, &fuzzer, &cases, seed, cfg))
}

/// Classify an explicit case list (shared by [`run`] and the tests).
pub fn run_cases(
    schema_name: &str,
    fuzzer: &Fuzzer,
    cases: &[FuzzCase],
    seed: u64,
    cfg: &RunConfig,
) -> TaxonomyReport {
    let schema = fuzzer.schema();
    // One prepared target per base query: the per-target caches (advice,
    // verdicts, mappings) then serve every mutant of that base.
    let qr = QrHint::new(schema.clone());
    let mut targets: BTreeMap<String, PreparedTarget> = BTreeMap::new();
    for (id, target) in fuzzer.bases() {
        let prepared = qr
            .compile_target(&target.to_string())
            .unwrap_or_else(|e| panic!("base {schema_name}/{id} failed to compile: {e}"));
        targets.insert(id.clone(), prepared);
    }
    let jobs = resolve_jobs(cfg.jobs);
    let instances = cfg.instances.max(1);
    let outcomes = run_indexed(cases.len(), jobs, |i| {
        let case = &cases[i];
        let prepared = &targets[&case.base_id];
        classify_case(prepared, schema, case, instances, seed)
    });

    let mut classes: BTreeMap<String, usize> = CaseClass::all()
        .into_iter()
        .map(|c| (c.key().to_string(), 0))
        .collect();
    let mut divergent = Vec::new();
    let mut truncated = false;
    for (case, outcome) in cases.iter().zip(&outcomes) {
        *classes.get_mut(outcome.class.key()).unwrap() += 1;
        if outcome.class.is_divergence() {
            if divergent.len() < MAX_REPORTED_DIVERGENCES {
                divergent.push(DivergentCase {
                    id: case.id.clone(),
                    class: outcome.class.key().to_string(),
                    mutations: case.mutations.iter().map(|m| m.description.clone()).collect(),
                    detail: outcome.detail.clone(),
                    target_sql: case.target.to_string(),
                    working_sql: case.working.to_string(),
                });
            } else {
                truncated = true;
            }
        }
    }
    TaxonomyReport {
        schema: schema_name.to_string(),
        count: cases.len(),
        seed,
        exec_instances: instances,
        total: cases.len(),
        unclassified: classes[CaseClass::Unclassified.key()],
        classes,
        divergent,
        divergent_truncated: truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_students_run_is_clean_and_jobs_invariant() {
        let cfg1 = RunConfig { jobs: 1, instances: 2 };
        let cfg4 = RunConfig { jobs: 4, instances: 2 };
        let r1 = run("students", 24, 42, &cfg1).unwrap();
        let r4 = run("students", 24, 42, &cfg4).unwrap();
        assert_eq!(r1.unclassified, 0, "divergent: {:?}", r1.divergent);
        assert_eq!(
            serde_json::to_string(&r1).unwrap(),
            serde_json::to_string(&r4).unwrap(),
            "report must be byte-identical across jobs"
        );
        let graded: usize = r1.classes.values().sum();
        assert_eq!(graded, 24);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        assert!(run("nope", 1, 1, &RunConfig::default()).is_none());
    }
}

//! Synthetic error injection for WHERE predicates (§9 "Test Data
//! Preparation": "we then introduced errors into two atomic predicates";
//! "created 5 wrong queries by injecting 1–5 errors by changing atomic
//! predicates or logical operators").

use qrhint_sqlast::pred::PredPath;
use qrhint_sqlast::{CmpOp, Pred, Scalar};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Kinds of injected errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedError {
    /// Comparison operator changed at the atom at `path`.
    OpChanged { path: PredPath, from: CmpOp, to: CmpOp },
    /// Integer constant perturbed.
    ConstChanged { path: PredPath, from: i64, to: i64 },
    /// String constant replaced.
    StrChanged { path: PredPath, from: String, to: String },
    /// A logical connective flipped (AND ↔ OR).
    ConnectiveFlipped { path: PredPath },
}

/// Mutate up to `k` distinct atomic predicates of `pred` (operator or
/// constant changes). Deterministic given `seed`. Returns the wrong
/// predicate and the injected-error descriptions — the error list length
/// is the number of errors *actually* injected, which is smaller than
/// `k` when the predicate has fewer mutable atoms (constants like
/// `TRUE`/`FALSE` have no meaningful single-atom mutation and are
/// skipped rather than miscounted).
pub fn inject_atom_errors(pred: &Pred, k: usize, seed: u64) -> (Pred, Vec<InjectedError>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut atom_paths: Vec<PredPath> = pred
        .all_paths()
        .into_iter()
        .filter(|p| pred.at_path(p).is_some_and(Pred::is_atomic))
        .collect();
    atom_paths.shuffle(&mut rng);
    let mut out = pred.clone();
    let mut errors = Vec::new();
    for path in atom_paths {
        if errors.len() == k {
            break;
        }
        let atom = out.at_path(&path).unwrap().clone();
        if let Some((mutated, err)) = mutate_atom_once(&atom, &path, &mut rng) {
            out = out.replace_at(&path, &mutated);
            errors.push(err);
        }
    }
    (out, errors)
}

/// Inject up to `k` errors, allowing both atom mutations and connective
/// flips (the Figure 3 setup). At least one connective flip is attempted
/// when `k ≥ 3` and the predicate has internal AND/OR structure below
/// the root. As with [`inject_atom_errors`], when `k` exceeds the number
/// of available mutation sites the returned error list reports the
/// number actually injected — never a padded or phantom count.
pub fn inject_mixed_errors(pred: &Pred, k: usize, seed: u64) -> (Pred, Vec<InjectedError>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = pred.clone();
    let mut errors = Vec::new();
    let mut remaining = k;
    if k >= 3 {
        let internal: Vec<PredPath> = out
            .all_paths()
            .into_iter()
            .filter(|p| !p.is_empty())
            .filter(|p| matches!(out.at_path(p), Some(Pred::And(_)) | Some(Pred::Or(_))))
            .collect();
        if let Some(path) = internal.first() {
            out = flip_connective(&out, path);
            errors.push(InjectedError::ConnectiveFlipped { path: path.clone() });
            remaining -= 1;
        }
    }
    let (mutated, mut atom_errors) = inject_atom_errors(&out, remaining, rng.gen());
    out = mutated;
    errors.append(&mut atom_errors);
    (out, errors)
}

fn flip_connective(pred: &Pred, path: &PredPath) -> Pred {
    let node = pred.at_path(path).unwrap().clone();
    let flipped = match node {
        Pred::And(cs) => Pred::Or(cs),
        Pred::Or(cs) => Pred::And(cs),
        other => other,
    };
    pred.replace_at(path, &flipped)
}

/// Mutate a single atomic predicate. Returns `None` when the atom has no
/// meaningful mutation (the `TRUE`/`FALSE` constants) — callers must skip
/// the site rather than record a phantom error. Shared with the
/// [`crate::mutate`] fuzzer so WHERE-atom mutations there use exactly the
/// §9 mutation distribution.
pub fn mutate_atom_once(
    atom: &Pred,
    path: &PredPath,
    rng: &mut StdRng,
) -> Option<(Pred, InjectedError)> {
    match atom {
        Pred::Cmp(l, op, r) => {
            // Prefer constant perturbation when a constant is present;
            // otherwise change the operator.
            if let Scalar::Int(v) = r {
                if rng.gen_bool(0.5) {
                    let delta = *[-10i64, -3, -1, 1, 3, 10].choose(rng).unwrap();
                    let nv = v + delta;
                    return Some((
                        Pred::Cmp(l.clone(), *op, Scalar::Int(nv)),
                        InjectedError::ConstChanged { path: path.clone(), from: *v, to: nv },
                    ));
                }
            }
            if let Scalar::Str(s) = r {
                if rng.gen_bool(0.5) {
                    let ns = format!("{s}X");
                    return Some((
                        Pred::Cmp(l.clone(), *op, Scalar::Str(ns.clone())),
                        InjectedError::StrChanged {
                            path: path.clone(),
                            from: s.clone(),
                            to: ns,
                        },
                    ));
                }
            }
            let candidates: Vec<CmpOp> = [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ]
            .into_iter()
            .filter(|o| o != op)
            .collect();
            let to = *candidates.choose(rng).unwrap();
            Some((
                Pred::Cmp(l.clone(), to, r.clone()),
                InjectedError::OpChanged { path: path.clone(), from: *op, to },
            ))
        }
        Pred::Like { expr, pattern, negated } => {
            // Flip the negation (a realistic student slip).
            Some((
                Pred::Like { expr: expr.clone(), pattern: pattern.clone(), negated: !negated },
                InjectedError::OpChanged {
                    path: path.clone(),
                    from: CmpOp::Eq,
                    to: CmpOp::Ne,
                },
            ))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::parse_pred;

    #[test]
    fn injects_exactly_k_atom_errors() {
        let p = parse_pred("a = 1 AND b = 2 AND c = 3 AND d = 4 AND e = 5").unwrap();
        for k in 1..=3 {
            let (wrong, errors) = inject_atom_errors(&p, k, 42);
            assert_eq!(errors.len(), k);
            assert_ne!(wrong, p);
            // Atom count is preserved (errors mutate, never delete).
            assert_eq!(wrong.atom_count(), p.atom_count());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = parse_pred("a = 1 AND b > 2 AND c <= 3").unwrap();
        let (w1, e1) = inject_atom_errors(&p, 2, 7);
        let (w2, e2) = inject_atom_errors(&p, 2, 7);
        assert_eq!(w1, w2);
        assert_eq!(e1, e2);
        let (w3, _) = inject_atom_errors(&p, 2, 8);
        assert_ne!(w1, w3);
    }

    #[test]
    fn mixed_errors_flip_connectives() {
        let p = parse_pred("(a = 1 AND b = 2) OR (c = 3 AND d = 4)").unwrap();
        let (wrong, errors) = inject_mixed_errors(&p, 3, 11);
        assert_eq!(errors.len(), 3);
        assert!(errors
            .iter()
            .any(|e| matches!(e, InjectedError::ConnectiveFlipped { .. })));
        assert_ne!(wrong, p);
    }

    #[test]
    fn oversized_k_reports_actual_injection_count() {
        // Three mutable atoms: asking for 10 errors must report exactly
        // the 3 that were really applied, and the mutated predicate must
        // differ from the original at exactly those sites.
        let p = parse_pred("a = 1 AND b > 2 AND c <= 3").unwrap();
        let (wrong, errors) = inject_atom_errors(&p, 10, 5);
        assert_eq!(errors.len(), 3);
        assert_ne!(wrong, p);
        let (wrong_m, errors_m) = inject_mixed_errors(&p, 10, 5);
        assert!(errors_m.len() <= p.atom_count() + 1);
        assert!(!errors_m.is_empty());
        assert_ne!(wrong_m, p);
    }

    #[test]
    fn constant_atoms_are_never_counted_as_errors() {
        // TRUE has no single-atom mutation; the error list must not
        // contain a phantom entry for it.
        let p = Pred::True;
        let (wrong, errors) = inject_atom_errors(&p, 2, 9);
        assert_eq!(wrong, p);
        assert!(errors.is_empty());
        let (wrong_m, errors_m) = inject_mixed_errors(&p, 5, 9);
        assert_eq!(wrong_m, p);
        assert!(errors_m.is_empty());
    }

    #[test]
    fn like_atoms_are_mutated_by_negation() {
        let p = parse_pred("p.name LIKE '%green%'").unwrap();
        let (wrong, _) = inject_atom_errors(&p, 1, 3);
        assert!(matches!(wrong, Pred::Like { negated: true, .. }));
    }
}

//! Route dispatch and JSON request/response shapes for the daemon.
//!
//! The service is transport-agnostic: it maps one parsed [`Request`]
//! to one [`Response`], and the connection loop in [`crate::server`]
//! owns the sockets. That split keeps every handler unit-testable
//! without a listener.
//!
//! Status-code contract (enforced by `tests/server_http.rs`):
//!
//! * `400` — the request itself is broken: unparseable JSON, missing
//!   fields, non-UTF-8 body.
//! * `404` — unknown route or unknown/evicted target id.
//! * `405` — known route, wrong method.
//! * `422` — the request is well-formed but the SQL in it is not:
//!   schema/target errors at registration, malformed or unsupported
//!   submissions at advise time.
//! * `500` — a grading-internal invariant failed (never the client's
//!   fault).
//! * `503` — the server is draining after `POST /shutdown`.

use crate::http::{Request, Response};
use crate::metrics::ServerMetrics;
use crate::registry::{RegistryConfig, TargetRegistry};
use qrhint_core::{AdviceReport, QrHint, QrHintError, SessionStats};
use qrhint_obs::log::{self as obs_log, Level};
use qrhint_sqlparse::{parse_schema, FlattenOptions};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Service-level knobs (the CLI's `serve` flags land here).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for one `grade` batch (`0` = use
    /// `std::thread::available_parallelism`).
    pub jobs: usize,
    pub registry: RegistryConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig { jobs: 1, registry: RegistryConfig::default() }
    }
}

// The 0 = available-parallelism convention lives beside the worker
// pool itself ([`qrhint_core::parallel`]); re-exported here because it
// is part of the service's configuration surface.
pub use qrhint_core::parallel::resolve_jobs;

// ---------------------------------------------------------------------------
// Wire shapes
// ---------------------------------------------------------------------------

#[derive(Debug, Deserialize)]
struct RegisterRequest {
    schema: String,
    target: String,
    #[serde(default)]
    extended: bool,
    #[serde(default)]
    rewrite_subqueries: bool,
}

#[derive(Debug, Serialize)]
struct RegisterResponse {
    id: String,
    /// Target ids the capacity bound dropped to make room.
    evicted: Vec<String>,
}

#[derive(Debug, Deserialize)]
struct AdviseRequest {
    sql: String,
}

/// Body of `POST /targets/{id}/lint`: analyzer-only, no grading.
#[derive(Debug, Deserialize)]
struct LintRequest {
    sql: String,
}

#[derive(Debug, Serialize)]
struct LintResponse {
    /// True when the analyzer found nothing at all.
    clean: bool,
    /// True when at least one diagnostic is error-severity (the query
    /// is statically guaranteed to misbehave under execution).
    errors: bool,
    diagnostics: Vec<qrhint_core::Diagnostic>,
}

#[derive(Debug, Deserialize)]
struct GradeRequest {
    submissions: Vec<String>,
    /// `0` (or omitted) = the server's configured default.
    #[serde(default)]
    jobs: usize,
}

/// One graded submission; `report` mirrors the CLI's `grade --json`
/// entry shape byte-for-byte (same [`AdviceReport`] serialization).
#[derive(Debug, Serialize)]
struct GradeEntry {
    index: usize,
    ok: bool,
    error: Option<String>,
    report: Option<AdviceReport>,
}

#[derive(Debug, Serialize)]
struct GradeResponse {
    jobs: usize,
    entries: Vec<GradeEntry>,
}

#[derive(Debug, Serialize)]
struct StatsResponse {
    id: String,
    stats: SessionStats,
    approx_cache_bytes: u64,
}

#[derive(Debug, Serialize)]
struct HealthResponse {
    status: String,
    version: String,
    targets: usize,
    uptime_ms: u64,
    /// Whole seconds of `uptime_ms` — the unit soak harnesses plot.
    uptime_seconds: u64,
    requests_served: u64,
    /// Requests currently being handled (includes this one).
    in_flight: i64,
    registered_total: u64,
    shed_total: u64,
    evicted_total: u64,
    /// Connections answered `429` by the bounded-queue overload guard
    /// (distinct from `shed_total`, which counts registry cache sheds).
    overload_shed_total: u64,
    draining: bool,
}

/// Body of `GET /version`: build identity on its own route, so
/// monitoring can pin a deployment without parsing health payloads.
#[derive(Debug, Serialize)]
struct VersionResponse {
    name: String,
    version: String,
}

#[derive(Debug, Serialize)]
struct ShutdownResponse {
    status: String,
}

/// Every non-2xx body: a human-readable message plus a stable
/// machine-checkable kind.
#[derive(Debug, Serialize)]
pub struct ErrorBody {
    pub error: String,
    pub kind: String,
}

pub fn error_response(status: u16, kind: &str, error: impl Into<String>) -> Response {
    let body = ErrorBody { error: error.into(), kind: kind.to_string() };
    Response::new(status, serde_json::to_string(&body).expect("error body serializes"))
}

fn json_response<T: Serialize>(status: u16, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::new(status, body),
        Err(e) => error_response(500, "internal", format!("response serialization: {e}")),
    }
}

fn parse_body<T: serde::Deserialize>(req: &Request) -> Result<T, Response> {
    let text = req
        .body_str()
        .map_err(|_| error_response(400, "bad_request", "request body is not valid UTF-8"))?;
    serde_json::from_str::<T>(text)
        .map_err(|e| error_response(400, "bad_request", format!("bad JSON body: {e}")))
}

/// Map a grading-pipeline error to the side at fault, mirroring the
/// CLI's exit-code contract (3 = student's SQL, 1 = ours).
fn sql_error_response(context: &str, e: &QrHintError) -> Response {
    match e {
        QrHintError::Parse(_) | QrHintError::Resolve(_) | QrHintError::Unsupported(_) => {
            error_response(422, "bad_sql", format!("{context}: {e}"))
        }
        QrHintError::Internal(_) => error_response(500, "internal", format!("{context}: {e}")),
    }
}

/// Collapse a request path to its route template for metric labels:
/// `/targets/t17/advise` → `advise`. Bounded vocabulary by design —
/// labeling by raw path would grow series cardinality with every
/// registered target and every scanner probing random URLs.
pub(crate) fn route_template(segments: &[&str]) -> &'static str {
    match segments {
        ["targets"] => "register",
        ["targets", _, "advise"] => "advise",
        ["targets", _, "grade"] => "grade",
        ["targets", _, "lint"] => "lint",
        ["targets", _, "stats"] => "stats",
        ["healthz"] => "healthz",
        ["metrics"] => "metrics",
        ["version"] => "version",
        ["shutdown"] => "shutdown",
        _ => "other",
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// The grading service: a [`TargetRegistry`] plus request dispatch.
pub struct QrHintService {
    registry: TargetRegistry,
    metrics: ServerMetrics,
    jobs: usize,
    started: Instant,
    draining: AtomicBool,
    requests_served: AtomicU64,
    /// Request-id source for access logs; dense per process, never
    /// reused, so a log line identifies one request exactly.
    next_request_id: AtomicU64,
}

impl QrHintService {
    pub fn new(cfg: ServiceConfig) -> QrHintService {
        QrHintService {
            registry: TargetRegistry::new(cfg.registry),
            metrics: ServerMetrics::new(),
            jobs: resolve_jobs(cfg.jobs),
            started: Instant::now(),
            draining: AtomicBool::new(false),
            requests_served: AtomicU64::new(0),
            next_request_id: AtomicU64::new(0),
        }
    }

    pub fn registry(&self) -> &TargetRegistry {
        &self.registry
    }

    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Default per-batch grading parallelism.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Record one overload shed: the acceptor refused a readable
    /// connection because the bounded dispatch queue was full and
    /// answered `429` without reading the request.
    pub fn observe_shed(&self) {
        self.metrics.observe_shed();
    }

    /// Handle one request. Infallible by construction: every failure
    /// mode is a well-formed JSON error response. Every request —
    /// including malformed and refused ones — is counted, timed, and
    /// access-logged under a fresh request id.
    pub fn handle(&self, req: &Request) -> Response {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.begin_request();
        let started = Instant::now();
        let path = req.path.trim_end_matches('/');
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let route = route_template(segments.as_slice());
        let resp = self.dispatch(req, segments.as_slice());
        let elapsed = started.elapsed();
        self.metrics.observe_request(
            route,
            resp.status,
            elapsed,
            req.body.len(),
            resp.body.len(),
        );
        // 500 is our fault and always log-worthy; a drain-time 503 is
        // expected operational behavior and stays at access-log level.
        let level =
            if resp.status >= 500 && resp.status != 503 { Level::Error } else { Level::Info };
        if obs_log::enabled(level) {
            obs_log::event(
                level,
                "server",
                "request",
                &[
                    ("request_id", &request_id.to_string()),
                    ("method", &req.method),
                    ("path", &req.path),
                    ("route", route),
                    ("status", &resp.status.to_string()),
                    ("dur_us", &elapsed.as_micros().to_string()),
                    ("bytes_in", &req.body.len().to_string()),
                    ("bytes_out", &resp.body.len().to_string()),
                ],
            );
        }
        resp
    }

    fn dispatch(&self, req: &Request, segments: &[&str]) -> Response {
        // Draining: answer health checks and scrapes (monitoring wants
        // to watch the drain) but refuse new work.
        if self.is_draining()
            && !matches!(segments, ["healthz"] | ["metrics"] | ["version"])
        {
            return error_response(503, "draining", "server is shutting down");
        }
        match (req.method.as_str(), segments) {
            ("POST", ["targets"]) => self.handle_register(req),
            ("POST", ["targets", id, "advise"]) => self.handle_advise(req, id),
            ("POST", ["targets", id, "grade"]) => self.handle_grade(req, id),
            ("POST", ["targets", id, "lint"]) => self.handle_lint(req, id),
            ("GET", ["targets", id, "stats"]) => self.handle_stats(id),
            ("GET", ["healthz"]) => self.handle_health(),
            ("GET", ["metrics"]) => self.handle_metrics(),
            ("GET", ["version"]) => self.handle_version(),
            ("POST", ["shutdown"]) => self.handle_shutdown(),
            // Known routes with the wrong verb get 405, unknown paths 404.
            (_, ["targets"]) | (_, ["targets", _, "advise" | "grade" | "lint" | "stats"])
            | (_, ["healthz"]) | (_, ["metrics"]) | (_, ["version"]) | (_, ["shutdown"]) => {
                error_response(405, "method_not_allowed", format!("{} {}", req.method, req.path))
            }
            _ => error_response(404, "not_found", format!("no route for {}", req.path)),
        }
    }

    fn handle_register(&self, req: &Request) -> Response {
        let body: RegisterRequest = match parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        let schema = match parse_schema(&body.schema) {
            Ok(s) => s,
            Err(e) => return error_response(422, "bad_sql", format!("schema: {e}")),
        };
        let qr = QrHint::new(schema);
        let opts = FlattenOptions { rewrite_positive_subqueries: body.rewrite_subqueries };
        let compiled = if body.extended {
            qr.compile_target_extended(&body.target, &opts)
        } else {
            qr.compile_target(&body.target)
        };
        let prepared = match compiled {
            Ok(p) => p,
            Err(e) => return sql_error_response("target query", &e),
        };
        let (target, eviction) =
            self.registry.register(prepared, body.extended, body.rewrite_subqueries);
        json_response(
            201,
            &RegisterResponse { id: target.id.clone(), evicted: eviction.dropped },
        )
    }

    fn handle_advise(&self, req: &Request, id: &str) -> Response {
        let body: AdviseRequest = match parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        let Some(target) = self.registry.get(id) else {
            return error_response(404, "unknown_target", format!("no target `{id}`"));
        };
        let opts = FlattenOptions { rewrite_positive_subqueries: target.rewrite_subqueries };
        let prepared = &target.prepared;
        let working = if target.extended {
            prepared.prepare_extended(&body.sql, &opts)
        } else {
            prepared.prepare(&body.sql)
        };
        let resp = match working {
            Ok(q) => match prepared.advise(&q) {
                Ok(advice) => {
                    let diagnostics = prepared.lint(&q);
                    json_response(200, &AdviceReport::with_diagnostics(advice, diagnostics))
                }
                Err(e) => sql_error_response("submission", &e),
            },
            Err(e) => sql_error_response("submission", &e),
        };
        self.registry.enforce_byte_budget();
        resp
    }

    fn handle_lint(&self, req: &Request, id: &str) -> Response {
        let body: LintRequest = match parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        let Some(target) = self.registry.get(id) else {
            return error_response(404, "unknown_target", format!("no target `{id}`"));
        };
        let opts = FlattenOptions { rewrite_positive_subqueries: target.rewrite_subqueries };
        let prepared = &target.prepared;
        let working = if target.extended {
            prepared.prepare_extended(&body.sql, &opts)
        } else {
            prepared.prepare(&body.sql)
        };
        match working {
            Ok(q) => {
                let diagnostics = prepared.lint(&q);
                json_response(
                    200,
                    &LintResponse {
                        clean: diagnostics.is_empty(),
                        errors: qrhint_core::analysis::has_errors(&diagnostics),
                        diagnostics,
                    },
                )
            }
            Err(e) => sql_error_response("submission", &e),
        }
    }

    fn handle_grade(&self, req: &Request, id: &str) -> Response {
        let body: GradeRequest = match parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        let Some(target) = self.registry.get(id) else {
            return error_response(404, "unknown_target", format!("no target `{id}`"));
        };
        // A request may narrow or widen parallelism, within reason: the
        // cap keeps one request from spawning unbounded threads.
        let jobs = if body.jobs == 0 { self.jobs } else { body.jobs.min(64) };
        let prepared = &target.prepared;
        let opts = FlattenOptions { rewrite_positive_subqueries: target.rewrite_subqueries };
        let entries = qrhint_core::parallel::run_indexed(body.submissions.len(), jobs, |i| {
            let sql = &body.submissions[i];
            let working = if target.extended {
                prepared.prepare_extended(sql, &opts)
            } else {
                prepared.prepare(sql)
            };
            match working.and_then(|q| prepared.advise(&q).map(|a| (q, a))) {
                Ok((q, advice)) => GradeEntry {
                    index: i,
                    ok: true,
                    error: None,
                    report: Some(AdviceReport::with_diagnostics(advice, prepared.lint(&q))),
                },
                Err(e) => GradeEntry {
                    index: i,
                    ok: false,
                    error: Some(e.to_string()),
                    report: None,
                },
            }
        });
        let resp = json_response(200, &GradeResponse { jobs, entries });
        self.registry.enforce_byte_budget();
        resp
    }

    fn handle_stats(&self, id: &str) -> Response {
        let Some(target) = self.registry.get(id) else {
            return error_response(404, "unknown_target", format!("no target `{id}`"));
        };
        json_response(
            200,
            &StatsResponse {
                id: target.id.clone(),
                stats: target.prepared.stats(),
                approx_cache_bytes: target.prepared.approx_cache_bytes() as u64,
            },
        )
    }

    fn handle_health(&self) -> Response {
        let (registered_total, shed_total, evicted_total) = self.registry.totals();
        let uptime_ms = self.started.elapsed().as_millis() as u64;
        json_response(
            200,
            &HealthResponse {
                status: if self.is_draining() { "draining".into() } else { "ok".into() },
                version: env!("CARGO_PKG_VERSION").to_string(),
                targets: self.registry.len(),
                uptime_ms,
                uptime_seconds: uptime_ms / 1000,
                requests_served: self.requests_served.load(Ordering::Relaxed),
                in_flight: self.metrics.in_flight(),
                registered_total,
                shed_total,
                evicted_total,
                overload_shed_total: self.metrics.shed_total(),
                draining: self.is_draining(),
            },
        )
    }

    fn handle_metrics(&self) -> Response {
        Response::with_content_type(
            200,
            self.metrics.render(&self.registry),
            "text/plain; version=0.0.4",
        )
    }

    fn handle_version(&self) -> Response {
        json_response(
            200,
            &VersionResponse {
                name: env!("CARGO_PKG_NAME").to_string(),
                version: env!("CARGO_PKG_VERSION").to_string(),
            },
        )
    }

    fn handle_shutdown(&self) -> Response {
        self.draining.store(true, Ordering::SeqCst);
        json_response(200, &ShutdownResponse { status: "draining".into() })
    }
}

impl crate::server::HttpHandler for QrHintService {
    fn handle(&self, req: &Request) -> Response {
        QrHintService::handle(self, req)
    }

    fn is_draining(&self) -> bool {
        QrHintService::is_draining(self)
    }

    fn observe_shed(&self) {
        QrHintService::observe_shed(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "CREATE TABLE Serves (bar VARCHAR(20), beer VARCHAR(20), \
                          price INT, PRIMARY KEY (bar, beer));";

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn service() -> QrHintService {
        QrHintService::new(ServiceConfig::default())
    }

    fn register(svc: &QrHintService, target: &str) -> String {
        let body = serde_json::to_string(&{
            let mut m: std::collections::BTreeMap<String, String> =
                std::collections::BTreeMap::new();
            m.insert("schema".into(), SCHEMA.into());
            m.insert("target".into(), target.into());
            m
        })
        .unwrap();
        let resp = svc.handle(&post("/targets", &body));
        assert_eq!(resp.status, 201, "{}", resp.body);
        // `{"id":"tN", ...}` — pull the id out structurally.
        let v: serde::Value = serde_json::from_str(&resp.body).unwrap();
        match v {
            serde::Value::Map(m) => match m.iter().find(|(k, _)| k == "id") {
                Some((_, serde::Value::Str(id))) => id.clone(),
                other => panic!("no id in register response: {other:?}"),
            },
            other => panic!("register response not a map: {other:?}"),
        }
    }

    #[test]
    fn register_advise_stats_round_trip() {
        let svc = service();
        let id = register(&svc, "SELECT s.bar FROM Serves s WHERE s.price >= 3");
        let resp = svc.handle(&post(
            &format!("/targets/{id}/advise"),
            "{\"sql\": \"SELECT s.bar FROM Serves s WHERE s.price > 3\"}",
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"equivalent\":false"), "{}", resp.body);
        let stats = svc.handle(&get(&format!("/targets/{id}/stats")));
        assert_eq!(stats.status, 200);
        assert!(stats.body.contains("\"advise_calls\":1"), "{}", stats.body);
        // PR 5: interner + shared-verdict-cache counters ride along.
        assert!(stats.body.contains("\"verdict_cache_misses\""), "{}", stats.body);
        assert!(stats.body.contains("\"interned_formulas\""), "{}", stats.body);
    }

    #[test]
    fn lint_route_reports_diagnostics_and_stats_count_them() {
        let svc = service();
        let id = register(&svc, "SELECT s.bar FROM Serves s WHERE s.price >= 3");
        let resp = svc.handle(&post(
            &format!("/targets/{id}/lint"),
            "{\"sql\": \"SELECT s.bar FROM Serves s WHERE s.price >= 3\"}",
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"clean\":true"), "{}", resp.body);
        let resp = svc.handle(&post(
            &format!("/targets/{id}/lint"),
            "{\"sql\": \"SELECT s.bar FROM Serves s WHERE s.price > 5 AND s.price < 3\"}",
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"clean\":false"), "{}", resp.body);
        assert!(resp.body.contains("QH-P01"), "{}", resp.body);
        let stats = svc.handle(&get(&format!("/targets/{id}/stats")));
        assert!(stats.body.contains("\"diagnostics_emitted\":1"), "{}", stats.body);
        assert!(stats.body.contains("\"solver_calls_skipped\""), "{}", stats.body);
        // Bad submission SQL → 422; wrong verb → 405.
        let bad = svc.handle(&post(&format!("/targets/{id}/lint"), "{\"sql\": \"SELEKT\"}"));
        assert_eq!(bad.status, 422, "{}", bad.body);
        assert_eq!(svc.handle(&get(&format!("/targets/{id}/lint"))).status, 405);
    }

    #[test]
    fn advise_attaches_diagnostics_only_when_present() {
        let svc = service();
        let id = register(&svc, "SELECT s.bar FROM Serves s WHERE s.price >= 3");
        // Analyzer-clean submission: the key is absent (byte parity with
        // pre-analyzer reports).
        let resp = svc.handle(&post(
            &format!("/targets/{id}/advise"),
            "{\"sql\": \"SELECT s.bar FROM Serves s WHERE s.price > 3\"}",
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(!resp.body.contains("diagnostics"), "{}", resp.body);
        // Contradictory submission: diagnostics ride along with advice.
        let resp = svc.handle(&post(
            &format!("/targets/{id}/advise"),
            "{\"sql\": \"SELECT s.bar FROM Serves s WHERE s.price > 5 AND s.price < 3\"}",
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"diagnostics\""), "{}", resp.body);
        assert!(resp.body.contains("QH-P01"), "{}", resp.body);
    }

    #[test]
    fn error_statuses_are_stable() {
        let svc = service();
        // Bad JSON → 400.
        assert_eq!(svc.handle(&post("/targets", "{not json")).status, 400);
        // Missing field → 400.
        assert_eq!(svc.handle(&post("/targets", "{\"schema\": \"x\"}")).status, 400);
        // Bad target SQL → 422.
        let resp = svc.handle(&post(
            "/targets",
            &format!("{{\"schema\": \"{}\", \"target\": \"SELEKT nope\"}}",
                     SCHEMA.replace('"', "\\\"")),
        ));
        assert_eq!(resp.status, 422, "{}", resp.body);
        // Unknown target → 404.
        assert_eq!(
            svc.handle(&post("/targets/t99/advise", "{\"sql\": \"SELECT 1\"}")).status,
            404
        );
        // Unknown route → 404; known route, wrong verb → 405.
        assert_eq!(svc.handle(&get("/nope")).status, 404);
        assert_eq!(svc.handle(&get("/targets")).status, 405);
        assert_eq!(svc.handle(&get("/shutdown")).status, 405);
    }

    #[test]
    fn malformed_submission_is_422_not_500() {
        let svc = service();
        let id = register(&svc, "SELECT s.bar FROM Serves s WHERE s.price >= 3");
        let resp = svc.handle(&post(
            &format!("/targets/{id}/advise"),
            "{\"sql\": \"SELEKT nonsense\"}",
        ));
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains("bad_sql"));
    }

    #[test]
    fn grade_batch_reports_per_submission_errors_in_order() {
        let svc = service();
        let id = register(&svc, "SELECT s.bar FROM Serves s WHERE s.price >= 3");
        let resp = svc.handle(&post(
            &format!("/targets/{id}/grade"),
            "{\"submissions\": [\"SELECT s.bar FROM Serves s WHERE s.price >= 3\", \
              \"SELEKT nonsense\"], \"jobs\": 2}",
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"equivalent\":true"), "{}", resp.body);
        assert!(resp.body.contains("parse error"), "{}", resp.body);
    }

    #[test]
    fn draining_refuses_new_work_but_answers_health_and_scrapes() {
        let svc = service();
        assert_eq!(svc.handle(&post("/shutdown", "")).status, 200);
        assert!(svc.is_draining());
        assert_eq!(svc.handle(&post("/targets", "{}")).status, 503);
        let health = svc.handle(&get("/healthz"));
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"draining\":true"));
        // Monitoring keeps watching the drain.
        assert_eq!(svc.handle(&get("/metrics")).status, 200);
        assert_eq!(svc.handle(&get("/version")).status, 200);
    }

    #[test]
    fn version_route_reports_build_identity() {
        let svc = service();
        let resp = svc.handle(&get("/version"));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(resp.content_type, "application/json");
        assert!(resp.body.contains("\"name\":\"qrhint-server\""), "{}", resp.body);
        assert!(
            resp.body.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))),
            "{}",
            resp.body
        );
        assert_eq!(svc.handle(&post("/version", "")).status, 405);
    }

    #[test]
    fn healthz_reports_uptime_seconds_and_in_flight() {
        let svc = service();
        let resp = svc.handle(&get("/healthz"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"uptime_seconds\":"), "{}", resp.body);
        // The health request itself is the one in flight.
        assert!(resp.body.contains("\"in_flight\":1"), "{}", resp.body);
    }

    #[test]
    fn metrics_scrape_is_valid_and_counts_requests() {
        let svc = service();
        let id = register(&svc, "SELECT s.bar FROM Serves s WHERE s.price >= 3");
        let resp = svc.handle(&post(
            &format!("/targets/{id}/advise"),
            "{\"sql\": \"SELECT s.bar FROM Serves s WHERE s.price > 3\"}",
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let scrape = svc.handle(&get("/metrics"));
        assert_eq!(scrape.status, 200);
        assert_eq!(scrape.content_type, "text/plain; version=0.0.4");
        qrhint_obs::expo::validate(&scrape.body).expect("valid exposition");
        assert!(
            scrape.body.contains("qrhint_http_requests_total{route=\"register\",status=\"201\"} 1"),
            "{}",
            scrape.body
        );
        assert!(
            scrape.body.contains("qrhint_http_requests_total{route=\"advise\",status=\"200\"} 1"),
            "{}",
            scrape.body
        );
        assert!(scrape.body.contains("qrhint_registry_targets 1"), "{}", scrape.body);
        // Aggregated session counters reflect the one advise.
        assert!(scrape.body.contains("qrhint_session_advise_calls 1"), "{}", scrape.body);
        // Route templates keep label cardinality bounded: the target id
        // never appears in the exposition.
        assert!(!scrape.body.contains(&id), "target id leaked into labels: {}", scrape.body);
    }

    #[test]
    fn route_template_is_total_and_bounded() {
        assert_eq!(route_template(&["targets"]), "register");
        assert_eq!(route_template(&["targets", "t9", "advise"]), "advise");
        assert_eq!(route_template(&["targets", "t9", "stats"]), "stats");
        assert_eq!(route_template(&["metrics"]), "metrics");
        assert_eq!(route_template(&["not", "a", "route"]), "other");
        assert_eq!(route_template(&[]), "other");
    }

    #[test]
    fn resolve_jobs_zero_uses_available_parallelism() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }
}

//! The daemon shell: TCP accept loop, a scoped connection worker pool
//! (the same `std::thread::scope` infrastructure the parallel grading
//! path is built on), and graceful drain.
//!
//! Life of a connection: the acceptor pushes it onto a bounded queue; a
//! worker pops it and serves requests serially over keep-alive until
//! the client closes, a framing error forces a close, or the server
//! starts draining. `POST /shutdown` flips the service's draining flag;
//! the handling worker then nudges the (blocking) acceptor awake with a
//! loopback connection, the acceptor stops accepting, workers finish
//! the queued connections, and [`Server::run`] returns.

use crate::http::{self, HttpError};
use crate::service::{QrHintService, ServiceConfig};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Everything `qr-hint serve` configures.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` = ephemeral port,
    /// readable back from [`Server::addr`]).
    pub addr: String,
    /// Connection workers (`0` = use available parallelism).
    pub workers: usize,
    pub service: ServiceConfig,
    /// Cap on request bodies.
    pub max_body_bytes: usize,
    /// Per-socket read timeout so a dead client cannot pin a worker.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 0,
            service: ServiceConfig::default(),
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Connection queue shared by the acceptor and the workers.
#[derive(Default)]
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    /// Set once the acceptor has stopped: workers drain and exit.
    closed: AtomicBool,
}

impl ConnQueue {
    fn push(&self, conn: TcpStream) {
        self.queue.lock().unwrap().push_back(conn);
        self.ready.notify_one();
    }

    /// Pop the next connection, blocking; `None` once the queue is
    /// closed *and* empty.
    fn pop(&self) -> Option<TcpStream> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(conn) = queue.pop_front() {
                return Some(conn);
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            queue = self.ready.wait(queue).unwrap();
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

/// A bound-but-not-yet-running grading daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    service: Arc<QrHintService>,
    workers: usize,
    max_body_bytes: usize,
    read_timeout: Duration,
}

impl Server {
    /// Bind the listener (so the caller knows the ephemeral port before
    /// the serve loop starts) and build the service.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = crate::service::resolve_jobs(cfg.workers).max(2);
        Ok(Server {
            listener,
            addr,
            service: Arc::new(QrHintService::new(cfg.service)),
            workers,
            max_body_bytes: cfg.max_body_bytes,
            read_timeout: cfg.read_timeout,
        })
    }

    /// The actually-bound address (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn service(&self) -> &Arc<QrHintService> {
        &self.service
    }

    /// Serve until a `POST /shutdown` drains the daemon. Blocks the
    /// calling thread; run it on a spawned thread to keep a handle
    /// (the integration tests and the classroom example do).
    pub fn run(self) -> io::Result<()> {
        let queue = ConnQueue::default();
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| {
                    while let Some(conn) = queue.pop() {
                        self.serve_connection(conn);
                    }
                });
            }
            // Acceptor (this thread). `accept` blocks, so the drain
            // path nudges it with a loopback connection.
            loop {
                match self.listener.accept() {
                    Ok((conn, _)) => {
                        if self.service.is_draining() {
                            // Likely the nudge itself; either way no new
                            // work is accepted while draining.
                            drop(conn);
                            break;
                        }
                        queue.push(conn);
                    }
                    Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        queue.close();
                        return Err(e);
                    }
                }
            }
            queue.close();
            Ok(())
        })
    }

    /// Serve one connection: requests in series over keep-alive.
    fn serve_connection(&self, conn: TcpStream) {
        let _ = conn.set_read_timeout(Some(self.read_timeout));
        // Keep-alive request/response traffic is many small segments;
        // without TCP_NODELAY the Nagle/delayed-ACK interaction adds
        // ~40 ms to every response.
        let _ = conn.set_nodelay(true);
        let mut writer = match conn.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(conn);
        loop {
            let request = http::read_request(&mut reader, &mut writer, self.max_body_bytes);
            match request {
                Ok(req) => {
                    let was_draining = self.service.is_draining();
                    let resp = self.service.handle(&req);
                    // Keep-alive survives unless the client opted out or
                    // the server is draining after this response.
                    let draining = self.service.is_draining();
                    let keep = req.keep_alive && !draining;
                    let wrote = http::write_response(&mut writer, &resp, keep);
                    if draining && !was_draining {
                        // This request initiated the drain: wake the
                        // blocking acceptor so `run` can return. Must
                        // happen even if the response write failed (a
                        // client may fire /shutdown and hang up without
                        // reading) — otherwise the acceptor blocks
                        // forever on a drained server.
                        let _ = TcpStream::connect(self.addr);
                    }
                    if wrote.is_err() || !keep {
                        return;
                    }
                }
                Err(HttpError::Closed) => return,
                Err(HttpError::Malformed(msg)) => {
                    // Framing is broken — answer, then close (the stream
                    // position is no longer trustworthy).
                    let resp = crate::service::error_response(400, "bad_http", msg);
                    let _ = http::write_response(&mut writer, &resp, false);
                    return;
                }
                Err(HttpError::TooLarge(msg)) => {
                    let resp = crate::service::error_response(413, "too_large", msg);
                    let _ = http::write_response(&mut writer, &resp, false);
                    return;
                }
                Err(HttpError::Io(_)) => return,
            }
        }
    }
}

//! The daemon shell: an event-driven acceptor (readiness-polled
//! multiplexing over the vendored [`polling`] shim), a scoped request
//! worker pool, bounded-overload backpressure, and graceful drain.
//!
//! ## Life of a connection (event-driven mode, the default)
//!
//! One event-loop thread owns the listener and every **idle**
//! connection, registered for readability with the poller. When a
//! connection becomes readable — the client started writing a request —
//! it moves onto a **bounded** dispatch queue; a worker pops it, reads
//! and serves requests until the client pauses (no pipelined bytes
//! left buffered), then hands the connection back to the event loop,
//! which re-arms it. Idle keep-alive connections therefore cost one fd
//! and a poll registration, not a parked thread — the thread-per-
//! connection ceiling this module replaces.
//!
//! ## Backpressure
//!
//! The dispatch queue is bounded by [`ServerConfig::max_pending`].
//! When a readable connection finds the queue full, the server **sheds
//! deterministically** instead of queueing without bound: it answers
//! `429 Too Many Requests` with a `Retry-After` header and closes that
//! connection. Under overload, queueing delay — and with it p99/p999 —
//! stays bounded by `max_pending × per-request cost`; the excess load
//! is visible to clients as 429s and to operators as the
//! `qrhint_http_shed_total` counter.
//!
//! ## Portable fallback
//!
//! Readiness polling needs `poll(2)` (see the `polling` shim). Where
//! that is unavailable — or when an operator passes
//! `--acceptor blocking` — the daemon falls back to the previous
//! architecture: a blocking accept loop feeding the same bounded queue,
//! with each worker pinned to one connection for its whole keep-alive
//! lifetime. The backpressure contract (bounded queue, 429 +
//! `Retry-After` shed) is identical in both modes; only idle-connection
//! cost differs.
//!
//! `POST /shutdown` flips the service's draining flag; the event loop
//! (or, in blocking mode, a loopback nudge to the acceptor) notices,
//! stops accepting, lets workers finish queued connections, and
//! [`Server::run`] returns.

use crate::http::{self, HttpError, Request, Response};
use crate::service::{QrHintService, ServiceConfig};
use polling::{Event, Poller};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What the serving shell needs from a request handler. Implemented by
/// [`QrHintService`] (the grading daemon) and the router's forwarding
/// service, so both share one acceptor, worker pool, backpressure and
/// drain implementation.
pub trait HttpHandler: Send + Sync {
    /// Answer one request. Must be infallible: every failure mode is a
    /// well-formed error [`Response`].
    fn handle(&self, req: &Request) -> Response;

    /// `true` once a shutdown request has been accepted; the shell
    /// stops accepting, finishes queued work, and returns from `run`.
    fn is_draining(&self) -> bool;

    /// One connection was answered `429` by the bounded-queue overload
    /// guard without its request being read.
    fn observe_shed(&self);
}

/// How the daemon waits for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptorMode {
    /// Event-driven if the platform supports readiness polling,
    /// blocking otherwise (the default).
    Auto,
    /// Readiness-polled multiplexing; fails to bind where unsupported.
    Event,
    /// The portable blocking accept loop (thread-per-connection).
    Blocking,
}

impl AcceptorMode {
    /// Parse a CLI argument value.
    pub fn parse(s: &str) -> Option<AcceptorMode> {
        match s {
            "auto" => Some(AcceptorMode::Auto),
            "event" => Some(AcceptorMode::Event),
            "blocking" => Some(AcceptorMode::Blocking),
            _ => None,
        }
    }
}

/// Everything `qr-hint serve` configures.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` = ephemeral port,
    /// readable back from [`Server::addr`]).
    pub addr: String,
    /// Request workers (`0` = use available parallelism).
    pub workers: usize,
    pub service: ServiceConfig,
    /// Cap on request bodies.
    pub max_body_bytes: usize,
    /// Per-socket read timeout so a dead client cannot pin a worker.
    pub read_timeout: Duration,
    /// Bound on connections queued for a worker; a readable connection
    /// beyond it is shed with `429 Too Many Requests` + `Retry-After`.
    pub max_pending: usize,
    pub acceptor: AcceptorMode,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 0,
            service: ServiceConfig::default(),
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(30),
            max_pending: 1024,
            acceptor: AcceptorMode::Auto,
        }
    }
}

/// One keep-alive connection's transport state. The `BufReader` travels
/// with the connection: it may hold bytes of the *next* pipelined
/// request, which the poller cannot see (they already left the socket).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Conn> {
        // Keep-alive request/response traffic is many small segments;
        // without TCP_NODELAY the Nagle/delayed-ACK interaction adds
        // ~40 ms to every response.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Conn { reader: BufReader::new(stream), writer })
    }

    fn fd_source(&self) -> &TcpStream {
        self.reader.get_ref()
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        self.reader.get_ref().set_nonblocking(nb)
    }
}

/// The bounded dispatch queue shared by the acceptor/event loop and the
/// workers. `try_push` refusing is the backpressure signal.
struct BoundedQueue<T> {
    queue: Mutex<VecDeque<T>>,
    capacity: usize,
    ready: Condvar,
    /// Set once no more work will arrive: workers drain and exit.
    closed: AtomicBool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    /// Enqueue unless full or closed; the rejected item comes back so
    /// the caller can shed it.
    fn try_push(&self, item: T) -> Result<(), T> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(item);
        }
        let mut queue = self.queue.lock().unwrap();
        if queue.len() >= self.capacity {
            return Err(item);
        }
        queue.push_back(item);
        drop(queue);
        self.ready.notify_one();
        Ok(())
    }

    /// Pop the next item, blocking; `None` once closed *and* empty.
    fn pop(&self) -> Option<T> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(item) = queue.pop_front() {
                return Some(item);
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            queue = self.ready.wait(queue).unwrap();
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

/// What a worker reports back to the event loop about a dispatched
/// connection.
enum Returned {
    /// Still healthy and keep-alive: re-arm for the next request.
    KeepAlive(usize, Conn),
    /// Closed (client hangup, framing error, opt-out, drain): the event
    /// loop must unregister its poller entry before the fd can be
    /// reused by a new accept.
    Closed(Conn),
}

/// The transport-only half of [`ServerConfig`]: everything the serving
/// shell needs that is not the grading service itself. The router binds
/// its shell with one of these plus its own handler.
#[derive(Debug, Clone)]
pub struct ShellConfig {
    pub addr: String,
    pub workers: usize,
    pub max_body_bytes: usize,
    pub read_timeout: Duration,
    pub max_pending: usize,
    pub acceptor: AcceptorMode,
}

impl Default for ShellConfig {
    fn default() -> ShellConfig {
        let cfg = ServerConfig::default();
        ShellConfig {
            addr: cfg.addr,
            workers: cfg.workers,
            max_body_bytes: cfg.max_body_bytes,
            read_timeout: cfg.read_timeout,
            max_pending: cfg.max_pending,
            acceptor: cfg.acceptor,
        }
    }
}

/// A bound-but-not-yet-running daemon shell around a handler `H` —
/// the grading service by default, the router's forwarding service for
/// `qr-hint route`.
pub struct Server<H = QrHintService> {
    listener: TcpListener,
    addr: SocketAddr,
    service: Arc<H>,
    workers: usize,
    max_body_bytes: usize,
    read_timeout: Duration,
    max_pending: usize,
    acceptor: AcceptorMode,
}

impl Server<QrHintService> {
    /// Bind the listener (so the caller knows the ephemeral port before
    /// the serve loop starts) and build the grading service.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let shell = ShellConfig {
            addr: cfg.addr,
            workers: cfg.workers,
            max_body_bytes: cfg.max_body_bytes,
            read_timeout: cfg.read_timeout,
            max_pending: cfg.max_pending,
            acceptor: cfg.acceptor,
        };
        Server::bind_with(shell, Arc::new(QrHintService::new(cfg.service)))
    }

    pub fn service(&self) -> &Arc<QrHintService> {
        &self.service
    }
}

impl<H: HttpHandler> Server<H> {
    /// Bind the listener around an arbitrary handler.
    pub fn bind_with(shell: ShellConfig, handler: Arc<H>) -> io::Result<Server<H>> {
        let listener = TcpListener::bind(&shell.addr)?;
        let addr = listener.local_addr()?;
        let workers = crate::service::resolve_jobs(shell.workers).max(2);
        Ok(Server {
            listener,
            addr,
            service: handler,
            workers,
            max_body_bytes: shell.max_body_bytes,
            read_timeout: shell.read_timeout,
            max_pending: shell.max_pending.max(1),
            acceptor: shell.acceptor,
        })
    }

    /// The actually-bound address (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn handler(&self) -> &Arc<H> {
        &self.service
    }

    /// Serve until a `POST /shutdown` drains the daemon. Blocks the
    /// calling thread; run it on a spawned thread to keep a handle
    /// (the integration tests and the classroom example do).
    pub fn run(self) -> io::Result<()> {
        match self.acceptor {
            AcceptorMode::Blocking => self.run_blocking(),
            AcceptorMode::Event => {
                let poller = Poller::new()?;
                self.run_event(poller)
            }
            AcceptorMode::Auto => match Poller::new() {
                Ok(poller) => self.run_event(poller),
                // No readiness syscall on this platform: the documented
                // portable fallback.
                Err(e) if e.kind() == io::ErrorKind::Unsupported => self.run_blocking(),
                Err(e) => Err(e),
            },
        }
    }

    // -----------------------------------------------------------------
    // Event-driven acceptor
    // -----------------------------------------------------------------

    fn run_event(self, poller: Poller) -> io::Result<()> {
        const LISTENER_KEY: usize = 0;
        self.listener.set_nonblocking(true)?;
        let poller = Arc::new(poller);
        let queue: BoundedQueue<(usize, Conn)> = BoundedQueue::new(self.max_pending);
        let returned: Mutex<Vec<Returned>> = Mutex::new(Vec::new());
        poller.add(&self.listener, Event::readable(LISTENER_KEY))?;

        let result = std::thread::scope(|scope| {
            let server = &self;
            for _ in 0..server.workers {
                let poller = Arc::clone(&poller);
                let queue = &queue;
                let returned = &returned;
                scope.spawn(move || {
                    while let Some((key, conn)) = queue.pop() {
                        let ret = server.serve_dispatched(key, conn);
                        returned.lock().unwrap().push(ret);
                        // Wake the event loop to re-arm or unregister.
                        let _ = poller.notify();
                    }
                });
            }

            // The event loop (this thread).
            let mut idle: HashMap<usize, Conn> = HashMap::new();
            let mut next_key: usize = 1;
            let mut events: Vec<Event> = Vec::new();
            let loop_result: io::Result<()> = loop {
                if self.service.is_draining() {
                    break Ok(());
                }
                events.clear();
                // The timeout is a liveness backstop (missed wake, exotic
                // platform); all real transitions arrive as events.
                if let Err(e) = poller.wait(&mut events, Some(Duration::from_millis(500))) {
                    break Err(e);
                }

                // Returned connections first: unregister closed fds
                // *before* accepting (fd reuse), re-arm keep-alives.
                for ret in returned.lock().unwrap().drain(..) {
                    match ret {
                        Returned::KeepAlive(key, conn) => {
                            if conn.set_nonblocking(true).is_err() {
                                let _ = poller.delete(conn.fd_source());
                                continue;
                            }
                            if poller.modify(conn.fd_source(), Event::readable(key)).is_ok() {
                                idle.insert(key, conn);
                            }
                        }
                        Returned::Closed(conn) => {
                            let _ = poller.delete(conn.fd_source());
                        }
                    }
                }
                if self.service.is_draining() {
                    break Ok(());
                }

                for event in &events {
                    if event.key == LISTENER_KEY {
                        loop {
                            match self.listener.accept() {
                                Ok((stream, _)) => {
                                    let Ok(conn) = Conn::new(stream) else { continue };
                                    if conn.set_nonblocking(true).is_err() {
                                        continue;
                                    }
                                    let key = next_key;
                                    next_key += 1;
                                    if poller
                                        .add(conn.fd_source(), Event::readable(key))
                                        .is_ok()
                                    {
                                        idle.insert(key, conn);
                                    }
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e)
                                    if matches!(
                                        e.kind(),
                                        io::ErrorKind::ConnectionAborted
                                            | io::ErrorKind::Interrupted
                                    ) =>
                                {
                                    continue
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        // Stay subscribed to new connections (one-shot
                        // interests need explicit re-arming).
                        let _ = poller.modify(&self.listener, Event::readable(LISTENER_KEY));
                        continue;
                    }
                    let Some(conn) = idle.remove(&event.key) else { continue };
                    match queue.try_push((event.key, conn)) {
                        Ok(()) => {}
                        Err((_, conn)) => {
                            // Backpressure: bounded queue is full.
                            self.shed(conn);
                        }
                    }
                }
            };
            let _ = poller.delete(&self.listener);
            // Idle connections carry no in-flight request; drop them.
            for (_, conn) in idle.drain() {
                let _ = poller.delete(conn.fd_source());
            }
            queue.close();
            loop_result
            // Scope end joins the workers, which finish queued conns.
        });
        result
    }

    /// Serve a dispatched (readable) connection: blocking reads from
    /// here on, one request at a time, staying with the connection only
    /// while pipelined bytes are already buffered. Pausing clients go
    /// back to the event loop instead of pinning this worker.
    fn serve_dispatched(&self, key: usize, conn: Conn) -> Returned {
        if conn.set_nonblocking(false).is_err() {
            return Returned::Closed(conn);
        }
        let _ = conn.fd_source().set_read_timeout(Some(self.read_timeout));
        let mut conn = conn;
        loop {
            match self.serve_one(&mut conn) {
                ServeOutcome::Continue => {
                    // More pipelined request bytes already in userspace?
                    // The poller can't see those — keep serving.
                    if conn.reader.buffer().is_empty() {
                        return Returned::KeepAlive(key, conn);
                    }
                }
                ServeOutcome::Close => return Returned::Closed(conn),
            }
        }
    }

    /// Answer one connection with the overload shed: `429` +
    /// `Retry-After`, then close. Called from the event loop with the
    /// request bytes still unread — the connection cannot be reused
    /// (its stream position is mid-request), hence the close.
    fn shed(&self, conn: Conn) {
        self.service.observe_shed();
        let resp = crate::service::error_response(
            429,
            "overloaded",
            "server overloaded: dispatch queue is full; retry later",
        )
        .with_retry_after(1);
        let mut writer = conn.writer;
        // Best effort on a nonblocking socket: the response is ~150
        // bytes into an empty send buffer, so a partial write means the
        // peer is gone anyway.
        let _ = http::write_response(&mut writer, &resp, false);
        // The request was never read: closing with bytes still in the
        // receive queue makes the kernel send RST, which discards the
        // 429 before the peer reads it. Half-close, then drain what
        // already arrived so the close goes out as a clean FIN.
        let _ = writer.shutdown(std::net::Shutdown::Write);
        let mut scratch = [0u8; 1024];
        while let Ok(n) = (&writer).read(&mut scratch) {
            if n == 0 {
                break;
            }
        }
    }

    // -----------------------------------------------------------------
    // Portable blocking fallback
    // -----------------------------------------------------------------

    fn run_blocking(self) -> io::Result<()> {
        let queue: BoundedQueue<Conn> = BoundedQueue::new(self.max_pending);
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| {
                    while let Some(conn) = queue.pop() {
                        self.serve_connection(conn);
                    }
                });
            }
            // Acceptor (this thread). `accept` blocks, so the drain
            // path nudges it with a loopback connection.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.service.is_draining() {
                            // Likely the nudge itself; either way no new
                            // work is accepted while draining.
                            drop(stream);
                            break;
                        }
                        let Ok(conn) = Conn::new(stream) else { continue };
                        if let Err(conn) = queue.try_push(conn) {
                            self.shed(conn);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        queue.close();
                        return Err(e);
                    }
                }
            }
            queue.close();
            Ok(())
        })
    }

    /// Blocking mode: serve one connection, requests in series over
    /// keep-alive, pinned to this worker until it closes.
    fn serve_connection(&self, mut conn: Conn) {
        let _ = conn.fd_source().set_read_timeout(Some(self.read_timeout));
        loop {
            match self.serve_one(&mut conn) {
                ServeOutcome::Continue => {}
                ServeOutcome::Close => return,
            }
        }
    }

    /// Read, dispatch and answer exactly one request. Shared by both
    /// acceptor modes.
    fn serve_one(&self, conn: &mut Conn) -> ServeOutcome {
        let request =
            http::read_request(&mut conn.reader, &mut conn.writer, self.max_body_bytes);
        match request {
            Ok(req) => {
                let was_draining = self.service.is_draining();
                let resp = self.service.handle(&req);
                // Keep-alive survives unless the client opted out or
                // the server is draining after this response.
                let draining = self.service.is_draining();
                let keep = req.keep_alive && !draining;
                let wrote = http::write_response(&mut conn.writer, &resp, keep);
                if draining && !was_draining {
                    // This request initiated the drain: wake the
                    // (possibly blocking) acceptor so `run` can return.
                    // Must happen even if the response write failed (a
                    // client may fire /shutdown and hang up without
                    // reading) — otherwise a blocking acceptor waits
                    // forever on a drained server. In event mode the
                    // worker's return-notify wakes the loop; this nudge
                    // is a harmless extra event.
                    let _ = TcpStream::connect(self.addr);
                }
                if wrote.is_err() || !keep {
                    ServeOutcome::Close
                } else {
                    ServeOutcome::Continue
                }
            }
            Err(HttpError::Closed) => ServeOutcome::Close,
            Err(HttpError::Malformed(msg)) => {
                // Framing is broken — answer, then close (the stream
                // position is no longer trustworthy).
                let resp = crate::service::error_response(400, "bad_http", msg);
                let _ = http::write_response(&mut conn.writer, &resp, false);
                ServeOutcome::Close
            }
            Err(HttpError::TooLarge(msg)) => {
                let resp = crate::service::error_response(413, "too_large", msg);
                let _ = http::write_response(&mut conn.writer, &resp, false);
                ServeOutcome::Close
            }
            Err(HttpError::Io(_)) => ServeOutcome::Close,
        }
    }
}

enum ServeOutcome {
    Continue,
    Close,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_sheds_beyond_capacity() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "third push must be refused");
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "space freed by pop");
        q.close();
        assert_eq!(q.try_push(9), Err(9), "closed queue refuses work");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn acceptor_mode_parses() {
        assert_eq!(AcceptorMode::parse("auto"), Some(AcceptorMode::Auto));
        assert_eq!(AcceptorMode::parse("event"), Some(AcceptorMode::Event));
        assert_eq!(AcceptorMode::parse("blocking"), Some(AcceptorMode::Blocking));
        assert_eq!(AcceptorMode::parse("epoll"), None);
    }
}

//! The resident target registry: compiled [`PreparedTarget`]s held hot
//! across requests, bounded by an entry capacity and a byte budget.
//!
//! Eviction is two-staged, reflecting the two costs a target
//! re-registration would pay:
//!
//! 1. **Shed** ([`qrhint_core::PreparedTarget::shed_caches`]) — when the
//!    registry's *byte budget* is exceeded, the least-recently-used
//!    targets drop their rebuildable caches (advice cache, the shared
//!    interner + verdict cache, solver slots) but keep the compiled
//!    target. The freed bytes include the interner tables, so the
//!    budget arithmetic stays truthful after shedding. The next request
//!    re-pays solver time, not compilation.
//! 2. **Drop** — when the *entry capacity* is exceeded (or shedding
//!    alone cannot satisfy the byte budget), the least-recently-used
//!    target leaves the registry entirely and its id becomes a 404.
//!
//! In-flight requests are never harmed by either stage: handlers hold
//! an `Arc` to the target for the duration of a request, so a dropped
//! target finishes its outstanding work before the memory is freed.

use qrhint_core::PreparedTarget;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bounds for a [`TargetRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Maximum resident targets; the LRU target is dropped beyond this.
    pub max_targets: usize,
    /// Approximate byte budget across every resident target's caches
    /// ([`PreparedTarget::approx_cache_bytes`]); LRU targets are shed,
    /// then dropped, to get back under it. `0` disables the budget
    /// (unlimited) — the per-target advice caches are still bounded by
    /// [`qrhint_core::QrHintConfig::advice_cache_capacity`].
    pub max_cache_bytes: usize,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        RegistryConfig {
            max_targets: 64,
            max_cache_bytes: 256 * 1024 * 1024,
        }
    }
}

/// One registered target: the prepared state plus the front-end options
/// it was compiled under (submissions must be parsed the same way).
pub struct RegisteredTarget {
    pub id: String,
    pub prepared: PreparedTarget,
    pub extended: bool,
    pub rewrite_subqueries: bool,
}

struct Entry {
    target: Arc<RegisteredTarget>,
    /// Recency stamp from the registry clock; larger = fresher.
    last_touch: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<String, Entry>,
}

/// What the budget enforcement did, for logs and the health endpoint.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EvictionReport {
    /// Ids whose caches were shed (targets still registered).
    pub shed: Vec<String>,
    /// Ids dropped from the registry entirely.
    pub dropped: Vec<String>,
}

impl EvictionReport {
    pub fn is_empty(&self) -> bool {
        self.shed.is_empty() && self.dropped.is_empty()
    }
}

/// Registry of hot targets behind one mutex. All operations are O(n)
/// in the (small, capacity-bounded) number of resident targets; the
/// per-request costs that matter — grading — happen outside the lock,
/// against the `Arc` the lookup handed out.
pub struct TargetRegistry {
    cfg: RegistryConfig,
    inner: Mutex<Inner>,
    clock: AtomicU64,
    next_id: AtomicU64,
    registered_total: AtomicU64,
    shed_total: AtomicU64,
    dropped_total: AtomicU64,
}

impl TargetRegistry {
    pub fn new(cfg: RegistryConfig) -> TargetRegistry {
        TargetRegistry {
            cfg,
            inner: Mutex::new(Inner::default()),
            clock: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            registered_total: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            dropped_total: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &RegistryConfig {
        &self.cfg
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Register a compiled target, returning its handle and whatever
    /// eviction the capacity bound forced. The new target is the
    /// freshest entry and is never its own eviction victim.
    pub fn register(
        &self,
        prepared: PreparedTarget,
        extended: bool,
        rewrite_subqueries: bool,
    ) -> (Arc<RegisteredTarget>, EvictionReport) {
        let id = format!("t{}", self.next_id.fetch_add(1, Ordering::Relaxed));
        let target = Arc::new(RegisteredTarget {
            id: id.clone(),
            prepared,
            extended,
            rewrite_subqueries,
        });
        self.registered_total.fetch_add(1, Ordering::Relaxed);
        let mut report = EvictionReport::default();
        {
            let mut inner = self.inner.lock().unwrap();
            inner.map.insert(
                id,
                Entry { target: Arc::clone(&target), last_touch: self.tick() },
            );
            self.drop_over_capacity(&mut inner, &mut report);
        }
        (target, report)
    }

    /// Look up a target by id, refreshing its LRU recency.
    pub fn get(&self, id: &str) -> Option<Arc<RegisteredTarget>> {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.map.get_mut(id)?;
        entry.last_touch = self.tick();
        Some(Arc::clone(&entry.target))
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident ids, LRU-first (diagnostics and tests).
    pub fn ids_lru_first(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut entries: Vec<(&String, u64)> =
            inner.map.iter().map(|(id, e)| (id, e.last_touch)).collect();
        entries.sort_by_key(|(_, touch)| *touch);
        entries.into_iter().map(|(id, _)| id.clone()).collect()
    }

    /// Sum of every resident target's approximate cache bytes.
    pub fn approx_cache_bytes(&self) -> usize {
        let targets: Vec<Arc<RegisteredTarget>> = {
            let inner = self.inner.lock().unwrap();
            inner.map.values().map(|e| Arc::clone(&e.target)).collect()
        };
        // Walk the per-target accounting outside the registry lock —
        // it takes per-target locks of its own.
        targets.iter().map(|t| t.prepared.approx_cache_bytes()).sum()
    }

    /// Every resident target, in no particular order, *without*
    /// touching LRU recency — for metrics aggregation, which must
    /// observe the registry rather than perturb its eviction order.
    pub fn snapshot_targets(&self) -> Vec<Arc<RegisteredTarget>> {
        let inner = self.inner.lock().unwrap();
        inner.map.values().map(|e| Arc::clone(&e.target)).collect()
    }

    /// Lifetime counters: (registered, shed, dropped).
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.registered_total.load(Ordering::Relaxed),
            self.shed_total.load(Ordering::Relaxed),
            self.dropped_total.load(Ordering::Relaxed),
        )
    }

    /// Enforce the byte budget: shed LRU targets' caches until under
    /// budget, and if every target has been shed and the estimate still
    /// exceeds the budget, drop LRU targets (never the freshest one).
    /// Call after cache-growing requests (advise/grade); cheap when
    /// under budget.
    pub fn enforce_byte_budget(&self) -> EvictionReport {
        let mut report = EvictionReport::default();
        if self.cfg.max_cache_bytes == 0 {
            return report;
        }
        let mut total = self.approx_cache_bytes();
        if total <= self.cfg.max_cache_bytes {
            return report;
        }
        for id in self.ids_lru_first() {
            if total <= self.cfg.max_cache_bytes {
                break;
            }
            let Some(target) = self.peek(&id) else { continue };
            let freed = target.prepared.shed_caches();
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            report.shed.push(id);
            total = total.saturating_sub(freed);
        }
        // Shedding zeroes the rebuildable caches; if the recomputed
        // estimate is somehow still over budget (tiny budgets), fall
        // back to dropping LRU targets, keeping at least the freshest.
        total = self.approx_cache_bytes();
        if total > self.cfg.max_cache_bytes {
            let mut inner = self.inner.lock().unwrap();
            while inner.map.len() > 1 {
                let Some(victim) = Self::lru_id(&inner) else { break };
                inner.map.remove(&victim);
                self.dropped_total.fetch_add(1, Ordering::Relaxed);
                report.dropped.push(victim);
                let resident: Vec<Arc<RegisteredTarget>> =
                    inner.map.values().map(|e| Arc::clone(&e.target)).collect();
                drop(inner);
                total = resident.iter().map(|t| t.prepared.approx_cache_bytes()).sum();
                if total <= self.cfg.max_cache_bytes {
                    return report;
                }
                inner = self.inner.lock().unwrap();
            }
        }
        report
    }

    /// Lookup without touching recency (internal to eviction, which
    /// must not promote its own victims).
    fn peek(&self, id: &str) -> Option<Arc<RegisteredTarget>> {
        let inner = self.inner.lock().unwrap();
        inner.map.get(id).map(|e| Arc::clone(&e.target))
    }

    fn lru_id(inner: &Inner) -> Option<String> {
        inner
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_touch)
            .map(|(id, _)| id.clone())
    }

    fn drop_over_capacity(&self, inner: &mut Inner, report: &mut EvictionReport) {
        while inner.map.len() > self.cfg.max_targets.max(1) {
            let Some(victim) = Self::lru_id(inner) else { break };
            inner.map.remove(&victim);
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
            report.dropped.push(victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_core::QrHint;
    use qrhint_sqlast::{Schema, SqlType};

    fn prepared(price: i64) -> PreparedTarget {
        let schema = Schema::new().with_table(
            "Serves",
            &[("bar", SqlType::Str), ("price", SqlType::Int)],
            &["bar"],
        );
        QrHint::new(schema)
            .compile_target(&format!("SELECT s.bar FROM Serves s WHERE s.price >= {price}"))
            .unwrap()
    }

    fn registry(max_targets: usize) -> TargetRegistry {
        TargetRegistry::new(RegistryConfig { max_targets, ..RegistryConfig::default() })
    }

    #[test]
    fn ids_are_unique_and_resolvable() {
        let reg = registry(8);
        let (a, _) = reg.register(prepared(1), false, false);
        let (b, _) = reg.register(prepared(2), false, false);
        assert_ne!(a.id, b.id);
        assert_eq!(reg.get(&a.id).unwrap().id, a.id);
        assert_eq!(reg.len(), 2);
        assert!(reg.get("t999").is_none());
    }

    #[test]
    fn capacity_drops_the_least_recently_used() {
        let reg = registry(2);
        let (a, _) = reg.register(prepared(1), false, false);
        let (b, _) = reg.register(prepared(2), false, false);
        // Touch `a` so `b` is the LRU when the third target arrives.
        reg.get(&a.id).unwrap();
        let (c, report) = reg.register(prepared(3), false, false);
        assert_eq!(report.dropped, vec![b.id.clone()]);
        assert!(reg.get(&b.id).is_none(), "evicted id must 404");
        assert!(reg.get(&a.id).is_some());
        assert!(reg.get(&c.id).is_some());
    }

    #[test]
    fn byte_budget_sheds_caches_before_dropping_targets() {
        let reg = TargetRegistry::new(RegistryConfig {
            max_targets: 8,
            // Below even one target's base footprint once it has graded
            // something, so enforcement must act.
            max_cache_bytes: 1,
        });
        let (a, _) = reg.register(prepared(1), false, false);
        a.prepared
            .advise_sql("SELECT s.bar FROM Serves s WHERE s.price > 1")
            .unwrap();
        assert!(a.prepared.stats().advice_cache_entries > 0);
        let report = reg.enforce_byte_budget();
        assert!(report.shed.contains(&a.id));
        assert_eq!(a.prepared.stats().advice_cache_entries, 0, "caches shed");
        // The freshest (only) target is never dropped.
        assert!(reg.get(&a.id).is_some());
    }

    #[test]
    fn generous_budget_is_a_no_op() {
        let reg = registry(8);
        let (a, _) = reg.register(prepared(1), false, false);
        a.prepared
            .advise_sql("SELECT s.bar FROM Serves s WHERE s.price > 1")
            .unwrap();
        assert!(reg.enforce_byte_budget().is_empty());
        assert!(a.prepared.stats().advice_cache_entries > 0);
    }
}

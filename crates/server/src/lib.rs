//! # qrhint-server
//!
//! The `qr-hint serve` daemon: a long-running grading service that
//! keeps [`qrhint_core::PreparedTarget`]s hot across requests, behind a
//! dependency-free (std-only) HTTP/1.1 JSON API.
//!
//! The paper's deployment story (§1, §10) is one hidden target graded
//! against a stream of student submissions. The CLI pays target
//! compilation on every process start; this subsystem makes the
//! prepared target *resident*: register once, then every
//! advise/grade request rides the session layer's memo state — FROM
//! groups, solver verdict caches, stage memos, and the bounded advice
//! cache — at its hottest.
//!
//! ## API
//!
//! | Route | Effect |
//! |-------|--------|
//! | `POST /targets` | register `{schema, target[, extended, rewrite_subqueries]}` → `201 {id, evicted}` |
//! | `POST /targets/{id}/advise` | one submission `{sql}` → `200` [`qrhint_core::AdviceReport`] |
//! | `POST /targets/{id}/grade` | batch `{submissions[, jobs]}` → `200 {jobs, entries}` (fanned out over [`qrhint_core::parallel::run_indexed`]) |
//! | `GET /targets/{id}/stats` | `200 {id, stats, approx_cache_bytes}` (one coherent [`qrhint_core::SessionStats`] snapshot) |
//! | `GET /metrics` | Prometheus text exposition (also served while draining) |
//! | `GET /version` | `200 {name, version}` |
//! | `GET /healthz` | liveness + registry totals + in-flight count (also served while draining) |
//! | `POST /shutdown` | graceful drain: stop accepting, finish queued work, exit |
//!
//! Advice JSON is **byte-identical** (module canonical re-serialization)
//! to the offline `qr-hint grade --json` path — both surfaces serialize
//! the shared [`qrhint_core::AdviceReport`].
//!
//! ## Architecture
//!
//! * [`http`] — hand-rolled HTTP/1.1 subset (the offline vendor policy
//!   rules out hyper; `Content-Length` framing, keep-alive,
//!   `Expect: 100-continue`). Malformed requests answer `400`/`413`,
//!   never a silent connection drop.
//! * [`metrics`] — [`metrics::ServerMetrics`]: the `/metrics`
//!   instrumentation (per-route counters/histograms, in-flight gauge,
//!   scrape-time registry + session aggregation) on the shared
//!   `qrhint-obs` substrate.
//! * [`registry`] — [`registry::TargetRegistry`]: LRU over
//!   `Arc<RegisteredTarget>` with an entry capacity and a byte budget;
//!   eviction sheds rebuildable caches before dropping targets.
//! * [`service`] — transport-agnostic route dispatch and the JSON wire
//!   shapes; unit-testable without sockets.
//! * [`server`] — event-driven acceptor (readiness-polled
//!   multiplexing over the vendored `polling` shim, with a documented
//!   blocking fallback), scoped request worker pool, bounded dispatch
//!   queue with `429` + `Retry-After` overload shedding, graceful
//!   drain.
//! * [`client`] — the matching minimal blocking client, shared by the
//!   integration tests, the throughput benchmark and the
//!   `serve_classroom` example.
//! * [`pool`] — [`pool::ClientPool`]: keep-alive connection reuse per
//!   backend address, with checkout/hit/miss statistics.
//! * [`router`] — the `qr-hint route` scale-out layer: consistent-hash
//!   placement of targets across backend daemons, health-checked
//!   failover with deterministic re-sharding, pooled forwarding.
//!
//! The crate itself forbids `unsafe`; the one `poll(2)` FFI call lives
//! behind the vendored `polling` shim.

#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod router;
pub mod server;
pub mod service;

pub use client::Client;
pub use metrics::ServerMetrics;
pub use pool::{ClientPool, PoolStats};
pub use registry::{EvictionReport, RegisteredTarget, RegistryConfig, TargetRegistry};
pub use router::{Ring, Router, RouterConfig, RouterService};
pub use server::{AcceptorMode, HttpHandler, Server, ServerConfig, ShellConfig};
pub use service::{resolve_jobs, QrHintService, ServiceConfig};

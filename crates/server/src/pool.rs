//! Keep-alive connection pooling for [`Client`].
//!
//! Before this module, every helper call (`request_once`, the bench
//! harnesses' register probes, the router's would-be forwards) paid a
//! full TCP handshake: connect, one request, drop. The daemon keeps
//! connections alive precisely so callers don't have to do that — the
//! pool is the missing client half of that contract.
//!
//! ## Semantics
//!
//! * One idle list **per backend address**; checkout pops the most
//!   recently parked connection (LIFO — the hottest socket, most likely
//!   still open), falling back to a fresh connect.
//! * After a successful exchange the connection is parked again unless
//!   the response said `Connection: close` (drain, shed, framing
//!   error) or the idle list is at capacity.
//! * **Stale-reuse retry**: a parked keep-alive connection can be
//!   closed by the server at any moment (read timeout, drain, restart).
//!   The failure mode is an I/O error on the *first* byte of the next
//!   exchange. A request that fails on a **reused** connection is
//!   retried exactly once on a **fresh** connection; a failure on a
//!   fresh connection is the caller's error. This keeps the retry safe
//!   even for non-idempotent requests in practice: the daemon reads the
//!   full request before acting, so a connection that dies mid-request
//!   was almost surely already dead when checked out.
//! * [`PoolStats`] counts checkouts, hits, misses, discards and
//!   retries so the soak bench (and `/healthz`-style introspection in
//!   the router) can prove reuse is actually happening.

use crate::client::Client;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default cap on idle parked connections per backend address.
pub const DEFAULT_MAX_IDLE_PER_ADDR: usize = 16;

/// Lifetime counters for one [`ClientPool`]. All monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Connections handed to callers (hits + misses).
    pub checkouts: u64,
    /// Checkouts served from the idle list (no TCP handshake).
    pub hits: u64,
    /// Checkouts that had to open a fresh connection.
    pub misses: u64,
    /// Connections dropped instead of parked (server said close, idle
    /// list full, or the exchange failed).
    pub discarded: u64,
    /// Requests retried on a fresh connection after a stale reused one.
    pub retries: u64,
}

/// A thread-safe keep-alive connection pool keyed by backend address.
pub struct ClientPool {
    idle: Mutex<HashMap<SocketAddr, Vec<Client>>>,
    max_idle_per_addr: usize,
    checkouts: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    discarded: AtomicU64,
    retries: AtomicU64,
}

impl Default for ClientPool {
    fn default() -> ClientPool {
        ClientPool::new()
    }
}

impl ClientPool {
    pub fn new() -> ClientPool {
        ClientPool::with_capacity(DEFAULT_MAX_IDLE_PER_ADDR)
    }

    /// `max_idle_per_addr = 0` disables parking: every request opens a
    /// fresh connection (useful to A/B the pooling win in benches).
    pub fn with_capacity(max_idle_per_addr: usize) -> ClientPool {
        ClientPool {
            idle: Mutex::new(HashMap::new()),
            max_idle_per_addr,
            checkouts: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// Check out a connection to `addr`: pooled if one is parked,
    /// freshly connected otherwise. Returns the client plus whether it
    /// was reused (callers need that to decide retry eligibility).
    pub fn checkout(&self, addr: SocketAddr) -> io::Result<(Client, bool)> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        if let Some(client) = self.idle.lock().unwrap().get_mut(&addr).and_then(Vec::pop) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((client, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((Client::connect(addr)?, false))
    }

    /// Return a connection after use. Parked for the next checkout
    /// unless the server closed it or the idle list is full.
    pub fn check_in(&self, addr: SocketAddr, client: Client) {
        if !client.is_reusable() || self.max_idle_per_addr == 0 {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut idle = self.idle.lock().unwrap();
        let parked = idle.entry(addr).or_default();
        if parked.len() >= self.max_idle_per_addr {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        parked.push(client);
    }

    /// One pooled request/response exchange, with the stale-reuse
    /// retry described in the module docs.
    pub fn request(
        &self,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<(u16, String)> {
        let (mut client, reused) = self.checkout(addr)?;
        match client.request(method, path, body) {
            Ok(resp) => {
                self.check_in(addr, client);
                Ok(resp)
            }
            Err(first_err) => {
                self.discarded.fetch_add(1, Ordering::Relaxed);
                if !reused {
                    return Err(first_err);
                }
                // The parked connection went stale under us; one fresh
                // attempt, reported as the real outcome.
                self.retries.fetch_add(1, Ordering::Relaxed);
                let mut fresh = Client::connect(addr)?;
                let resp = fresh.request(method, path, body)?;
                self.check_in(addr, fresh);
                Ok(resp)
            }
        }
    }

    /// Drop every parked connection for `addr` (the router calls this
    /// when a backend is declared down — its sockets are dead weight).
    pub fn evict_addr(&self, addr: SocketAddr) {
        if let Some(parked) = self.idle.lock().unwrap().remove(&addr) {
            self.discarded.fetch_add(parked.len() as u64, Ordering::Relaxed);
        }
    }

    /// Connections currently parked, across all addresses.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().unwrap().values().map(Vec::len).sum()
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// A micro keep-alive server: answers `n` requests per connection
    /// with an empty 200, then closes. Serial (one conn at a time) —
    /// enough for pool semantics.
    fn tiny_server(requests_per_conn: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                let mut served = 0;
                let mut buf = [0u8; 4096];
                'conn: while served < requests_per_conn {
                    // Read until the blank line; requests in these tests
                    // have no body.
                    let mut head = Vec::new();
                    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                        match stream.read(&mut buf) {
                            Ok(0) | Err(_) => break 'conn,
                            Ok(n) => head.extend_from_slice(&buf[..n]),
                        }
                    }
                    // The pool only parks on absent `Connection: close`,
                    // so signal keep-alive except on the last request.
                    served += 1;
                    let conn =
                        if served == requests_per_conn { "close" } else { "keep-alive" };
                    let resp = format!(
                        "HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: {conn}\r\n\r\n"
                    );
                    if stream.write_all(resp.as_bytes()).is_err() {
                        break;
                    }
                    if head.starts_with(b"GET /stop") {
                        return;
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn pool_reuses_connections() {
        let (addr, server) = tiny_server(100);
        let pool = ClientPool::new();
        for _ in 0..5 {
            let (status, _) = pool.request(addr, "GET", "/x", "").unwrap();
            assert_eq!(status, 200);
        }
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 5);
        assert_eq!(stats.misses, 1, "only the first request should dial: {stats:?}");
        assert_eq!(stats.hits, 4, "{stats:?}");
        assert_eq!(pool.idle_count(), 1);
        pool.request(addr, "GET", "/stop", "").unwrap();
        server.join().unwrap();
    }

    #[test]
    fn connection_close_is_not_parked() {
        // Server closes after every request: nothing must be parked.
        let (addr, server) = tiny_server(1);
        let pool = ClientPool::new();
        for _ in 0..3 {
            let (status, _) = pool.request(addr, "GET", "/x", "").unwrap();
            assert_eq!(status, 200);
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 3, "every request must dial fresh: {stats:?}");
        assert_eq!(pool.idle_count(), 0);
        pool.request(addr, "GET", "/stop", "").unwrap();
        server.join().unwrap();
    }

    #[test]
    fn stale_parked_connection_retries_once() {
        let (addr, server) = tiny_server(100);
        let pool = ClientPool::new();
        pool.request(addr, "GET", "/x", "").unwrap();
        assert_eq!(pool.idle_count(), 1);
        // Kill the server; the parked connection is now stale.
        pool.request(addr, "GET", "/stop", "").unwrap();
        server.join().unwrap();
        // New server on the same port is not guaranteed on all OSes, so
        // prove the retry path differently: the stale checkout must
        // error (no server), consuming the parked conn and counting a
        // retry attempt that also fails to connect.
        let err = pool.request(addr, "GET", "/x", "").unwrap_err();
        let _ = err;
        let stats = pool.stats();
        assert_eq!(stats.retries, 1, "stale reuse must be retried: {stats:?}");
        assert_eq!(pool.idle_count(), 0, "stale conn must not be re-parked");
    }

    #[test]
    fn capacity_zero_disables_parking() {
        let (addr, server) = tiny_server(100);
        let pool = ClientPool::with_capacity(0);
        for _ in 0..3 {
            pool.request(addr, "GET", "/x", "").unwrap();
        }
        assert_eq!(pool.idle_count(), 0);
        assert_eq!(pool.stats().misses, 3);
        pool.request(addr, "GET", "/stop", "").unwrap();
        server.join().unwrap();
    }
}

//! `qr-hint route`: the scale-out layer. One router daemon owns the
//! public address and consistent-hashes **target ids** across N backend
//! `serve` daemons, so adding a process adds capacity — the ceiling
//! ROADMAP item 3 names.
//!
//! ## Topology
//!
//! ```text
//!   clients ──► router ──┬─► backend serve #0   (spawned or joined)
//!                        ├─► backend serve #1
//!                        └─► backend serve #2
//! ```
//!
//! Backends are either **spawned** as child processes (`--spawn N`,
//! each on an ephemeral port) or **joined** (`--backend ADDR`,
//! already-running daemons the router does not own). `POST /shutdown`
//! on the router drains the router itself and the *spawned* children;
//! joined backends are left running.
//!
//! ## Placement and re-sharding
//!
//! Each registration gets a router-global id (`t1`, `t2`, …). Its home
//! backend is chosen on a consistent-hash ring: every backend
//! contributes [`RouterConfig::replicas`] virtual points
//! (`hash(label#replica)`), and a target lands on the first point at or
//! after `hash(id)` whose backend is currently healthy. The walk makes
//! failover **deterministic**: when a backend dies, each of its targets
//! moves to the next healthy backend on the ring (and only *its*
//! targets move — everyone else stays put); when it rejoins, exactly
//! those targets move home again.
//!
//! The router retains every registration body, so re-sharding is
//! re-registration: on a health transition it re-plays the stored body
//! against the new home and rewrites its id mapping. Session caches are
//! rebuilt on the new backend — state the paper's pipeline can always
//! recompute — so failover costs warm-up, not correctness.
//!
//! ## Health and backpressure
//!
//! A background loop probes every backend's `/healthz` each
//! [`RouterConfig::health_interval`]; a forward that fails with an I/O
//! error marks the backend down immediately (no waiting for the next
//! probe) and retries on the re-sharded home. The router's own shell
//! applies the same bounded-queue `429` + `Retry-After` contract as the
//! backends.

use crate::http::{Request, Response};
use crate::pool::ClientPool;
use crate::server::{AcceptorMode, HttpHandler, Server, ShellConfig};
use crate::service::{error_response, route_template};
use qrhint_obs::metrics::default_latency_buckets;
use qrhint_obs::Registry as MetricsRegistry;
use serde::Serialize;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit: tiny, dependency-free, and stable across processes —
/// placement must not change between router restarts with the same
/// backend set (`DefaultHasher` explicitly reserves the right to).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Ring position of a key: FNV-1a plus a full-avalanche finalizer
/// (murmur3's `fmix64`). Raw FNV-1a barely diffuses the last byte into
/// the high bits, so near-identical strings (`addr#0`, `addr#1`, …,
/// `t1`, `t2`, …) land on **adjacent** ring positions — one backend's
/// virtual points would own long contiguous arcs and load would skew
/// badly (measured: 59/17/24% shares for 3 backends × 64 replicas).
pub fn ring_position(bytes: &[u8]) -> u64 {
    let mut h = fnv1a64(bytes);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The ring: each backend contributes `replicas` virtual points so load
/// splits evenly even with few backends.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Build from backend labels (their address strings). Labels — not
    /// indices — are hashed, so joining or losing one backend moves
    /// only that backend's share of targets.
    pub fn new(labels: &[String], replicas: usize) -> Ring {
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(labels.len() * replicas);
        for (idx, label) in labels.iter().enumerate() {
            for r in 0..replicas {
                points.push((ring_position(format!("{label}#{r}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// Place `id`: first point at or after `hash(id)` (wrapping) whose
    /// backend passes `healthy`. `None` iff no backend does.
    pub fn place(&self, id: &str, healthy: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = ring_position(id.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        for i in 0..n {
            let (_, backend) = self.points[(start + i) % n];
            if healthy(backend) {
                return Some(backend);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Everything `qr-hint route` configures.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The router's own bind address.
    pub addr: String,
    /// Already-running backends to join (not owned by the router).
    pub backends: Vec<SocketAddr>,
    /// Backend `serve` children to spawn on ephemeral ports.
    pub spawn: usize,
    /// Binary to spawn backends from; `None` = this executable
    /// (`current_exe`). Tests point it elsewhere or use joined
    /// backends.
    pub spawn_exe: Option<PathBuf>,
    /// Virtual points per backend on the hash ring.
    pub replicas: usize,
    /// `/healthz` probe period (also the failover-recovery bound).
    pub health_interval: Duration,
    /// Router request workers (`0` = available parallelism).
    pub workers: usize,
    /// Bounded dispatch queue; beyond it, `429` + `Retry-After`.
    pub max_pending: usize,
    pub acceptor: AcceptorMode,
    pub read_timeout: Duration,
    pub max_body_bytes: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        let shell = ShellConfig::default();
        RouterConfig {
            addr: "127.0.0.1:7979".into(),
            backends: Vec::new(),
            spawn: 0,
            spawn_exe: None,
            replicas: 64,
            health_interval: Duration::from_millis(250),
            workers: 0,
            max_pending: shell.max_pending,
            acceptor: shell.acceptor,
            read_timeout: shell.read_timeout,
            max_body_bytes: shell.max_body_bytes,
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// The router's `/metrics` surface, on the shared `qrhint-obs`
/// substrate. Backend labels are bounded (one per configured backend),
/// route labels come from the same template vocabulary as the daemon.
struct RouterMetrics {
    registry: MetricsRegistry,
}

impl RouterMetrics {
    fn new() -> RouterMetrics {
        let m = RouterMetrics { registry: MetricsRegistry::new() };
        m.shed_counter();
        m
    }

    fn shed_counter(&self) -> Arc<qrhint_obs::Counter> {
        self.registry.counter(
            "qrhint_router_shed_total",
            "Connections shed with 429 because the router's dispatch queue was full.",
            &[],
        )
    }

    fn set_backend_up(&self, backend: &str, up: bool) {
        self.registry
            .gauge(
                "qrhint_router_backend_up",
                "1 if the backend answered its last health probe, else 0.",
                &[("backend", backend)],
            )
            .set(if up { 1 } else { 0 });
    }

    fn observe_forward(&self, backend: &str, route: &str, status: u16, elapsed: Duration) {
        self.registry
            .counter(
                "qrhint_router_forwarded_total",
                "Requests forwarded, by backend, route template and status code.",
                &[("backend", backend), ("route", route), ("status", &status.to_string())],
            )
            .inc();
        self.registry
            .histogram(
                "qrhint_router_forward_duration_seconds",
                "Forwarded-request latency (router-side), by backend.",
                &[("backend", backend)],
                &default_latency_buckets(),
            )
            .observe_duration(elapsed);
    }

    fn observe_reshards(&self, moved: u64) {
        self.registry
            .counter(
                "qrhint_router_reshards_total",
                "Targets re-registered on a new home after a health transition.",
                &[],
            )
            .add(moved);
    }

    fn render(&self, targets: usize, pool: &ClientPool) -> String {
        self.registry
            .gauge("qrhint_router_targets", "Targets the router is tracking.", &[])
            .set(targets as i64);
        let stats = pool.stats();
        for (name, help, value) in [
            (
                "qrhint_router_pool_checkouts_total",
                "Backend connections handed to forwarders (hits + misses).",
                stats.checkouts,
            ),
            (
                "qrhint_router_pool_hits_total",
                "Forwards served over a reused keep-alive backend connection.",
                stats.hits,
            ),
            (
                "qrhint_router_pool_misses_total",
                "Forwards that had to open a fresh backend connection.",
                stats.misses,
            ),
            (
                "qrhint_router_pool_discarded_total",
                "Backend connections dropped instead of parked.",
                stats.discarded,
            ),
            (
                "qrhint_router_pool_retries_total",
                "Forwards retried on a fresh connection after a stale pooled one.",
                stats.retries,
            ),
        ] {
            self.registry.counter(name, help, &[]).store(value);
        }
        self.registry.render()
    }
}

// ---------------------------------------------------------------------------
// The routing service
// ---------------------------------------------------------------------------

struct BackendState {
    addr: SocketAddr,
    /// The ring label and metric label: the address string.
    label: String,
    healthy: AtomicBool,
    /// Spawned child (owned) vs joined (not ours to shut down).
    spawned: bool,
}

/// One tracked registration.
#[derive(Clone)]
struct TargetEntry {
    /// The original registration body, retained so failover can re-play
    /// it against a new home.
    body: String,
    /// Current home: index into the backend table.
    home: usize,
    /// The id the home backend knows this target by.
    local: String,
}

/// Body of the router's `GET /healthz`.
#[derive(Debug, Serialize)]
struct RouterHealth {
    status: String,
    version: String,
    role: String,
    backends: Vec<BackendHealth>,
    healthy_backends: usize,
    targets: usize,
    uptime_ms: u64,
    overload_shed_total: u64,
    draining: bool,
}

#[derive(Debug, Serialize)]
struct BackendHealth {
    addr: String,
    healthy: bool,
    spawned: bool,
    targets: usize,
}

/// The forwarding handler behind the router's serving shell.
pub struct RouterService {
    backends: Vec<BackendState>,
    ring: Ring,
    pool: ClientPool,
    targets: Mutex<HashMap<String, TargetEntry>>,
    /// Serializes re-shard passes (they do network I/O and rewrite the
    /// target table; two interleaved passes could ping-pong a target).
    reshard_lock: Mutex<()>,
    next_id: AtomicU64,
    draining: AtomicBool,
    metrics: RouterMetrics,
    started: Instant,
    health_interval: Duration,
}

impl RouterService {
    fn new(backends: Vec<BackendState>, replicas: usize, health_interval: Duration) -> RouterService {
        let labels: Vec<String> = backends.iter().map(|b| b.label.clone()).collect();
        let metrics = RouterMetrics::new();
        for b in &backends {
            metrics.set_backend_up(&b.label, b.healthy.load(Ordering::SeqCst));
        }
        RouterService {
            ring: Ring::new(&labels, replicas),
            backends,
            pool: ClientPool::new(),
            targets: Mutex::new(HashMap::new()),
            reshard_lock: Mutex::new(()),
            next_id: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            metrics,
            started: Instant::now(),
            health_interval,
        }
    }

    /// Backend addresses in ring order of declaration (spawned after
    /// joined), with current health.
    pub fn backend_health(&self) -> Vec<(SocketAddr, bool)> {
        self.backends
            .iter()
            .map(|b| (b.addr, b.healthy.load(Ordering::SeqCst)))
            .collect()
    }

    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    fn healthy(&self, idx: usize) -> bool {
        self.backends[idx].healthy.load(Ordering::SeqCst)
    }

    fn place(&self, id: &str) -> Option<usize> {
        self.ring.place(id, |idx| self.healthy(idx))
    }

    /// Mark a backend down right now (probe failure or forward I/O
    /// error); drops its pooled connections. Returns whether this was a
    /// transition.
    fn mark_down(&self, idx: usize) -> bool {
        let was = self.backends[idx].healthy.swap(false, Ordering::SeqCst);
        if was {
            self.metrics.set_backend_up(&self.backends[idx].label, false);
            self.pool.evict_addr(self.backends[idx].addr);
        }
        was
    }

    fn mark_up(&self, idx: usize) -> bool {
        let was = self.backends[idx].healthy.swap(true, Ordering::SeqCst);
        if !was {
            self.metrics.set_backend_up(&self.backends[idx].label, true);
        }
        !was
    }

    /// One health pass over all backends; re-shards if any transition
    /// happened. Called by the router's background loop, and harmless
    /// to call from tests.
    pub fn health_tick(&self) {
        let mut transitions = false;
        for (idx, backend) in self.backends.iter().enumerate() {
            let up = probe_healthz(backend.addr, self.health_interval.max(Duration::from_millis(250)));
            let changed = if up { self.mark_up(idx) } else { self.mark_down(idx) };
            transitions |= changed;
        }
        if transitions {
            self.reshard();
        }
    }

    /// Move every target whose deterministic placement no longer
    /// matches its current home: re-play the stored registration on the
    /// new home, then atomically rewrite the mapping.
    fn reshard(&self) {
        let _pass = self.reshard_lock.lock().unwrap();
        let snapshot: Vec<(String, TargetEntry)> = {
            let targets = self.targets.lock().unwrap();
            targets.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut moved = 0u64;
        for (gid, entry) in snapshot {
            let Some(desired) = self.place(&gid) else { continue };
            if desired == entry.home && self.healthy(entry.home) {
                continue;
            }
            let addr = self.backends[desired].addr;
            match self.pool.request(addr, "POST", "/targets", &entry.body) {
                Ok((201, body)) => {
                    if let Some(local) = extract_id(&body) {
                        let mut targets = self.targets.lock().unwrap();
                        if let Some(e) = targets.get_mut(&gid) {
                            e.home = desired;
                            e.local = local;
                            moved += 1;
                        }
                    }
                }
                Ok(_) => {
                    // The backend refused a body it (or a peer) once
                    // accepted — leave the old mapping; the target will
                    // surface errors to its callers rather than vanish.
                }
                Err(_) => {
                    // New home is unreachable too; the next health tick
                    // (or forward failure) will mark it down and try
                    // the next ring successor.
                }
            }
        }
        if moved > 0 {
            self.metrics.observe_reshards(moved);
        }
    }

    // -- request handling ------------------------------------------------

    fn handle_register(&self, req: &Request) -> Response {
        let Ok(body) = std::str::from_utf8(&req.body) else {
            return error_response(400, "bad_request", "registration body is not UTF-8");
        };
        let gid = format!("t{}", self.next_id.fetch_add(1, Ordering::SeqCst) + 1);
        // Bounded by the backend count: each failed attempt marks a
        // backend down, shrinking the healthy set.
        for _ in 0..=self.backends.len() {
            let Some(home) = self.place(&gid) else {
                return error_response(503, "no_backend", "no healthy backend to place target on");
            };
            let addr = self.backends[home].addr;
            let started = Instant::now();
            match self.pool.request(addr, "POST", "/targets", body) {
                Ok((status, resp_body)) => {
                    self.metrics.observe_forward(
                        &self.backends[home].label,
                        "register",
                        status,
                        started.elapsed(),
                    );
                    if status != 201 {
                        // Bad schema/target: the backend's error is the
                        // user's answer; nothing to track.
                        return Response::new(status, resp_body);
                    }
                    let Some(local) = extract_id(&resp_body) else {
                        return error_response(
                            500,
                            "internal",
                            "backend register response had no id",
                        );
                    };
                    self.targets.lock().unwrap().insert(
                        gid.clone(),
                        TargetEntry { body: body.to_string(), home, local },
                    );
                    return Response::new(
                        201,
                        format!(
                            "{{\"id\":\"{gid}\",\"backend\":\"{}\"}}",
                            self.backends[home].label
                        ),
                    );
                }
                Err(_) => {
                    self.mark_down(home);
                    self.reshard();
                }
            }
        }
        error_response(503, "no_backend", "no healthy backend to place target on")
    }

    /// Forward an advise/grade/lint/stats request for a tracked target,
    /// failing over (mark down → re-shard → retry) on backend I/O
    /// errors. The backend's response body is passed through
    /// **verbatim** — advice JSON stays byte-identical to a direct hit.
    fn forward(&self, req: &Request, gid: &str, tail: &str, route: &'static str) -> Response {
        let Ok(body) = std::str::from_utf8(&req.body) else {
            return error_response(400, "bad_request", "request body is not UTF-8");
        };
        for _ in 0..=self.backends.len() {
            let entry = {
                let targets = self.targets.lock().unwrap();
                let Some(entry) = targets.get(gid) else {
                    return error_response(404, "unknown_target", format!("no target `{gid}`"));
                };
                entry.clone()
            };
            if !self.healthy(entry.home) {
                // Home died since placement; re-shard moves the mapping,
                // then retry with the fresh entry.
                self.reshard();
                continue;
            }
            let addr = self.backends[entry.home].addr;
            let path = if tail.is_empty() {
                format!("/targets/{}", entry.local)
            } else {
                format!("/targets/{}/{tail}", entry.local)
            };
            let started = Instant::now();
            match self.pool.request(addr, &req.method, &path, body) {
                Ok((status, resp_body)) => {
                    self.metrics.observe_forward(
                        &self.backends[entry.home].label,
                        route,
                        status,
                        started.elapsed(),
                    );
                    return Response::new(status, resp_body);
                }
                Err(_) => {
                    self.mark_down(entry.home);
                    self.reshard();
                }
            }
        }
        error_response(503, "no_backend", format!("no healthy backend for `{gid}`"))
    }

    fn handle_health(&self) -> Response {
        let targets = self.targets.lock().unwrap();
        let mut per_backend = vec![0usize; self.backends.len()];
        for entry in targets.values() {
            per_backend[entry.home] += 1;
        }
        let backends: Vec<BackendHealth> = self
            .backends
            .iter()
            .zip(&per_backend)
            .map(|(b, &targets)| BackendHealth {
                addr: b.label.clone(),
                healthy: b.healthy.load(Ordering::SeqCst),
                spawned: b.spawned,
                targets,
            })
            .collect();
        let healthy_backends = backends.iter().filter(|b| b.healthy).count();
        let body = RouterHealth {
            status: if self.is_draining() {
                "draining".into()
            } else if healthy_backends == 0 {
                "degraded".into()
            } else {
                "ok".into()
            },
            version: env!("CARGO_PKG_VERSION").to_string(),
            role: "router".into(),
            backends,
            healthy_backends,
            targets: targets.len(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            overload_shed_total: self.metrics.shed_counter().get(),
            draining: self.is_draining(),
        };
        match serde_json::to_string(&body) {
            Ok(json) => Response::new(200, json),
            Err(e) => error_response(500, "internal", format!("health serialization: {e}")),
        }
    }

    fn handle_metrics(&self) -> Response {
        let targets = self.targets.lock().unwrap().len();
        Response::with_content_type(
            200,
            self.metrics.render(targets, &self.pool),
            "text/plain; version=0.0.4",
        )
    }
}

impl HttpHandler for RouterService {
    fn handle(&self, req: &Request) -> Response {
        let path = req.path.trim_end_matches('/');
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        if self.is_draining() && !matches!(segments.as_slice(), ["healthz"] | ["metrics"] | ["version"]) {
            return error_response(503, "draining", "router is shutting down");
        }
        let route = route_template(segments.as_slice());
        match (req.method.as_str(), segments.as_slice()) {
            ("POST", ["targets"]) => self.handle_register(req),
            ("POST", ["targets", id, tail @ ("advise" | "grade" | "lint")]) => {
                self.forward(req, id, tail, route)
            }
            ("GET", ["targets", id, "stats"]) => self.forward(req, id, "stats", route),
            ("GET", ["healthz"]) => self.handle_health(),
            ("GET", ["metrics"]) => self.handle_metrics(),
            ("GET", ["version"]) => Response::new(
                200,
                format!(
                    "{{\"name\":\"qrhint-router\",\"version\":\"{}\"}}",
                    env!("CARGO_PKG_VERSION")
                ),
            ),
            ("POST", ["shutdown"]) => {
                self.draining.store(true, Ordering::SeqCst);
                Response::new(200, "{\"status\":\"draining\"}".into())
            }
            (_, ["targets"]) | (_, ["targets", _, "advise" | "grade" | "lint" | "stats"])
            | (_, ["healthz"]) | (_, ["metrics"]) | (_, ["version"]) | (_, ["shutdown"]) => {
                error_response(405, "method_not_allowed", format!("{} {}", req.method, req.path))
            }
            _ => error_response(404, "not_found", format!("no route for {}", req.path)),
        }
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn observe_shed(&self) {
        self.metrics.shed_counter().inc();
    }
}

/// Pull `"id":"…"` out of a backend register response without a full
/// deserialize round-trip (the body shape is ours; see `RegisterResponse`).
fn extract_id(body: &str) -> Option<String> {
    match serde_json::from_str::<serde_json::Value>(body).ok()? {
        serde_json::Value::Map(entries) => entries.into_iter().find_map(|(k, v)| match v {
            serde_json::Value::Str(s) if k == "id" => Some(s),
            _ => None,
        }),
        _ => None,
    }
}

/// Probe one backend's `/healthz` with a bounded connect + read budget.
/// Any well-formed `200` counts as up — a draining backend answers 200
/// with `"status":"draining"`, but it still serves its registered
/// targets until drained, and it will disappear (connect refused)
/// moments later anyway.
fn probe_healthz(addr: SocketAddr, budget: Duration) -> bool {
    let Ok(stream) = TcpStream::connect_timeout(&addr, budget) else {
        return false;
    };
    if stream.set_read_timeout(Some(budget)).is_err() || stream.set_nodelay(true).is_err() {
        return false;
    }
    let mut stream = stream;
    let req = "GET /healthz HTTP/1.1\r\nHost: qrhint\r\nConnection: close\r\nContent-Length: 0\r\n\r\n";
    if stream.write_all(req.as_bytes()).is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).is_err() {
        return false;
    }
    // Drain the rest so the backend doesn't see an abortive close.
    let mut sink = Vec::new();
    let _ = reader.read_to_end(&mut sink);
    status_line.split_whitespace().nth(1) == Some("200")
}

// ---------------------------------------------------------------------------
// The router daemon
// ---------------------------------------------------------------------------

/// A bound router: serving shell + forwarding service + health loop +
/// spawned backend children.
pub struct Router {
    server: Server<RouterService>,
    service: Arc<RouterService>,
    children: Vec<Child>,
    health_interval: Duration,
}

impl Router {
    /// Spawn/join backends, verify initial health, bind the shell and
    /// build the service. The health loop starts inside [`Router::run`].
    pub fn start(cfg: RouterConfig) -> io::Result<Router> {
        let mut backends: Vec<BackendState> = cfg
            .backends
            .iter()
            .map(|&addr| BackendState {
                addr,
                label: addr.to_string(),
                healthy: AtomicBool::new(true),
                spawned: false,
            })
            .collect();
        let mut children = Vec::with_capacity(cfg.spawn);
        for _ in 0..cfg.spawn {
            let (child, addr) = spawn_backend(cfg.spawn_exe.as_deref())?;
            backends.push(BackendState {
                addr,
                label: addr.to_string(),
                healthy: AtomicBool::new(true),
                spawned: true,
            });
            children.push(child);
        }
        if backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend (--spawn N or --backend ADDR)",
            ));
        }
        // Initial probe so a typo'd --backend fails fast instead of
        // 503-ing every request until the first health tick.
        for b in &backends {
            let up = probe_healthz(b.addr, Duration::from_secs(2));
            b.healthy.store(up, Ordering::SeqCst);
            if !up && !b.spawned {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("backend {} failed its initial health probe", b.addr),
                ));
            }
        }
        let service = Arc::new(RouterService::new(backends, cfg.replicas, cfg.health_interval));
        let shell = ShellConfig {
            addr: cfg.addr,
            workers: cfg.workers,
            max_body_bytes: cfg.max_body_bytes,
            read_timeout: cfg.read_timeout,
            max_pending: cfg.max_pending,
            acceptor: cfg.acceptor,
        };
        let server = Server::bind_with(shell, Arc::clone(&service))?;
        Ok(Router { server, service, children, health_interval: cfg.health_interval })
    }

    /// The router's bound address (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    pub fn service(&self) -> &Arc<RouterService> {
        &self.service
    }

    /// Backend addresses (joined first, then spawned), for harnesses.
    pub fn backend_addrs(&self) -> Vec<SocketAddr> {
        self.service.backends.iter().map(|b| b.addr).collect()
    }

    /// Serve until drained, then shut down spawned children. Joined
    /// backends are left running — they are not ours.
    pub fn run(self) -> io::Result<()> {
        let Router { server, service, mut children, health_interval } = self;
        let result = std::thread::scope(|scope| {
            let health_service = Arc::clone(&service);
            scope.spawn(move || {
                while !health_service.is_draining() {
                    health_service.health_tick();
                    std::thread::sleep(health_interval);
                }
            });
            server.run()
            // Scope joins the health thread: it exits on its first
            // draining check after `run` returns (run only returns
            // once draining).
        });
        // Drain spawned children; joined backends stay up.
        let spawned_addrs: Vec<SocketAddr> = service
            .backends
            .iter()
            .filter(|b| b.spawned)
            .map(|b| b.addr)
            .collect();
        for addr in spawned_addrs {
            let _ = crate::client::request_once(addr, "POST", "/shutdown", "");
        }
        for child in &mut children {
            let _ = child.wait();
        }
        result
    }
}

/// Spawn one backend `serve` child on an ephemeral port and parse its
/// announce line (`qr-hint serving on http://ADDR`) for the address.
fn spawn_backend(exe: Option<&std::path::Path>) -> io::Result<(Child, SocketAddr)> {
    let exe = match exe {
        Some(p) => p.to_path_buf(),
        None => std::env::current_exe()?,
    };
    let mut child = Command::new(&exe)
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let addr = line
        .rsplit("http://")
        .next()
        .and_then(|s| s.trim().parse::<SocketAddr>().ok());
    let Some(addr) = addr else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("backend announce line not understood: {line:?}"),
        ));
    };
    // Keep the pipe drained so the child can never block on stdout.
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });
    Ok((child, addr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let ring = Ring::new(&labels(3), 64);
        for i in 0..100 {
            let id = format!("t{i}");
            let a = ring.place(&id, |_| true).unwrap();
            let b = ring.place(&id, |_| true).unwrap();
            assert_eq!(a, b, "placement must be a pure function of (ring, id)");
            assert!(a < 3);
        }
    }

    #[test]
    fn placement_spreads_across_backends() {
        let ring = Ring::new(&labels(3), 64);
        let mut counts = [0usize; 3];
        for i in 0..300 {
            counts[ring.place(&format!("t{i}"), |_| true).unwrap()] += 1;
        }
        for (idx, &count) in counts.iter().enumerate() {
            assert!(count > 30, "backend {idx} starved: {counts:?}");
        }
    }

    #[test]
    fn failover_moves_only_the_dead_backends_targets() {
        let ring = Ring::new(&labels(3), 64);
        let ids: Vec<String> = (0..200).map(|i| format!("t{i}")).collect();
        let before: Vec<usize> =
            ids.iter().map(|id| ring.place(id, |_| true).unwrap()).collect();
        let dead = 1usize;
        let after: Vec<usize> =
            ids.iter().map(|id| ring.place(id, |b| b != dead).unwrap()).collect();
        for ((id, &b), &a) in ids.iter().zip(&before).zip(&after) {
            if b == dead {
                assert_ne!(a, dead, "{id} must leave the dead backend");
            } else {
                assert_eq!(a, b, "{id} must not move: its home {b} is still healthy");
            }
        }
        // And rejoining restores the original placement exactly.
        let rejoined: Vec<usize> =
            ids.iter().map(|id| ring.place(id, |_| true).unwrap()).collect();
        assert_eq!(rejoined, before);
    }

    #[test]
    fn empty_ring_places_nothing() {
        let ring = Ring::new(&[], 64);
        assert_eq!(ring.place("t1", |_| true), None);
        let ring = Ring::new(&labels(2), 64);
        assert_eq!(ring.place("t1", |_| false), None, "no healthy backend");
    }

    #[test]
    fn extract_id_reads_register_response() {
        assert_eq!(extract_id("{\"id\":\"t7\",\"evicted\":[]}"), Some("t7".into()));
        assert_eq!(extract_id("{\"evicted\":[]}"), None);
        assert_eq!(extract_id("not json"), None);
    }
}

//! A minimal blocking HTTP/1.1 client for the daemon's API: one
//! keep-alive connection, serial request/response.
//!
//! This is the client half of the [`crate::http`] subset, shared by the
//! integration tests, the throughput benchmark and the
//! `serve_classroom` example so they exercise the daemon the way a real
//! grader script would — over actual sockets — without three copies of
//! response framing. It is deliberately tiny; anything beyond
//! JSON-over-`Content-Length` (redirects, TLS, chunked bodies) is out
//! of scope.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One keep-alive connection to a qr-hint daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Whether the last response left the connection reusable (the
    /// server did not answer `Connection: close`). Pools check this
    /// before parking the connection for the next checkout.
    reusable: bool,
}

impl Client {
    /// Connect with a read timeout (so a wedged server cannot hang the
    /// caller forever) and `TCP_NODELAY` (the request/response segments
    /// are small; Nagle + delayed ACK would add ~40 ms per round trip).
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, reusable: true })
    }

    /// Whether the connection survived the last exchange: `false` once
    /// a response carried `Connection: close` (drain, shed, framing
    /// error), after which the next request would hit a dead socket.
    pub fn is_reusable(&self) -> bool {
        self.reusable
    }

    /// Send one request, read one response; returns (status, body).
    /// The connection stays open for the next call.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let mut wire = format!(
            "{method} {path} HTTP/1.1\r\nHost: qrhint\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        wire.push_str(body);
        self.writer.write_all(wire.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line: {status_line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let lower = line.to_ascii_lowercase();
            if let Some(v) = lower.strip_prefix("content-length:") {
                content_length =
                    v.trim().parse().map_err(|_| bad(&format!("bad Content-Length: {v}")))?;
            } else if let Some(v) = lower.strip_prefix("connection:") {
                self.reusable = !v.trim().eq_ignore_ascii_case("close");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|body| (status, body))
            .map_err(|_| bad("response body is not UTF-8"))
    }
}

/// One request on a fresh connection (register, health probes, …).
pub fn request_once(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    Client::connect(addr)?.request(method, path, body)
}

//! A hand-rolled, std-only HTTP/1.1 subset: exactly what the grading
//! daemon needs and nothing more.
//!
//! The offline vendor policy rules out hyper/axum, and the protocol
//! surface here is tiny — JSON request bodies framed by
//! `Content-Length`, JSON responses, keep-alive connections. Malformed
//! input never tears the connection down silently: framing-level
//! problems produce a `400` response before the connection closes, so
//! clients always see *why*.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! keep-alive (HTTP/1.1 default) and `Connection: close`,
//! `Expect: 100-continue` (curl sends it for bodies over 1 KiB).
//! Deliberately unsupported: chunked transfer encoding, trailers,
//! pipelining beyond serial keep-alive — all answered with a clear
//! `400`/`413` rather than undefined behavior.

use std::io::{self, BufRead, Write};

/// Hard cap on the request line + headers, defensive against a client
/// streaming garbage forever.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on request bodies (a whole classroom batch of SQL fits
/// in well under a megabyte; 8 MiB leaves room for pathological
/// corpora without letting one request exhaust the process).
pub const DEFAULT_MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path as sent (no query-string splitting — the API uses none).
    pub path: String,
    /// Header names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("request body is not valid UTF-8".into()))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Clean end-of-stream before the first byte of a request: the
    /// keep-alive peer hung up, which is not an error.
    Closed,
    /// Protocol violation — answer 400 and close.
    Malformed(String),
    /// Head or body over the configured limit — answer 413 and close.
    TooLarge(String),
    /// Underlying socket error (timeout, reset); close silently.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Read one line (LF-terminated), bounded by what remains of
/// `head_budget`. Returns the line without its CRLF.
fn read_line(r: &mut impl BufRead, head_budget: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::Malformed("connection closed mid-line".into()));
            }
            _ => {
                if *head_budget == 0 {
                    return Err(HttpError::TooLarge(format!(
                        "request head exceeds {MAX_HEAD_BYTES} bytes"
                    )));
                }
                *head_budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()));
                }
                line.push(byte[0]);
            }
        }
    }
}

/// Read one request from `reader`. `writer` is needed for the
/// `Expect: 100-continue` interim response, which must be sent between
/// the head and the body.
pub fn read_request(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    max_body_bytes: usize,
) -> Result<Request, HttpError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = read_line(reader, &mut head_budget)?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v.to_string()),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line: `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("unsupported version `{version}`")));
    }
    if !path.starts_with('/') {
        return Err(HttpError::Malformed(format!("bad request path `{path}`")));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut head_budget) {
            Ok(line) => line,
            // EOF inside the head is a framing error, not a clean close.
            Err(HttpError::Closed) => {
                return Err(HttpError::Malformed("connection closed mid-head".into()))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line: `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(HttpError::Malformed(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }
    let content_length = match find("content-length") {
        None => 0,
        Some(v) => v.trim().parse::<usize>().map_err(|_| {
            HttpError::Malformed(format!("bad Content-Length `{v}`"))
        })?,
    };
    if content_length > max_body_bytes {
        return Err(HttpError::TooLarge(format!(
            "request body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"
        )));
    }

    // Default connection semantics per version, overridable by header.
    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };

    if find("expect").is_some_and(|v| v.eq_ignore_ascii_case("100-continue")) {
        writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        writer.flush()?;
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::Malformed("connection closed mid-body".into())
        } else {
            HttpError::Io(e)
        }
    })?;

    Ok(Request { method, path, headers, body, keep_alive })
}

/// One response ready for the wire. Bodies default to JSON; the
/// `/metrics` exposition overrides the content type.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub content_type: &'static str,
    /// `Retry-After` header in whole seconds — set on `429` overload
    /// sheds so well-behaved clients back off instead of hammering.
    pub retry_after: Option<u32>,
}

impl Response {
    pub fn new(status: u16, body: String) -> Response {
        Response { status, body, content_type: "application/json", retry_after: None }
    }

    /// A response with an explicit content type (e.g. the Prometheus
    /// text exposition, `text/plain; version=0.0.4`).
    pub fn with_content_type(
        status: u16,
        body: String,
        content_type: &'static str,
    ) -> Response {
        Response { status, body, content_type, retry_after: None }
    }

    /// Attach a `Retry-After` hint (the backpressure contract: every
    /// `429` carries one).
    pub fn with_retry_after(mut self, seconds: u32) -> Response {
        self.retry_after = Some(seconds);
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize a response to the wire. `keep_alive` controls the
/// `Connection` header; the caller owns actually closing the stream.
pub fn write_response(
    w: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    // One buffer, one write: head and body split across two small TCP
    // segments triggers the Nagle/delayed-ACK interaction (~40 ms
    // stalls per request on loopback keep-alive connections).
    let mut wire = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(seconds) = resp.retry_after {
        use std::fmt::Write as _;
        let _ = write!(wire, "Retry-After: {seconds}\r\n");
    }
    wire.push_str("\r\n");
    wire.push_str(&resp.body);
    w.write_all(wire.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        let mut sink = Vec::new();
        read_request(&mut Cursor::new(raw.as_bytes()), &mut sink, DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /targets HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/targets");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_is_honored() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn garbage_request_line_is_malformed_not_a_panic() {
        assert!(matches!(parse("NOT AN HTTP LINE\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse("GET\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET /x HTTP/9.9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn eof_before_any_bytes_is_a_clean_close() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
    }

    #[test]
    fn truncated_body_is_malformed() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let mut sink = Vec::new();
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        let err = read_request(&mut Cursor::new(raw.as_bytes()), &mut sink, 100);
        assert!(matches!(err, Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn expect_100_continue_gets_the_interim_response() {
        let mut sink = Vec::new();
        let raw = "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nhi";
        let req =
            read_request(&mut Cursor::new(raw.as_bytes()), &mut sink, DEFAULT_MAX_BODY_BYTES)
                .unwrap();
        assert_eq!(req.body, b"hi");
        assert_eq!(sink, b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    #[test]
    fn shed_response_carries_retry_after() {
        let mut out = Vec::new();
        let resp = Response::new(429, "{\"kind\":\"overloaded\"}".into()).with_retry_after(1);
        write_response(&mut out, &resp, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"kind\":\"overloaded\"}"), "{text}");
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::new(200, "{}".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}

//! The daemon's metrics surface: HTTP-layer instrumentation plus the
//! scrape-time aggregation behind `GET /metrics`.
//!
//! Two kinds of series share one [`qrhint_obs::Registry`]:
//!
//! * **Streamed** — bumped on every request by
//!   [`ServerMetrics::observe_request`]: per-(route, status) request
//!   counts, per-route latency histograms, request/response byte
//!   totals, and the in-flight gauge.
//! * **Mirrored** — copied in by [`ServerMetrics::render`] at scrape
//!   time from state that already has an owner: target-registry
//!   lifetime totals (monotone, so counters) and occupancy, plus every
//!   resident target's [`SessionStats`] summed across the registry.
//!   The per-target sums are exposed as **gauges**, not counters: a
//!   target eviction removes its contribution, so the sum across
//!   *resident* targets can legally go down.
//!
//! Routes are labeled by template (`/targets/{id}/advise` → `advise`),
//! never by raw path — per-id label sets would make series cardinality
//! grow with registration traffic.

use crate::registry::TargetRegistry;
use qrhint_core::SessionStats;
use qrhint_obs::metrics::default_latency_buckets;
use qrhint_obs::Registry as MetricsRegistry;
use std::time::Duration;

/// Per-process server metrics; owned by the service, one per daemon.
pub struct ServerMetrics {
    registry: MetricsRegistry,
}

impl Default for ServerMetrics {
    fn default() -> ServerMetrics {
        ServerMetrics::new()
    }
}

/// The aggregated-session gauge catalogue: one row per
/// [`SessionStats`] field, summed over resident targets. Kept as a
/// table so `render` and the README catalogue can't drift silently —
/// the e2e test asserts every name here appears in a scrape.
pub const SESSION_GAUGES: &[(&str, &str)] = &[
    ("qrhint_session_advise_calls", "Advise calls answered, summed over resident targets."),
    ("qrhint_session_advice_cache_hits", "Whole-advice cache hits, summed over resident targets."),
    ("qrhint_session_advice_cache_misses", "Whole-advice cache misses, summed over resident targets."),
    ("qrhint_session_advice_cache_evictions", "Advice-cache LRU evictions, summed over resident targets."),
    ("qrhint_session_advice_cache_entries", "Resident advice-cache entries, summed over resident targets."),
    ("qrhint_session_advice_cache_bytes", "Approximate advice-cache bytes, summed over resident targets."),
    ("qrhint_session_from_groups", "Distinct FROM groups, summed over resident targets."),
    ("qrhint_session_mapping_reuses", "Advises reusing an existing FROM group, summed over resident targets."),
    ("qrhint_session_solver_calls", "Solver checks issued, summed over resident targets."),
    ("qrhint_session_solver_calls_skipped", "Checks answered by the interval prescreen, summed over resident targets."),
    ("qrhint_session_stages_short_circuited", "Stage checks short-circuited by the prescreen, summed over resident targets."),
    ("qrhint_session_diagnostics_emitted", "Analyzer diagnostics emitted, summed over resident targets."),
    ("qrhint_session_verdict_cache_hits", "Shared verdict-cache hits, summed over resident targets."),
    ("qrhint_session_verdict_cache_cross_thread_hits", "Verdict hits paid for by another oracle slot, summed over resident targets."),
    ("qrhint_session_verdict_cache_misses", "Shared verdict-cache misses, summed over resident targets."),
    ("qrhint_session_verdict_cache_evictions", "Verdict-cache byte-budget evictions, summed over resident targets."),
    ("qrhint_session_verdict_cache_entries", "Resident shared-verdict entries, summed over resident targets."),
    ("qrhint_session_verdict_cache_bytes", "Approximate shared-verdict bytes, summed over resident targets."),
    ("qrhint_session_interned_terms", "Distinct interned term nodes, summed over resident targets."),
    ("qrhint_session_interned_formulas", "Distinct interned formula nodes, summed over resident targets."),
    ("qrhint_session_interner_dedup_hits", "Interner hash-consing hits, summed over resident targets."),
    ("qrhint_session_interner_bytes", "Approximate interner bytes, summed over resident targets."),
    ("qrhint_session_theory_pushes", "Incremental theory-stack literal pushes, summed over resident targets."),
    ("qrhint_session_theory_full_checks", "Full theory checks, summed over resident targets."),
    ("qrhint_session_quick_conflicts", "Branches cut by the quick-conflict detector, summed over resident targets."),
    ("qrhint_session_equiv_batches", "Shared-prefix candidate batches, summed over resident targets."),
    ("qrhint_session_equiv_batch_candidates", "Candidate checks routed through batches, summed over resident targets."),
    ("qrhint_session_lowering_memo_hits", "Lowering-memo tree hits, summed over resident targets."),
    ("qrhint_session_lowering_memo_misses", "Lowering-memo tree misses, summed over resident targets."),
    ("qrhint_session_lowering_memo_entries", "Resident memoized trees, summed over resident targets."),
    ("qrhint_session_lowering_memo_bytes", "Approximate lowering-memo bytes, summed over resident targets."),
];

/// Field-order projection of [`SessionStats`] matching
/// [`SESSION_GAUGES`] row for row.
fn session_values(s: &SessionStats) -> [u64; 31] {
    [
        s.advise_calls,
        s.advice_cache_hits,
        s.advice_cache_misses,
        s.advice_cache_evictions,
        s.advice_cache_entries,
        s.advice_cache_bytes,
        s.from_groups,
        s.mapping_reuses,
        s.solver_calls,
        s.solver_calls_skipped,
        s.stages_short_circuited,
        s.diagnostics_emitted,
        s.verdict_cache_hits,
        s.verdict_cache_cross_thread_hits,
        s.verdict_cache_misses,
        s.verdict_cache_evictions,
        s.verdict_cache_entries,
        s.verdict_cache_bytes,
        s.interned_terms,
        s.interned_formulas,
        s.interner_dedup_hits,
        s.interner_bytes,
        s.theory_pushes,
        s.theory_full_checks,
        s.quick_conflicts,
        s.equiv_batches,
        s.equiv_batch_candidates,
        s.lowering_memo_hits,
        s.lowering_memo_misses,
        s.lowering_memo_entries,
        s.lowering_memo_bytes,
    ]
}

impl ServerMetrics {
    pub fn new() -> ServerMetrics {
        let metrics = ServerMetrics { registry: MetricsRegistry::new() };
        // Pre-register the in-flight gauge and shed counter so a scrape
        // before the first request (or first overload) still shows the
        // families.
        metrics.in_flight_gauge();
        metrics.shed_counter();
        metrics
    }

    fn in_flight_gauge(&self) -> std::sync::Arc<qrhint_obs::Gauge> {
        self.registry.gauge(
            "qrhint_http_requests_in_flight",
            "Requests currently being handled.",
            &[],
        )
    }

    /// Mark a request as started; pair with [`ServerMetrics::observe_request`].
    pub fn begin_request(&self) {
        self.in_flight_gauge().inc();
    }

    /// Requests currently in flight (for `/healthz`).
    pub fn in_flight(&self) -> i64 {
        self.in_flight_gauge().get()
    }

    fn shed_counter(&self) -> std::sync::Arc<qrhint_obs::Counter> {
        self.registry.counter(
            "qrhint_http_shed_total",
            "Connections shed with 429 because the bounded dispatch queue was full.",
            &[],
        )
    }

    /// Record one overload shed (429 before the request was even read).
    /// Distinct from `qrhint_registry_shed_total`, which is cache
    /// shedding inside the target registry.
    pub fn observe_shed(&self) {
        self.shed_counter().inc();
    }

    /// Lifetime overload sheds (for `/healthz`).
    pub fn shed_total(&self) -> u64 {
        self.shed_counter().get()
    }

    /// Record one finished request: count, latency, bytes, in-flight
    /// decrement. `route` must be a route template, never a raw path.
    pub fn observe_request(
        &self,
        route: &str,
        status: u16,
        elapsed: Duration,
        bytes_in: usize,
        bytes_out: usize,
    ) {
        self.registry
            .counter(
                "qrhint_http_requests_total",
                "Requests served, by route template and status code.",
                &[("route", route), ("status", &status.to_string())],
            )
            .inc();
        self.registry
            .histogram(
                "qrhint_http_request_duration_seconds",
                "Wall-clock request latency, by route template.",
                &[("route", route)],
                &default_latency_buckets(),
            )
            .observe_duration(elapsed);
        self.registry
            .counter(
                "qrhint_http_request_bytes_total",
                "Request body bytes received, by route template.",
                &[("route", route)],
            )
            .add(bytes_in as u64);
        self.registry
            .counter(
                "qrhint_http_response_bytes_total",
                "Response body bytes sent, by route template.",
                &[("route", route)],
            )
            .add(bytes_out as u64);
        self.in_flight_gauge().dec();
    }

    /// Render the full exposition: mirror the target registry's state
    /// into the metrics registry, then render everything.
    pub fn render(&self, targets: &TargetRegistry) -> String {
        let (registered, shed, dropped) = targets.totals();
        self.registry
            .counter(
                "qrhint_registry_registered_total",
                "Targets registered over the process lifetime.",
                &[],
            )
            .store(registered);
        self.registry
            .counter(
                "qrhint_registry_shed_total",
                "Cache sheds forced by the registry byte budget (lifetime).",
                &[],
            )
            .store(shed);
        self.registry
            .counter(
                "qrhint_registry_dropped_total",
                "Targets dropped by capacity or byte budget (lifetime).",
                &[],
            )
            .store(dropped);
        let resident = targets.snapshot_targets();
        self.registry
            .gauge("qrhint_registry_targets", "Targets resident right now.", &[])
            .set(resident.len() as i64);
        // Sum per-target session stats outside any registry lock (each
        // `stats()` takes per-target locks of its own), then mirror.
        let mut bytes = 0u64;
        let mut sums = [0u64; 31];
        for target in &resident {
            bytes += target.prepared.approx_cache_bytes() as u64;
            for (acc, v) in sums.iter_mut().zip(session_values(&target.prepared.stats())) {
                *acc += v;
            }
        }
        self.registry
            .gauge(
                "qrhint_registry_cache_bytes",
                "Approximate cache bytes across resident targets.",
                &[],
            )
            .set(bytes.min(i64::MAX as u64) as i64);
        for ((name, help), value) in SESSION_GAUGES.iter().zip(sums) {
            self.registry.gauge(name, help, &[]).set(value.min(i64::MAX as u64) as i64);
        }
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;

    #[test]
    fn session_gauge_catalogue_matches_projection_len() {
        assert_eq!(SESSION_GAUGES.len(), session_values(&SessionStats::default()).len());
    }

    #[test]
    fn empty_registry_renders_valid_exposition() {
        let m = ServerMetrics::new();
        let targets = TargetRegistry::new(RegistryConfig::default());
        let text = m.render(&targets);
        let summary = qrhint_obs::expo::validate(&text).expect("valid exposition");
        assert!(summary.samples > 0);
        assert!(text.contains("qrhint_http_requests_in_flight 0"), "{text}");
        assert!(text.contains("qrhint_registry_targets 0"), "{text}");
        assert!(text.contains("qrhint_session_solver_calls 0"), "{text}");
    }

    #[test]
    fn observe_request_populates_all_http_families() {
        let m = ServerMetrics::new();
        m.begin_request();
        assert_eq!(m.in_flight(), 1);
        m.observe_request("advise", 200, Duration::from_millis(3), 120, 450);
        assert_eq!(m.in_flight(), 0);
        let targets = TargetRegistry::new(RegistryConfig::default());
        let text = m.render(&targets);
        qrhint_obs::expo::validate(&text).expect("valid exposition");
        assert!(
            text.contains("qrhint_http_requests_total{route=\"advise\",status=\"200\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("qrhint_http_request_duration_seconds_count{route=\"advise\"} 1"),
            "{text}"
        );
        assert!(text.contains("qrhint_http_request_bytes_total{route=\"advise\"} 120"), "{text}");
        assert!(text.contains("qrhint_http_response_bytes_total{route=\"advise\"} 450"), "{text}");
    }
}

//! The solver oracle: lowers SQL predicates and expressions into the SMT
//! fragment and exposes the paper's three primitives (`IsSatisfiable`,
//! `IsUnSatisfiable`, `IsEquiv`) at the AST level.
//!
//! The oracle owns the variable pool, so the same column reference always
//! lowers to the same solver variable — transitivity of equality across
//! clauses (the Example-1 inference) falls out automatically.
//!
//! ## Aggregate lowering (§7, Appendix E)
//!
//! Instead of Z3 arrays with universally quantified axioms, aggregate
//! terms are canonicalized during lowering, which keeps the fragment
//! decidable while covering the same inference rules:
//!
//! * `SUM(Σ cᵢ·xᵢ + c₀)` → `Σ cᵢ·SUM(xᵢ) + c₀·COUNT(*)` (linearity of SUM
//!   over a group with no NULLs);
//! * `COUNT(e)` → `COUNT(*)` (no NULLs);
//! * `MIN/MAX(c·x + d)` → `c·MIN/MAX(x) + d`, flipping MIN↔MAX for `c<0`;
//! * aggregates over *grouped* columns collapse to the scalar column
//!   variable (`MIN(x) = MAX(x) = AVG(x) = x` when `x` is group-constant);
//! * everything else becomes an opaque aggregate variable, deduplicated by
//!   canonical argument.
//!
//! [`Oracle::aggregate_axioms`] then emits the sound facts relating these
//! variables (`COUNT(*) ≥ 1`, `MIN ≤ AVG ≤ MAX`, WHERE-implied per-row
//! bounds lifted to MIN/MAX/AVG/SUM, `COUNT(DISTINCT e) ≤ COUNT(*)`).
//! `AVG` is floor semantics (see `qrhint-engine`), for which
//! `MIN ≤ AVG ≤ MAX` is exact; the paper's constant-distribution rule for
//! AVG is deliberately dropped because it is unsound under integer
//! division.

use qrhint_smt::{Atom, Formula, Rel, Solver, Sort, Term, TriBool, VarId, VarPool};
use qrhint_sqlast::{
    AggArg, AggCall, AggFunc, ArithOp, CmpOp, ColRef, Pred, Query, Scalar, Schema, SqlType,
};
use std::collections::{BTreeMap, BTreeSet};

/// Column typing environment.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    map: BTreeMap<ColRef, SqlType>,
}

impl TypeEnv {
    /// Build from resolved queries against a schema: every alias.column of
    /// every FROM table is typed.
    pub fn from_queries(schema: &Schema, queries: &[&Query]) -> TypeEnv {
        let mut map = BTreeMap::new();
        for q in queries {
            for tref in &q.from {
                if let Some(ts) = schema.table(&tref.table) {
                    for col in &ts.columns {
                        map.insert(ColRef::new(&tref.alias, &col.name), col.ty);
                    }
                }
            }
        }
        TypeEnv { map }
    }

    /// Infer column types from predicate usage (for standalone-predicate
    /// experiments): columns compared with string literals or used in LIKE
    /// are strings; everything else defaults to Int.
    pub fn infer_from_preds(preds: &[&Pred]) -> TypeEnv {
        let mut map: BTreeMap<ColRef, SqlType> = BTreeMap::new();
        fn scan_cmp(l: &Scalar, r: &Scalar, map: &mut BTreeMap<ColRef, SqlType>) {
            let is_strlit =
                |e: &Scalar| matches!(e, Scalar::Str(_));
            if is_strlit(r) {
                if let Scalar::Col(c) = l {
                    map.insert(c.clone(), SqlType::Str);
                }
            }
            if is_strlit(l) {
                if let Scalar::Col(c) = r {
                    map.insert(c.clone(), SqlType::Str);
                }
            }
        }
        fn scan(p: &Pred, map: &mut BTreeMap<ColRef, SqlType>) {
            match p {
                Pred::Cmp(l, _, r) => scan_cmp(l, r, map),
                Pred::Like { expr: Scalar::Col(c), .. } => {
                    map.insert(c.clone(), SqlType::Str);
                }
                Pred::And(cs) | Pred::Or(cs) => cs.iter().for_each(|c| scan(c, map)),
                Pred::Not(c) => scan(c, map),
                _ => {}
            }
        }
        for p in preds {
            scan(p, &mut map);
        }
        // Propagate string-ness through column-column equality atoms.
        for _ in 0..3 {
            let mut additions: Vec<ColRef> = Vec::new();
            fn scan_eq(p: &Pred, map: &BTreeMap<ColRef, SqlType>, add: &mut Vec<ColRef>) {
                match p {
                    Pred::Cmp(Scalar::Col(a), _, Scalar::Col(b)) => {
                        if map.get(a) == Some(&SqlType::Str) && !map.contains_key(b) {
                            add.push(b.clone());
                        }
                        if map.get(b) == Some(&SqlType::Str) && !map.contains_key(a) {
                            add.push(a.clone());
                        }
                    }
                    Pred::And(cs) | Pred::Or(cs) => {
                        cs.iter().for_each(|c| scan_eq(c, map, add))
                    }
                    Pred::Not(c) => scan_eq(c, map, add),
                    _ => {}
                }
            }
            for p in preds {
                scan_eq(p, &map, &mut additions);
            }
            if additions.is_empty() {
                break;
            }
            for c in additions {
                map.insert(c, SqlType::Str);
            }
        }
        TypeEnv { map }
    }

    pub fn type_of(&self, c: &ColRef) -> SqlType {
        self.map.get(c).copied().unwrap_or(SqlType::Int)
    }

    pub fn insert(&mut self, c: ColRef, ty: SqlType) {
        self.map.insert(c, ty);
    }
}

/// Lowering environment: tuple tag (for the two-tuple GROUP BY encoding of
/// Algorithm 4) and the set of group-constant columns (for aggregate
/// collapsing in HAVING/SELECT lowering).
#[derive(Debug, Clone, Default)]
pub struct LowerEnv {
    pub tuple_tag: u8,
    pub grouped: BTreeSet<ColRef>,
}

impl LowerEnv {
    pub fn plain() -> LowerEnv {
        LowerEnv::default()
    }

    pub fn tuple(tag: u8) -> LowerEnv {
        LowerEnv { tuple_tag: tag, grouped: BTreeSet::new() }
    }

    pub fn grouped(cols: BTreeSet<ColRef>) -> LowerEnv {
        LowerEnv { tuple_tag: 0, grouped: cols }
    }
}

/// Canonical affine form of a scalar over column references.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct AffExpr {
    pub coeffs: BTreeMap<ColRef, i64>,
    pub k: i64,
}

impl AffExpr {
    fn constant(k: i64) -> AffExpr {
        AffExpr { coeffs: BTreeMap::new(), k }
    }

    fn col(c: &ColRef) -> AffExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(c.clone(), 1);
        AffExpr { coeffs, k: 0 }
    }

    fn add(&self, o: &AffExpr) -> AffExpr {
        let mut out = self.clone();
        for (c, v) in &o.coeffs {
            let e = out.coeffs.entry(c.clone()).or_insert(0);
            *e += v;
            if *e == 0 {
                out.coeffs.remove(c);
            }
        }
        out.k += o.k;
        out
    }

    fn scale(&self, f: i64) -> AffExpr {
        if f == 0 {
            return AffExpr::constant(0);
        }
        AffExpr {
            coeffs: self.coeffs.iter().map(|(c, v)| (c.clone(), v * f)).collect(),
            k: self.k * f,
        }
    }

    fn negate(&self) -> AffExpr {
        self.scale(-1)
    }

    /// The single (column, coefficient) if the expression is `c·x + k`.
    fn single(&self) -> Option<(&ColRef, i64)> {
        if self.coeffs.len() == 1 {
            let (c, v) = self.coeffs.iter().next().unwrap();
            Some((c, *v))
        } else {
            None
        }
    }
}

/// Affine normalization of an aggregate-free integer scalar;
/// `None` when non-affine (products of columns, division) or when it
/// contains strings or aggregates.
pub fn affine_of(e: &Scalar) -> Option<AffExpr> {
    match e {
        Scalar::Col(c) => Some(AffExpr::col(c)),
        Scalar::Int(v) => Some(AffExpr::constant(*v)),
        Scalar::Str(_) | Scalar::Agg(_) => None,
        Scalar::Neg(inner) => Some(affine_of(inner)?.negate()),
        Scalar::Arith(l, op, r) => {
            let (le, re) = (affine_of(l)?, affine_of(r)?);
            match op {
                ArithOp::Add => Some(le.add(&re)),
                ArithOp::Sub => Some(le.add(&re.negate())),
                ArithOp::Mul => {
                    if le.coeffs.is_empty() {
                        Some(re.scale(le.k))
                    } else if re.coeffs.is_empty() {
                        Some(le.scale(re.k))
                    } else {
                        None
                    }
                }
                ArithOp::Div => {
                    if re.coeffs.is_empty() && re.k != 0 {
                        let d = re.k;
                        if le.k % d == 0 && le.coeffs.values().all(|c| c % d == 0) {
                            Some(AffExpr {
                                coeffs: le
                                    .coeffs
                                    .iter()
                                    .map(|(c, v)| (c.clone(), v / d))
                                    .collect(),
                                k: le.k / d,
                            })
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                }
            }
        }
    }
}

/// The base an aggregate variable ranges over.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum AggBase {
    /// Aggregate of a bare column.
    Col(ColRef),
    /// Aggregate of a canonicalized non-affine expression.
    Opaque(String),
    /// `COUNT(*)`.
    Star,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct AggKey {
    func: AggFunc,
    distinct: bool,
    base: AggBase,
    tag: u8,
}

/// The oracle: shared pool, interners and tri-valued predicates.
pub struct Oracle {
    pub solver: Solver,
    pool: VarPool,
    types: TypeEnv,
    col_vars: BTreeMap<(ColRef, u8), VarId>,
    agg_vars: BTreeMap<AggKey, VarId>,
    /// Number of solver checks issued (diagnostics / experiments).
    pub solver_calls: u64,
    /// Ambient lowering environment used by the `*_pred` convenience
    /// methods (set by the HAVING/SELECT stages to the grouped
    /// environment, so the generic repair machinery reasons with
    /// aggregate collapsing without threading environments everywhere).
    ambient_env: LowerEnv,
    /// Ambient formula context appended to every satisfiability check
    /// (WHERE facts + aggregate axioms during the HAVING/SELECT stages).
    ambient_ctx: Vec<Formula>,
    /// Memoized verdicts: the repair search re-checks many identical
    /// implications across candidate site sets (bounds overlap heavily),
    /// and a session-layer oracle sees the same target-side checks across
    /// submissions, so caching is a large constant-factor win. Keyed by
    /// the 64-bit hash of the (formula, full-context) pair — entries keep
    /// the actual pair and verify equality on lookup, so a hash collision
    /// can never return a wrong verdict. Only definitive results are
    /// cached — Unknown may become definitive under different budgets.
    sat_cache: std::collections::HashMap<u64, Vec<(Formula, Vec<Formula>, TriBool)>>,
}

impl Oracle {
    pub fn new(types: TypeEnv) -> Oracle {
        Oracle {
            solver: Solver::default(),
            pool: VarPool::new(),
            types,
            col_vars: BTreeMap::new(),
            agg_vars: BTreeMap::new(),
            solver_calls: 0,
            ambient_env: LowerEnv::plain(),
            ambient_ctx: Vec::new(),
            sat_cache: std::collections::HashMap::new(),
        }
    }

    /// Number of memoized verdicts resident in the satisfiability
    /// cache (cache-size accounting for the session layer's
    /// byte-budget eviction).
    pub fn verdict_cache_len(&self) -> usize {
        self.sat_cache.values().map(Vec::len).sum()
    }

    /// Install an ambient lowering environment and formula context; used
    /// by the HAVING and SELECT stages.
    pub fn set_ambient(&mut self, env: LowerEnv, ctx: Vec<Formula>) {
        self.ambient_env = env;
        self.ambient_ctx = ctx;
    }

    /// Reset the ambient environment to plain/empty.
    pub fn clear_ambient(&mut self) {
        self.ambient_env = LowerEnv::plain();
        self.ambient_ctx.clear();
    }

    /// Oracle typed from a schema and resolved queries.
    pub fn for_queries(schema: &Schema, queries: &[&Query]) -> Oracle {
        Oracle::new(TypeEnv::from_queries(schema, queries))
    }

    /// Oracle typed by inference over standalone predicates.
    pub fn for_preds(preds: &[&Pred]) -> Oracle {
        Oracle::new(TypeEnv::infer_from_preds(preds))
    }

    pub fn types(&self) -> &TypeEnv {
        &self.types
    }

    fn var_of(&mut self, c: &ColRef, tag: u8) -> VarId {
        if let Some(v) = self.col_vars.get(&(c.clone(), tag)) {
            return *v;
        }
        let sort = match self.types.type_of(c) {
            SqlType::Int => Sort::Int,
            SqlType::Str => Sort::Str,
        };
        let name = if tag == 0 { c.to_string() } else { format!("{c}@t{tag}") };
        let v = self.pool.fresh(&name, sort);
        self.col_vars.insert((c.clone(), tag), v);
        v
    }

    fn agg_var(&mut self, key: AggKey, sort: Sort) -> VarId {
        if let Some(v) = self.agg_vars.get(&key) {
            return *v;
        }
        let name = format!("{:?}", key);
        let v = self.pool.fresh(&name, sort);
        self.agg_vars.insert(key, v);
        v
    }

    fn count_star(&mut self, tag: u8) -> VarId {
        self.agg_var(
            AggKey { func: AggFunc::Count, distinct: false, base: AggBase::Star, tag },
            Sort::Int,
        )
    }

    // ---------------- lowering ----------------

    /// Lower a scalar with the default (plain) environment.
    pub fn lower_scalar(&mut self, e: &Scalar) -> Term {
        self.lower_scalar_env(e, &LowerEnv::plain())
    }

    /// Lower a scalar expression.
    pub fn lower_scalar_env(&mut self, e: &Scalar, env: &LowerEnv) -> Term {
        match e {
            Scalar::Col(c) => Term::var(self.var_of(c, env.tuple_tag)),
            Scalar::Int(v) => Term::IntConst(*v),
            Scalar::Str(s) => Term::StrConst(s.clone()),
            Scalar::Arith(l, op, r) => {
                let (lt, rt) = (self.lower_scalar_env(l, env), self.lower_scalar_env(r, env));
                match op {
                    ArithOp::Add => Term::add(lt, rt),
                    ArithOp::Sub => Term::sub(lt, rt),
                    ArithOp::Mul => Term::mul(lt, rt),
                    ArithOp::Div => Term::div(lt, rt),
                }
            }
            Scalar::Neg(inner) => Term::Neg(Box::new(self.lower_scalar_env(inner, env))),
            Scalar::Agg(call) => self.lower_agg(call, env),
        }
    }

    /// Lower an aggregate call using the canonicalization rules.
    fn lower_agg(&mut self, call: &AggCall, env: &LowerEnv) -> Term {
        let tag = env.tuple_tag;
        let canon = |e: &Scalar| format!("{e}");
        match (&call.func, &call.arg, call.distinct) {
            // COUNT(*) and COUNT(e) with no NULLs all equal COUNT(*).
            (AggFunc::Count, AggArg::Star, _) => Term::var(self.count_star(tag)),
            (AggFunc::Count, AggArg::Expr(_), false) => Term::var(self.count_star(tag)),
            (AggFunc::Count, AggArg::Expr(e), true) => {
                let base = match &**e {
                    Scalar::Col(c) => AggBase::Col(c.clone()),
                    other => AggBase::Opaque(canon(other)),
                };
                Term::var(self.agg_var(
                    AggKey { func: AggFunc::Count, distinct: true, base, tag },
                    Sort::Int,
                ))
            }
            (AggFunc::Sum, AggArg::Expr(e), false) => {
                if let Some(aff) = affine_of(e) {
                    // SUM(Σ cᵢ·xᵢ + c₀) = Σ cᵢ·SUM(xᵢ) + c₀·COUNT(*)
                    let mut acc: Option<Term> = None;
                    for (col, coeff) in &aff.coeffs {
                        let base: Term = if env.grouped.contains(col) {
                            // Group-constant column: SUM(x) = x·COUNT(*).
                            Term::mul(
                                Term::var(self.var_of(col, tag)),
                                Term::var(self.count_star(tag)),
                            )
                        } else {
                            Term::var(self.agg_var(
                                AggKey {
                                    func: AggFunc::Sum,
                                    distinct: false,
                                    base: AggBase::Col(col.clone()),
                                    tag,
                                },
                                Sort::Int,
                            ))
                        };
                        let scaled = if *coeff == 1 {
                            base
                        } else {
                            Term::mul(Term::IntConst(*coeff), base)
                        };
                        acc = Some(match acc {
                            None => scaled,
                            Some(a) => Term::add(a, scaled),
                        });
                    }
                    if aff.k != 0 {
                        let k_term =
                            Term::mul(Term::IntConst(aff.k), Term::var(self.count_star(tag)));
                        acc = Some(match acc {
                            None => k_term,
                            Some(a) => Term::add(a, k_term),
                        });
                    }
                    acc.unwrap_or(Term::IntConst(0))
                } else {
                    Term::var(self.agg_var(
                        AggKey {
                            func: AggFunc::Sum,
                            distinct: false,
                            base: AggBase::Opaque(canon(e)),
                            tag,
                        },
                        Sort::Int,
                    ))
                }
            }
            (AggFunc::Min | AggFunc::Max, AggArg::Expr(e), false) => {
                let str_typed = matches!(&**e, Scalar::Col(c) if self.types.type_of(c) == SqlType::Str);
                if str_typed {
                    let Scalar::Col(c) = &**e else { unreachable!() };
                    if env.grouped.contains(c) {
                        return Term::var(self.var_of(c, tag));
                    }
                    return Term::var(self.agg_var(
                        AggKey {
                            func: call.func,
                            distinct: false,
                            base: AggBase::Col(c.clone()),
                            tag,
                        },
                        Sort::Str,
                    ));
                }
                if let Some(aff) = affine_of(e) {
                    if let Some((col, coeff)) = aff.single() {
                        if env.grouped.contains(col) {
                            // Group-constant: MIN(c·x+k) = c·x+k.
                            let x = Term::var(self.var_of(col, tag));
                            let scaled = if coeff == 1 {
                                x
                            } else {
                                Term::mul(Term::IntConst(coeff), x)
                            };
                            return if aff.k == 0 {
                                scaled
                            } else {
                                Term::add(scaled, Term::IntConst(aff.k))
                            };
                        }
                        // MIN(c·x+k) = c·MIN(x)+k for c>0 (MAX for c<0).
                        let func = if coeff > 0 {
                            call.func
                        } else if call.func == AggFunc::Min {
                            AggFunc::Max
                        } else {
                            AggFunc::Min
                        };
                        let base_var = self.agg_var(
                            AggKey { func, distinct: false, base: AggBase::Col(col.clone()), tag },
                            Sort::Int,
                        );
                        let scaled = if coeff == 1 {
                            Term::var(base_var)
                        } else {
                            Term::mul(Term::IntConst(coeff), Term::var(base_var))
                        };
                        return if aff.k == 0 {
                            scaled
                        } else {
                            Term::add(scaled, Term::IntConst(aff.k))
                        };
                    }
                    if aff.coeffs.is_empty() {
                        // MIN/MAX of a constant is the constant.
                        return Term::IntConst(aff.k);
                    }
                }
                Term::var(self.agg_var(
                    AggKey {
                        func: call.func,
                        distinct: false,
                        base: AggBase::Opaque(canon(e)),
                        tag,
                    },
                    Sort::Int,
                ))
            }
            (AggFunc::Avg, AggArg::Expr(e), false) => {
                if let Some(aff) = affine_of(e) {
                    if let Some((col, coeff)) = aff.single() {
                        if coeff == 1 && aff.k == 0 && env.grouped.contains(col) {
                            return Term::var(self.var_of(col, tag));
                        }
                    }
                    if aff.coeffs.is_empty() {
                        return Term::IntConst(aff.k);
                    }
                }
                Term::var(self.agg_var(
                    AggKey {
                        func: AggFunc::Avg,
                        distinct: false,
                        base: match e.as_ref() {
                            Scalar::Col(c) => AggBase::Col(c.clone()),
                            other => AggBase::Opaque(canon(other)),
                        },
                        tag,
                    },
                    Sort::Int,
                ))
            }
            // DISTINCT SUM/AVG/MIN/MAX: MIN/MAX are unaffected by
            // DISTINCT; SUM/AVG become opaque.
            (AggFunc::Min | AggFunc::Max, AggArg::Expr(e), true) => {
                let undistinct = AggCall {
                    func: call.func,
                    distinct: false,
                    arg: AggArg::Expr(e.clone()),
                };
                self.lower_agg(&undistinct, env)
            }
            (func, AggArg::Expr(e), true) => Term::var(self.agg_var(
                AggKey { func: *func, distinct: true, base: AggBase::Opaque(canon(e)), tag },
                Sort::Int,
            )),
            // SUM/AVG/MIN/MAX(*) is not valid SQL; defensively intern.
            (func, AggArg::Star, d) => Term::var(self.agg_var(
                AggKey { func: *func, distinct: d, base: AggBase::Star, tag },
                Sort::Int,
            )),
        }
    }

    fn rel_of(op: CmpOp) -> Rel {
        match op {
            CmpOp::Eq => Rel::Eq,
            CmpOp::Ne => Rel::Ne,
            CmpOp::Lt => Rel::Lt,
            CmpOp::Le => Rel::Le,
            CmpOp::Gt => Rel::Gt,
            CmpOp::Ge => Rel::Ge,
        }
    }

    /// Lower a predicate with the ambient environment.
    pub fn lower_pred(&mut self, p: &Pred) -> Formula {
        let env = self.ambient_env.clone();
        self.lower_pred_env(p, &env)
    }

    /// Lower a predicate.
    pub fn lower_pred_env(&mut self, p: &Pred, env: &LowerEnv) -> Formula {
        match p {
            Pred::True => Formula::True,
            Pred::False => Formula::False,
            Pred::Cmp(l, op, r) => Formula::cmp(
                self.lower_scalar_env(l, env),
                Self::rel_of(*op),
                self.lower_scalar_env(r, env),
            ),
            Pred::Like { expr, pattern, negated } => {
                let atom = Formula::atom(Atom::Like(
                    self.lower_scalar_env(expr, env),
                    pattern.clone(),
                ));
                if *negated {
                    Formula::not(atom)
                } else {
                    atom
                }
            }
            Pred::And(cs) => {
                Formula::and(cs.iter().map(|c| self.lower_pred_env(c, env)).collect())
            }
            Pred::Or(cs) => {
                Formula::or(cs.iter().map(|c| self.lower_pred_env(c, env)).collect())
            }
            Pred::Not(c) => Formula::not(self.lower_pred_env(c, env)),
        }
    }

    // ---------------- aggregate axioms ----------------

    /// Emit sound axioms over the aggregate variables interned so far,
    /// using per-row bounds implied by the (top-level conjuncts of the)
    /// WHERE predicate.
    pub fn aggregate_axioms(&mut self, where_pred: &Pred) -> Vec<Formula> {
        let bounds = column_bounds(where_pred);
        let keys: Vec<AggKey> = self.agg_vars.keys().cloned().collect();
        let mut axioms: Vec<Formula> = Vec::new();
        for key in &keys {
            let v = self.agg_vars[key];
            match (&key.func, &key.base) {
                (AggFunc::Count, AggBase::Star) => {
                    // Groups are non-empty.
                    axioms.push(Formula::cmp(Term::var(v), Rel::Ge, Term::IntConst(1)));
                }
                (AggFunc::Count, _) if key.distinct => {
                    axioms.push(Formula::cmp(Term::var(v), Rel::Ge, Term::IntConst(1)));
                    let cs = self.count_star(key.tag);
                    axioms.push(Formula::cmp(Term::var(v), Rel::Le, Term::var(cs)));
                }
                (AggFunc::Min | AggFunc::Max | AggFunc::Avg, AggBase::Col(c)) => {
                    if self.pool_sort(v) != Sort::Int {
                        continue;
                    }
                    if let Some((lb, ub)) = bounds.get(c) {
                        if let Some(lb) = lb {
                            axioms.push(Formula::cmp(Term::var(v), Rel::Ge, Term::IntConst(*lb)));
                        }
                        if let Some(ub) = ub {
                            axioms.push(Formula::cmp(Term::var(v), Rel::Le, Term::IntConst(*ub)));
                        }
                    }
                }
                (AggFunc::Sum, AggBase::Col(c)) => {
                    if let Some((lb, ub)) = bounds.get(c) {
                        // SUM ≥ lb·COUNT ≥ lb when lb ≥ 0 (dually for ub).
                        if let Some(lb) = lb {
                            if *lb >= 0 {
                                axioms.push(Formula::cmp(
                                    Term::var(v),
                                    Rel::Ge,
                                    Term::IntConst(*lb),
                                ));
                            }
                        }
                        if let Some(ub) = ub {
                            if *ub <= 0 {
                                axioms.push(Formula::cmp(
                                    Term::var(v),
                                    Rel::Le,
                                    Term::IntConst(*ub),
                                ));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Relational axioms among aggregates of the same column:
        // MIN ≤ AVG ≤ MAX, MIN ≤ MAX.
        for key in &keys {
            if key.func != AggFunc::Min {
                continue;
            }
            let min_v = self.agg_vars[&key.clone()];
            if self.pool_sort(min_v) != Sort::Int {
                continue;
            }
            let mk = |f: AggFunc| AggKey { func: f, ..key.clone() };
            if let Some(&max_v) = self.agg_vars.get(&mk(AggFunc::Max)) {
                axioms.push(Formula::cmp(Term::var(min_v), Rel::Le, Term::var(max_v)));
            }
            if let Some(&avg_v) = self.agg_vars.get(&mk(AggFunc::Avg)) {
                axioms.push(Formula::cmp(Term::var(min_v), Rel::Le, Term::var(avg_v)));
            }
        }
        for key in &keys {
            if key.func != AggFunc::Avg {
                continue;
            }
            let avg_v = self.agg_vars[key];
            if self.pool_sort(avg_v) != Sort::Int {
                continue;
            }
            let max_key = AggKey { func: AggFunc::Max, ..key.clone() };
            if let Some(&max_v) = self.agg_vars.get(&max_key) {
                axioms.push(Formula::cmp(Term::var(avg_v), Rel::Le, Term::var(max_v)));
            }
        }
        axioms
    }

    fn pool_sort(&self, v: VarId) -> Sort {
        self.pool.sort(v)
    }

    // ---------------- tri-valued predicates ----------------

    /// Formula-level satisfiability under formula contexts (the ambient
    /// context, if any, is appended).
    pub fn sat_f(&mut self, f: &Formula, ctx: &[Formula]) -> TriBool {
        use std::hash::{Hash, Hasher};
        self.solver_calls += 1;
        let mut full: Vec<Formula> = Vec::with_capacity(ctx.len() + self.ambient_ctx.len());
        full.extend_from_slice(ctx);
        full.extend_from_slice(&self.ambient_ctx);
        // Hash-first lookup: no clone of the formula or context on the
        // hot path; the stored pair is compared on a bucket hit.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        f.hash(&mut hasher);
        full.hash(&mut hasher);
        let key = hasher.finish();
        if let Some(bucket) = self.sat_cache.get(&key) {
            for (cf, cfull, verdict) in bucket {
                if cf == f && *cfull == full {
                    return *verdict;
                }
            }
        }
        let solver = self.solver.clone();
        let verdict = solver.is_satisfiable(f, &full, &mut self.pool);
        if verdict != TriBool::Unknown {
            self.sat_cache.entry(key).or_default().push((f.clone(), full, verdict));
        }
        verdict
    }

    /// Formula-level unsatisfiability.
    pub fn unsat_f(&mut self, f: &Formula, ctx: &[Formula]) -> TriBool {
        self.sat_f(f, ctx).negate()
    }

    /// Formula-level implication under contexts.
    pub fn implies_f(&mut self, f: &Formula, g: &Formula, ctx: &[Formula]) -> TriBool {
        self.unsat_f(&Formula::and(vec![f.clone(), Formula::not(g.clone())]), ctx)
    }

    /// Formula-level equivalence under contexts.
    pub fn equiv_f(&mut self, f: &Formula, g: &Formula, ctx: &[Formula]) -> TriBool {
        // Syntactically identical formulas are equivalent under any
        // context — skip the solver, whose atom budget would otherwise
        // degrade large self-comparisons to Unknown.
        if f == g {
            return TriBool::True;
        }
        match self.implies_f(f, g, ctx) {
            TriBool::False => TriBool::False,
            fw => match self.implies_f(g, f, ctx) {
                TriBool::False => TriBool::False,
                bw => fw.and(bw),
            },
        }
    }

    /// Predicate-level satisfiability (plain environment).
    pub fn sat_pred(&mut self, p: &Pred, ctx: &[&Pred]) -> TriBool {
        let f = self.lower_pred(p);
        let ctx: Vec<Formula> = ctx.iter().map(|c| self.lower_pred(c)).collect();
        self.sat_f(&f, &ctx)
    }

    /// Predicate-level implication.
    pub fn implies_pred(&mut self, p: &Pred, q: &Pred, ctx: &[&Pred]) -> TriBool {
        let (fp, fq) = (self.lower_pred(p), self.lower_pred(q));
        let ctx: Vec<Formula> = ctx.iter().map(|c| self.lower_pred(c)).collect();
        self.implies_f(&fp, &fq, &ctx)
    }

    /// Predicate-level equivalence — the paper's `IsEquiv` for WHERE.
    pub fn equiv_pred(&mut self, p: &Pred, q: &Pred, ctx: &[&Pred]) -> TriBool {
        let (fp, fq) = (self.lower_pred(p), self.lower_pred(q));
        let ctx: Vec<Formula> = ctx.iter().map(|c| self.lower_pred(c)).collect();
        self.equiv_f(&fp, &fq, &ctx)
    }

    /// Value-level equivalence of two scalars under formula contexts —
    /// the paper's `IsEquiv` for SELECT / GROUP BY expressions: valid iff
    /// `ctx ∧ e1 ≠ e2` is unsatisfiable.
    pub fn equiv_scalar_env(
        &mut self,
        e1: &Scalar,
        e2: &Scalar,
        env: &LowerEnv,
        ctx: &[Formula],
    ) -> TriBool {
        let (t1, t2) = (self.lower_scalar_env(e1, env), self.lower_scalar_env(e2, env));
        self.unsat_f(&Formula::cmp(t1, Rel::Ne, t2), ctx)
    }
}

/// Extract per-column constant bounds implied by the top-level conjuncts
/// of a predicate: `col op const` atoms only (sound under any model of the
/// predicate).
pub fn column_bounds(p: &Pred) -> BTreeMap<ColRef, (Option<i64>, Option<i64>)> {
    let mut out: BTreeMap<ColRef, (Option<i64>, Option<i64>)> = BTreeMap::new();
    let conjuncts: Vec<&Pred> = match p {
        Pred::And(cs) => cs.iter().collect(),
        other => vec![other],
    };
    let mut tighten = |c: &ColRef, lb: Option<i64>, ub: Option<i64>| {
        let entry = out.entry(c.clone()).or_insert((None, None));
        if let Some(l) = lb {
            entry.0 = Some(entry.0.map_or(l, |x: i64| x.max(l)));
        }
        if let Some(u) = ub {
            entry.1 = Some(entry.1.map_or(u, |x: i64| x.min(u)));
        }
    };
    for conj in conjuncts {
        if let Pred::Cmp(l, op, r) = conj {
            let (col, cst, op) = match (l, r) {
                (Scalar::Col(c), Scalar::Int(k)) => (c, *k, *op),
                (Scalar::Int(k), Scalar::Col(c)) => (c, *k, op.flip()),
                _ => continue,
            };
            match op {
                CmpOp::Eq => tighten(col, Some(cst), Some(cst)),
                CmpOp::Gt => tighten(col, Some(cst + 1), None),
                CmpOp::Ge => tighten(col, Some(cst), None),
                CmpOp::Lt => tighten(col, None, Some(cst - 1)),
                CmpOp::Le => tighten(col, None, Some(cst)),
                CmpOp::Ne => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::{parse_pred, parse_scalar};

    fn oracle_for(preds: &[&Pred]) -> Oracle {
        Oracle::for_preds(preds)
    }

    #[test]
    fn transitivity_through_shared_vars() {
        let p = parse_pred("l.beer = s1.beer AND l.beer = s2.beer").unwrap();
        let q = parse_pred("l.beer = s1.beer AND s1.beer = s2.beer").unwrap();
        let mut o = oracle_for(&[&p, &q]);
        assert_eq!(o.equiv_pred(&p, &q, &[]), TriBool::True);
    }

    #[test]
    fn integer_tightening_gt_vs_ge() {
        let p = parse_pred("s1.price > s2.price").unwrap();
        let q = parse_pred("s1.price >= s2.price + 1").unwrap();
        let mut o = oracle_for(&[&p, &q]);
        assert_eq!(o.equiv_pred(&p, &q, &[]), TriBool::True);
    }

    #[test]
    fn string_typing_via_inference() {
        let p = parse_pred("l.drinker = 'Amy'").unwrap();
        let o = oracle_for(&[&p]);
        assert_eq!(o.types().type_of(&ColRef::new("l", "drinker")), SqlType::Str);
        // Propagated through equalities:
        let q = parse_pred("l.drinker = f.drinker AND l.drinker = 'Amy'").unwrap();
        let o2 = oracle_for(&[&q]);
        assert_eq!(o2.types().type_of(&ColRef::new("f", "drinker")), SqlType::Str);
    }

    #[test]
    fn column_bounds_extraction() {
        let p = parse_pred("t.a > 100 AND t.b <= 5 AND t.c = 7 AND 3 < t.d").unwrap();
        let b = column_bounds(&p);
        assert_eq!(b[&ColRef::new("t", "a")], (Some(101), None));
        assert_eq!(b[&ColRef::new("t", "b")], (None, Some(5)));
        assert_eq!(b[&ColRef::new("t", "c")], (Some(7), Some(7)));
        assert_eq!(b[&ColRef::new("t", "d")], (Some(4), None));
        // Disjunctions contribute nothing.
        let p2 = parse_pred("t.a > 100 OR t.b < 5").unwrap();
        assert!(column_bounds(&p2).is_empty());
    }

    #[test]
    fn paper_example3_max_bound() {
        // WHERE A > 100 makes HAVING MAX(A) >= 101 redundant.
        let where_pred = parse_pred("r.a > 100").unwrap();
        let having = parse_pred("MAX(r.a) >= 101").unwrap();
        let mut o = oracle_for(&[&where_pred, &having]);
        let env = LowerEnv::plain();
        let h = o.lower_pred_env(&having, &env);
        let axioms = o.aggregate_axioms(&where_pred);
        assert!(!axioms.is_empty());
        // MAX(A) >= 101 is implied by the axioms: ¬(MAX(A) ≥ 101) unsat.
        assert_eq!(o.unsat_f(&Formula::not(h), &axioms), TriBool::True);
    }

    #[test]
    fn paper_example10_having_equivalence() {
        // H*: A>B+3 ∧ 2*SUM(D)>10 ; H: C>B+3 ∧ SUM(D*2)>10 ∧ A>4
        // under context A=C ∧ A>4 (grouped columns A, B, C).
        let h_star = parse_pred("g.a > g.b + 3 AND 2 * SUM(s.d) > 10").unwrap();
        let h = parse_pred("g.c > g.b + 3 AND SUM(s.d * 2) > 10 AND g.a > 4").unwrap();
        let ctx_pred = parse_pred("g.a = g.c AND g.a > 4").unwrap();
        let mut o = oracle_for(&[&h_star, &h, &ctx_pred]);
        let grouped: BTreeSet<ColRef> = [
            ColRef::new("g", "a"),
            ColRef::new("g", "b"),
            ColRef::new("g", "c"),
        ]
        .into_iter()
        .collect();
        let env = LowerEnv::grouped(grouped);
        let fs = o.lower_pred_env(&h_star, &env);
        let fh = o.lower_pred_env(&h, &env);
        let mut ctx = vec![o.lower_pred_env(&ctx_pred, &env)];
        ctx.extend(o.aggregate_axioms(&ctx_pred));
        assert_eq!(o.equiv_f(&fs, &fh, &ctx), TriBool::True);
    }

    #[test]
    fn count_expr_equals_count_star() {
        let a = parse_scalar("COUNT(t.x)").unwrap();
        let b = parse_scalar("COUNT(*)").unwrap();
        let p = parse_pred("COUNT(t.x) > 0").unwrap();
        let mut o = oracle_for(&[&p]);
        assert_eq!(
            o.equiv_scalar_env(&a, &b, &LowerEnv::plain(), &[]),
            TriBool::True
        );
    }

    #[test]
    fn count_star_plus_one_not_equiv() {
        // The footnote-1 mistake: COUNT(*)+1 is NOT COUNT(*).
        let a = parse_scalar("COUNT(*)").unwrap();
        let b = parse_scalar("COUNT(*) + 1").unwrap();
        let mut o = oracle_for(&[]);
        assert_eq!(
            o.equiv_scalar_env(&a, &b, &LowerEnv::plain(), &[]),
            TriBool::False
        );
    }

    #[test]
    fn min_max_affine_rewrites() {
        let mut o = oracle_for(&[]);
        let env = LowerEnv::plain();
        // MIN(-x) = -MAX(x): lower both and check equivalence.
        let e1 = parse_scalar("MIN(0 - t.x)").unwrap();
        let e2 = parse_scalar("0 - MAX(t.x)").unwrap();
        assert_eq!(o.equiv_scalar_env(&e1, &e2, &env, &[]), TriBool::True);
        // MAX(2*x + 1) = 2*MAX(x) + 1
        let e3 = parse_scalar("MAX(2 * t.x + 1)").unwrap();
        let e4 = parse_scalar("2 * MAX(t.x) + 1").unwrap();
        assert_eq!(o.equiv_scalar_env(&e3, &e4, &env, &[]), TriBool::True);
    }

    #[test]
    fn sum_linearity() {
        let mut o = oracle_for(&[]);
        let env = LowerEnv::plain();
        let e1 = parse_scalar("SUM(t.x + t.y)").unwrap();
        let e2 = parse_scalar("SUM(t.x) + SUM(t.y)").unwrap();
        assert_eq!(o.equiv_scalar_env(&e1, &e2, &env, &[]), TriBool::True);
        let e3 = parse_scalar("SUM(t.x + 1)").unwrap();
        let e4 = parse_scalar("SUM(t.x) + COUNT(*)").unwrap();
        assert_eq!(o.equiv_scalar_env(&e3, &e4, &env, &[]), TriBool::True);
        // SUM(x) ≠ SUM(y) in general.
        let e5 = parse_scalar("SUM(t.x)").unwrap();
        let e6 = parse_scalar("SUM(t.y)").unwrap();
        assert_eq!(o.equiv_scalar_env(&e5, &e6, &env, &[]), TriBool::False);
    }

    #[test]
    fn grouped_column_aggregates_collapse() {
        let mut o = oracle_for(&[]);
        let g: BTreeSet<ColRef> = [ColRef::new("t", "x")].into_iter().collect();
        let env = LowerEnv::grouped(g);
        let e1 = parse_scalar("MIN(t.x)").unwrap();
        let e2 = parse_scalar("t.x").unwrap();
        let e3 = parse_scalar("MAX(t.x)").unwrap();
        assert_eq!(o.equiv_scalar_env(&e1, &e2, &env, &[]), TriBool::True);
        assert_eq!(o.equiv_scalar_env(&e1, &e3, &env, &[]), TriBool::True);
    }

    #[test]
    fn affine_normalization() {
        let e = parse_scalar("2 * (t.x + 3) - t.x").unwrap();
        let aff = affine_of(&e).unwrap();
        assert_eq!(aff.k, 6);
        assert_eq!(aff.coeffs[&ColRef::new("t", "x")], 1);
        assert!(affine_of(&parse_scalar("t.x * t.y").unwrap()).is_none());
        assert!(affine_of(&parse_scalar("t.x / 2").unwrap()).is_none());
        let div_ok = parse_scalar("(4 * t.x) / 2").unwrap();
        assert_eq!(affine_of(&div_ok).unwrap().coeffs[&ColRef::new("t", "x")], 2);
    }

    #[test]
    fn tuple_tags_give_distinct_vars() {
        let p = parse_pred("t.a = 1").unwrap();
        let mut o = oracle_for(&[&p]);
        let f1 = o.lower_pred_env(&p, &LowerEnv::tuple(1));
        let f2 = o.lower_pred_env(&p, &LowerEnv::tuple(2));
        assert_ne!(format!("{f1}"), format!("{f2}"));
        // t.a@t1 = 1 ∧ t.a@t2 = 2 is satisfiable (different tuples).
        let p2 = parse_pred("t.a = 2").unwrap();
        let f2b = o.lower_pred_env(&p2, &LowerEnv::tuple(2));
        assert_eq!(
            o.sat_f(&Formula::and(vec![f1, f2b]), &[]),
            TriBool::True
        );
    }
}

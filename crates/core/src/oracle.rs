//! The solver oracle: lowers SQL predicates and expressions into the SMT
//! fragment and exposes the paper's three primitives (`IsSatisfiable`,
//! `IsUnSatisfiable`, `IsEquiv`) at the AST level.
//!
//! ## Interned representation (PR 5)
//!
//! Lowering no longer builds `Box`-tree [`Formula`] values: every term and
//! formula is hash-consed into a shared arena
//! ([`qrhint_smt::Interner`] inside a [`SolverContext`]), and the oracle
//! API trafficks in [`TermId`] / [`FormulaId`] — `u32` handles whose
//! equality *is* structural equality. The wins, in order of importance:
//!
//! * **Shared verdicts.** Satisfiability checks are memoized in the
//!   context's sharded `VerdictCache` keyed by
//!   `(FormulaId, [FormulaId])` — integer compares, no tree walk, no
//!   hash-collision bucket scan. Every oracle created from the same
//!   `SolverContext` (all slots of all FROM groups of one
//!   [`crate::session::PreparedTarget`]) shares the table, so a verdict
//!   decided on one thread is a read-path hit on every other.
//! * **Cheap construction.** Structurally equal subformulas intern to one
//!   node; negation is memoized per node; conjunction/disjunction flatten
//!   without cloning children.
//! * **Trees only on misses.** The solver still consumes trees; they are
//!   extracted from the arena only on a verdict-cache miss — exactly when
//!   the caller is about to pay orders of magnitude more for the check.
//!
//! Variable allocation (columns, aggregates) also lives in the shared
//! context, keyed by `(column, tuple-tag, sort)` / `(aggregate key,
//! sort)`, so the same reference lowers to the same [`VarId`] on every
//! slot — which is what makes ids (and therefore cached verdicts)
//! comparable across threads. Each oracle still keeps a *private* record
//! of the aggregate keys it interned: [`Oracle::aggregate_axioms`] emits
//! axioms only over those, exactly as the pre-interning per-slot oracle
//! did, so axiom sets never depend on other threads' history.
//!
//! The oracle shares the variable space, so the same column reference
//! always lowers to the same solver variable — transitivity of equality
//! across clauses (the Example-1 inference) falls out automatically.
//!
//! ## Aggregate lowering (§7, Appendix E)
//!
//! Instead of Z3 arrays with universally quantified axioms, aggregate
//! terms are canonicalized during lowering, which keeps the fragment
//! decidable while covering the same inference rules:
//!
//! * `SUM(Σ cᵢ·xᵢ + c₀)` → `Σ cᵢ·SUM(xᵢ) + c₀·COUNT(*)` (linearity of SUM
//!   over a group with no NULLs);
//! * `COUNT(e)` → `COUNT(*)` (no NULLs);
//! * `MIN/MAX(c·x + d)` → `c·MIN/MAX(x) + d`, flipping MIN↔MAX for `c<0`;
//! * aggregates over *grouped* columns collapse to the scalar column
//!   variable (`MIN(x) = MAX(x) = AVG(x) = x` when `x` is group-constant);
//! * everything else becomes an opaque aggregate variable, deduplicated by
//!   canonical argument.
//!
//! [`Oracle::aggregate_axioms`] then emits the sound facts relating these
//! variables (`COUNT(*) ≥ 1`, `MIN ≤ AVG ≤ MAX`, WHERE-implied per-row
//! bounds lifted to MIN/MAX/AVG/SUM, `COUNT(DISTINCT e) ≤ COUNT(*)`).
//! `AVG` is floor semantics (see `qrhint-engine`), for which
//! `MIN ≤ AVG ≤ MAX` is exact; the paper's constant-distribution rule for
//! AVG is deliberately dropped because it is unsound under integer
//! division.

use crate::verdicts::{VerdictCache, VerdictKey};
use qrhint_smt::{
    AssumptionPrefix, Formula, FormulaId, Interner, Rel, SolveStats, Solver, Sort, TermId,
    TriBool, VarId, VarPool,
};
use qrhint_sqlast::{
    AggArg, AggCall, AggFunc, ArithOp, CmpOp, ColRef, Pred, Query, Scalar, Schema, SqlType,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Column typing environment.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    map: BTreeMap<ColRef, SqlType>,
}

impl TypeEnv {
    /// Build from resolved queries against a schema: every alias.column of
    /// every FROM table is typed.
    pub fn from_queries(schema: &Schema, queries: &[&Query]) -> TypeEnv {
        let mut map = BTreeMap::new();
        for q in queries {
            for tref in &q.from {
                if let Some(ts) = schema.table(&tref.table) {
                    for col in &ts.columns {
                        map.insert(ColRef::new(&tref.alias, &col.name), col.ty);
                    }
                }
            }
        }
        TypeEnv { map }
    }

    /// Infer column types from predicate usage (for standalone-predicate
    /// experiments): columns compared with string literals or used in LIKE
    /// are strings; everything else defaults to Int.
    pub fn infer_from_preds(preds: &[&Pred]) -> TypeEnv {
        let mut map: BTreeMap<ColRef, SqlType> = BTreeMap::new();
        fn scan_cmp(l: &Scalar, r: &Scalar, map: &mut BTreeMap<ColRef, SqlType>) {
            let is_strlit =
                |e: &Scalar| matches!(e, Scalar::Str(_));
            if is_strlit(r) {
                if let Scalar::Col(c) = l {
                    map.insert(c.clone(), SqlType::Str);
                }
            }
            if is_strlit(l) {
                if let Scalar::Col(c) = r {
                    map.insert(c.clone(), SqlType::Str);
                }
            }
        }
        fn scan(p: &Pred, map: &mut BTreeMap<ColRef, SqlType>) {
            match p {
                Pred::Cmp(l, _, r) => scan_cmp(l, r, map),
                Pred::Like { expr: Scalar::Col(c), .. } => {
                    map.insert(c.clone(), SqlType::Str);
                }
                Pred::And(cs) | Pred::Or(cs) => cs.iter().for_each(|c| scan(c, map)),
                Pred::Not(c) => scan(c, map),
                _ => {}
            }
        }
        for p in preds {
            scan(p, &mut map);
        }
        // Propagate string-ness through column-column equality atoms.
        for _ in 0..3 {
            let mut additions: Vec<ColRef> = Vec::new();
            fn scan_eq(p: &Pred, map: &BTreeMap<ColRef, SqlType>, add: &mut Vec<ColRef>) {
                match p {
                    Pred::Cmp(Scalar::Col(a), _, Scalar::Col(b)) => {
                        if map.get(a) == Some(&SqlType::Str) && !map.contains_key(b) {
                            add.push(b.clone());
                        }
                        if map.get(b) == Some(&SqlType::Str) && !map.contains_key(a) {
                            add.push(a.clone());
                        }
                    }
                    Pred::And(cs) | Pred::Or(cs) => {
                        cs.iter().for_each(|c| scan_eq(c, map, add))
                    }
                    Pred::Not(c) => scan_eq(c, map, add),
                    _ => {}
                }
            }
            for p in preds {
                scan_eq(p, &map, &mut additions);
            }
            if additions.is_empty() {
                break;
            }
            for c in additions {
                map.insert(c, SqlType::Str);
            }
        }
        TypeEnv { map }
    }

    pub fn type_of(&self, c: &ColRef) -> SqlType {
        self.map.get(c).copied().unwrap_or(SqlType::Int)
    }

    pub fn insert(&mut self, c: ColRef, ty: SqlType) {
        self.map.insert(c, ty);
    }
}

/// Lowering environment: tuple tag (for the two-tuple GROUP BY encoding of
/// Algorithm 4) and the set of group-constant columns (for aggregate
/// collapsing in HAVING/SELECT lowering).
#[derive(Debug, Clone, Default)]
pub struct LowerEnv {
    pub tuple_tag: u8,
    pub grouped: BTreeSet<ColRef>,
}

impl LowerEnv {
    pub fn plain() -> LowerEnv {
        LowerEnv::default()
    }

    pub fn tuple(tag: u8) -> LowerEnv {
        LowerEnv { tuple_tag: tag, grouped: BTreeSet::new() }
    }

    pub fn grouped(cols: BTreeSet<ColRef>) -> LowerEnv {
        LowerEnv { tuple_tag: 0, grouped: cols }
    }
}

/// Canonical affine form of a scalar over column references.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct AffExpr {
    pub coeffs: BTreeMap<ColRef, i64>,
    pub k: i64,
}

impl AffExpr {
    fn constant(k: i64) -> AffExpr {
        AffExpr { coeffs: BTreeMap::new(), k }
    }

    fn col(c: &ColRef) -> AffExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(c.clone(), 1);
        AffExpr { coeffs, k: 0 }
    }

    fn add(&self, o: &AffExpr) -> AffExpr {
        let mut out = self.clone();
        for (c, v) in &o.coeffs {
            let e = out.coeffs.entry(c.clone()).or_insert(0);
            *e += v;
            if *e == 0 {
                out.coeffs.remove(c);
            }
        }
        out.k += o.k;
        out
    }

    fn scale(&self, f: i64) -> AffExpr {
        if f == 0 {
            return AffExpr::constant(0);
        }
        AffExpr {
            coeffs: self.coeffs.iter().map(|(c, v)| (c.clone(), v * f)).collect(),
            k: self.k * f,
        }
    }

    fn negate(&self) -> AffExpr {
        self.scale(-1)
    }

    /// The single (column, coefficient) if the expression is `c·x + k`.
    fn single(&self) -> Option<(&ColRef, i64)> {
        if self.coeffs.len() == 1 {
            let (c, v) = self.coeffs.iter().next().unwrap();
            Some((c, *v))
        } else {
            None
        }
    }
}

/// Affine normalization of an aggregate-free integer scalar;
/// `None` when non-affine (products of columns, division) or when it
/// contains strings or aggregates.
pub fn affine_of(e: &Scalar) -> Option<AffExpr> {
    match e {
        Scalar::Col(c) => Some(AffExpr::col(c)),
        Scalar::Int(v) => Some(AffExpr::constant(*v)),
        Scalar::Str(_) | Scalar::Agg(_) => None,
        Scalar::Neg(inner) => Some(affine_of(inner)?.negate()),
        Scalar::Arith(l, op, r) => {
            let (le, re) = (affine_of(l)?, affine_of(r)?);
            match op {
                ArithOp::Add => Some(le.add(&re)),
                ArithOp::Sub => Some(le.add(&re.negate())),
                ArithOp::Mul => {
                    if le.coeffs.is_empty() {
                        Some(re.scale(le.k))
                    } else if re.coeffs.is_empty() {
                        Some(le.scale(re.k))
                    } else {
                        None
                    }
                }
                ArithOp::Div => {
                    if re.coeffs.is_empty() && re.k != 0 {
                        let d = re.k;
                        if le.k % d == 0 && le.coeffs.values().all(|c| c % d == 0) {
                            Some(AffExpr {
                                coeffs: le
                                    .coeffs
                                    .iter()
                                    .map(|(c, v)| (c.clone(), v / d))
                                    .collect(),
                                k: le.k / d,
                            })
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                }
            }
        }
    }
}

/// The base an aggregate variable ranges over.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum AggBase {
    /// Aggregate of a bare column.
    Col(ColRef),
    /// Aggregate of a canonicalized non-affine expression.
    Opaque(String),
    /// `COUNT(*)`.
    Star,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct AggKey {
    func: AggFunc,
    distinct: bool,
    base: AggBase,
    tag: u8,
}

/// The shared lowering tables: the hash-consing interner, the variable
/// pool and the column/aggregate variable maps. One per [`SolverContext`],
/// behind its `RwLock` — lowering takes the write lock once per predicate,
/// scalar, or expression list ([`Oracle::tuple_eq_formulas`]), not per
/// node. The single-builder calls (`and_f`/`not_f`/`cmp_f`) also take it;
/// a read-probe-then-upgrade fast path for dedup hits would shave those
/// remaining acquisitions but is deliberately not done — construction
/// lock holds are tens of nanoseconds against solver checks in the
/// milliseconds, and the verdict cache already removes most construction
/// on warm paths.
struct LowerState {
    interner: Interner,
    pool: VarPool,
    /// `(column, tuple-tag, sort)` → variable. The sort is part of the
    /// key because different FROM groups of one target can bind the same
    /// alias to different tables: conflicting sorts must never share a
    /// variable.
    col_vars: BTreeMap<(ColRef, u8, Sort), VarId>,
    agg_vars: BTreeMap<(AggKey, Sort), VarId>,
}

impl LowerState {
    fn new() -> LowerState {
        LowerState {
            interner: Interner::new(),
            pool: VarPool::new(),
            col_vars: BTreeMap::new(),
            agg_vars: BTreeMap::new(),
        }
    }
}

/// Point-in-time interner statistics (see
/// [`crate::session::SessionStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Distinct term nodes resident.
    pub terms: u64,
    /// Distinct formula nodes resident.
    pub formulas: u64,
    /// Construction requests answered by an existing node (hash-consing
    /// and negation-memo hits).
    pub dedup_hits: u64,
    /// Approximate resident bytes of the interning tables.
    pub bytes: u64,
}

/// Per-variable byte estimate for [`SolverContext::approx_bytes`] (pool
/// name + sort + the col/agg map entry pointing at it).
const VAR_ENTRY_BYTES: usize = 160;

/// Per-tree-node byte estimate for the lowering memo (enum discriminant,
/// child vectors, and the map entry, amortized over the subtree).
const TREE_NODE_BYTES: usize = 64;

/// Point-in-time lowering-memo statistics (see
/// [`crate::session::SessionStats`]). Like the interner counters, these
/// live in the [`SolverContext`] and reset when a shed swaps it out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoweringMemoStats {
    /// Tree requests answered by a memoized `Arc<Formula>`.
    pub hits: u64,
    /// Tree requests that extracted (and memoized) a fresh tree.
    pub misses: u64,
    /// Distinct interned formulas with a resident memoized tree.
    pub entries: u64,
    /// Approximate resident bytes of the memoized trees.
    pub bytes: u64,
}

fn formula_nodes(f: &Formula) -> usize {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => 1,
        Formula::And(cs) | Formula::Or(cs) => 1 + cs.iter().map(formula_nodes).sum::<usize>(),
        Formula::Not(c) => 1 + formula_nodes(c),
    }
}

/// The interning + verdict state shared by every [`Oracle`] of one
/// [`crate::session::PreparedTarget`]: the hash-consing arena, the
/// variable tables, and the sharded cross-slot verdict cache. All of it
/// is rebuildable — [`crate::session::PreparedTarget::shed_caches`]
/// swaps in a fresh context and reports these bytes as freed.
pub struct SolverContext {
    lower: RwLock<LowerState>,
    pub(crate) verdicts: VerdictCache,
    /// Per-node lowering memo: interned formula → its extracted tree,
    /// shared (via `Arc`) across every oracle bound to this context. A
    /// verdict-cache miss used to re-extract the full tree of the formula
    /// *and every context formula* per check; now each interned node is
    /// extracted at most once per context lifetime. Shed with the
    /// context.
    trees: RwLock<HashMap<FormulaId, Arc<Formula>>>,
    tree_hits: AtomicU64,
    tree_misses: AtomicU64,
    tree_bytes: AtomicU64,
}

impl SolverContext {
    /// `verdict_cache_max_bytes` bounds the shared verdict cache
    /// (`0` = unbounded); see
    /// [`crate::QrHintConfig::verdict_cache_max_bytes`].
    pub fn new(verdict_cache_max_bytes: usize) -> SolverContext {
        SolverContext {
            lower: RwLock::new(LowerState::new()),
            verdicts: VerdictCache::new(verdict_cache_max_bytes),
            trees: RwLock::new(HashMap::new()),
            tree_hits: AtomicU64::new(0),
            tree_misses: AtomicU64::new(0),
            tree_bytes: AtomicU64::new(0),
        }
    }

    /// Approximate resident bytes of everything in the context: interner
    /// tables, variable pool/maps, the lowering memo, and the verdict
    /// cache.
    pub fn approx_bytes(&self) -> usize {
        let st = self.lower.read().unwrap();
        st.interner.approx_bytes()
            + st.pool.len() * VAR_ENTRY_BYTES
            + self.tree_bytes.load(Ordering::Relaxed) as usize
            + self.verdicts.bytes()
    }

    /// Memoized tree extraction: the `Arc<Formula>` tree of an interned
    /// formula, extracted at most once per context lifetime.
    pub fn tree_of(&self, f: FormulaId) -> Arc<Formula> {
        if let Some(t) = self.trees.read().unwrap().get(&f) {
            self.tree_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(t);
        }
        // Extract outside the memo lock (two racing extractors do
        // redundant work but the entry — and the byte accounting — is
        // charged once).
        let tree = Arc::new(self.lower.read().unwrap().interner.formula(f));
        self.tree_misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.trees.write().unwrap();
        let entry = map.entry(f).or_insert_with(|| {
            self.tree_bytes.fetch_add(
                (formula_nodes(&tree) * TREE_NODE_BYTES) as u64,
                Ordering::Relaxed,
            );
            Arc::clone(&tree)
        });
        Arc::clone(entry)
    }

    /// Point-in-time lowering-memo counters.
    pub fn lowering_memo_stats(&self) -> LoweringMemoStats {
        LoweringMemoStats {
            hits: self.tree_hits.load(Ordering::Relaxed),
            misses: self.tree_misses.load(Ordering::Relaxed),
            entries: self.trees.read().unwrap().len() as u64,
            bytes: self.tree_bytes.load(Ordering::Relaxed),
        }
    }

    /// Point-in-time interner counters.
    pub fn interner_stats(&self) -> InternerStats {
        let st = self.lower.read().unwrap();
        InternerStats {
            terms: st.interner.num_terms() as u64,
            formulas: st.interner.num_formulas() as u64,
            dedup_hits: st.interner.dedup_hits(),
            bytes: st.interner.approx_bytes() as u64,
        }
    }

    /// Resident shared-verdict entries (point in time).
    pub fn verdict_entries(&self) -> usize {
        self.verdicts.entries()
    }

    /// Approximate shared-verdict bytes (point in time).
    pub fn verdict_bytes(&self) -> usize {
        self.verdicts.bytes()
    }

    /// One coherent snapshot of every point-in-time counter in this
    /// context. The interner fields are read under a single `lower`
    /// lock acquisition and the memo/verdict fields back-to-back, so a
    /// snapshot never mixes numbers from before and after a concurrent
    /// shed swap the way four independent getter calls can — callers
    /// that clone the context `Arc` once and snapshot it see one
    /// context's state throughout.
    pub fn stats_snapshot(&self) -> ContextStats {
        let interner = {
            let st = self.lower.read().unwrap();
            InternerStats {
                terms: st.interner.num_terms() as u64,
                formulas: st.interner.num_formulas() as u64,
                dedup_hits: st.interner.dedup_hits(),
                bytes: st.interner.approx_bytes() as u64,
            }
        };
        ContextStats {
            interner,
            lowering_memo: self.lowering_memo_stats(),
            verdict_entries: self.verdicts.entries() as u64,
            verdict_bytes: self.verdicts.bytes() as u64,
        }
    }
}

/// All point-in-time counters of one [`SolverContext`], captured by
/// [`SolverContext::stats_snapshot`] in a single pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    pub interner: InternerStats,
    pub lowering_memo: LoweringMemoStats,
    /// Resident shared-verdict entries.
    pub verdict_entries: u64,
    /// Approximate shared-verdict bytes.
    pub verdict_bytes: u64,
}

impl std::fmt::Debug for SolverContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverContext")
            .field("interner", &self.interner_stats())
            .field("verdict_entries", &self.verdict_entries())
            .finish()
    }
}

/// Source of unique oracle ids (cross-thread hit attribution in the
/// shared verdict cache).
static ORACLE_IDS: AtomicU64 = AtomicU64::new(1);

/// The oracle: shared interning context, tri-valued predicates, and the
/// ambient lowering state the stages install.
pub struct Oracle {
    pub solver: Solver,
    ctx: Arc<SolverContext>,
    /// Unique per-oracle id; stored with inserted verdicts so hits can
    /// be attributed as same-oracle or cross-thread.
    id: u64,
    types: TypeEnv,
    /// Aggregate keys **this oracle** interned. Axiom generation
    /// iterates this private record, not the shared table, so the axiom
    /// set for a check never depends on what other slots lowered.
    agg_vars: BTreeMap<AggKey, VarId>,
    /// Number of solver checks issued (diagnostics / experiments;
    /// includes verdict-cache hits, as it always did).
    pub solver_calls: u64,
    /// Shared-verdict-cache hits by this oracle.
    pub verdict_hits: u64,
    /// Hits on entries inserted by a *different* oracle — the cross-slot
    /// sharing the interned representation exists to enable.
    pub verdict_cross_hits: u64,
    /// Shared-verdict-cache misses (each one paid a real solver check).
    pub verdict_misses: u64,
    /// Entries this oracle's inserts evicted from the shared cache.
    pub verdict_evictions: u64,
    /// Run the interval prescreen before the solver on verdict-cache
    /// misses (see [`QrHintConfig::static_prescreen`]).
    ///
    /// [`QrHintConfig::static_prescreen`]: crate::pipeline::QrHintConfig::static_prescreen
    pub prescreen: bool,
    /// Satisfiability checks answered `Unsat` by the interval prescreen
    /// instead of the solver (a subset of `verdict_misses`).
    pub prescreen_skips: u64,
    /// Stage checks (WHERE / GROUP BY / HAVING / SELECT) during which at
    /// least one prescreen answer landed — i.e. statically-decided
    /// predicates let the stage skip solver work.
    pub stage_short_circuits: u64,
    /// Literals pushed onto the incremental theory stack across this
    /// oracle's solver misses (from-scratch mode counts every
    /// retranslation here, which is the quadratic blow-up the stack
    /// removes).
    pub theory_pushes: u64,
    /// Full theory checks (leaves + pruning strides) across misses.
    pub theory_full_checks: u64,
    /// Branches cut by the incremental quick-conflict detector.
    pub quick_conflicts: u64,
    /// Shared-prefix batches issued ([`Oracle::batch_ctx`] consumers:
    /// SELECT positional equivalence, GROUP BY Δ− pruning, WHERE-repair
    /// candidate verification).
    pub equiv_batches: u64,
    /// Candidate checks routed through those batches.
    pub equiv_batch_candidates: u64,
    /// Ambient lowering environment used by the `*_pred` convenience
    /// methods (set by the HAVING/SELECT stages to the grouped
    /// environment, so the generic repair machinery reasons with
    /// aggregate collapsing without threading environments everywhere).
    ambient_env: LowerEnv,
    /// Ambient formula context appended to every satisfiability check
    /// (WHERE facts + aggregate axioms during the HAVING/SELECT stages).
    ambient_ctx: Vec<FormulaId>,
    /// Private mirror of the shared pool handed to the solver, which
    /// appends throwaway linearization variables per check. Synced
    /// incrementally (`scratch_synced` = shared length at last sync):
    /// the shared pool is append-only, so truncate-then-extend keeps
    /// indices aligned without cloning the whole pool per miss.
    scratch_pool: VarPool,
    scratch_synced: usize,
}

impl Oracle {
    /// Standalone oracle with a private context (one-shot checks and
    /// tests). Session slots share one context via
    /// [`Oracle::with_context`].
    pub fn new(types: TypeEnv) -> Oracle {
        Oracle::with_context(
            types,
            Arc::new(SolverContext::new(crate::pipeline::DEFAULT_VERDICT_CACHE_BYTES)),
        )
    }

    /// Oracle bound to a shared interning/verdict context.
    pub fn with_context(types: TypeEnv, ctx: Arc<SolverContext>) -> Oracle {
        Oracle {
            solver: Solver::default(),
            ctx,
            id: ORACLE_IDS.fetch_add(1, Ordering::Relaxed),
            types,
            agg_vars: BTreeMap::new(),
            solver_calls: 0,
            verdict_hits: 0,
            verdict_cross_hits: 0,
            verdict_misses: 0,
            verdict_evictions: 0,
            prescreen: true,
            prescreen_skips: 0,
            stage_short_circuits: 0,
            theory_pushes: 0,
            theory_full_checks: 0,
            quick_conflicts: 0,
            equiv_batches: 0,
            equiv_batch_candidates: 0,
            ambient_env: LowerEnv::plain(),
            ambient_ctx: Vec::new(),
            scratch_pool: VarPool::new(),
            scratch_synced: 0,
        }
    }

    /// The shared context this oracle interns into.
    pub fn context(&self) -> &Arc<SolverContext> {
        &self.ctx
    }

    /// Install an ambient lowering environment and formula context; used
    /// by the HAVING and SELECT stages.
    pub fn set_ambient(&mut self, env: LowerEnv, ctx: Vec<FormulaId>) {
        self.ambient_env = env;
        self.ambient_ctx = ctx;
    }

    /// Reset the ambient environment to plain/empty.
    pub fn clear_ambient(&mut self) {
        self.ambient_env = LowerEnv::plain();
        self.ambient_ctx.clear();
    }

    /// Oracle typed from a schema and resolved queries.
    pub fn for_queries(schema: &Schema, queries: &[&Query]) -> Oracle {
        Oracle::new(TypeEnv::from_queries(schema, queries))
    }

    /// Oracle typed by inference over standalone predicates.
    pub fn for_preds(preds: &[&Pred]) -> Oracle {
        Oracle::new(TypeEnv::infer_from_preds(preds))
    }

    pub fn types(&self) -> &TypeEnv {
        &self.types
    }

    fn var_of(&self, st: &mut LowerState, c: &ColRef, tag: u8) -> VarId {
        let sort = match self.types.type_of(c) {
            SqlType::Int => Sort::Int,
            SqlType::Str => Sort::Str,
        };
        if let Some(v) = st.col_vars.get(&(c.clone(), tag, sort)) {
            return *v;
        }
        let name = if tag == 0 { c.to_string() } else { format!("{c}@t{tag}") };
        let v = st.pool.fresh(&name, sort);
        st.col_vars.insert((c.clone(), tag, sort), v);
        v
    }

    fn agg_var(&mut self, st: &mut LowerState, key: AggKey, sort: Sort) -> VarId {
        if let Some(v) = self.agg_vars.get(&key) {
            return *v;
        }
        let v = match st.agg_vars.get(&(key.clone(), sort)) {
            Some(v) => *v,
            None => {
                let name = format!("{:?}", key);
                let v = st.pool.fresh(&name, sort);
                st.agg_vars.insert((key.clone(), sort), v);
                v
            }
        };
        self.agg_vars.insert(key, v);
        v
    }

    fn count_star(&mut self, st: &mut LowerState, tag: u8) -> VarId {
        self.agg_var(
            st,
            AggKey { func: AggFunc::Count, distinct: false, base: AggBase::Star, tag },
            Sort::Int,
        )
    }

    // ---------------- lowering ----------------

    /// Lower a scalar with the default (plain) environment.
    pub fn lower_scalar(&mut self, e: &Scalar) -> TermId {
        self.lower_scalar_env(e, &LowerEnv::plain())
    }

    /// Lower a scalar expression to an interned term.
    pub fn lower_scalar_env(&mut self, e: &Scalar, env: &LowerEnv) -> TermId {
        let ctx = Arc::clone(&self.ctx);
        let mut st = ctx.lower.write().unwrap();
        self.lower_scalar_in(&mut st, e, env)
    }

    fn lower_scalar_in(&mut self, st: &mut LowerState, e: &Scalar, env: &LowerEnv) -> TermId {
        match e {
            Scalar::Col(c) => {
                let v = self.var_of(st, c, env.tuple_tag);
                st.interner.var(v)
            }
            Scalar::Int(v) => st.interner.int(*v),
            Scalar::Str(s) => st.interner.str(s),
            Scalar::Arith(l, op, r) => {
                let lt = self.lower_scalar_in(st, l, env);
                let rt = self.lower_scalar_in(st, r, env);
                match op {
                    ArithOp::Add => st.interner.add(lt, rt),
                    ArithOp::Sub => st.interner.sub(lt, rt),
                    ArithOp::Mul => st.interner.mul(lt, rt),
                    ArithOp::Div => st.interner.div(lt, rt),
                }
            }
            Scalar::Neg(inner) => {
                let t = self.lower_scalar_in(st, inner, env);
                st.interner.neg(t)
            }
            Scalar::Agg(call) => self.lower_agg_in(st, call, env),
        }
    }

    /// Lower an aggregate call using the canonicalization rules.
    fn lower_agg_in(&mut self, st: &mut LowerState, call: &AggCall, env: &LowerEnv) -> TermId {
        let tag = env.tuple_tag;
        let canon = |e: &Scalar| format!("{e}");
        match (&call.func, &call.arg, call.distinct) {
            // COUNT(*) and COUNT(e) with no NULLs all equal COUNT(*).
            (AggFunc::Count, AggArg::Star, _) => {
                let v = self.count_star(st, tag);
                st.interner.var(v)
            }
            (AggFunc::Count, AggArg::Expr(_), false) => {
                let v = self.count_star(st, tag);
                st.interner.var(v)
            }
            (AggFunc::Count, AggArg::Expr(e), true) => {
                let base = match &**e {
                    Scalar::Col(c) => AggBase::Col(c.clone()),
                    other => AggBase::Opaque(canon(other)),
                };
                let v = self.agg_var(
                    st,
                    AggKey { func: AggFunc::Count, distinct: true, base, tag },
                    Sort::Int,
                );
                st.interner.var(v)
            }
            (AggFunc::Sum, AggArg::Expr(e), false) => {
                if let Some(aff) = affine_of(e) {
                    // SUM(Σ cᵢ·xᵢ + c₀) = Σ cᵢ·SUM(xᵢ) + c₀·COUNT(*)
                    let mut acc: Option<TermId> = None;
                    for (col, coeff) in &aff.coeffs {
                        let base: TermId = if env.grouped.contains(col) {
                            // Group-constant column: SUM(x) = x·COUNT(*).
                            let x = self.var_of(st, col, tag);
                            let cs = self.count_star(st, tag);
                            let (x, cs) = (st.interner.var(x), st.interner.var(cs));
                            st.interner.mul(x, cs)
                        } else {
                            let v = self.agg_var(
                                st,
                                AggKey {
                                    func: AggFunc::Sum,
                                    distinct: false,
                                    base: AggBase::Col(col.clone()),
                                    tag,
                                },
                                Sort::Int,
                            );
                            st.interner.var(v)
                        };
                        let scaled = if *coeff == 1 {
                            base
                        } else {
                            let c = st.interner.int(*coeff);
                            st.interner.mul(c, base)
                        };
                        acc = Some(match acc {
                            None => scaled,
                            Some(a) => st.interner.add(a, scaled),
                        });
                    }
                    if aff.k != 0 {
                        let cs = self.count_star(st, tag);
                        let k = st.interner.int(aff.k);
                        let csv = st.interner.var(cs);
                        let k_term = st.interner.mul(k, csv);
                        acc = Some(match acc {
                            None => k_term,
                            Some(a) => st.interner.add(a, k_term),
                        });
                    }
                    acc.unwrap_or_else(|| st.interner.int(0))
                } else {
                    let v = self.agg_var(
                        st,
                        AggKey {
                            func: AggFunc::Sum,
                            distinct: false,
                            base: AggBase::Opaque(canon(e)),
                            tag,
                        },
                        Sort::Int,
                    );
                    st.interner.var(v)
                }
            }
            (AggFunc::Min | AggFunc::Max, AggArg::Expr(e), false) => {
                let str_typed = matches!(&**e, Scalar::Col(c) if self.types.type_of(c) == SqlType::Str);
                if str_typed {
                    let Scalar::Col(c) = &**e else { unreachable!() };
                    if env.grouped.contains(c) {
                        let v = self.var_of(st, c, tag);
                        return st.interner.var(v);
                    }
                    let v = self.agg_var(
                        st,
                        AggKey {
                            func: call.func,
                            distinct: false,
                            base: AggBase::Col(c.clone()),
                            tag,
                        },
                        Sort::Str,
                    );
                    return st.interner.var(v);
                }
                if let Some(aff) = affine_of(e) {
                    if let Some((col, coeff)) = aff.single() {
                        if env.grouped.contains(col) {
                            // Group-constant: MIN(c·x+k) = c·x+k.
                            let x = self.var_of(st, col, tag);
                            let x = st.interner.var(x);
                            let scaled = if coeff == 1 {
                                x
                            } else {
                                let c = st.interner.int(coeff);
                                st.interner.mul(c, x)
                            };
                            return if aff.k == 0 {
                                scaled
                            } else {
                                let k = st.interner.int(aff.k);
                                st.interner.add(scaled, k)
                            };
                        }
                        // MIN(c·x+k) = c·MIN(x)+k for c>0 (MAX for c<0).
                        let func = if coeff > 0 {
                            call.func
                        } else if call.func == AggFunc::Min {
                            AggFunc::Max
                        } else {
                            AggFunc::Min
                        };
                        let col = col.clone();
                        let base_var = self.agg_var(
                            st,
                            AggKey { func, distinct: false, base: AggBase::Col(col), tag },
                            Sort::Int,
                        );
                        let base = st.interner.var(base_var);
                        let scaled = if coeff == 1 {
                            base
                        } else {
                            let c = st.interner.int(coeff);
                            st.interner.mul(c, base)
                        };
                        return if aff.k == 0 {
                            scaled
                        } else {
                            let k = st.interner.int(aff.k);
                            st.interner.add(scaled, k)
                        };
                    }
                    if aff.coeffs.is_empty() {
                        // MIN/MAX of a constant is the constant.
                        return st.interner.int(aff.k);
                    }
                }
                let v = self.agg_var(
                    st,
                    AggKey {
                        func: call.func,
                        distinct: false,
                        base: AggBase::Opaque(canon(e)),
                        tag,
                    },
                    Sort::Int,
                );
                st.interner.var(v)
            }
            (AggFunc::Avg, AggArg::Expr(e), false) => {
                if let Some(aff) = affine_of(e) {
                    if let Some((col, coeff)) = aff.single() {
                        if coeff == 1 && aff.k == 0 && env.grouped.contains(col) {
                            let v = self.var_of(st, col, tag);
                            return st.interner.var(v);
                        }
                    }
                    if aff.coeffs.is_empty() {
                        return st.interner.int(aff.k);
                    }
                }
                let v = self.agg_var(
                    st,
                    AggKey {
                        func: AggFunc::Avg,
                        distinct: false,
                        base: match e.as_ref() {
                            Scalar::Col(c) => AggBase::Col(c.clone()),
                            other => AggBase::Opaque(canon(other)),
                        },
                        tag,
                    },
                    Sort::Int,
                );
                st.interner.var(v)
            }
            // DISTINCT SUM/AVG/MIN/MAX: MIN/MAX are unaffected by
            // DISTINCT; SUM/AVG become opaque.
            (AggFunc::Min | AggFunc::Max, AggArg::Expr(e), true) => {
                let undistinct = AggCall {
                    func: call.func,
                    distinct: false,
                    arg: AggArg::Expr(e.clone()),
                };
                self.lower_agg_in(st, &undistinct, env)
            }
            (func, AggArg::Expr(e), true) => {
                let v = self.agg_var(
                    st,
                    AggKey { func: *func, distinct: true, base: AggBase::Opaque(canon(e)), tag },
                    Sort::Int,
                );
                st.interner.var(v)
            }
            // SUM/AVG/MIN/MAX(*) is not valid SQL; defensively intern.
            (func, AggArg::Star, d) => {
                let v = self.agg_var(
                    st,
                    AggKey { func: *func, distinct: d, base: AggBase::Star, tag },
                    Sort::Int,
                );
                st.interner.var(v)
            }
        }
    }

    fn rel_of(op: CmpOp) -> Rel {
        match op {
            CmpOp::Eq => Rel::Eq,
            CmpOp::Ne => Rel::Ne,
            CmpOp::Lt => Rel::Lt,
            CmpOp::Le => Rel::Le,
            CmpOp::Gt => Rel::Gt,
            CmpOp::Ge => Rel::Ge,
        }
    }

    /// Lower a predicate with the ambient environment.
    pub fn lower_pred(&mut self, p: &Pred) -> FormulaId {
        let env = self.ambient_env.clone();
        self.lower_pred_env(p, &env)
    }

    /// Lower a predicate to an interned formula.
    pub fn lower_pred_env(&mut self, p: &Pred, env: &LowerEnv) -> FormulaId {
        let ctx = Arc::clone(&self.ctx);
        let mut st = ctx.lower.write().unwrap();
        self.lower_pred_in(&mut st, p, env)
    }

    fn lower_pred_in(&mut self, st: &mut LowerState, p: &Pred, env: &LowerEnv) -> FormulaId {
        match p {
            Pred::True => FormulaId::TRUE,
            Pred::False => FormulaId::FALSE,
            Pred::Cmp(l, op, r) => {
                let lt = self.lower_scalar_in(st, l, env);
                let rt = self.lower_scalar_in(st, r, env);
                st.interner.cmp(lt, Self::rel_of(*op), rt)
            }
            Pred::Like { expr, pattern, negated } => {
                let t = self.lower_scalar_in(st, expr, env);
                let atom = st.interner.like(t, pattern);
                if *negated {
                    st.interner.not(atom)
                } else {
                    atom
                }
            }
            Pred::And(cs) => {
                let ids: Vec<FormulaId> =
                    cs.iter().map(|c| self.lower_pred_in(st, c, env)).collect();
                st.interner.and(ids)
            }
            Pred::Or(cs) => {
                let ids: Vec<FormulaId> =
                    cs.iter().map(|c| self.lower_pred_in(st, c, env)).collect();
                st.interner.or(ids)
            }
            Pred::Not(c) => {
                let id = self.lower_pred_in(st, c, env);
                st.interner.not(id)
            }
        }
    }

    /// Lower each expression under both tuple environments and return
    /// its `(e[t1] = e[t2], e[t1] ≠ e[t2])` formula pair — the GROUP BY
    /// stage's two-tuple encoding builds `O(|o| + |o★|)` of these, and
    /// doing the whole list under **one** shared-lock acquisition keeps
    /// parallel slots from serializing on per-node lock round-trips.
    /// Expressions are lowered left to right, exactly as per-expression
    /// calls would, so variable allocation order is unchanged.
    pub fn tuple_eq_formulas(
        &mut self,
        exprs: &[Scalar],
        env1: &LowerEnv,
        env2: &LowerEnv,
    ) -> Vec<(FormulaId, FormulaId)> {
        let ctx = Arc::clone(&self.ctx);
        let mut st = ctx.lower.write().unwrap();
        exprs
            .iter()
            .map(|e| {
                let t1 = self.lower_scalar_in(&mut st, e, env1);
                let t2 = self.lower_scalar_in(&mut st, e, env2);
                let eq = st.interner.cmp(t1, Rel::Eq, t2);
                let ne = st.interner.not(eq);
                (eq, ne)
            })
            .collect()
    }

    // ---------------- interned formula builders ----------------

    /// Smart interned conjunction (mirrors `Formula::and`).
    pub fn and_f(&self, children: Vec<FormulaId>) -> FormulaId {
        self.ctx.lower.write().unwrap().interner.and(children)
    }

    /// Smart interned disjunction (mirrors `Formula::or`).
    pub fn or_f(&self, children: Vec<FormulaId>) -> FormulaId {
        self.ctx.lower.write().unwrap().interner.or(children)
    }

    /// Memoized smart interned negation (mirrors `Formula::not`).
    pub fn not_f(&self, f: FormulaId) -> FormulaId {
        self.ctx.lower.write().unwrap().interner.not(f)
    }

    /// Interned comparison atom.
    pub fn cmp_f(&self, l: TermId, rel: Rel, r: TermId) -> FormulaId {
        self.ctx.lower.write().unwrap().interner.cmp(l, rel, r)
    }

    /// Extract the tree of an interned formula (diagnostics, tests, and
    /// the solver-miss path).
    pub fn formula(&self, f: FormulaId) -> Formula {
        self.ctx.lower.read().unwrap().interner.formula(f)
    }

    // ---------------- aggregate axioms ----------------

    /// Emit sound axioms over the aggregate variables **this oracle**
    /// interned so far, using per-row bounds implied by the (top-level
    /// conjuncts of the) WHERE predicate.
    pub fn aggregate_axioms(&mut self, where_pred: &Pred) -> Vec<FormulaId> {
        let ctx = Arc::clone(&self.ctx);
        let mut st = ctx.lower.write().unwrap();
        self.aggregate_axioms_in(&mut st, where_pred)
    }

    fn aggregate_axioms_in(&mut self, st: &mut LowerState, where_pred: &Pred) -> Vec<FormulaId> {
        let bounds = column_bounds(where_pred);
        let keys: Vec<AggKey> = self.agg_vars.keys().cloned().collect();
        let mut axioms: Vec<FormulaId> = Vec::new();
        let push_cmp = |st: &mut LowerState, l: VarId, rel: Rel, k: i64| {
            let (lv, kv) = (st.interner.var(l), st.interner.int(k));
            st.interner.cmp(lv, rel, kv)
        };
        for key in &keys {
            let v = self.agg_vars[key];
            match (&key.func, &key.base) {
                (AggFunc::Count, AggBase::Star) => {
                    // Groups are non-empty.
                    axioms.push(push_cmp(st, v, Rel::Ge, 1));
                }
                (AggFunc::Count, _) if key.distinct => {
                    axioms.push(push_cmp(st, v, Rel::Ge, 1));
                    let cs = self.count_star(st, key.tag);
                    let (lv, rv) = (st.interner.var(v), st.interner.var(cs));
                    axioms.push(st.interner.cmp(lv, Rel::Le, rv));
                }
                (AggFunc::Min | AggFunc::Max | AggFunc::Avg, AggBase::Col(c)) => {
                    if st.pool.sort(v) != Sort::Int {
                        continue;
                    }
                    if let Some((lb, ub)) = bounds.get(c) {
                        if let Some(lb) = lb {
                            axioms.push(push_cmp(st, v, Rel::Ge, *lb));
                        }
                        if let Some(ub) = ub {
                            axioms.push(push_cmp(st, v, Rel::Le, *ub));
                        }
                    }
                }
                (AggFunc::Sum, AggBase::Col(c)) => {
                    if let Some((lb, ub)) = bounds.get(c) {
                        // SUM ≥ lb·COUNT ≥ lb when lb ≥ 0 (dually for ub).
                        if let Some(lb) = lb {
                            if *lb >= 0 {
                                axioms.push(push_cmp(st, v, Rel::Ge, *lb));
                            }
                        }
                        if let Some(ub) = ub {
                            if *ub <= 0 {
                                axioms.push(push_cmp(st, v, Rel::Le, *ub));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Relational axioms among aggregates of the same column:
        // MIN ≤ AVG ≤ MAX, MIN ≤ MAX.
        for key in &keys {
            if key.func != AggFunc::Min {
                continue;
            }
            let min_v = self.agg_vars[&key.clone()];
            if st.pool.sort(min_v) != Sort::Int {
                continue;
            }
            let mk = |f: AggFunc| AggKey { func: f, ..key.clone() };
            if let Some(&max_v) = self.agg_vars.get(&mk(AggFunc::Max)) {
                let (lv, rv) = (st.interner.var(min_v), st.interner.var(max_v));
                axioms.push(st.interner.cmp(lv, Rel::Le, rv));
            }
            if let Some(&avg_v) = self.agg_vars.get(&mk(AggFunc::Avg)) {
                let (lv, rv) = (st.interner.var(min_v), st.interner.var(avg_v));
                axioms.push(st.interner.cmp(lv, Rel::Le, rv));
            }
        }
        for key in &keys {
            if key.func != AggFunc::Avg {
                continue;
            }
            let avg_v = self.agg_vars[key];
            if st.pool.sort(avg_v) != Sort::Int {
                continue;
            }
            let max_key = AggKey { func: AggFunc::Max, ..key.clone() };
            if let Some(&max_v) = self.agg_vars.get(&max_key) {
                let (lv, rv) = (st.interner.var(avg_v), st.interner.var(max_v));
                axioms.push(st.interner.cmp(lv, Rel::Le, rv));
            }
        }
        axioms
    }

    // ---------------- tri-valued predicates ----------------

    /// Formula-level satisfiability under formula contexts (the ambient
    /// context, if any, is appended).
    ///
    /// The `(formula, full-context)` id pair is first probed in the
    /// shared `VerdictCache`; only a miss extracts
    /// the trees and runs the solver (against a scratch copy of the
    /// shared pool, so concurrent checks never contend on it). Only
    /// definitive results are cached — `Unknown` may become definitive
    /// under different budgets.
    pub fn sat_f(&mut self, f: FormulaId, ctx: &[FormulaId]) -> TriBool {
        self.solver_calls += 1;
        let mut full: Vec<FormulaId> = Vec::with_capacity(ctx.len() + self.ambient_ctx.len());
        full.extend_from_slice(ctx);
        full.extend_from_slice(&self.ambient_ctx);
        let key = VerdictKey { f, ctx: full.into_boxed_slice() };
        if let Some((verdict, owner)) = self.ctx.verdicts.get(&key) {
            self.verdict_hits += 1;
            if owner != self.id {
                self.verdict_cross_hits += 1;
            }
            return verdict;
        }
        self.verdict_misses += 1;
        let _span = qrhint_obs::span("solver:check");
        // Miss: pull memoized `Arc` trees (extracted at most once per
        // context lifetime) and sync the scratch pool, then solve. The
        // solver appends throwaway opaque variables during linearization,
        // which is why it gets the private mirror rather than a shared
        // borrow.
        self.sync_scratch();
        let tree = self.ctx.tree_of(key.f);
        let ctx_trees: Vec<Arc<Formula>> =
            key.ctx.iter().map(|&c| self.ctx.tree_of(c)).collect();
        let mut parts: Vec<&Formula> = Vec::with_capacity(1 + ctx_trees.len());
        parts.extend(ctx_trees.iter().map(|t| t.as_ref()));
        parts.push(&tree);
        // Interval prescreen: a conjunction refuted by per-variable
        // interval facts alone is Unsat without the DPLL(T) machinery.
        // Sound (the prescreen only answers when a fact subset is already
        // contradictory) and verdict-preserving (the LIA layer refutes the
        // same conjunctions), so caching the answer keeps cross-slot
        // results identical with the prescreen on or off.
        if self.prescreen && qrhint_smt::interval::conjunction_unsat_parts(&parts) {
            self.prescreen_skips += 1;
            let verdict = TriBool::False;
            self.verdict_evictions += self.ctx.verdicts.insert(key, verdict, self.id);
            return verdict;
        }
        let out = self.solver.check_parts(&parts, &mut self.scratch_pool);
        self.record_stats(&out.stats);
        let verdict = tri(out.result);
        if verdict != TriBool::Unknown {
            self.verdict_evictions += self.ctx.verdicts.insert(key, verdict, self.id);
        }
        verdict
    }

    /// Bring the scratch pool level with the append-only shared pool:
    /// truncate away the previous check's throwaway variables, extend
    /// with anything lowered since the last sync. Avoids an O(pool)
    /// clone per solver miss.
    fn sync_scratch(&mut self) {
        let ctx = Arc::clone(&self.ctx);
        let st = ctx.lower.read().unwrap();
        if st.pool.len() < self.scratch_synced {
            // Defensive: the shared pool can only be *shorter* than the
            // sync mark if this oracle was rebound across a context swap
            // without resetting it (the session rebind path rebuilds the
            // oracle, but a stale mark here would silently misalign every
            // variable index below). Resync from scratch.
            self.scratch_pool = VarPool::new();
            self.scratch_synced = 0;
        }
        self.scratch_pool.truncate(self.scratch_synced);
        if st.pool.len() > self.scratch_synced {
            self.scratch_pool.extend_from(&st.pool, self.scratch_synced);
            self.scratch_synced = st.pool.len();
        }
    }

    fn record_stats(&mut self, s: &SolveStats) {
        self.theory_pushes += s.theory_lits_translated;
        self.theory_full_checks += s.theory_full_checks;
        self.quick_conflicts += s.quick_conflicts;
    }

    /// Memoized tree extraction (see [`SolverContext::tree_of`]).
    pub fn tree_of(&self, f: FormulaId) -> Arc<Formula> {
        self.ctx.tree_of(f)
    }

    /// Formula-level unsatisfiability.
    pub fn unsat_f(&mut self, f: FormulaId, ctx: &[FormulaId]) -> TriBool {
        self.sat_f(f, ctx).negate()
    }

    /// Formula-level implication under contexts.
    pub fn implies_f(&mut self, f: FormulaId, g: FormulaId, ctx: &[FormulaId]) -> TriBool {
        let ng = self.not_f(g);
        let q = self.and_f(vec![f, ng]);
        self.unsat_f(q, ctx)
    }

    /// Formula-level equivalence under contexts.
    pub fn equiv_f(&mut self, f: FormulaId, g: FormulaId, ctx: &[FormulaId]) -> TriBool {
        // Identical ids are structurally identical formulas — equivalent
        // under any context without consulting the solver, whose atom
        // budget would otherwise degrade large self-comparisons to
        // Unknown. (Hash-consing turns the old syntactic-equality walk
        // into this integer compare.)
        if f == g {
            return TriBool::True;
        }
        match self.implies_f(f, g, ctx) {
            TriBool::False => TriBool::False,
            fw => match self.implies_f(g, f, ctx) {
                TriBool::False => TriBool::False,
                bw => fw.and(bw),
            },
        }
    }

    /// Predicate-level satisfiability (plain environment).
    pub fn sat_pred(&mut self, p: &Pred, ctx: &[&Pred]) -> TriBool {
        let f = self.lower_pred(p);
        let ctx: Vec<FormulaId> = ctx.iter().map(|c| self.lower_pred(c)).collect();
        self.sat_f(f, &ctx)
    }

    /// Predicate-level implication.
    pub fn implies_pred(&mut self, p: &Pred, q: &Pred, ctx: &[&Pred]) -> TriBool {
        let (fp, fq) = (self.lower_pred(p), self.lower_pred(q));
        let ctx: Vec<FormulaId> = ctx.iter().map(|c| self.lower_pred(c)).collect();
        self.implies_f(fp, fq, &ctx)
    }

    /// Predicate-level equivalence — the paper's `IsEquiv` for WHERE.
    pub fn equiv_pred(&mut self, p: &Pred, q: &Pred, ctx: &[&Pred]) -> TriBool {
        let (fp, fq) = (self.lower_pred(p), self.lower_pred(q));
        let ctx: Vec<FormulaId> = ctx.iter().map(|c| self.lower_pred(c)).collect();
        self.equiv_f(fp, fq, &ctx)
    }

    /// Value-level equivalence of two scalars under formula contexts —
    /// the paper's `IsEquiv` for SELECT / GROUP BY expressions: valid iff
    /// `ctx ∧ e1 ≠ e2` is unsatisfiable.
    pub fn equiv_scalar_env(
        &mut self,
        e1: &Scalar,
        e2: &Scalar,
        env: &LowerEnv,
        ctx: &[FormulaId],
    ) -> TriBool {
        let (t1, t2) = (self.lower_scalar_env(e1, env), self.lower_scalar_env(e2, env));
        let ne = self.cmp_f(t1, Rel::Ne, t2);
        self.unsat_f(ne, ctx)
    }

    // ---------------- batched checks over a shared prefix ----------------

    /// Digest a formula context (plus the current ambient context) once
    /// for a batch of candidate checks: the trees come from the lowering
    /// memo and the solver pre-collects the context's atoms and Boolean
    /// skeletons ([`Solver::prepare_prefix`]), so per-candidate work is
    /// proportional to the candidate, not to the context.
    ///
    /// Verdicts (and verdict-cache keys) are identical to calling
    /// [`Oracle::sat_f`] with the same context — the batch only shares
    /// preparation. The ambient context is captured at construction, so
    /// build the batch after any [`Oracle::set_ambient`].
    pub fn batch_ctx(&mut self, ctx: &[FormulaId]) -> BatchCtx {
        let mut full: Vec<FormulaId> = Vec::with_capacity(ctx.len() + self.ambient_ctx.len());
        full.extend_from_slice(ctx);
        full.extend_from_slice(&self.ambient_ctx);
        let trees: Vec<Arc<Formula>> = full.iter().map(|&c| self.ctx.tree_of(c)).collect();
        let prefix = self.solver.prepare_prefix(&trees);
        BatchCtx { ctx_ids: full.into_boxed_slice(), trees, prefix }
    }

    /// [`Oracle::sat_f`] against a prepared batch context. Same verdict,
    /// same cache key, same counter discipline (one `solver_calls` and
    /// exactly one cache hit *or* miss per call).
    pub fn sat_batch(&mut self, f: FormulaId, batch: &BatchCtx) -> TriBool {
        self.solver_calls += 1;
        let key = VerdictKey { f, ctx: batch.ctx_ids.clone() };
        if let Some((verdict, owner)) = self.ctx.verdicts.get(&key) {
            self.verdict_hits += 1;
            if owner != self.id {
                self.verdict_cross_hits += 1;
            }
            return verdict;
        }
        self.verdict_misses += 1;
        let _span = qrhint_obs::span("solver:check");
        self.sync_scratch();
        let tree = self.ctx.tree_of(f);
        if self.prescreen {
            let mut parts: Vec<&Formula> = Vec::with_capacity(1 + batch.trees.len());
            parts.extend(batch.trees.iter().map(|t| t.as_ref()));
            parts.push(&tree);
            if qrhint_smt::interval::conjunction_unsat_parts(&parts) {
                self.prescreen_skips += 1;
                let verdict = TriBool::False;
                self.verdict_evictions += self.ctx.verdicts.insert(key, verdict, self.id);
                return verdict;
            }
        }
        let out = self.solver.check_assuming(&batch.prefix, &tree, &mut self.scratch_pool);
        self.record_stats(&out.stats);
        let verdict = tri(out.result);
        if verdict != TriBool::Unknown {
            self.verdict_evictions += self.ctx.verdicts.insert(key, verdict, self.id);
        }
        verdict
    }

    /// Batched unsatisfiability.
    pub fn unsat_batch(&mut self, f: FormulaId, batch: &BatchCtx) -> TriBool {
        self.sat_batch(f, batch).negate()
    }

    /// Batched implication.
    pub fn implies_batch(&mut self, f: FormulaId, g: FormulaId, batch: &BatchCtx) -> TriBool {
        let ng = self.not_f(g);
        let q = self.and_f(vec![f, ng]);
        self.unsat_batch(q, batch)
    }

    /// Batched equivalence of one candidate against a target (the inner
    /// step of [`Oracle::equiv_batch`]; exposed for loops that must keep
    /// their own sequencing, e.g. cost-ordered WHERE-repair early stop).
    pub fn equiv_batch_one(&mut self, f: FormulaId, g: FormulaId, batch: &BatchCtx) -> TriBool {
        if f == g {
            return TriBool::True;
        }
        match self.implies_batch(f, g, batch) {
            TriBool::False => TriBool::False,
            fw => match self.implies_batch(g, f, batch) {
                TriBool::False => TriBool::False,
                bw => fw.and(bw),
            },
        }
    }

    /// The paper's `IsEquiv` for a whole candidate list: check every
    /// candidate against one target under a shared pushed assumption
    /// prefix. Verdicts are exactly those of per-candidate
    /// [`Oracle::equiv_f`] calls under the same context.
    pub fn equiv_batch(
        &mut self,
        cands: &[FormulaId],
        target: FormulaId,
        ctx: &[FormulaId],
    ) -> Vec<TriBool> {
        let _span = qrhint_obs::span("oracle:equiv_batch");
        let batch = self.batch_ctx(ctx);
        self.equiv_batches += 1;
        self.equiv_batch_candidates += cands.len() as u64;
        cands.iter().map(|&c| self.equiv_batch_one(c, target, &batch)).collect()
    }

    /// Batched value-level equivalence for positional expression lists
    /// (the SELECT stage): `pairs[i]` is equivalent iff
    /// `ctx ∧ e1ᵢ ≠ e2ᵢ` is unsatisfiable, with the context prepared
    /// once for the whole list.
    pub fn equiv_scalar_batch(
        &mut self,
        pairs: &[(&Scalar, &Scalar)],
        env: &LowerEnv,
        ctx: &[FormulaId],
    ) -> Vec<TriBool> {
        let _span = qrhint_obs::span("oracle:equiv_scalar_batch");
        let nes: Vec<FormulaId> = pairs
            .iter()
            .map(|(e1, e2)| {
                let (t1, t2) = (self.lower_scalar_env(e1, env), self.lower_scalar_env(e2, env));
                self.cmp_f(t1, Rel::Ne, t2)
            })
            .collect();
        let batch = self.batch_ctx(ctx);
        self.equiv_batches += 1;
        self.equiv_batch_candidates += pairs.len() as u64;
        nes.iter().map(|&ne| self.unsat_batch(ne, &batch)).collect()
    }
}

/// A digested context for a batch of candidate checks: the full context
/// id list (the verdict-cache key suffix), its memoized trees, and the
/// solver-side prepared prefix. Built by [`Oracle::batch_ctx`].
pub struct BatchCtx {
    ctx_ids: Box<[FormulaId]>,
    trees: Vec<Arc<Formula>>,
    prefix: AssumptionPrefix,
}

fn tri(r: qrhint_smt::SatResult) -> TriBool {
    match r {
        qrhint_smt::SatResult::Sat => TriBool::True,
        qrhint_smt::SatResult::Unsat => TriBool::False,
        qrhint_smt::SatResult::Unknown => TriBool::Unknown,
    }
}

/// Extract per-column constant bounds implied by the top-level conjuncts
/// of a predicate: `col op const` atoms only (sound under any model of the
/// predicate).
pub fn column_bounds(p: &Pred) -> BTreeMap<ColRef, (Option<i64>, Option<i64>)> {
    let mut out: BTreeMap<ColRef, (Option<i64>, Option<i64>)> = BTreeMap::new();
    let conjuncts: Vec<&Pred> = match p {
        Pred::And(cs) => cs.iter().collect(),
        other => vec![other],
    };
    let mut tighten = |c: &ColRef, lb: Option<i64>, ub: Option<i64>| {
        let entry = out.entry(c.clone()).or_insert((None, None));
        if let Some(l) = lb {
            entry.0 = Some(entry.0.map_or(l, |x: i64| x.max(l)));
        }
        if let Some(u) = ub {
            entry.1 = Some(entry.1.map_or(u, |x: i64| x.min(u)));
        }
    };
    for conj in conjuncts {
        if let Pred::Cmp(l, op, r) = conj {
            let (col, cst, op) = match (l, r) {
                (Scalar::Col(c), Scalar::Int(k)) => (c, *k, *op),
                (Scalar::Int(k), Scalar::Col(c)) => (c, *k, op.flip()),
                _ => continue,
            };
            match op {
                CmpOp::Eq => tighten(col, Some(cst), Some(cst)),
                CmpOp::Gt => tighten(col, Some(cst + 1), None),
                CmpOp::Ge => tighten(col, Some(cst), None),
                CmpOp::Lt => tighten(col, None, Some(cst - 1)),
                CmpOp::Le => tighten(col, None, Some(cst)),
                CmpOp::Ne => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::{parse_pred, parse_scalar};

    fn oracle_for(preds: &[&Pred]) -> Oracle {
        Oracle::for_preds(preds)
    }

    #[test]
    fn stale_scratch_sync_mark_is_defensively_reset() {
        // An oracle whose sync mark exceeds the shared pool length (the
        // shape a context swap without a rebind would leave behind) must
        // resync from scratch rather than misalign variable indices.
        let p = parse_pred("s.price > 3").unwrap();
        let q = parse_pred("s.price >= 4").unwrap();
        let mut o = oracle_for(&[&p, &q]);
        let expected = o.equiv_pred(&p, &q, &[]);
        assert_eq!(expected, TriBool::True);

        let mut stale = oracle_for(&[&p, &q]);
        stale.scratch_synced = 1_000_000;
        stale.scratch_pool = VarPool::new();
        assert_eq!(stale.equiv_pred(&p, &q, &[]), expected);
        let shared_len = stale.ctx.lower.read().unwrap().pool.len();
        assert_eq!(stale.scratch_synced, shared_len, "mark must land on the shared length");
        assert!(stale.scratch_pool.len() >= shared_len);
    }

    #[test]
    fn batch_primitives_match_their_scalar_counterparts() {
        // Same verdicts, same cache keys: a batch check after a scalar
        // check (and vice versa) must be a verdict-cache hit.
        let p = parse_pred("s.price > 3 AND s.bar = 'Joe'").unwrap();
        let q = parse_pred("s.price >= 4 AND s.bar = 'Joe'").unwrap();
        let c = parse_pred("s.price < 100").unwrap();
        let mut a = oracle_for(&[&p, &q, &c]);
        let (fp, fq, fc) = (a.lower_pred(&p), a.lower_pred(&q), a.lower_pred(&c));
        let scalar = a.equiv_f(fp, fq, &[fc]);
        let calls_before = a.solver_calls;
        let hits_before = a.verdict_hits;
        let batch = a.batch_ctx(&[fc]);
        assert_eq!(a.equiv_batch_one(fp, fq, &batch), scalar);
        // Every batched sat call was answered by the shared cache.
        let calls = a.solver_calls - calls_before;
        assert!(calls > 0);
        assert_eq!(a.verdict_hits - hits_before, calls, "batch keys must equal scalar keys");

        // Cold batch first, scalar second — other direction.
        let mut b = oracle_for(&[&p, &q, &c]);
        let (fp, fq, fc) = (b.lower_pred(&p), b.lower_pred(&q), b.lower_pred(&c));
        let batch = b.batch_ctx(&[fc]);
        let batched = b.equiv_batch_one(fp, fq, &batch);
        assert_eq!(batched, scalar);
        let hits_before = b.verdict_hits;
        let calls_before = b.solver_calls;
        assert_eq!(b.equiv_f(fp, fq, &[fc]), batched);
        assert_eq!(b.verdict_hits - hits_before, b.solver_calls - calls_before);

        // equiv_batch over a candidate list agrees position-by-position.
        let r = parse_pred("s.price > 100").unwrap();
        let mut o = oracle_for(&[&p, &q, &r, &c]);
        let (fp, fq, fr, fc) =
            (o.lower_pred(&p), o.lower_pred(&q), o.lower_pred(&r), o.lower_pred(&c));
        let verdicts = o.equiv_batch(&[fq, fr, fp], fp, &[fc]);
        assert_eq!(verdicts[0], TriBool::True);
        assert_eq!(verdicts[1], TriBool::False);
        assert_eq!(verdicts[2], TriBool::True, "identical ids short-circuit");
        assert_eq!(o.equiv_batches, 1);
        assert_eq!(o.equiv_batch_candidates, 3);
        assert_eq!(o.verdict_hits + o.verdict_misses, o.solver_calls);
    }

    #[test]
    fn lowering_memo_hits_on_repeated_context_extraction() {
        let p = parse_pred("s.price > 3").unwrap();
        let q = parse_pred("s.price > 5").unwrap();
        let c = parse_pred("s.price < 50").unwrap();
        let mut o = oracle_for(&[&p, &q, &c]);
        let (fp, fq, fc) = (o.lower_pred(&p), o.lower_pred(&q), o.lower_pred(&c));
        o.sat_f(fp, &[fc]);
        let stats = o.context().lowering_memo_stats();
        assert_eq!(stats.hits, 0);
        assert!(stats.misses >= 2, "{stats:?}");
        assert!(stats.entries >= 2);
        assert!(stats.bytes > 0);
        // Different formula, same context: the context tree is a hit.
        o.sat_f(fq, &[fc]);
        let stats = o.context().lowering_memo_stats();
        assert!(stats.hits >= 1, "{stats:?}");
    }

    #[test]
    fn transitivity_through_shared_vars() {
        let p = parse_pred("l.beer = s1.beer AND l.beer = s2.beer").unwrap();
        let q = parse_pred("l.beer = s1.beer AND s1.beer = s2.beer").unwrap();
        let mut o = oracle_for(&[&p, &q]);
        assert_eq!(o.equiv_pred(&p, &q, &[]), TriBool::True);
    }

    #[test]
    fn integer_tightening_gt_vs_ge() {
        let p = parse_pred("s1.price > s2.price").unwrap();
        let q = parse_pred("s1.price >= s2.price + 1").unwrap();
        let mut o = oracle_for(&[&p, &q]);
        assert_eq!(o.equiv_pred(&p, &q, &[]), TriBool::True);
    }

    #[test]
    fn string_typing_via_inference() {
        let p = parse_pred("l.drinker = 'Amy'").unwrap();
        let o = oracle_for(&[&p]);
        assert_eq!(o.types().type_of(&ColRef::new("l", "drinker")), SqlType::Str);
        // Propagated through equalities:
        let q = parse_pred("l.drinker = f.drinker AND l.drinker = 'Amy'").unwrap();
        let o2 = oracle_for(&[&q]);
        assert_eq!(o2.types().type_of(&ColRef::new("f", "drinker")), SqlType::Str);
    }

    #[test]
    fn column_bounds_extraction() {
        let p = parse_pred("t.a > 100 AND t.b <= 5 AND t.c = 7 AND 3 < t.d").unwrap();
        let b = column_bounds(&p);
        assert_eq!(b[&ColRef::new("t", "a")], (Some(101), None));
        assert_eq!(b[&ColRef::new("t", "b")], (None, Some(5)));
        assert_eq!(b[&ColRef::new("t", "c")], (Some(7), Some(7)));
        assert_eq!(b[&ColRef::new("t", "d")], (Some(4), None));
        // Disjunctions contribute nothing.
        let p2 = parse_pred("t.a > 100 OR t.b < 5").unwrap();
        assert!(column_bounds(&p2).is_empty());
    }

    #[test]
    fn paper_example3_max_bound() {
        // WHERE A > 100 makes HAVING MAX(A) >= 101 redundant.
        let where_pred = parse_pred("r.a > 100").unwrap();
        let having = parse_pred("MAX(r.a) >= 101").unwrap();
        let mut o = oracle_for(&[&where_pred, &having]);
        let env = LowerEnv::plain();
        let h = o.lower_pred_env(&having, &env);
        let axioms = o.aggregate_axioms(&where_pred);
        assert!(!axioms.is_empty());
        // MAX(A) >= 101 is implied by the axioms: ¬(MAX(A) ≥ 101) unsat.
        let nh = o.not_f(h);
        assert_eq!(o.unsat_f(nh, &axioms), TriBool::True);
    }

    #[test]
    fn paper_example10_having_equivalence() {
        // H*: A>B+3 ∧ 2*SUM(D)>10 ; H: C>B+3 ∧ SUM(D*2)>10 ∧ A>4
        // under context A=C ∧ A>4 (grouped columns A, B, C).
        let h_star = parse_pred("g.a > g.b + 3 AND 2 * SUM(s.d) > 10").unwrap();
        let h = parse_pred("g.c > g.b + 3 AND SUM(s.d * 2) > 10 AND g.a > 4").unwrap();
        let ctx_pred = parse_pred("g.a = g.c AND g.a > 4").unwrap();
        let mut o = oracle_for(&[&h_star, &h, &ctx_pred]);
        let grouped: BTreeSet<ColRef> = [
            ColRef::new("g", "a"),
            ColRef::new("g", "b"),
            ColRef::new("g", "c"),
        ]
        .into_iter()
        .collect();
        let env = LowerEnv::grouped(grouped);
        let fs = o.lower_pred_env(&h_star, &env);
        let fh = o.lower_pred_env(&h, &env);
        let mut ctx = vec![o.lower_pred_env(&ctx_pred, &env)];
        ctx.extend(o.aggregate_axioms(&ctx_pred));
        assert_eq!(o.equiv_f(fs, fh, &ctx), TriBool::True);
    }

    #[test]
    fn count_expr_equals_count_star() {
        let a = parse_scalar("COUNT(t.x)").unwrap();
        let b = parse_scalar("COUNT(*)").unwrap();
        let p = parse_pred("COUNT(t.x) > 0").unwrap();
        let mut o = oracle_for(&[&p]);
        assert_eq!(
            o.equiv_scalar_env(&a, &b, &LowerEnv::plain(), &[]),
            TriBool::True
        );
    }

    #[test]
    fn count_star_plus_one_not_equiv() {
        // The footnote-1 mistake: COUNT(*)+1 is NOT COUNT(*).
        let a = parse_scalar("COUNT(*)").unwrap();
        let b = parse_scalar("COUNT(*) + 1").unwrap();
        let mut o = oracle_for(&[]);
        assert_eq!(
            o.equiv_scalar_env(&a, &b, &LowerEnv::plain(), &[]),
            TriBool::False
        );
    }

    #[test]
    fn min_max_affine_rewrites() {
        let mut o = oracle_for(&[]);
        let env = LowerEnv::plain();
        // MIN(-x) = -MAX(x): lower both and check equivalence.
        let e1 = parse_scalar("MIN(0 - t.x)").unwrap();
        let e2 = parse_scalar("0 - MAX(t.x)").unwrap();
        assert_eq!(o.equiv_scalar_env(&e1, &e2, &env, &[]), TriBool::True);
        // MAX(2*x + 1) = 2*MAX(x) + 1
        let e3 = parse_scalar("MAX(2 * t.x + 1)").unwrap();
        let e4 = parse_scalar("2 * MAX(t.x) + 1").unwrap();
        assert_eq!(o.equiv_scalar_env(&e3, &e4, &env, &[]), TriBool::True);
    }

    #[test]
    fn sum_linearity() {
        let mut o = oracle_for(&[]);
        let env = LowerEnv::plain();
        let e1 = parse_scalar("SUM(t.x + t.y)").unwrap();
        let e2 = parse_scalar("SUM(t.x) + SUM(t.y)").unwrap();
        assert_eq!(o.equiv_scalar_env(&e1, &e2, &env, &[]), TriBool::True);
        let e3 = parse_scalar("SUM(t.x + 1)").unwrap();
        let e4 = parse_scalar("SUM(t.x) + COUNT(*)").unwrap();
        assert_eq!(o.equiv_scalar_env(&e3, &e4, &env, &[]), TriBool::True);
        // SUM(x) ≠ SUM(y) in general.
        let e5 = parse_scalar("SUM(t.x)").unwrap();
        let e6 = parse_scalar("SUM(t.y)").unwrap();
        assert_eq!(o.equiv_scalar_env(&e5, &e6, &env, &[]), TriBool::False);
    }

    #[test]
    fn grouped_column_aggregates_collapse() {
        let mut o = oracle_for(&[]);
        let g: BTreeSet<ColRef> = [ColRef::new("t", "x")].into_iter().collect();
        let env = LowerEnv::grouped(g);
        let e1 = parse_scalar("MIN(t.x)").unwrap();
        let e2 = parse_scalar("t.x").unwrap();
        let e3 = parse_scalar("MAX(t.x)").unwrap();
        assert_eq!(o.equiv_scalar_env(&e1, &e2, &env, &[]), TriBool::True);
        assert_eq!(o.equiv_scalar_env(&e1, &e3, &env, &[]), TriBool::True);
    }

    #[test]
    fn affine_normalization() {
        let e = parse_scalar("2 * (t.x + 3) - t.x").unwrap();
        let aff = affine_of(&e).unwrap();
        assert_eq!(aff.k, 6);
        assert_eq!(aff.coeffs[&ColRef::new("t", "x")], 1);
        assert!(affine_of(&parse_scalar("t.x * t.y").unwrap()).is_none());
        assert!(affine_of(&parse_scalar("t.x / 2").unwrap()).is_none());
        let div_ok = parse_scalar("(4 * t.x) / 2").unwrap();
        assert_eq!(affine_of(&div_ok).unwrap().coeffs[&ColRef::new("t", "x")], 2);
    }

    #[test]
    fn tuple_tags_give_distinct_vars() {
        let p = parse_pred("t.a = 1").unwrap();
        let mut o = oracle_for(&[&p]);
        let f1 = o.lower_pred_env(&p, &LowerEnv::tuple(1));
        let f2 = o.lower_pred_env(&p, &LowerEnv::tuple(2));
        assert_ne!(f1, f2, "distinct tags intern distinct formulas");
        assert_ne!(format!("{}", o.formula(f1)), format!("{}", o.formula(f2)));
        // t.a@t1 = 1 ∧ t.a@t2 = 2 is satisfiable (different tuples).
        let p2 = parse_pred("t.a = 2").unwrap();
        let f2b = o.lower_pred_env(&p2, &LowerEnv::tuple(2));
        let conj = o.and_f(vec![f1, f2b]);
        assert_eq!(o.sat_f(conj, &[]), TriBool::True);
    }

    #[test]
    fn identical_lowering_shares_one_id() {
        // Hash-consing: lowering the same predicate twice (even as part
        // of a larger one) yields the same FormulaId, and equiv_f's
        // fast path answers without a solver call.
        let p = parse_pred("t.a > 1 AND t.b = 2").unwrap();
        let mut o = oracle_for(&[&p]);
        let f1 = o.lower_pred(&p);
        let f2 = o.lower_pred(&p);
        assert_eq!(f1, f2);
        let calls_before = o.solver_calls;
        assert_eq!(o.equiv_f(f1, f2, &[]), TriBool::True);
        assert_eq!(o.solver_calls, calls_before, "id equality short-circuits");
    }

    #[test]
    fn shared_context_verdicts_cross_oracles() {
        // Two oracles over one SolverContext: the second's identical
        // check is a cross-oracle read-path hit, not a solver call.
        let p = parse_pred("t.a > 1 AND t.a < 0").unwrap();
        let shared = Arc::new(SolverContext::new(0));
        let types = TypeEnv::infer_from_preds(&[&p]);
        let mut o1 = Oracle::with_context(types.clone(), Arc::clone(&shared));
        let mut o2 = Oracle::with_context(types, Arc::clone(&shared));
        assert_eq!(o1.sat_pred(&p, &[]), TriBool::False);
        assert_eq!(o1.verdict_misses, 1);
        assert_eq!(o2.sat_pred(&p, &[]), TriBool::False);
        assert_eq!(o2.verdict_hits, 1, "{:?}", shared);
        assert_eq!(o2.verdict_cross_hits, 1);
        assert_eq!(o2.verdict_misses, 0);
        assert_eq!(shared.verdict_entries(), 1);
        assert!(shared.approx_bytes() > 0);
    }

    #[test]
    fn private_aggregate_record_keeps_axioms_per_oracle() {
        // Two oracles share the context, but axioms only cover the
        // aggregates each oracle lowered itself: o2 never mentioned an
        // aggregate, so its axiom set is empty even though o1 interned
        // MAX(r.a) into the shared tables.
        let where_pred = parse_pred("r.a > 100").unwrap();
        let having = parse_pred("MAX(r.a) >= 101").unwrap();
        let shared = Arc::new(SolverContext::new(0));
        let types = TypeEnv::infer_from_preds(&[&where_pred, &having]);
        let mut o1 = Oracle::with_context(types.clone(), Arc::clone(&shared));
        let mut o2 = Oracle::with_context(types, Arc::clone(&shared));
        let _ = o1.lower_pred_env(&having, &LowerEnv::plain());
        assert!(!o1.aggregate_axioms(&where_pred).is_empty());
        assert!(o2.aggregate_axioms(&where_pred).is_empty());
    }
}

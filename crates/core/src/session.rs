//! Session-oriented grading: compile a hidden target once, advise many
//! working queries against it.
//!
//! The paper's deployment scenario (§1, §10) is one instructor-written
//! target graded against many student submissions, interactively. The
//! stateless [`crate::QrHint::advise_sql`] re-parses, re-resolves and
//! re-lowers the target — and re-derives the table mapping — on every
//! call. This module amortizes all of that target-side work:
//!
//! * [`PreparedTarget`] — the target parsed, resolved and held ready,
//!   with three per-target memo layers:
//!   1. **FROM groups**: the unified target, domain context, and a
//!      persistent [`Oracle`] are derived once per (working FROM
//!      binding, table mapping) pair and shared by every submission that
//!      matches. Since the oracle's variable pool is keyed by column
//!      references (typed by the binding), its memoized solver verdicts
//!      — keyed by lowered formula pairs — stay sound and hit across
//!      submissions in the same group.
//!   2. **Stage memos**: each solver-backed stage (WHERE, GROUP BY,
//!      HAVING) is memoized by its exact inputs, so a [`TutorSession`]
//!      step that repairs a later stage pays no solver work for the
//!      unchanged earlier stages — and a submission that shares, say, a
//!      WHERE clause with an earlier one reuses its verdict outright.
//!      A memo hit requires identical stage inputs, so cached verdicts
//!      are sound by construction.
//!   3. **Advice cache**: identical resolved submissions (classrooms
//!      produce many duplicate answers) are graded once.
//! * [`PreparedTarget::grade_batch`] — classroom-scale bulk grading.
//! * [`TutorSession`] — the incremental advise→apply loop of the user
//!   study, one stage interaction per [`TutorSession::step`].
//!
//! Interior state lives behind a `Mutex`, so one `PreparedTarget` is
//! `Send + Sync` and can be shared across threads. Note the lock is held
//! for the duration of each advise, so advises against *one* target are
//! serialized — a parallel grading service should shard by target (one
//! `PreparedTarget` per question), which is also where the memo layers
//! pay off.
//!
//! ```
//! use qrhint_core::QrHint;
//! use qrhint_sqlast::{Schema, SqlType};
//!
//! let schema = Schema::new().with_table(
//!     "Serves",
//!     &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
//!     &["bar", "beer"],
//! );
//! let qr = QrHint::new(schema);
//! let prepared = qr
//!     .compile_target("SELECT s.bar FROM Serves s WHERE s.price >= 3")
//!     .unwrap();
//! // Grade many submissions against the one prepared target.
//! let advices = prepared.grade_batch(&[
//!     "SELECT s.bar FROM Serves s WHERE s.price > 3",
//!     "SELECT x.bar FROM Serves x WHERE x.price >= 3",
//! ]);
//! assert!(!advices[0].as_ref().unwrap().is_equivalent());
//! assert!(advices[1].as_ref().unwrap().is_equivalent());
//! ```

use crate::error::{QrHintError, QrResult};
use crate::hint::Stage;
use crate::mapping::{table_mapping, unify_target, TableMapping};
use crate::oracle::Oracle;
use crate::pipeline::{Advice, QrHintConfig};
use crate::runner::{run_stages, StageInputs};
use crate::stages::from_stage;
use qrhint_sqlast::{resolve::resolve_query, Pred, Query, Schema};
use qrhint_sqlparse::{parse_query, parse_query_extended, FlattenOptions};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Cumulative counters for one [`PreparedTarget`] (diagnostics and the
/// session-API benchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SessionStats {
    /// Total advise calls answered (including cache hits).
    pub advise_calls: u64,
    /// Calls answered from the whole-advice cache (duplicate
    /// submissions).
    pub advice_cache_hits: u64,
    /// Distinct (working-FROM binding, table mapping) pairs seen (each
    /// owns one oracle).
    pub from_groups: u64,
    /// Calls that reused a FROM group's memoized unified target/oracle.
    pub mapping_reuses: u64,
    /// Solver checks issued across all group oracles.
    pub solver_calls: u64,
}

/// Per-(FROM-binding, table-mapping) memoized derivations. Submissions
/// sharing both are compared against the identical unified target, so
/// everything here is reusable verbatim; the binding fixes the column
/// typing, so the oracle's variable pool — and therefore its
/// formula-keyed verdict cache — is sound across the group.
///
/// The table mapping itself is *recomputed per submission* (cheap and
/// solver-free) rather than cached by binding: for self-join targets,
/// `table_mapping` aligns aliases by predicate signatures, so two
/// submissions with the same FROM clause can need different mappings —
/// reusing the first submission's mapping would misgrade the second
/// (stage-wise clause comparison requires the right alignment).
struct FromGroup {
    mapping: TableMapping,
    unified: Query,
    domain_ctx: Vec<Pred>,
    oracle: Oracle,
    memos: crate::runner::StageMemos,
}

/// Alias → table binding of a working query's FROM clause.
type FromBinding = BTreeMap<String, String>;

/// Memo-group key: the FROM binding plus the table mapping chosen for
/// the submission.
type FromKey = (FromBinding, TableMapping);

#[derive(Default)]
struct TargetState {
    groups: HashMap<FromKey, FromGroup>,
    advice_cache: HashMap<Query, Advice>,
    stats: SessionStats,
}

/// A target query compiled for advise-many grading: parsed, resolved,
/// and carrying the per-target memo layers described in the
/// [module docs](self).
///
/// Construct via [`crate::QrHint::compile_target`] (SQL) or
/// [`crate::QrHint::prepare_target`] (an already-resolved [`Query`]).
pub struct PreparedTarget {
    schema: Schema,
    cfg: QrHintConfig,
    target: Query,
    state: Mutex<TargetState>,
}

impl std::fmt::Debug for PreparedTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedTarget")
            .field("target", &self.target.to_string())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl PreparedTarget {
    pub(crate) fn new(schema: Schema, cfg: QrHintConfig, target: Query) -> PreparedTarget {
        PreparedTarget { schema, cfg, target, state: Mutex::new(TargetState::default()) }
    }

    /// The resolved target query (the hidden `Q★`).
    pub fn target(&self) -> &Query {
        &self.target
    }

    /// The schema the session is bound to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configuration the session was compiled with.
    pub fn config(&self) -> &QrHintConfig {
        &self.cfg
    }

    /// Snapshot of the cumulative session counters.
    pub fn stats(&self) -> SessionStats {
        let st = self.state.lock().unwrap();
        let mut stats = st.stats;
        stats.solver_calls = st.groups.values().map(|g| g.oracle.solver_calls).sum();
        stats
    }

    /// Parse and resolve a working query against the session schema.
    pub fn prepare(&self, sql: &str) -> QrResult<Query> {
        let q = parse_query(sql)?;
        Ok(resolve_query(&self.schema, &q)?)
    }

    /// [`PreparedTarget::prepare`] with the multi-block front-end.
    pub fn prepare_extended(&self, sql: &str, opts: &FlattenOptions) -> QrResult<Query> {
        let q = parse_query_extended(sql, opts)?;
        Ok(resolve_query(&self.schema, &q)?)
    }

    /// Advise on one working query given as SQL.
    pub fn advise_sql(&self, working_sql: &str) -> QrResult<Advice> {
        let q = self.prepare(working_sql)?;
        self.advise(&q)
    }

    /// Advise on one resolved working query: the first failing stage's
    /// hints, with every memo layer engaged.
    pub fn advise(&self, q: &Query) -> QrResult<Advice> {
        self.advise_inner(q, true)
    }

    /// One-shot advise for the stateless [`crate::QrHint::advise`]
    /// wrapper: stage/verdict memos still apply, but the whole-advice
    /// cache is bypassed (a throwaway target would pay its two clones
    /// for nothing).
    pub(crate) fn advise_uncached(&self, q: &Query) -> QrResult<Advice> {
        self.advise_inner(q, false)
    }

    /// Grade a batch of submissions. Per-submission failures (malformed
    /// or unsupported student SQL) are reported in place so one bad
    /// submission never aborts a classroom batch.
    pub fn grade_batch<S: AsRef<str>>(&self, submissions: &[S]) -> Vec<QrResult<Advice>> {
        submissions.iter().map(|sql| self.advise_sql(sql.as_ref())).collect()
    }

    /// Start an incremental tutoring session from a resolved working
    /// query. Multiple sessions may share one prepared target.
    pub fn tutor(&self, working: Query) -> TutorSession<'_> {
        TutorSession { prepared: self, working, done: false, trail: Vec::new() }
    }

    /// Start a tutoring session from working SQL.
    pub fn tutor_sql(&self, working_sql: &str) -> QrResult<TutorSession<'_>> {
        Ok(self.tutor(self.prepare(working_sql)?))
    }

    /// The advise walk. `use_advice_cache` gates only the whole-advice
    /// duplicate cache (skipped for one-shot stateless wrappers, where
    /// populating it is pure overhead); the per-stage and solver-verdict
    /// memos always apply.
    fn advise_inner(&self, q: &Query, use_advice_cache: bool) -> QrResult<Advice> {
        let mut guard = self.state.lock().unwrap();
        let TargetState { groups, advice_cache, stats } = &mut *guard;
        stats.advise_calls += 1;
        if use_advice_cache {
            if let Some(hit) = advice_cache.get(q) {
                stats.advice_cache_hits += 1;
                return Ok(hit.clone());
            }
        }

        // ---- Stage 1: FROM ---- (always cheap: a multiset compare)
        let from_out = from_stage::check_from(&self.target, q);
        let advice = if !from_out.viable {
            Advice {
                stage: Stage::From,
                hints: from_out.hints,
                fixed: Some(from_stage::apply_from_fix(q, &self.target)),
                mapping: None,
            }
        } else {
            // The mapping is recomputed per submission (see [`FromGroup`]
            // docs): it aligns self-joined aliases by the submission's own
            // predicate signatures, so it cannot be cached by binding.
            let mapping = table_mapping(&self.target, q).ok_or_else(|| {
                QrHintError::Internal("table mapping failed after viable FROM".into())
            })?;
            let binding: FromBinding = q
                .from
                .iter()
                .map(|t| (t.alias.clone(), t.table.clone()))
                .collect();
            let group = match groups.entry((binding, mapping)) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    stats.mapping_reuses += 1;
                    o.into_mut()
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    stats.from_groups += 1;
                    let mapping = v.key().1.clone();
                    let unified = unify_target(&self.target, &mapping);
                    let domain_ctx = self.schema.domain_context(q);
                    let oracle = Oracle::for_queries(&self.schema, &[&unified, q]);
                    v.insert(FromGroup {
                        mapping,
                        unified,
                        domain_ctx,
                        oracle,
                        memos: Default::default(),
                    })
                }
            };
            run_stages(StageInputs {
                oracle: &mut group.oracle,
                unified: &group.unified,
                q,
                cfg: &self.cfg,
                domain_ctx: &group.domain_ctx,
                mapping: &group.mapping,
                memos: &mut group.memos,
            })?
        };
        if use_advice_cache {
            advice_cache.insert(q.clone(), advice.clone());
        }
        Ok(advice)
    }
}

/// A stateful tutoring session against one [`PreparedTarget`]: the
/// advise → apply-fix loop of the paper's user study, one stage
/// interaction per [`TutorSession::step`].
///
/// After a stage's repair is applied, the next step's walk re-verifies
/// the earlier stages through the prepared target's per-stage memos:
/// stages whose inputs the repair left unchanged cost no solver work
/// (their memoized outcome is reused), while a repair that *did* touch
/// an earlier stage's clauses triggers a genuine re-check — so a
/// session's final `Done` is always a fully verified equivalence.
/// [`TutorSession::revise`] accepts an arbitrary user-written revision
/// in place of the suggested fix.
pub struct TutorSession<'a> {
    prepared: &'a PreparedTarget,
    working: Query,
    done: bool,
    trail: Vec<Advice>,
}

impl TutorSession<'_> {
    /// The current working query.
    pub fn working(&self) -> &Query {
        &self.working
    }

    /// Advice received so far, in order (one entry per stage
    /// interaction; ends with the `Done` advice once equivalent).
    pub fn trail(&self) -> &[Advice] {
        &self.trail
    }

    /// Has the session reached equivalence?
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Replace the working query with a user-written revision (instead
    /// of applying the suggested fix).
    pub fn revise(&mut self, working: Query) {
        self.working = working;
        self.done = false;
    }

    /// One interaction: advise on the current working query (unchanged
    /// stages are memo hits) and auto-apply the suggested repair, as the
    /// simulated user of the experiments does. Returns the advice. Once
    /// the session is `Done`, further steps return the final advice
    /// unchanged.
    pub fn step(&mut self) -> QrResult<Advice> {
        if self.done {
            if let Some(last) = self.trail.last() {
                return Ok(last.clone());
            }
        }
        let advice = self.prepared.advise(&self.working)?;
        self.trail.push(advice.clone());
        if advice.is_equivalent() {
            self.done = true;
        } else {
            let fixed = advice.fixed.clone().ok_or_else(|| {
                QrHintError::Internal(format!(
                    "stage {} produced no applicable fix",
                    advice.stage
                ))
            })?;
            self.working = fixed;
        }
        Ok(advice)
    }

    /// Drive [`TutorSession::step`] until equivalence, consuming the
    /// session: the simulated user who applies every suggested repair.
    /// Returns the final (equivalent) query and the advice trail. Errors
    /// if the pipeline does not converge within
    /// [`QrHintConfig::max_stage_applications`] interactions.
    pub fn run_to_completion(mut self) -> QrResult<(Query, Vec<Advice>)> {
        let cap = self.prepared.cfg.max_stage_applications;
        for _ in 0..cap {
            if self.step()?.is_equivalent() {
                return Ok((self.working, self.trail));
            }
        }
        Err(QrHintError::Internal(format!(
            "pipeline did not converge within {cap} stage applications"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QrHint;
    use qrhint_sqlast::SqlType;

    fn beers_schema() -> Schema {
        Schema::new()
            .with_table(
                "Likes",
                &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
                &["drinker", "beer"],
            )
            .with_table(
                "Serves",
                &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
                &["bar", "beer"],
            )
    }

    const TARGET: &str = "SELECT s.bar FROM Serves s WHERE s.price >= 3";

    #[test]
    fn prepared_matches_stateless_advice() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        for working in [
            "SELECT s.bar FROM Serves s WHERE s.price > 3",
            "SELECT x.bar FROM Serves x WHERE x.price >= 3",
            "SELECT l.beer FROM Likes l",
        ] {
            let cold = qr.advise_sql(TARGET, working).unwrap();
            let warm = prepared.advise_sql(working).unwrap();
            assert_eq!(cold.stage, warm.stage, "{working}");
            assert_eq!(cold.hints, warm.hints, "{working}");
            assert_eq!(cold.fixed, warm.fixed, "{working}");
        }
    }

    #[test]
    fn duplicate_submissions_hit_the_advice_cache() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        let sub = "SELECT s.bar FROM Serves s WHERE s.price > 3";
        let batch = [sub, sub, sub, sub];
        let advices = prepared.grade_batch(&batch);
        assert!(advices.iter().all(|a| a.is_ok()));
        let stats = prepared.stats();
        assert_eq!(stats.advise_calls, 4);
        assert_eq!(stats.advice_cache_hits, 3);
        assert_eq!(stats.from_groups, 1);
    }

    #[test]
    fn same_from_binding_shares_one_oracle() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        prepared.advise_sql("SELECT s.bar FROM Serves s WHERE s.price > 3").unwrap();
        prepared.advise_sql("SELECT s.bar FROM Serves s WHERE s.price >= 2").unwrap();
        prepared.advise_sql("SELECT t.bar FROM Serves t WHERE t.price >= 3").unwrap();
        let stats = prepared.stats();
        assert_eq!(stats.from_groups, 2, "s-binding shared, t-binding separate");
        assert_eq!(stats.mapping_reuses, 1);
    }

    #[test]
    fn batch_reports_per_submission_errors() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        let advices = prepared.grade_batch(&[
            "SELECT s.bar FROM Serves s",
            "SELEKT nonsense",
        ]);
        assert!(advices[0].is_ok());
        assert!(matches!(advices[1], Err(QrHintError::Parse(_))));
    }

    #[test]
    fn structure_fix_preserves_lifted_having_conjuncts() {
        // Regression: de-aggregating (Structure fix) used to drop the
        // working HAVING wholesale, losing movable conjuncts the WHERE
        // stage had verified in their lifted position — and a session
        // could then declare a bogus Done. The fix must keep the
        // normalized WHERE, and the session's Done must be genuine.
        let qr = QrHint::new(beers_schema());
        let prepared = qr
            .compile_target(
                "SELECT DISTINCT s.bar FROM Serves s \
                 WHERE s.price > 3 AND s.beer = 'Bud'",
            )
            .unwrap();
        let session = prepared
            .tutor_sql(
                "SELECT s.bar FROM Serves s WHERE s.price > 3 \
                 GROUP BY s.bar, s.beer HAVING s.beer = 'Bud'",
            )
            .unwrap();
        let (final_q, trail) = session.run_to_completion().unwrap();
        assert!(trail.last().unwrap().is_equivalent());
        let cold = qr
            .advise_sql(
                "SELECT DISTINCT s.bar FROM Serves s \
                 WHERE s.price > 3 AND s.beer = 'Bud'",
                &final_q.to_string(),
            )
            .unwrap();
        assert!(cold.is_equivalent(), "bogus Done: {final_q}");
        assert!(final_q.to_string().contains("'Bud'"), "lost conjunct: {final_q}");
    }

    #[test]
    fn tutor_session_converges_with_stage_memos() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr
            .compile_target(
                "SELECT s.bar, COUNT(*) FROM Serves s \
                 WHERE s.price >= 3 GROUP BY s.bar",
            )
            .unwrap();
        let mut session = prepared
            .tutor_sql("SELECT s.bar, COUNT(*) FROM Serves s WHERE s.price > 3 GROUP BY s.bar, s.beer")
            .unwrap();
        let mut stages = Vec::new();
        while !session.is_done() {
            stages.push(session.step().unwrap().stage);
        }
        assert_eq!(*stages.last().unwrap(), Stage::Done);
        assert!(stages.contains(&Stage::Where));
        // Done steps are idempotent.
        assert!(session.step().unwrap().is_equivalent());
        // And the final query is genuinely equivalent per a cold check.
        let final_advice = prepared.advise(session.working()).unwrap();
        assert!(final_advice.is_equivalent());
    }

    #[test]
    fn self_join_submissions_with_swapped_roles_grade_independently() {
        // Regression: the memo group used to cache the table mapping by
        // FROM binding alone, but self-join alias alignment depends on
        // each submission's predicates — a correct answer with the alias
        // roles swapped relative to an earlier submission was misgraded.
        let qr = QrHint::new(beers_schema());
        let prepared = qr
            .compile_target(
                "SELECT a.bar FROM Serves a, Serves b \
                 WHERE a.bar = 'J' AND a.price < b.price",
            )
            .unwrap();
        // First submission fixes the binding {x,y} with mapping a→x, b→y.
        let first = prepared
            .advise_sql(
                "SELECT x.bar FROM Serves x, Serves y \
                 WHERE x.bar = 'J' AND x.price < y.price",
            )
            .unwrap();
        assert!(first.is_equivalent());
        // Same binding, swapped roles: needs mapping a→y, b→x.
        let swapped = prepared
            .advise_sql(
                "SELECT y.bar FROM Serves x, Serves y \
                 WHERE y.bar = 'J' AND y.price < x.price",
            )
            .unwrap();
        assert!(swapped.is_equivalent(), "{:?}", swapped.hints);
        assert_eq!(prepared.stats().from_groups, 2, "one group per mapping");
    }

    #[test]
    fn revise_replaces_the_working_query() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        let mut session =
            prepared.tutor_sql("SELECT s.bar FROM Serves s WHERE s.price > 3").unwrap();
        session.step().unwrap();
        // The user types a fresh (wrong-FROM) attempt instead.
        let revision = prepared.prepare("SELECT l.beer FROM Likes l").unwrap();
        session.revise(revision);
        assert!(!session.is_done());
        let advice = session.step().unwrap();
        assert_eq!(advice.stage, Stage::From);
    }
}

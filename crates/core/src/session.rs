//! Session-oriented grading: compile a hidden target once, advise many
//! working queries against it — concurrently.
//!
//! The paper's deployment scenario (§1, §10) is one instructor-written
//! target graded against many student submissions, interactively. The
//! stateless [`crate::QrHint::advise_sql`] re-parses, re-resolves and
//! re-lowers the target — and re-derives the table mapping — on every
//! call. This module amortizes all of that target-side work:
//!
//! * [`PreparedTarget`] — the target parsed, resolved and held ready,
//!   with three per-target memo layers:
//!   1. **FROM groups**: the unified target, domain context, and column
//!      typing are derived once per (working FROM binding, table
//!      mapping) pair and shared by every submission that matches.
//!   2. **Stage memos**: each solver-backed stage (WHERE, GROUP BY,
//!      HAVING) is memoized by its exact inputs, so a [`TutorSession`]
//!      step that repairs a later stage pays no solver work for the
//!      unchanged earlier stages. A memo hit requires identical stage
//!      inputs, so cached verdicts are sound by construction.
//!   3. **Advice cache**: identical resolved submissions (classrooms
//!      produce many duplicate answers) are graded once. The cache is a
//!      bounded LRU ([`QrHintConfig::advice_cache_capacity`]) so a
//!      resident server can hold a target hot indefinitely;
//!      [`SessionStats`] reports hits, misses, evictions and occupancy,
//!      and [`PreparedTarget::approx_cache_bytes`] /
//!      [`PreparedTarget::shed_caches`] give a registry byte accounting
//!      and an eviction hook.
//! * [`PreparedTarget::grade_batch`] / [`PreparedTarget::grade_batch_parallel`]
//!   — classroom-scale bulk grading, sequential or fanned out over a
//!   scoped worker pool ([`crate::parallel`]).
//! * [`TutorSession`] — the incremental advise→apply loop of the user
//!   study, one stage interaction per [`TutorSession::step`].
//!
//! ## Concurrency model
//!
//! `PreparedTarget` is `Send + Sync`, and — unlike the first session
//! design, which held one whole-state `Mutex` for the duration of every
//! advise — its interior state is sharded so concurrent advises against
//! *one* target genuinely overlap:
//!
//! * The **group map** (FROM binding + table mapping → `FromGroup`)
//!   sits behind an `RwLock`: lookups of existing groups take the read
//!   lock only, so submissions in distinct memo groups never contend.
//!   Group *creation* derives the unified target, domain context and
//!   typing outside the write lock; a racing creator for the same key
//!   simply drops its copy and reuses the winner's.
//! * Each group's solver state — a persistent [`Oracle`] plus the stage
//!   memos — lives in a pool of **lock-striped slots** (`Mutex` each).
//!   An advise takes one free slot; when every slot of a hot group is
//!   busy, the pool grows a fresh oracle (bounded by
//!   `MAX_GROUP_SLOTS`) instead of queueing, so a classroom batch whose
//!   submissions all share one FROM clause still grades in parallel.
//! * All slots of all groups intern formulas into — and **share solver
//!   verdicts through** — one target-wide
//!   [`SolverContext`]: a sharded,
//!   byte-budgeted `(formula, context) → verdict` table keyed by
//!   interned ids, so a verdict decided on one thread is a read-path
//!   hit on every other (PR 3 kept these caches slot-private because
//!   tree keys made sharing cost more than it saved). Sharing stays
//!   deterministic: equal ids mean structurally identical inputs, the
//!   solver is a deterministic function of those inputs, and only
//!   definitive verdicts are cached — so a cross-thread hit returns
//!   exactly what the probing slot would have computed itself. Stage
//!   memos remain slot-private; a memo miss re-pays lookup time but
//!   can never change an answer.
//! * The **whole-advice cache** is an `RwLock` map with a read-path
//!   hit check, so duplicate submissions stay near-free under
//!   contention; LRU recency is refreshed with an atomic stamp, so even
//!   a hit never takes the write lock.
//! * [`SessionStats`] counters are atomics: concurrent advises never
//!   lose updates, and [`PreparedTarget::stats`] never blocks grading.
//!
//! The practical upshot: use [`PreparedTarget::grade_batch_parallel`]
//! (or the CLI's `grade --jobs N`) when batches are large and mostly
//! *distinct* — duplicate-heavy batches are already served by the
//! advice cache, and tiny batches don't amortize thread spawn. Output
//! is byte-identical to the sequential path in input order.
//!
//! ```
//! use qrhint_core::QrHint;
//! use qrhint_sqlast::{Schema, SqlType};
//!
//! let schema = Schema::new().with_table(
//!     "Serves",
//!     &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
//!     &["bar", "beer"],
//! );
//! let qr = QrHint::new(schema);
//! let prepared = qr
//!     .compile_target("SELECT s.bar FROM Serves s WHERE s.price >= 3")
//!     .unwrap();
//! // Grade many submissions against the one prepared target.
//! let advices = prepared.grade_batch_parallel(
//!     &[
//!         "SELECT s.bar FROM Serves s WHERE s.price > 3",
//!         "SELECT x.bar FROM Serves x WHERE x.price >= 3",
//!     ],
//!     2,
//! );
//! assert!(!advices[0].as_ref().unwrap().is_equivalent());
//! assert!(advices[1].as_ref().unwrap().is_equivalent());
//! ```

use crate::error::{QrHintError, QrResult};
use crate::hint::Stage;
use crate::mapping::{table_mapping, unify_target, TableMapping};
use crate::oracle::{Oracle, SolverContext, TypeEnv};
use crate::pipeline::{Advice, QrHintConfig};
use crate::runner::{run_stages, StageInputs, StageMemos};
use crate::stages::from_stage;
use qrhint_sqlast::{resolve::resolve_query, Pred, Query, Schema};
use qrhint_sqlparse::{parse_query, parse_query_extended, FlattenOptions};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Cumulative counters for one [`PreparedTarget`] (diagnostics and the
/// session-API benchmarks). Snapshot of the internal atomic counters;
/// see [`PreparedTarget::stats`] for the cross-thread guarantees.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SessionStats {
    /// Total advise calls answered (including cache hits).
    pub advise_calls: u64,
    /// Calls answered from the whole-advice cache (duplicate
    /// submissions).
    pub advice_cache_hits: u64,
    /// Cache-enabled lookups that missed and had to grade for real.
    /// `advice_cache_hits + advice_cache_misses` counts every advise
    /// that consulted the cache (the stateless one-shot wrappers and a
    /// `advice_cache_capacity = 0` config bypass it).
    pub advice_cache_misses: u64,
    /// Entries LRU-evicted from the advice cache at its capacity bound.
    pub advice_cache_evictions: u64,
    /// Advice-cache entries resident right now (point-in-time).
    pub advice_cache_entries: u64,
    /// Approximate bytes held by the advice cache right now
    /// (point-in-time; the per-entry estimate of
    /// [`PreparedTarget::approx_cache_bytes`]).
    pub advice_cache_bytes: u64,
    /// Distinct (working-FROM binding, table mapping) pairs seen (each
    /// owns one memo group).
    pub from_groups: u64,
    /// Calls that reused an existing FROM group's memoized derivations.
    pub mapping_reuses: u64,
    /// Solver checks issued across all group oracles, accumulated as
    /// each advise completes.
    pub solver_calls: u64,
    /// Checks answered `Unsat` by the interval prescreen instead of the
    /// solver ([`QrHintConfig::static_prescreen`]); a subset of
    /// `verdict_cache_misses`.
    pub solver_calls_skipped: u64,
    /// Stage checks during which at least one prescreen answer landed —
    /// statically-decided predicates resolved (part of) the stage
    /// without solver work.
    pub stages_short_circuited: u64,
    /// Analyzer diagnostics emitted by [`PreparedTarget`] lint runs.
    pub diagnostics_emitted: u64,
    /// Checks answered by the target's **shared verdict cache** (all
    /// slots of all FROM groups probe one sharded table; see
    /// [`crate::oracle::SolverContext`]).
    pub verdict_cache_hits: u64,
    /// Of those hits, how many reused a verdict *another* oracle slot
    /// paid for — the cross-thread sharing PR 3's private caches could
    /// not provide.
    pub verdict_cache_cross_thread_hits: u64,
    /// Shared-verdict-cache misses (each one ran the real solver).
    pub verdict_cache_misses: u64,
    /// Entries evicted from the shared verdict cache at its byte budget
    /// ([`QrHintConfig::verdict_cache_max_bytes`]).
    pub verdict_cache_evictions: u64,
    /// Shared-verdict entries resident right now (point-in-time; resets
    /// on [`PreparedTarget::shed_caches`]).
    pub verdict_cache_entries: u64,
    /// Approximate shared-verdict bytes resident right now.
    pub verdict_cache_bytes: u64,
    /// Distinct term nodes in the shared interner right now.
    pub interned_terms: u64,
    /// Distinct formula nodes in the shared interner right now.
    pub interned_formulas: u64,
    /// Interner construction requests answered by an existing node
    /// (hash-consing + negation-memo hits; since the last shed).
    pub interner_dedup_hits: u64,
    /// Approximate bytes of the shared interning tables right now.
    pub interner_bytes: u64,
    /// Literals pushed onto the incremental theory stack across solver
    /// misses (the from-scratch solver counts every retranslation here —
    /// the quadratic work the assumption stack removes).
    pub theory_pushes: u64,
    /// Full theory checks (branch leaves + pruning strides) across
    /// solver misses.
    pub theory_full_checks: u64,
    /// Branches cut by the incremental quick-conflict detector.
    pub quick_conflicts: u64,
    /// Shared-prefix candidate batches issued (SELECT positional
    /// equivalence, GROUP BY Δ− pruning, WHERE-repair verification).
    pub equiv_batches: u64,
    /// Candidate checks routed through those batches.
    pub equiv_batch_candidates: u64,
    /// Tree requests answered by the shared lowering memo (since the
    /// last shed; point-in-time like the interner counters).
    pub lowering_memo_hits: u64,
    /// Tree requests that extracted (and memoized) a fresh tree.
    pub lowering_memo_misses: u64,
    /// Interned formulas with a resident memoized tree right now.
    pub lowering_memo_entries: u64,
    /// Approximate resident bytes of the memoized trees right now.
    pub lowering_memo_bytes: u64,
}

/// The atomic backing store for [`SessionStats`]: plain counters would
/// lose updates under [`PreparedTarget::grade_batch_parallel`], and a
/// stats mutex would re-serialize the advise path the sharding just
/// unlocked.
#[derive(Default)]
struct AtomicStats {
    advise_calls: AtomicU64,
    advice_cache_hits: AtomicU64,
    advice_cache_misses: AtomicU64,
    advice_cache_evictions: AtomicU64,
    /// Mirrors of the cache's occupancy, updated under its write lock,
    /// so a stats snapshot never has to take the cache lock.
    advice_cache_entries: AtomicU64,
    advice_cache_bytes: AtomicU64,
    from_groups: AtomicU64,
    mapping_reuses: AtomicU64,
    solver_calls: AtomicU64,
    solver_calls_skipped: AtomicU64,
    stages_short_circuited: AtomicU64,
    diagnostics_emitted: AtomicU64,
    verdict_cache_hits: AtomicU64,
    verdict_cache_cross_thread_hits: AtomicU64,
    verdict_cache_misses: AtomicU64,
    verdict_cache_evictions: AtomicU64,
    theory_pushes: AtomicU64,
    theory_full_checks: AtomicU64,
    quick_conflicts: AtomicU64,
    equiv_batches: AtomicU64,
    equiv_batch_candidates: AtomicU64,
}

impl AtomicStats {
    /// Snapshot of the accumulated counters; the point-in-time context
    /// fields (verdict entries/bytes, interner occupancy) are filled in
    /// by [`PreparedTarget::stats`].
    fn snapshot(&self) -> SessionStats {
        SessionStats {
            advise_calls: self.advise_calls.load(Ordering::Relaxed),
            advice_cache_hits: self.advice_cache_hits.load(Ordering::Relaxed),
            advice_cache_misses: self.advice_cache_misses.load(Ordering::Relaxed),
            advice_cache_evictions: self.advice_cache_evictions.load(Ordering::Relaxed),
            advice_cache_entries: self.advice_cache_entries.load(Ordering::Relaxed),
            advice_cache_bytes: self.advice_cache_bytes.load(Ordering::Relaxed),
            from_groups: self.from_groups.load(Ordering::Relaxed),
            mapping_reuses: self.mapping_reuses.load(Ordering::Relaxed),
            solver_calls: self.solver_calls.load(Ordering::Relaxed),
            solver_calls_skipped: self.solver_calls_skipped.load(Ordering::Relaxed),
            stages_short_circuited: self.stages_short_circuited.load(Ordering::Relaxed),
            diagnostics_emitted: self.diagnostics_emitted.load(Ordering::Relaxed),
            verdict_cache_hits: self.verdict_cache_hits.load(Ordering::Relaxed),
            verdict_cache_cross_thread_hits: self
                .verdict_cache_cross_thread_hits
                .load(Ordering::Relaxed),
            verdict_cache_misses: self.verdict_cache_misses.load(Ordering::Relaxed),
            verdict_cache_evictions: self.verdict_cache_evictions.load(Ordering::Relaxed),
            verdict_cache_entries: 0,
            verdict_cache_bytes: 0,
            interned_terms: 0,
            interned_formulas: 0,
            interner_dedup_hits: 0,
            interner_bytes: 0,
            theory_pushes: self.theory_pushes.load(Ordering::Relaxed),
            theory_full_checks: self.theory_full_checks.load(Ordering::Relaxed),
            quick_conflicts: self.quick_conflicts.load(Ordering::Relaxed),
            equiv_batches: self.equiv_batches.load(Ordering::Relaxed),
            equiv_batch_candidates: self.equiv_batch_candidates.load(Ordering::Relaxed),
            lowering_memo_hits: 0,
            lowering_memo_misses: 0,
            lowering_memo_entries: 0,
            lowering_memo_bytes: 0,
        }
    }
}

/// Upper bound on the per-group slot pool: enough for the `--jobs 8`
/// sweet spot with headroom, small enough that a pathological hammer
/// can't allocate unbounded oracles.
const MAX_GROUP_SLOTS: usize = 8;

/// One lock stripe of a group's mutable solver state: a persistent
/// oracle (interning into — and sharing verdicts through — the
/// target-wide [`SolverContext`]) and the per-stage memos. Everything
/// here is only ever touched under the slot's `Mutex`.
struct GroupSlot {
    oracle: Oracle,
    memos: StageMemos,
}

/// Per-(FROM-binding, table-mapping) memoized derivations. Submissions
/// sharing both are compared against the identical unified target, so
/// the immutable fields are shared lock-free by every concurrent advise
/// in the group; the binding fixes the column typing, so each slot's
/// oracle — and therefore its formula-keyed verdict cache — is sound
/// across the group.
///
/// The table mapping itself is *recomputed per submission* (cheap and
/// solver-free) rather than cached by binding: for self-join targets,
/// `table_mapping` aligns aliases by predicate signatures, so two
/// submissions with the same FROM clause can need different mappings —
/// reusing the first submission's mapping would misgrade the second
/// (stage-wise clause comparison requires the right alignment).
struct FromGroup {
    mapping: TableMapping,
    unified: Query,
    domain_ctx: Vec<Pred>,
    /// Column typing fixed by the binding; seeds each new slot's oracle.
    types: TypeEnv,
    /// Interval-prescreen switch propagated to every slot's oracle
    /// ([`QrHintConfig::static_prescreen`]).
    prescreen: bool,
    /// Incremental assumption-stack switch propagated to every slot's
    /// solver ([`QrHintConfig::incremental_solver`]).
    incremental: bool,
    /// Lock-striped solver state. Starts empty; grows on demand up to
    /// [`MAX_GROUP_SLOTS`], so the sequential path pays for exactly one
    /// oracle, as before.
    slots: RwLock<Vec<Arc<Mutex<GroupSlot>>>>,
    /// Round-robin cursor for the all-slots-busy fallback.
    next_slot: AtomicUsize,
}

impl FromGroup {
    fn new_slot(&self, ctx: &Arc<SolverContext>) -> Arc<Mutex<GroupSlot>> {
        let mut oracle = Oracle::with_context(self.types.clone(), Arc::clone(ctx));
        oracle.prescreen = self.prescreen;
        oracle.solver.incremental = self.incremental;
        Arc::new(Mutex::new(GroupSlot { oracle, memos: StageMemos::default() }))
    }

    /// Run `f` with exclusive access to one of the group's slots:
    /// prefer a currently-free slot, grow the pool when all are busy,
    /// and only block (round-robin) once the pool is at its cap.
    ///
    /// `shared` is the target's current-context cell: the context is
    /// re-read at every claim and grow point, so a slot whose oracle is
    /// bound to a context that has since been shed
    /// ([`PreparedTarget::shed_caches`] swaps in a fresh one) is rebuilt
    /// on the spot, and stale slots cannot pin a retired interner
    /// alive. The grow path reads the cell *inside* the slots write
    /// lock: shed swaps the context before it drains the pool (also
    /// under the slots write lock), so a grower either sees the fresh
    /// context or its old-bound slot is in the pool in time to be
    /// drained — never both missed.
    fn with_slot<R>(
        &self,
        shared: &RwLock<Arc<SolverContext>>,
        f: impl FnOnce(&mut GroupSlot) -> R,
    ) -> R {
        let refresh = |slot: &mut GroupSlot| {
            let current = Arc::clone(&shared.read().unwrap());
            if !Arc::ptr_eq(slot.oracle.context(), &current) {
                let mut oracle = Oracle::with_context(self.types.clone(), current);
                oracle.prescreen = self.prescreen;
                oracle.solver.incremental = self.incremental;
                *slot = GroupSlot { oracle, memos: StageMemos::default() };
            }
        };
        // Fast path: claim a free slot. The probe *keeps* the guard it
        // acquired (the Arcs are cloned out of the map first, so the
        // guard can outlive the read lock) — a drop-and-relock probe
        // would let two workers pick the same "free" slot, convoying
        // one behind the other's whole advise while other slots idle.
        let candidates: Vec<Arc<Mutex<GroupSlot>>> =
            self.slots.read().unwrap().iter().map(Arc::clone).collect();
        for slot in &candidates {
            if let Ok(mut guard) = slot.try_lock() {
                refresh(&mut guard);
                return f(&mut guard);
            }
        }
        // All busy: grow (bounded), else block round-robin. A scanner
        // may try_lock a freshly pushed slot before its creator locks
        // it — at worst one advise of waiting, and only at the cap
        // boundary.
        let arc = {
            let mut slots = self.slots.write().unwrap();
            if slots.len() < MAX_GROUP_SLOTS {
                let current = Arc::clone(&shared.read().unwrap());
                let s = self.new_slot(&current);
                slots.push(Arc::clone(&s));
                s
            } else {
                let i = self.next_slot.fetch_add(1, Ordering::Relaxed) % slots.len();
                Arc::clone(&slots[i])
            }
        };
        let mut guard = arc.lock().unwrap();
        refresh(&mut guard);
        f(&mut guard)
    }
}

/// Byte estimates for the cache-accounting API
/// ([`PreparedTarget::approx_cache_bytes`]): per-entry costs of the
/// structures we do not walk exactly. Deliberately coarse — the point is
/// that a registry's byte budget *scales with real usage*, not that the
/// number matches the allocator. The shared interner and verdict cache
/// carry their own accounting ([`SolverContext::approx_bytes`]); these
/// constants cover the per-slot stage memos.
const STAGE_MEMO_ENTRY_BYTES: usize = 512;
const SLOT_BASE_BYTES: usize = 2048;
const GROUP_BASE_BYTES: usize = 2048;

/// One advice-cache entry. `touched` is bumped atomically on read-path
/// hits, so refreshing LRU recency never needs the write lock.
struct AdviceEntry {
    advice: Advice,
    /// Approximate footprint, computed once at insert.
    bytes: usize,
    touched: AtomicU64,
}

/// The bounded whole-advice duplicate cache: an approximate LRU over
/// resolved submissions. Capacity comes from
/// [`QrHintConfig::advice_cache_capacity`]; eviction scans for the
/// stalest stamp (O(n), but n is the configured capacity and an
/// eviction is always preceded by a full grading run, so the scan is
/// noise).
#[derive(Default)]
struct AdviceCache {
    map: HashMap<Query, AdviceEntry>,
    /// Sum of the entries' byte estimates.
    bytes: usize,
}

/// Approximate footprint of one cached advice: the stored key + advice
/// are tree structures whose size tracks their rendered SQL, plus a
/// constant for map/struct overhead.
fn approx_advice_bytes(q: &Query, advice: &Advice) -> usize {
    let mut n = 256 + 2 * q.to_string().len();
    if let Some(fixed) = &advice.fixed {
        n += 2 * fixed.to_string().len();
    }
    n + advice.hints.len() * 96
}

/// Alias → table binding of a working query's FROM clause.
type FromBinding = BTreeMap<String, String>;

/// Memo-group key: the FROM binding plus the table mapping chosen for
/// the submission.
type FromKey = (FromBinding, TableMapping);

/// A target query compiled for advise-many grading: parsed, resolved,
/// and carrying the per-target memo layers and sharded concurrency
/// state described in the [module docs](self).
///
/// Construct via [`crate::QrHint::compile_target`] (SQL) or
/// [`crate::QrHint::prepare_target`] (an already-resolved [`Query`]).
pub struct PreparedTarget {
    schema: Schema,
    cfg: QrHintConfig,
    target: Query,
    groups: RwLock<HashMap<FromKey, Arc<FromGroup>>>,
    /// The target-wide interning + shared-verdict state every oracle
    /// slot binds to. [`PreparedTarget::shed_caches`] swaps in a fresh
    /// context; in-flight advises finish safely against the old `Arc`.
    shared: RwLock<Arc<SolverContext>>,
    advice_cache: RwLock<AdviceCache>,
    /// Monotonic stamp source for the advice cache's LRU ordering.
    cache_clock: AtomicU64,
    stats: AtomicStats,
}

// One `PreparedTarget` is shared by every worker of a parallel grading
// run; losing either bound would silently re-serialize the release
// builds that depend on it.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<PreparedTarget>();

impl std::fmt::Debug for PreparedTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedTarget")
            .field("target", &self.target.to_string())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl PreparedTarget {
    pub(crate) fn new(schema: Schema, cfg: QrHintConfig, target: Query) -> PreparedTarget {
        let shared = Arc::new(SolverContext::new(cfg.verdict_cache_max_bytes));
        PreparedTarget {
            schema,
            cfg,
            target,
            groups: RwLock::new(HashMap::new()),
            shared: RwLock::new(shared),
            advice_cache: RwLock::new(AdviceCache::default()),
            cache_clock: AtomicU64::new(0),
            stats: AtomicStats::default(),
        }
    }

    /// The current shared solver context (interner + verdict cache).
    fn solver_context(&self) -> Arc<SolverContext> {
        Arc::clone(&self.shared.read().unwrap())
    }

    /// The resolved target query (the hidden `Q★`).
    pub fn target(&self) -> &Query {
        &self.target
    }

    /// The schema the session is bound to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configuration the session was compiled with.
    pub fn config(&self) -> &QrHintConfig {
        &self.cfg
    }

    /// Snapshot of the cumulative session counters. Never blocks an
    /// in-flight advise (the counters are atomics); a snapshot taken
    /// *during* a concurrent batch may straddle advises, but once the
    /// batch has joined, `advise_calls` equals the number of
    /// submissions and `solver_calls` covers all completed work.
    ///
    /// The interner and verdict-cache occupancy fields are point-in-time
    /// reads of the current shared context (they reset when
    /// [`PreparedTarget::shed_caches`] swaps it); the hit/miss/eviction
    /// counters are cumulative across sheds. The context `Arc` is read
    /// once and all of its counters come from one
    /// [`SolverContext::stats_snapshot`] pass, so a snapshot taken
    /// while a concurrent shed swaps contexts describes exactly one
    /// context — never a mix of pre- and post-shed numbers.
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.stats.snapshot();
        let ctx = self.solver_context();
        let snap = ctx.stats_snapshot();
        stats.verdict_cache_entries = snap.verdict_entries;
        stats.verdict_cache_bytes = snap.verdict_bytes;
        stats.interned_terms = snap.interner.terms;
        stats.interned_formulas = snap.interner.formulas;
        stats.interner_dedup_hits = snap.interner.dedup_hits;
        stats.interner_bytes = snap.interner.bytes;
        stats.lowering_memo_hits = snap.lowering_memo.hits;
        stats.lowering_memo_misses = snap.lowering_memo.misses;
        stats.lowering_memo_entries = snap.lowering_memo.entries;
        stats.lowering_memo_bytes = snap.lowering_memo.bytes;
        stats
    }

    /// Parse and resolve a working query against the session schema.
    pub fn prepare(&self, sql: &str) -> QrResult<Query> {
        let q = parse_query(sql)?;
        Ok(resolve_query(&self.schema, &q)?)
    }

    /// [`PreparedTarget::prepare`] with the multi-block front-end.
    pub fn prepare_extended(&self, sql: &str, opts: &FlattenOptions) -> QrResult<Query> {
        let q = parse_query_extended(sql, opts)?;
        Ok(resolve_query(&self.schema, &q)?)
    }

    /// Advise on one working query given as SQL.
    pub fn advise_sql(&self, working_sql: &str) -> QrResult<Advice> {
        let q = self.prepare(working_sql)?;
        self.advise(&q)
    }

    /// Run the schema-aware static analyzer on a resolved working query:
    /// typed lints, aggregate-placement dataflow, and the interval
    /// abstract interpreter — no solver work. Diagnostics are
    /// deterministic and sorted; the emitted count is accumulated in
    /// [`SessionStats::diagnostics_emitted`].
    pub fn lint(&self, q: &Query) -> Vec<qrhint_analysis::Diagnostic> {
        let diags = qrhint_analysis::analyze(&self.schema, q);
        self.stats.diagnostics_emitted.fetch_add(diags.len() as u64, Ordering::Relaxed);
        diags
    }

    /// [`PreparedTarget::lint`] on working SQL.
    pub fn lint_sql(&self, working_sql: &str) -> QrResult<Vec<qrhint_analysis::Diagnostic>> {
        let q = self.prepare(working_sql)?;
        Ok(self.lint(&q))
    }

    /// Advise on one resolved working query: the first failing stage's
    /// hints, with every memo layer engaged.
    pub fn advise(&self, q: &Query) -> QrResult<Advice> {
        self.advise_inner(q, true)
    }

    /// One-shot advise for the stateless [`crate::QrHint::advise`]
    /// wrapper: stage/verdict memos still apply, but the whole-advice
    /// cache is bypassed (a throwaway target would pay its two clones
    /// for nothing).
    pub(crate) fn advise_uncached(&self, q: &Query) -> QrResult<Advice> {
        self.advise_inner(q, false)
    }

    /// Grade a batch of submissions. Per-submission failures (malformed
    /// or unsupported student SQL) are reported in place so one bad
    /// submission never aborts a classroom batch.
    pub fn grade_batch<S: AsRef<str>>(&self, submissions: &[S]) -> Vec<QrResult<Advice>> {
        submissions.iter().map(|sql| self.advise_sql(sql.as_ref())).collect()
    }

    /// [`PreparedTarget::grade_batch`] fanned out over a scoped worker
    /// pool of up to `jobs` threads ([`crate::parallel::run_indexed`]).
    ///
    /// Result `i` always corresponds to submission `i`, and every
    /// advice is identical to what the sequential path produces —
    /// grading is deterministic, and the sharded memo state never
    /// changes answers (see the [module docs](self)). `jobs <= 1`
    /// degrades to the sequential loop on the calling thread.
    pub fn grade_batch_parallel<S: AsRef<str> + Sync>(
        &self,
        submissions: &[S],
        jobs: usize,
    ) -> Vec<QrResult<Advice>> {
        crate::parallel::run_indexed(submissions.len(), jobs, |i| {
            self.advise_sql(submissions[i].as_ref())
        })
    }

    /// Start an incremental tutoring session from a resolved working
    /// query. Multiple sessions may share one prepared target.
    pub fn tutor(&self, working: Query) -> TutorSession<'_> {
        TutorSession { prepared: self, working, done: false, trail: Vec::new() }
    }

    /// Start a tutoring session from working SQL.
    pub fn tutor_sql(&self, working_sql: &str) -> QrResult<TutorSession<'_>> {
        Ok(self.tutor(self.prepare(working_sql)?))
    }

    /// Look up (read lock only) or create the memo group for `key`.
    ///
    /// Creation derives the group's immutable state *outside* the write
    /// lock — it is solver-free (alias unification, domain-context
    /// instantiation, column typing), and if two threads race on the
    /// same fresh key the loser just drops its copy, counting as a
    /// reuse. `from_groups` is bumped only by the one thread whose
    /// insert wins, so it counts distinct keys exactly.
    fn group_for(&self, key: FromKey, q: &Query) -> Arc<FromGroup> {
        if let Some(g) = self.groups.read().unwrap().get(&key) {
            self.stats.mapping_reuses.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(g);
        }
        let mapping = key.1.clone();
        let unified = unify_target(&self.target, &mapping);
        let domain_ctx = self.schema.domain_context(q);
        let types = TypeEnv::from_queries(&self.schema, &[&unified, q]);
        let fresh = Arc::new(FromGroup {
            mapping,
            unified,
            domain_ctx,
            types,
            prescreen: self.cfg.static_prescreen,
            incremental: self.cfg.incremental_solver,
            slots: RwLock::new(Vec::new()),
            next_slot: AtomicUsize::new(0),
        });
        match self.groups.write().unwrap().entry(key) {
            std::collections::hash_map::Entry::Occupied(o) => {
                self.stats.mapping_reuses.fetch_add(1, Ordering::Relaxed);
                Arc::clone(o.get())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.stats.from_groups.fetch_add(1, Ordering::Relaxed);
                Arc::clone(v.insert(fresh))
            }
        }
    }

    /// The advise walk. `use_advice_cache` gates only the whole-advice
    /// duplicate cache (skipped for one-shot stateless wrappers, where
    /// populating it is pure overhead); the per-stage and solver-verdict
    /// memos always apply.
    fn advise_inner(&self, q: &Query, use_advice_cache: bool) -> QrResult<Advice> {
        let _span = qrhint_obs::span("advise");
        self.stats.advise_calls.fetch_add(1, Ordering::Relaxed);
        let use_advice_cache = use_advice_cache && self.cfg.advice_cache_capacity > 0;
        if use_advice_cache {
            if let Some(hit) = self.advice_cache.read().unwrap().map.get(q) {
                hit.touched.store(self.next_stamp(), Ordering::Relaxed);
                self.stats.advice_cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit.advice.clone());
            }
            self.stats.advice_cache_misses.fetch_add(1, Ordering::Relaxed);
        }

        // ---- Stage 1: FROM ---- (always cheap: a multiset compare)
        let from_out = {
            let _span = qrhint_obs::span("stage:from");
            from_stage::check_from(&self.target, q)
        };
        let advice = if !from_out.viable {
            Advice {
                stage: Stage::From,
                hints: from_out.hints,
                fixed: Some(from_stage::apply_from_fix(q, &self.target)),
                mapping: None,
            }
        } else {
            // The mapping is recomputed per submission (see [`FromGroup`]
            // docs): it aligns self-joined aliases by the submission's own
            // predicate signatures, so it cannot be cached by binding.
            let mapping = table_mapping(&self.target, q).ok_or_else(|| {
                QrHintError::Internal("table mapping failed after viable FROM".into())
            })?;
            let binding: FromBinding = q
                .from
                .iter()
                .map(|t| (t.alias.clone(), t.table.clone()))
                .collect();
            let group = self.group_for((binding, mapping), q);
            group.with_slot(&self.shared, |slot| {
                let calls = slot.oracle.solver_calls;
                let hits = slot.oracle.verdict_hits;
                let cross = slot.oracle.verdict_cross_hits;
                let misses = slot.oracle.verdict_misses;
                let evictions = slot.oracle.verdict_evictions;
                let skips = slot.oracle.prescreen_skips;
                let shorts = slot.oracle.stage_short_circuits;
                let pushes = slot.oracle.theory_pushes;
                let fulls = slot.oracle.theory_full_checks;
                let quicks = slot.oracle.quick_conflicts;
                let batches = slot.oracle.equiv_batches;
                let batch_cands = slot.oracle.equiv_batch_candidates;
                let advice = run_stages(StageInputs {
                    oracle: &mut slot.oracle,
                    unified: &group.unified,
                    q,
                    cfg: &self.cfg,
                    domain_ctx: &group.domain_ctx,
                    mapping: &group.mapping,
                    memos: &mut slot.memos,
                });
                let o = &slot.oracle;
                self.stats
                    .solver_calls
                    .fetch_add(o.solver_calls - calls, Ordering::Relaxed);
                self.stats
                    .verdict_cache_hits
                    .fetch_add(o.verdict_hits - hits, Ordering::Relaxed);
                self.stats
                    .verdict_cache_cross_thread_hits
                    .fetch_add(o.verdict_cross_hits - cross, Ordering::Relaxed);
                self.stats
                    .verdict_cache_misses
                    .fetch_add(o.verdict_misses - misses, Ordering::Relaxed);
                self.stats
                    .verdict_cache_evictions
                    .fetch_add(o.verdict_evictions - evictions, Ordering::Relaxed);
                self.stats
                    .solver_calls_skipped
                    .fetch_add(o.prescreen_skips - skips, Ordering::Relaxed);
                self.stats
                    .stages_short_circuited
                    .fetch_add(o.stage_short_circuits - shorts, Ordering::Relaxed);
                self.stats
                    .theory_pushes
                    .fetch_add(o.theory_pushes - pushes, Ordering::Relaxed);
                self.stats
                    .theory_full_checks
                    .fetch_add(o.theory_full_checks - fulls, Ordering::Relaxed);
                self.stats
                    .quick_conflicts
                    .fetch_add(o.quick_conflicts - quicks, Ordering::Relaxed);
                self.stats
                    .equiv_batches
                    .fetch_add(o.equiv_batches - batches, Ordering::Relaxed);
                self.stats
                    .equiv_batch_candidates
                    .fetch_add(o.equiv_batch_candidates - batch_cands, Ordering::Relaxed);
                advice
            })?
        };
        if use_advice_cache {
            self.cache_insert(q, &advice);
        }
        Ok(advice)
    }

    fn next_stamp(&self) -> u64 {
        self.cache_clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Insert into the bounded advice cache, LRU-evicting down to the
    /// configured capacity. Racing duplicates may both insert; the
    /// advices are identical (deterministic grading), so replacement is
    /// harmless. The entry just inserted carries the freshest stamp, so
    /// it is never the eviction victim.
    fn cache_insert(&self, q: &Query, advice: &Advice) {
        let cap = self.cfg.advice_cache_capacity;
        let bytes = approx_advice_bytes(q, advice);
        let mut cache = self.advice_cache.write().unwrap();
        let entry = AdviceEntry {
            advice: advice.clone(),
            bytes,
            touched: AtomicU64::new(self.next_stamp()),
        };
        if let Some(prev) = cache.map.insert(q.clone(), entry) {
            cache.bytes -= prev.bytes;
        }
        cache.bytes += bytes;
        while cache.map.len() > cap {
            let victim = cache
                .map
                .iter()
                .min_by_key(|(_, e)| e.touched.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(evicted) = cache.map.remove(&victim) {
                cache.bytes -= evicted.bytes;
                self.stats.advice_cache_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.stats.advice_cache_entries.store(cache.map.len() as u64, Ordering::Relaxed);
        self.stats.advice_cache_bytes.store(cache.bytes as u64, Ordering::Relaxed);
    }

    /// Approximate bytes held by this target's rebuildable caches: the
    /// advice cache (exact per-entry estimates), the shared solver
    /// context (interner tables + shared verdict cache, self-accounted),
    /// and every FROM group's solver slots (stage memos, estimated per
    /// entry; a slot busy grading right now is counted at a flat base
    /// cost rather than blocking on its lock). The `qr-hint serve`
    /// registry steers its byte-budget eviction with this number.
    pub fn approx_cache_bytes(&self) -> usize {
        let mut total = self.stats.advice_cache_bytes.load(Ordering::Relaxed) as usize;
        total += self.solver_context().approx_bytes();
        for group in self.groups.read().unwrap().values() {
            total += GROUP_BASE_BYTES;
            let slots: Vec<Arc<Mutex<GroupSlot>>> =
                group.slots.read().unwrap().iter().map(Arc::clone).collect();
            for slot in &slots {
                total += SLOT_BASE_BYTES;
                if let Ok(guard) = slot.try_lock() {
                    total += guard.memos.len() * STAGE_MEMO_ENTRY_BYTES;
                }
            }
        }
        total
    }

    /// Drop every rebuildable cache — the whole-advice cache, the shared
    /// solver context (interner tables **and** the shared verdict
    /// cache), and each FROM group's solver slots (persistent oracles,
    /// stage memos) — while keeping the compiled target and the groups'
    /// immutable derivations (unified target, domain context, typing).
    /// Returns the approximate bytes freed, interner included, so the
    /// server registry's byte budget stays truthful after shedding.
    ///
    /// This is the eviction hook a resident server uses as a middle
    /// ground: a shed target re-pays solver time on its next request
    /// but no target-compilation time, while a dropped target pays
    /// both. Safe under concurrent grading: the context is *swapped*,
    /// not drained — an advise holding a slot keeps its `Arc`s (slot and
    /// old context) alive until it finishes, its interned ids stay
    /// valid, and the next claim of a stale slot rebinds it to the
    /// fresh context (`FromGroup::with_slot`).
    pub fn shed_caches(&self) -> usize {
        let mut freed = {
            let mut cache = self.advice_cache.write().unwrap();
            let freed = cache.bytes;
            let dropped = cache.map.len() as u64;
            cache.map.clear();
            cache.bytes = 0;
            self.stats.advice_cache_evictions.fetch_add(dropped, Ordering::Relaxed);
            self.stats.advice_cache_entries.store(0, Ordering::Relaxed);
            self.stats.advice_cache_bytes.store(0, Ordering::Relaxed);
            freed
        };
        let fresh = Arc::new(SolverContext::new(self.cfg.verdict_cache_max_bytes));
        let old = std::mem::replace(&mut *self.shared.write().unwrap(), fresh);
        freed += old.approx_bytes();
        for group in self.groups.read().unwrap().values() {
            let slots: Vec<Arc<Mutex<GroupSlot>>> =
                std::mem::take(&mut *group.slots.write().unwrap());
            for slot in &slots {
                freed += SLOT_BASE_BYTES;
                if let Ok(guard) = slot.try_lock() {
                    freed += guard.memos.len() * STAGE_MEMO_ENTRY_BYTES;
                }
            }
        }
        freed
    }
}

/// A stateful tutoring session against one [`PreparedTarget`]: the
/// advise → apply-fix loop of the paper's user study, one stage
/// interaction per [`TutorSession::step`].
///
/// After a stage's repair is applied, the next step's walk re-verifies
/// the earlier stages through the prepared target's per-stage memos:
/// stages whose inputs the repair left unchanged cost no solver work
/// (their memoized outcome is reused), while a repair that *did* touch
/// an earlier stage's clauses triggers a genuine re-check — so a
/// session's final `Done` is always a fully verified equivalence.
/// [`TutorSession::revise`] accepts an arbitrary user-written revision
/// in place of the suggested fix.
pub struct TutorSession<'a> {
    prepared: &'a PreparedTarget,
    working: Query,
    done: bool,
    trail: Vec<Advice>,
}

impl TutorSession<'_> {
    /// The current working query.
    pub fn working(&self) -> &Query {
        &self.working
    }

    /// Advice received so far, in order (one entry per stage
    /// interaction; ends with the `Done` advice once equivalent).
    pub fn trail(&self) -> &[Advice] {
        &self.trail
    }

    /// Has the session reached equivalence?
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Replace the working query with a user-written revision (instead
    /// of applying the suggested fix).
    pub fn revise(&mut self, working: Query) {
        self.working = working;
        self.done = false;
    }

    /// One interaction: advise on the current working query (unchanged
    /// stages are memo hits) and auto-apply the suggested repair, as the
    /// simulated user of the experiments does. Returns the advice. Once
    /// the session is `Done`, further steps return the final advice
    /// unchanged.
    pub fn step(&mut self) -> QrResult<Advice> {
        if self.done {
            if let Some(last) = self.trail.last() {
                return Ok(last.clone());
            }
        }
        let advice = self.prepared.advise(&self.working)?;
        self.trail.push(advice.clone());
        if advice.is_equivalent() {
            self.done = true;
        } else {
            let fixed = advice.fixed.clone().ok_or_else(|| {
                QrHintError::Internal(format!(
                    "stage {} produced no applicable fix",
                    advice.stage
                ))
            })?;
            self.working = fixed;
        }
        Ok(advice)
    }

    /// Drive [`TutorSession::step`] until equivalence, consuming the
    /// session: the simulated user who applies every suggested repair.
    /// Returns the final (equivalent) query and the advice trail. Errors
    /// if the pipeline does not converge within
    /// [`QrHintConfig::max_stage_applications`] interactions.
    pub fn run_to_completion(mut self) -> QrResult<(Query, Vec<Advice>)> {
        let cap = self.prepared.cfg.max_stage_applications;
        for _ in 0..cap {
            if self.step()?.is_equivalent() {
                return Ok((self.working, self.trail));
            }
        }
        Err(QrHintError::Internal(format!(
            "pipeline did not converge within {cap} stage applications"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QrHint;
    use qrhint_sqlast::SqlType;

    fn beers_schema() -> Schema {
        Schema::new()
            .with_table(
                "Likes",
                &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
                &["drinker", "beer"],
            )
            .with_table(
                "Serves",
                &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
                &["bar", "beer"],
            )
    }

    const TARGET: &str = "SELECT s.bar FROM Serves s WHERE s.price >= 3";

    #[test]
    fn prepared_matches_stateless_advice() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        for working in [
            "SELECT s.bar FROM Serves s WHERE s.price > 3",
            "SELECT x.bar FROM Serves x WHERE x.price >= 3",
            "SELECT l.beer FROM Likes l",
        ] {
            let cold = qr.advise_sql(TARGET, working).unwrap();
            let warm = prepared.advise_sql(working).unwrap();
            assert_eq!(cold.stage, warm.stage, "{working}");
            assert_eq!(cold.hints, warm.hints, "{working}");
            assert_eq!(cold.fixed, warm.fixed, "{working}");
        }
    }

    #[test]
    fn duplicate_submissions_hit_the_advice_cache() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        let sub = "SELECT s.bar FROM Serves s WHERE s.price > 3";
        let batch = [sub, sub, sub, sub];
        let advices = prepared.grade_batch(&batch);
        assert!(advices.iter().all(|a| a.is_ok()));
        let stats = prepared.stats();
        assert_eq!(stats.advise_calls, 4);
        assert_eq!(stats.advice_cache_hits, 3);
        assert_eq!(stats.from_groups, 1);
    }

    #[test]
    fn same_from_binding_shares_one_group() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        prepared.advise_sql("SELECT s.bar FROM Serves s WHERE s.price > 3").unwrap();
        prepared.advise_sql("SELECT s.bar FROM Serves s WHERE s.price >= 2").unwrap();
        prepared.advise_sql("SELECT t.bar FROM Serves t WHERE t.price >= 3").unwrap();
        let stats = prepared.stats();
        assert_eq!(stats.from_groups, 2, "s-binding shared, t-binding separate");
        assert_eq!(stats.mapping_reuses, 1);
    }

    #[test]
    fn sequential_grading_uses_a_single_slot_per_group() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        for price in 1..6 {
            prepared
                .advise_sql(&format!("SELECT s.bar FROM Serves s WHERE s.price >= {price}"))
                .unwrap();
        }
        let groups = prepared.groups.read().unwrap();
        assert_eq!(groups.len(), 1);
        let group = groups.values().next().unwrap();
        assert_eq!(
            group.slots.read().unwrap().len(),
            1,
            "uncontended grading must not grow the slot pool"
        );
    }

    #[test]
    fn advice_cache_is_lru_bounded() {
        let qr = QrHint::with_config(
            beers_schema(),
            QrHintConfig { advice_cache_capacity: 2, ..QrHintConfig::default() },
        );
        let prepared = qr.compile_target(TARGET).unwrap();
        let sub = |price: i64| format!("SELECT s.bar FROM Serves s WHERE s.price >= {price}");
        prepared.advise_sql(&sub(1)).unwrap();
        prepared.advise_sql(&sub(2)).unwrap();
        // Touch price-1 so price-2 is the LRU victim of the next insert.
        prepared.advise_sql(&sub(1)).unwrap();
        prepared.advise_sql(&sub(3)).unwrap();
        let stats = prepared.stats();
        assert_eq!(stats.advice_cache_entries, 2, "capacity bound");
        assert_eq!(stats.advice_cache_evictions, 1);
        assert_eq!(stats.advice_cache_hits, 1);
        assert_eq!(stats.advice_cache_misses, 3);
        assert!(stats.advice_cache_bytes > 0);
        // price-1 survived (it was touched), price-2 did not.
        prepared.advise_sql(&sub(1)).unwrap();
        assert_eq!(prepared.stats().advice_cache_hits, 2, "touched entry kept");
        prepared.advise_sql(&sub(2)).unwrap();
        assert_eq!(prepared.stats().advice_cache_hits, 2, "LRU entry evicted");
    }

    #[test]
    fn zero_capacity_disables_the_advice_cache() {
        let qr = QrHint::with_config(
            beers_schema(),
            QrHintConfig { advice_cache_capacity: 0, ..QrHintConfig::default() },
        );
        let prepared = qr.compile_target(TARGET).unwrap();
        let sub = "SELECT s.bar FROM Serves s WHERE s.price > 3";
        prepared.advise_sql(sub).unwrap();
        prepared.advise_sql(sub).unwrap();
        let stats = prepared.stats();
        assert_eq!(stats.advice_cache_hits, 0);
        assert_eq!(stats.advice_cache_misses, 0, "disabled cache counts no lookups");
        assert_eq!(stats.advice_cache_entries, 0);
    }

    #[test]
    fn prescreen_skips_solver_work_without_changing_advice() {
        let contradiction = "SELECT s.bar FROM Serves s WHERE s.price > 5 AND s.price < 3";
        let on = QrHint::new(beers_schema());
        let p_on = on.compile_target(TARGET).unwrap();
        let a_on = p_on.advise_sql(contradiction).unwrap();
        let s_on = p_on.stats();
        assert!(s_on.solver_calls_skipped > 0, "contradiction must be prescreened");
        assert!(s_on.stages_short_circuited > 0);
        assert!(
            s_on.solver_calls_skipped <= s_on.verdict_cache_misses,
            "prescreen answers are a subset of cache misses"
        );

        let off = QrHint::with_config(
            beers_schema(),
            QrHintConfig { static_prescreen: false, ..QrHintConfig::default() },
        );
        let p_off = off.compile_target(TARGET).unwrap();
        let a_off = p_off.advise_sql(contradiction).unwrap();
        let s_off = p_off.stats();
        assert_eq!(s_off.solver_calls_skipped, 0, "switch must disable the prescreen");
        assert_eq!(s_off.stages_short_circuited, 0);
        assert_eq!(a_on.stage, a_off.stage, "prescreen must preserve verdicts");
        assert_eq!(a_on.hints, a_off.hints);
        assert_eq!(a_on.fixed, a_off.fixed);
    }

    #[test]
    fn shed_caches_preserves_answers_and_resets_occupancy() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        let sub = "SELECT s.bar FROM Serves s WHERE s.price > 3";
        let before = prepared.advise_sql(sub).unwrap();
        assert!(prepared.approx_cache_bytes() > 0);
        let freed = prepared.shed_caches();
        assert!(freed > 0);
        let stats = prepared.stats();
        assert_eq!(stats.advice_cache_entries, 0);
        assert_eq!(stats.advice_cache_bytes, 0);
        // Next advise re-pays solver work but answers identically.
        let after = prepared.advise_sql(sub).unwrap();
        assert_eq!(before.stage, after.stage);
        assert_eq!(before.hints, after.hints);
        assert_eq!(before.fixed, after.fixed);
    }

    #[test]
    fn verdict_stats_are_coherent_and_hits_occur_on_repair_workloads() {
        // The repair search re-checks many identical implications, so a
        // WHERE-repair advise must produce shared-verdict hits even
        // sequentially — and every sat call is exactly one hit or miss.
        let qr = QrHint::new(beers_schema());
        let prepared = qr
            .compile_target("SELECT s.bar FROM Serves s WHERE s.price >= 3 AND s.beer = 'Bud'")
            .unwrap();
        prepared
            .advise_sql("SELECT s.bar FROM Serves s WHERE s.price > 3 AND s.beer = 'Stout'")
            .unwrap();
        let stats = prepared.stats();
        assert!(stats.solver_calls > 0);
        assert_eq!(
            stats.verdict_cache_hits + stats.verdict_cache_misses,
            stats.solver_calls,
            "every sat call is exactly one hit or one miss: {stats:?}"
        );
        assert!(stats.verdict_cache_hits > 0, "repair search must re-probe: {stats:?}");
        assert!(stats.verdict_cache_entries > 0);
        assert!(stats.verdict_cache_bytes > 0);
        assert!(stats.interned_formulas > 0);
        assert!(stats.interned_terms > 0);
        assert!(stats.interner_dedup_hits > 0, "lowering dedups shared nodes");
        assert!(stats.interner_bytes > 0);
    }

    #[test]
    fn shed_caches_drains_shared_verdicts_and_reports_interner_bytes() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        let sub = "SELECT s.bar FROM Serves s WHERE s.price > 3";
        let before_advice = prepared.advise_sql(sub).unwrap();
        let before = prepared.stats();
        assert!(before.verdict_cache_entries > 0);
        assert!(before.interner_bytes > 0);
        let freed = prepared.shed_caches();
        assert!(
            freed as u64 >= before.interner_bytes + before.verdict_cache_bytes,
            "freed bytes ({freed}) must cover interner + verdict cache ({before:?})"
        );
        let after = prepared.stats();
        assert_eq!(after.verdict_cache_entries, 0, "shared cache drained");
        assert_eq!(after.verdict_cache_bytes, 0);
        assert!(after.interned_terms == 0, "fresh interner");
        assert!(after.interned_formulas <= 2, "only the pre-interned constants remain");
        // Cumulative counters survive the context swap.
        assert_eq!(after.verdict_cache_misses, before.verdict_cache_misses);
        assert_eq!(after.verdict_cache_hits, before.verdict_cache_hits);
        // And grading still answers identically on the fresh context.
        let after_advice = prepared.advise_sql(sub).unwrap();
        assert_eq!(before_advice, after_advice);
    }

    #[test]
    fn batch_reports_per_submission_errors() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        let advices = prepared.grade_batch(&[
            "SELECT s.bar FROM Serves s",
            "SELEKT nonsense",
        ]);
        assert!(advices[0].is_ok());
        assert!(matches!(advices[1], Err(QrHintError::Parse(_))));
    }

    #[test]
    fn parallel_batch_reports_errors_in_place_and_in_order() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        let batch = [
            "SELECT s.bar FROM Serves s",
            "SELEKT nonsense",
            "SELECT s.bar FROM Serves s WHERE s.price >= 3",
        ];
        for jobs in [1, 2, 4, 8] {
            let advices = prepared.grade_batch_parallel(&batch, jobs);
            assert!(advices[0].as_ref().is_ok_and(|a| !a.is_equivalent()), "jobs={jobs}");
            assert!(matches!(advices[1], Err(QrHintError::Parse(_))), "jobs={jobs}");
            assert!(advices[2].as_ref().is_ok_and(|a| a.is_equivalent()), "jobs={jobs}");
        }
    }

    #[test]
    fn structure_fix_preserves_lifted_having_conjuncts() {
        // Regression: de-aggregating (Structure fix) used to drop the
        // working HAVING wholesale, losing movable conjuncts the WHERE
        // stage had verified in their lifted position — and a session
        // could then declare a bogus Done. The fix must keep the
        // normalized WHERE, and the session's Done must be genuine.
        let qr = QrHint::new(beers_schema());
        let prepared = qr
            .compile_target(
                "SELECT DISTINCT s.bar FROM Serves s \
                 WHERE s.price > 3 AND s.beer = 'Bud'",
            )
            .unwrap();
        let session = prepared
            .tutor_sql(
                "SELECT s.bar FROM Serves s WHERE s.price > 3 \
                 GROUP BY s.bar, s.beer HAVING s.beer = 'Bud'",
            )
            .unwrap();
        let (final_q, trail) = session.run_to_completion().unwrap();
        assert!(trail.last().unwrap().is_equivalent());
        let cold = qr
            .advise_sql(
                "SELECT DISTINCT s.bar FROM Serves s \
                 WHERE s.price > 3 AND s.beer = 'Bud'",
                &final_q.to_string(),
            )
            .unwrap();
        assert!(cold.is_equivalent(), "bogus Done: {final_q}");
        assert!(final_q.to_string().contains("'Bud'"), "lost conjunct: {final_q}");
    }

    #[test]
    fn tutor_session_converges_with_stage_memos() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr
            .compile_target(
                "SELECT s.bar, COUNT(*) FROM Serves s \
                 WHERE s.price >= 3 GROUP BY s.bar",
            )
            .unwrap();
        let mut session = prepared
            .tutor_sql("SELECT s.bar, COUNT(*) FROM Serves s WHERE s.price > 3 GROUP BY s.bar, s.beer")
            .unwrap();
        let mut stages = Vec::new();
        while !session.is_done() {
            stages.push(session.step().unwrap().stage);
        }
        assert_eq!(*stages.last().unwrap(), Stage::Done);
        assert!(stages.contains(&Stage::Where));
        // Done steps are idempotent.
        assert!(session.step().unwrap().is_equivalent());
        // And the final query is genuinely equivalent per a cold check.
        let final_advice = prepared.advise(session.working()).unwrap();
        assert!(final_advice.is_equivalent());
    }

    #[test]
    fn self_join_submissions_with_swapped_roles_grade_independently() {
        // Regression: the memo group used to cache the table mapping by
        // FROM binding alone, but self-join alias alignment depends on
        // each submission's predicates — a correct answer with the alias
        // roles swapped relative to an earlier submission was misgraded.
        let qr = QrHint::new(beers_schema());
        let prepared = qr
            .compile_target(
                "SELECT a.bar FROM Serves a, Serves b \
                 WHERE a.bar = 'J' AND a.price < b.price",
            )
            .unwrap();
        // First submission fixes the binding {x,y} with mapping a→x, b→y.
        let first = prepared
            .advise_sql(
                "SELECT x.bar FROM Serves x, Serves y \
                 WHERE x.bar = 'J' AND x.price < y.price",
            )
            .unwrap();
        assert!(first.is_equivalent());
        // Same binding, swapped roles: needs mapping a→y, b→x.
        let swapped = prepared
            .advise_sql(
                "SELECT y.bar FROM Serves x, Serves y \
                 WHERE y.bar = 'J' AND y.price < x.price",
            )
            .unwrap();
        assert!(swapped.is_equivalent(), "{:?}", swapped.hints);
        assert_eq!(prepared.stats().from_groups, 2, "one group per mapping");
    }

    #[test]
    fn revise_replaces_the_working_query() {
        let qr = QrHint::new(beers_schema());
        let prepared = qr.compile_target(TARGET).unwrap();
        let mut session =
            prepared.tutor_sql("SELECT s.bar FROM Serves s WHERE s.price > 3").unwrap();
        session.step().unwrap();
        // The user types a fresh (wrong-FROM) attempt instead.
        let revision = prepared.prepare("SELECT l.beer FROM Likes l").unwrap();
        session.revise(revision);
        assert!(!session.is_done());
        let advice = session.step().unwrap();
        assert_eq!(advice.stage, Stage::From);
    }
}

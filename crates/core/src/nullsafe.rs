//! NULL-handling prototype (§3 "Limitations", item 2).
//!
//! The paper assumes all columns are `NOT NULL` and notes that Qr-Hint
//! "can be extended to handle NULL using the technique in \[58\] of encoding
//! each column with a pair of variables in Z3 (one for its value and the
//! other a Boolean representing whether it is NULL)". This module
//! implements that pair encoding for the WHERE viability check.
//!
//! ## Encoding
//!
//! For every column `c` declared nullable, a companion *indicator* column
//! `c__isnull` is introduced (0 = not null, 1 = null; the domain constraint
//! `0 ≤ c__isnull ≤ 1` is part of the context). Under SQL's three-valued
//! logic a `WHERE` clause keeps exactly the rows on which the predicate
//! evaluates to TRUE — UNKNOWN filters like FALSE — so the right notion of
//! equivalence for the stage-2 viability check `P ⇔ P★` is equality of the
//! *TRUE-sets*. [`encode_where_3vl`] compiles a predicate `P` into a
//! two-valued predicate `T(P)` over values + indicators such that `T(P)`
//! holds iff `P` evaluates to TRUE under 3VL:
//!
//! * `T(atom) = (∧_{c ∈ cols(atom)} c__isnull = 0) ∧ atom` — an atomic
//!   comparison is TRUE only when all referenced columns are non-null and
//!   the comparison holds on their values;
//! * `T(P ∧ Q) = T(P) ∧ T(Q)`, `T(P ∨ Q) = T(P) ∨ T(Q)`;
//! * `T(¬P) = F(P)` with the dual *FALSE-set* encoding
//!   `F(atom) = (∧ c__isnull = 0) ∧ ¬atom`, `F(P ∧ Q) = F(P) ∨ F(Q)`,
//!   `F(P ∨ Q) = F(P) ∧ F(Q)`, `F(¬P) = T(P)`.
//!
//! When a column is null its value variable is unconstrained ("garbage"),
//! which is sound because every atom guards its value variables with the
//! indicators — exactly the two-variable encoding of EQUITAS \[58\].
//!
//! ## Scope
//!
//! This is the prototype the paper sketches as future work: it makes the
//! WHERE-stage viability check (`V2`) NULL-correct, exposed via
//! [`where_equiv_3vl`]. The repair-search machinery and the engine remain
//! two-valued; plugging `T(·)` into `RepairWhere` is mechanical (the
//! encoding is a predicate-to-predicate transformation) but deliberately
//! left out of the default pipeline, matching the paper's published scope.

use qrhint_sqlast::{CmpOp, ColRef, Pred, Scalar};
use qrhint_smt::TriBool;
use std::collections::BTreeSet;

use crate::oracle::Oracle;

/// Suffix distinguishing indicator columns from value columns
/// (re-exported from `qrhint_sqlast` — the convention is shared with the
/// parser's `IS [NOT] NULL` desugaring).
pub use qrhint_sqlast::NULL_INDICATOR_SUFFIX;

/// The indicator column paired with `c` (1 = NULL, 0 = not null).
pub use qrhint_sqlast::null_indicator;

fn not_null_guard(cols: &[ColRef], nullable: &BTreeSet<ColRef>) -> Vec<Pred> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for c in cols {
        if *c == qrhint_sqlast::null_literal() {
            // The NULL-literal pseudo-column is always null: its
            // not-null guard is the constant FALSE, which makes any atom
            // comparing with NULL evaluate to neither TRUE nor FALSE —
            // i.e. UNKNOWN — in both encodings.
            out.push(Pred::False);
        } else if nullable.contains(c) && seen.insert(c.clone()) {
            out.push(Pred::Cmp(
                Scalar::Col(null_indicator(c)),
                CmpOp::Eq,
                Scalar::Int(0),
            ));
        }
    }
    out
}

fn atom_cols(p: &Pred) -> Vec<ColRef> {
    let mut cols = Vec::new();
    p.collect_columns(&mut cols);
    cols
}

/// TRUE-set encoding: the returned two-valued predicate holds iff `p`
/// evaluates to TRUE under SQL 3VL with the given nullable columns.
pub fn encode_where_3vl(p: &Pred, nullable: &BTreeSet<ColRef>) -> Pred {
    truth(p, nullable)
}

fn truth(p: &Pred, nullable: &BTreeSet<ColRef>) -> Pred {
    match p {
        Pred::True => Pred::True,
        Pred::False => Pred::False,
        Pred::Cmp(..) | Pred::Like { .. } => {
            let mut parts = not_null_guard(&atom_cols(p), nullable);
            parts.push(p.clone());
            Pred::and(parts)
        }
        Pred::And(cs) => Pred::and(cs.iter().map(|c| truth(c, nullable)).collect()),
        Pred::Or(cs) => Pred::or(cs.iter().map(|c| truth(c, nullable)).collect()),
        Pred::Not(inner) => falsity(inner, nullable),
    }
}

fn falsity(p: &Pred, nullable: &BTreeSet<ColRef>) -> Pred {
    match p {
        Pred::True => Pred::False,
        Pred::False => Pred::True,
        Pred::Cmp(..) | Pred::Like { .. } => {
            let mut parts = not_null_guard(&atom_cols(p), nullable);
            parts.push(Pred::not(p.clone()));
            Pred::and(parts)
        }
        Pred::And(cs) => Pred::or(cs.iter().map(|c| falsity(c, nullable)).collect()),
        Pred::Or(cs) => Pred::and(cs.iter().map(|c| falsity(c, nullable)).collect()),
        Pred::Not(inner) => truth(inner, nullable),
    }
}

/// Domain constraints for the indicator vocabulary: `0 ≤ c__isnull ≤ 1`
/// for every *nullable* column mentioned (by value or by an explicit
/// `IS NULL` indicator atom), and `c__isnull = 0` for indicators whose
/// base column is **not** nullable.
pub fn indicator_domain(preds: &[&Pred], nullable: &BTreeSet<ColRef>) -> Vec<Pred> {
    let mut ranged = BTreeSet::new();
    let mut pinned = BTreeSet::new();
    for p in preds {
        let mut v = Vec::new();
        p.collect_columns(&mut v);
        for c in v {
            if let Some(base_col) = c.column.strip_suffix(NULL_INDICATOR_SUFFIX) {
                // Explicit indicator reference (IS NULL desugaring):
                // range-constrain it when the base column is nullable,
                // pin it to 0 otherwise — `x IS NULL` over a NOT NULL
                // column is statically false, and pinning makes the
                // solver see that.
                let base = ColRef::new(&c.table, base_col);
                if nullable.contains(&base) {
                    ranged.insert(base);
                } else {
                    pinned.insert(c.clone());
                }
            } else if nullable.contains(&c) {
                ranged.insert(c);
            }
        }
    }
    let mut out: Vec<Pred> = ranged
        .into_iter()
        .map(|c| {
            let ind = Scalar::Col(null_indicator(&c));
            Pred::and(vec![
                Pred::Cmp(ind.clone(), CmpOp::Ge, Scalar::Int(0)),
                Pred::Cmp(ind, CmpOp::Le, Scalar::Int(1)),
            ])
        })
        .collect();
    out.extend(
        pinned
            .into_iter()
            .map(|ind| Pred::Cmp(Scalar::Col(ind), CmpOp::Eq, Scalar::Int(0))),
    );
    out
}

/// The NULL-correct stage-2 viability check: do `p` and `q` select the
/// same rows under 3VL WHERE semantics, for every assignment of values
/// *and* NULL patterns over the nullable columns?
///
/// Returns [`TriBool::True`] / [`TriBool::False`] only on definite solver
/// answers; `Unknown` is propagated, preserving the paper's soundness
/// contract (§3: act only on definite answers).
///
/// ```
/// use qrhint_core::nullsafe::where_equiv_3vl;
/// use qrhint_sqlast::ColRef;
/// use qrhint_sqlparse::parse_pred;
/// use std::collections::BTreeSet;
///
/// let p = parse_pred("t.a >= 3 OR t.a < 3").unwrap(); // tautology…
/// let q = qrhint_sqlast::Pred::True;
/// assert!(where_equiv_3vl(&p, &q, &BTreeSet::new()).is_true());
/// // …until t.a may be NULL: then the disjunction can be UNKNOWN,
/// // which WHERE filters out.
/// let nullable: BTreeSet<ColRef> = [ColRef::new("t", "a")].into_iter().collect();
/// assert!(where_equiv_3vl(&p, &q, &nullable).is_false());
/// ```
pub fn where_equiv_3vl(p: &Pred, q: &Pred, nullable: &BTreeSet<ColRef>) -> TriBool {
    let tp = encode_where_3vl(p, nullable);
    let tq = encode_where_3vl(q, nullable);
    let dom = indicator_domain(&[p, q], nullable);
    let mut all: Vec<&Pred> = vec![&tp, &tq];
    all.extend(dom.iter());
    let mut oracle = Oracle::for_preds(&all);
    let ctx: Vec<&Pred> = dom.iter().collect();
    oracle.equiv_pred(&tp, &tq, &ctx)
}

/// Witness-style counterpart of [`where_equiv_3vl`]: can `p` be TRUE
/// while `q` is not TRUE (or vice versa) under some NULL pattern? Used by
/// tests and diagnostics to show that a NULL-oblivious equivalence breaks
/// once columns become nullable.
pub fn where_differ_3vl(p: &Pred, q: &Pred, nullable: &BTreeSet<ColRef>) -> TriBool {
    match where_equiv_3vl(p, q, nullable) {
        TriBool::True => TriBool::False,
        TriBool::False => TriBool::True,
        TriBool::Unknown => TriBool::Unknown,
    }
}

/// Three-valued reference evaluator over integer assignments (`None` =
/// NULL): the executable semantics the encoding is tested against.
/// Returns `None` for UNKNOWN.
///
/// Only integer-valued columns and comparison atoms are supported — this
/// is a specification artifact for differential testing, not an engine.
pub fn eval_3vl(
    p: &Pred,
    assign: &std::collections::BTreeMap<ColRef, Option<i64>>,
) -> Option<bool> {
    fn eval_scalar(
        e: &Scalar,
        assign: &std::collections::BTreeMap<ColRef, Option<i64>>,
    ) -> Option<i64> {
        match e {
            Scalar::Col(c) => assign.get(c).copied().flatten(),
            Scalar::Int(v) => Some(*v),
            Scalar::Str(_) => None,
            Scalar::Arith(l, op, r) => {
                let (l, r) = (eval_scalar(l, assign)?, eval_scalar(r, assign)?);
                Some(match op {
                    qrhint_sqlast::ArithOp::Add => l.wrapping_add(r),
                    qrhint_sqlast::ArithOp::Sub => l.wrapping_sub(r),
                    qrhint_sqlast::ArithOp::Mul => l.wrapping_mul(r),
                    qrhint_sqlast::ArithOp::Div => {
                        if r == 0 {
                            return None;
                        }
                        l.div_euclid(r)
                    }
                })
            }
            Scalar::Neg(inner) => Some(-eval_scalar(inner, assign)?),
            Scalar::Agg(_) => None,
        }
    }
    match p {
        Pred::True => Some(true),
        Pred::False => Some(false),
        Pred::Cmp(l, op, r) => {
            let l = eval_scalar(l, assign);
            let r = eval_scalar(r, assign);
            match (l, r) {
                (Some(l), Some(r)) => Some(op.eval(&l, &r)),
                _ => None, // NULL operand ⇒ UNKNOWN
            }
        }
        Pred::Like { .. } => None,
        Pred::And(cs) => {
            let mut any_unknown = false;
            for c in cs {
                match eval_3vl(c, assign) {
                    Some(false) => return Some(false),
                    Some(true) => {}
                    None => any_unknown = true,
                }
            }
            if any_unknown {
                None
            } else {
                Some(true)
            }
        }
        Pred::Or(cs) => {
            let mut any_unknown = false;
            for c in cs {
                match eval_3vl(c, assign) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => any_unknown = true,
                }
            }
            if any_unknown {
                None
            } else {
                Some(false)
            }
        }
        Pred::Not(inner) => eval_3vl(inner, assign).map(|b| !b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::parse_pred;
    use std::collections::BTreeMap;

    fn nullable(cols: &[(&str, &str)]) -> BTreeSet<ColRef> {
        cols.iter().map(|(t, c)| ColRef::new(t, c)).collect()
    }

    #[test]
    fn indicator_naming() {
        let c = ColRef::new("t", "a");
        let i = null_indicator(&c);
        assert_eq!(i.to_string(), "t.a__isnull");
    }

    #[test]
    fn tautology_breaks_under_null() {
        // A >= B OR A < B is a tautology over NOT NULL integers (Brass
        // issue 8) — but NOT a tautology once A may be NULL.
        let p = parse_pred("t.a >= t.b OR t.a < t.b").unwrap();
        let q = parse_pred("TRUE").unwrap();
        assert!(where_equiv_3vl(&p, &q, &nullable(&[])).is_true());
        assert!(
            where_equiv_3vl(&p, &q, &nullable(&[("t", "a")])).is_false(),
            "with nullable a the disjunction can be UNKNOWN, which WHERE drops"
        );
    }

    #[test]
    fn double_negation_safe_under_null() {
        // ¬¬P has the same TRUE-set as P even under 3VL.
        let p = parse_pred("t.a > 5").unwrap();
        let q = parse_pred("NOT (NOT (t.a > 5))").unwrap();
        assert!(where_equiv_3vl(&p, &q, &nullable(&[("t", "a")])).is_true());
    }

    #[test]
    fn de_morgan_safe_under_null() {
        let p = parse_pred("NOT (t.a > 5 AND t.b < 3)").unwrap();
        let q = parse_pred("t.a <= 5 OR t.b >= 3").unwrap();
        let ns = nullable(&[("t", "a"), ("t", "b")]);
        assert!(where_equiv_3vl(&p, &q, &ns).is_true());
    }

    #[test]
    fn excluded_middle_rewrite_unsafe_under_null() {
        // `a = b OR a <> b` versus TRUE — classic NULL trap.
        let p = parse_pred("t.a = t.b OR t.a <> t.b").unwrap();
        let q = Pred::True;
        let ns = nullable(&[("t", "b")]);
        assert!(where_equiv_3vl(&p, &q, &BTreeSet::new()).is_true());
        assert!(where_equiv_3vl(&p, &q, &ns).is_false());
    }

    #[test]
    fn unaffected_columns_do_not_change_verdicts() {
        // Nullability of a column not mentioned in either predicate is
        // irrelevant.
        let p = parse_pred("t.a > 5").unwrap();
        let q = parse_pred("t.a >= 6").unwrap();
        let ns = nullable(&[("t", "zzz")]);
        assert!(where_equiv_3vl(&p, &q, &ns).is_true());
    }

    #[test]
    fn integer_tightening_still_works_with_guards() {
        // a > 5 ⇔ a >= 6 over integers survives the guard wrapping: both
        // sides share the same indicator guard.
        let p = parse_pred("t.a > 5").unwrap();
        let q = parse_pred("t.a >= 6").unwrap();
        let ns = nullable(&[("t", "a")]);
        assert!(where_equiv_3vl(&p, &q, &ns).is_true());
    }

    #[test]
    fn conjunct_dropping_detected_under_null() {
        // P ∧ (b = b) ⇔ P holds with b NOT NULL but not when b is
        // nullable (b = b is UNKNOWN for NULL b).
        let p = parse_pred("t.a > 1 AND t.b = t.b").unwrap();
        let q = parse_pred("t.a > 1").unwrap();
        assert!(where_equiv_3vl(&p, &q, &BTreeSet::new()).is_true());
        assert!(where_equiv_3vl(&p, &q, &nullable(&[("t", "b")])).is_false());
    }

    #[test]
    fn encoding_matches_reference_evaluator_exhaustively() {
        // Exhaustive differential test on a small domain: for every
        // assignment of {NULL, 0, 1, 2} to (a, b), the 2VL evaluation of
        // the encoding equals "3VL evaluation is TRUE".
        let preds = [
            "t.a > t.b",
            "t.a = t.b OR t.a < 1",
            "NOT (t.a >= t.b)",
            "t.a > 0 AND (t.b < 2 OR NOT (t.a = t.b))",
            "NOT (t.a = 1 AND NOT (t.b = 2))",
        ];
        let a = ColRef::new("t", "a");
        let b = ColRef::new("t", "b");
        let ns: BTreeSet<ColRef> = [a.clone(), b.clone()].into_iter().collect();
        let domain: [Option<i64>; 4] = [None, Some(0), Some(1), Some(2)];
        for src in preds {
            let p = parse_pred(src).unwrap();
            let enc = encode_where_3vl(&p, &ns);
            for va in domain {
                for vb in domain {
                    let mut assign: BTreeMap<ColRef, Option<i64>> = BTreeMap::new();
                    assign.insert(a.clone(), va);
                    assign.insert(b.clone(), vb);
                    // Extended assignment: value vars get arbitrary
                    // defaults when NULL (guards make them irrelevant);
                    // indicators reflect the pattern.
                    let mut ext = assign.clone();
                    ext.insert(a.clone(), Some(va.unwrap_or(77)));
                    ext.insert(b.clone(), Some(vb.unwrap_or(77)));
                    ext.insert(null_indicator(&a), Some(i64::from(va.is_none())));
                    ext.insert(null_indicator(&b), Some(i64::from(vb.is_none())));
                    let two_valued = eval_3vl(&enc, &ext);
                    let three_valued = eval_3vl(&p, &assign);
                    assert_eq!(
                        two_valued,
                        Some(three_valued == Some(true)),
                        "pred {src:?}, a={va:?}, b={vb:?}: encoding {enc}"
                    );
                }
            }
        }
    }

    #[test]
    fn is_null_predicates_roundtrip_through_parser() {
        use qrhint_sqlparse::parse_pred_nullable;
        // `a IS NULL` desugars to the indicator atom; it is never
        // UNKNOWN, so it needs no guard in the encoding.
        let p = parse_pred_nullable("t.a IS NULL").unwrap();
        assert_eq!(p.to_string(), "t.a__isnull = 1");
        let np = parse_pred_nullable("t.a IS NOT NULL").unwrap();
        assert_eq!(np.to_string(), "t.a__isnull <> 1");
        // The strict parser still rejects IS NULL.
        assert!(qrhint_sqlparse::parse_pred("t.a IS NULL").is_err());
    }

    #[test]
    fn coalesce_style_rewrite_with_is_null() {
        use qrhint_sqlparse::parse_pred_nullable;
        // `a > 5 OR a IS NULL` vs `NOT (a <= 5)`: equivalent over NOT
        // NULL columns, different once a is nullable (the NULL rows are
        // kept by the first and dropped by the second).
        let p = parse_pred_nullable("t.a > 5 OR t.a IS NULL").unwrap();
        let q = parse_pred_nullable("NOT (t.a <= 5)").unwrap();
        let ns = nullable(&[("t", "a")]);
        assert!(where_equiv_3vl(&p, &q, &BTreeSet::new()).is_true());
        assert!(where_equiv_3vl(&p, &q, &ns).is_false());
        // And the IS NULL-completed working predicate matches the 3VL
        // truth of `a > 5` extended with the NULL rows explicitly.
        let r = parse_pred_nullable("t.a > 5 OR t.a IS NULL").unwrap();
        assert!(where_equiv_3vl(&p, &r, &ns).is_true());
    }

    #[test]
    fn is_null_on_arithmetic_desugars_per_column() {
        use qrhint_sqlparse::parse_pred_nullable;
        let p = parse_pred_nullable("t.a + t.b IS NULL").unwrap();
        let s = p.to_string();
        assert!(s.contains("t.a__isnull = 1"), "{s}");
        assert!(s.contains("t.b__isnull = 1"), "{s}");
        assert!(s.contains("OR"), "{s}");
        // Literals are never NULL.
        let q = parse_pred_nullable("5 IS NULL").unwrap();
        assert_eq!(q, Pred::False);
        let nq = parse_pred_nullable("5 IS NOT NULL").unwrap();
        assert_eq!(nq, Pred::True);
    }

    #[test]
    fn comparison_with_null_is_detected() {
        use qrhint_sqlparse::parse_pred_nullable;
        // Brass et al. issue 9 ("Comparison with NULL"): `x = NULL` is
        // always UNKNOWN, so under WHERE semantics it is equivalent to
        // FALSE — in positive AND negated positions. The paper's
        // prototype classifies this issue as unsupported; the NULL
        // prototype detects it.
        let ns = nullable(&[("t", "a")]);
        let p = parse_pred_nullable("t.a = NULL").unwrap();
        assert!(where_equiv_3vl(&p, &Pred::False, &ns).is_true());
        assert!(where_equiv_3vl(&p, &Pred::False, &BTreeSet::new()).is_true());
        let np = parse_pred_nullable("NOT (t.a = NULL)").unwrap();
        assert!(
            where_equiv_3vl(&np, &Pred::False, &ns).is_true(),
            "¬UNKNOWN is still UNKNOWN — must stay FALSE under WHERE"
        );
        let ne = parse_pred_nullable("t.a <> NULL").unwrap();
        assert!(where_equiv_3vl(&ne, &Pred::False, &ns).is_true());
        // The dead conjunct poisons the whole conjunction…
        let conj = parse_pred_nullable("t.a > 5 AND t.b = NULL").unwrap();
        let ns2 = nullable(&[("t", "a"), ("t", "b")]);
        assert!(where_equiv_3vl(&conj, &Pred::False, &ns2).is_true());
        // …but a dead disjunct is harmless.
        let disj = parse_pred_nullable("t.a > 5 OR t.b = NULL").unwrap();
        let just_a = parse_pred_nullable("t.a > 5").unwrap();
        assert!(where_equiv_3vl(&disj, &just_a, &ns2).is_true());
        // NULL IS NULL is statically true; NULL IS NOT NULL false.
        let tt = parse_pred_nullable("NULL IS NULL").unwrap();
        assert_eq!(tt, Pred::True);
        let ff = parse_pred_nullable("NULL IS NOT NULL").unwrap();
        assert_eq!(ff, Pred::False);
        // The strict parser still rejects NULL literals.
        assert!(qrhint_sqlparse::parse_pred("t.a = NULL").is_err());
    }

    #[test]
    fn differ_is_the_negation_of_equiv() {
        let p = parse_pred("t.a > 5").unwrap();
        let q = parse_pred("t.a >= 6").unwrap();
        let ns = nullable(&[("t", "a")]);
        assert!(where_differ_3vl(&p, &q, &ns).is_false());
        let r = parse_pred("t.a >= 5").unwrap();
        assert!(where_differ_3vl(&p, &r, &ns).is_true());
    }
}

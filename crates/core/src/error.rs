//! Error type for the Qr-Hint core.

use std::fmt;

/// Result alias.
pub type QrResult<T> = Result<T, QrHintError>;

/// Errors surfaced by the hinting pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QrHintError {
    /// SQL failed to parse.
    Parse(String),
    /// Name resolution / typing failed.
    Resolve(String),
    /// The query uses features outside the supported fragment
    /// (maps to the 35/341 unsupported Students queries in §9).
    Unsupported(String),
    /// An internal invariant failed (never expected; reported rather than
    /// panicking so batch experiments keep running).
    Internal(String),
}

impl fmt::Display for QrHintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QrHintError::Parse(d) => write!(f, "parse error: {d}"),
            QrHintError::Resolve(d) => write!(f, "resolution error: {d}"),
            QrHintError::Unsupported(d) => write!(f, "unsupported SQL feature: {d}"),
            QrHintError::Internal(d) => write!(f, "internal error: {d}"),
        }
    }
}

impl std::error::Error for QrHintError {}

impl From<qrhint_sqlparse::ParseError> for QrHintError {
    fn from(e: qrhint_sqlparse::ParseError) -> Self {
        match e {
            qrhint_sqlparse::ParseError::Unsupported { ref feature, .. } => {
                QrHintError::Unsupported(feature.clone())
            }
            other => QrHintError::Parse(other.to_string()),
        }
    }
}

impl From<qrhint_sqlast::AstError> for QrHintError {
    fn from(e: qrhint_sqlast::AstError) -> Self {
        match e {
            qrhint_sqlast::AstError::UnsupportedFeature { feature } => {
                QrHintError::Unsupported(feature)
            }
            other => QrHintError::Resolve(other.to_string()),
        }
    }
}

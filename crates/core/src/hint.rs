//! Hints: the user-facing output of Qr-Hint.
//!
//! Following §1/Example 2, Qr-Hint produces *repairs* (sites + fixes);
//! the rendering here turns them into the templated natural-language
//! hints used in the user study ("In \[SQL clause\], \[hint\]"), revealing
//! repair sites but (configurably) not the fixes themselves.

use qrhint_sqlast::pred::PredPath;
use qrhint_sqlast::{Pred, Scalar};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The pipeline stages (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    From,
    Where,
    GroupBy,
    Having,
    Select,
    /// All stages cleared: the queries are equivalent.
    Done,
}

impl Stage {
    /// Number of checked stages (`Done` excluded): FROM, WHERE,
    /// GROUP BY, HAVING, SELECT.
    pub const COUNT: usize = 5;
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::From => "FROM",
            Stage::Where => "WHERE",
            Stage::GroupBy => "GROUP BY",
            Stage::Having => "HAVING",
            Stage::Select => "SELECT",
            Stage::Done => "DONE",
        };
        write!(f, "{s}")
    }
}

/// Which predicate clause a repair applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClauseKind {
    Where,
    Having,
}

impl fmt::Display for ClauseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClauseKind::Where => write!(f, "WHERE"),
            ClauseKind::Having => write!(f, "HAVING"),
        }
    }
}

/// One repair site with its fix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteHint {
    /// Path into the clause's predicate tree.
    pub path: PredPath,
    /// The subexpression the user wrote there.
    pub current: Pred,
    /// The synthesized fix (shown to the teaching staff, normally hidden
    /// from students).
    pub fix: Pred,
}

/// A hint.
///
/// Serializes with serde's externally-tagged enum representation, so the
/// CLI's `--json` output (and any service built on [`crate::session`])
/// can be consumed without re-parsing the rendered English. `cost` uses
/// [`f64::MAX`] rather than infinity for the whole-clause-replacement
/// fallback so every variant survives a JSON round-trip (JSON has no
/// representation for non-finite floats).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Hint {
    /// FROM-stage: `table` is referenced `have` times but should be
    /// referenced `want` times.
    FromTableCount { table: String, have: usize, want: usize },
    /// The query is missing (or has spurious) grouping/aggregation
    /// structure (SPJ vs SPJA mismatch, Lemma D.1).
    Structure { needs_grouping: bool },
    /// A predicate repair in WHERE or HAVING.
    PredicateRepair { clause: ClauseKind, sites: Vec<SiteHint>, cost: f64 },
    /// GROUP BY: this expression must be removed (strong minimality of
    /// Δ−, Lemma 6.2).
    GroupByRemove { expr: Scalar },
    /// GROUP BY: some expressions are missing (Δ+ is nonempty; its
    /// contents are deliberately not revealed — weak minimality).
    GroupByMissing { count: usize },
    /// SELECT: the expression at `position` (1-based) is not equivalent
    /// to the expected output column.
    SelectReplace { position: usize, current: Scalar },
    /// SELECT: the expression at `position` is extraneous.
    SelectRemove { position: usize, current: Scalar },
    /// SELECT: `count` output columns are missing at the end.
    SelectMissing { count: usize },
    /// SELECT DISTINCT is needed (or must be dropped).
    DistinctMismatch { need_distinct: bool },
}

impl fmt::Display for Hint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hint::FromTableCount { table, have, want } => {
                if have < want {
                    if *have == 0 {
                        write!(
                            f,
                            "In FROM: it looks like you are missing a table — read the \
                             problem carefully and see what other piece of information \
                             you need (`{table}`)."
                        )
                    } else {
                        write!(
                            f,
                            "In FROM: you need to use table `{table}` more times than \
                             you currently do ({have} of {want})."
                        )
                    }
                } else {
                    write!(
                        f,
                        "In FROM: table `{table}` is used more times than needed \
                         ({have}, expected {want})."
                    )
                }
            }
            Hint::Structure { needs_grouping } => {
                if *needs_grouping {
                    write!(
                        f,
                        "This problem requires grouping/aggregation — consider GROUP BY \
                         and aggregate functions."
                    )
                } else {
                    write!(
                        f,
                        "This problem does not require grouping/aggregation — remove \
                         GROUP BY / aggregates."
                    )
                }
            }
            Hint::PredicateRepair { clause, sites, .. } => {
                write!(f, "In {clause}: ")?;
                for (i, s) in sites.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; also, ")?;
                    }
                    write!(f, "`{}` has a problem — try fixing it", s.current)?;
                }
                write!(f, ".")
            }
            Hint::GroupByRemove { expr } => {
                write!(f, "In GROUP BY: `{expr}` should not appear.")
            }
            Hint::GroupByMissing { count } => {
                if *count == 1 {
                    write!(f, "In GROUP BY: you are missing an expression.")
                } else {
                    write!(f, "In GROUP BY: you are missing {count} expressions.")
                }
            }
            Hint::SelectReplace { position, current } => write!(
                f,
                "In SELECT: the output column #{position} (`{current}`) is not what \
                 the problem asks for."
            ),
            Hint::SelectRemove { position, current } => write!(
                f,
                "In SELECT: the output column #{position} (`{current}`) is extraneous."
            ),
            Hint::SelectMissing { count } => {
                write!(f, "In SELECT: {count} output column(s) are missing.")
            }
            Hint::DistinctMismatch { need_distinct } => {
                if *need_distinct {
                    write!(f, "In SELECT: think about duplicates — DISTINCT is needed.")
                } else {
                    write!(f, "In SELECT: DISTINCT removes duplicates the answer needs.")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::{parse_pred, parse_scalar};

    #[test]
    fn render_from_hint() {
        let h = Hint::FromTableCount { table: "frequents".into(), have: 0, want: 1 };
        let s = h.to_string();
        assert!(s.contains("missing a table"));
        let h2 = Hint::FromTableCount { table: "serves".into(), have: 3, want: 2 };
        assert!(h2.to_string().contains("more times than needed"));
    }

    #[test]
    fn render_predicate_repair() {
        let h = Hint::PredicateRepair {
            clause: ClauseKind::Where,
            sites: vec![SiteHint {
                path: vec![3],
                current: parse_pred("s1.price > s2.price").unwrap(),
                fix: parse_pred("s1.price >= s2.price").unwrap(),
            }],
            cost: 0.25,
        };
        let s = h.to_string();
        assert!(s.starts_with("In WHERE:"));
        assert!(s.contains("s1.price > s2.price"));
        // The fix is not leaked by the default rendering.
        assert!(!s.contains(">="));
    }

    #[test]
    fn render_groupby_and_select() {
        let h = Hint::GroupByRemove { expr: parse_scalar("t.a").unwrap() };
        assert!(h.to_string().contains("should not appear"));
        assert!(Hint::GroupByMissing { count: 1 }.to_string().contains("an expression"));
        assert!(Hint::GroupByMissing { count: 2 }.to_string().contains("2 expressions"));
        let sr = Hint::SelectReplace { position: 2, current: parse_scalar("s2.beer").unwrap() };
        assert!(sr.to_string().contains("#2"));
    }

    #[test]
    fn stage_ordering() {
        assert!(Stage::From < Stage::Where);
        assert!(Stage::Where < Stage::GroupBy);
        assert!(Stage::Select < Stage::Done);
    }
}

//! A minimal scoped worker pool over `std::thread` (the build
//! environment vendors no threading crates, and none are needed): fan a
//! fixed index range out to `jobs` workers and collect the results back
//! in input order.
//!
//! Workers pull indices from a shared atomic counter (work stealing by
//! construction: a worker stuck on an expensive item never blocks the
//! others), tag each result with its index, and the caller reassembles
//! the output vector — so `out[i]` always corresponds to input `i`,
//! regardless of which worker graded it or in what order the workers
//! finished.
//!
//! [`run_indexed`] is the engine behind
//! [`crate::PreparedTarget::grade_batch_parallel`] and the CLI's
//! `grade --jobs N`; it is exposed so callers with richer per-item work
//! (e.g. the CLI reading submission files) can reuse the same pool.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a jobs knob: `0` means "use whatever the hardware offers"
/// (`std::thread::available_parallelism`). This is the shared
/// convention behind the CLI's `--jobs 0|auto` and the server's
/// worker/batch defaults, kept next to [`run_indexed`] so every
/// consumer of the pool resolves the knob the same way.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    }
}

/// Run `f(0), f(1), …, f(n-1)` across up to `jobs` worker threads and
/// return the results in index order.
///
/// * `jobs` is clamped to `1..=n`; with `jobs <= 1` (or `n <= 1`) the
///   closure runs inline on the caller's thread — no pool, identical
///   semantics, so a `jobs` knob can default to 1 with zero overhead.
/// * Threads are scoped ([`std::thread::scope`]), so `f` may borrow from
///   the caller's stack (the prepared target, the submission slice, …).
/// * A panicking worker propagates the panic to the caller after the
///   scope joins the remaining workers.
pub fn run_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    if jobs == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        produced.push((i, f(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // A worker panic surfaces here with its original payload
            // (message, assertion text), exactly as the jobs=1 inline
            // path would; the scope joins the remaining workers first.
            let produced =
                handle.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (i, value) in produced {
                out[i] = Some(value);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index is claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_for_all_job_counts() {
        let input: Vec<usize> = (0..97).collect();
        for jobs in [1, 2, 4, 8, 200] {
            let out = run_indexed(input.len(), jobs, |i| input[i] * 3);
            assert_eq!(out, input.iter().map(|v| v * 3).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn resolve_jobs_zero_uses_available_parallelism() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(1), 1);
        assert_eq!(resolve_jobs(7), 7);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let n = 64;
        let calls = AtomicUsize::new(0);
        let out = run_indexed(n, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), n);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_with_their_payload() {
        run_indexed(8, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}

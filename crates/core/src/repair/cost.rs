//! The repair cost model (Definition 3).
//!
//! `Cost(S, F) = w·|S| + Σ_{s∈S} (|s| + |F(s)|) / (|P| + |P★|)`
//!
//! Sizes count syntax-tree nodes with each atomic predicate as a single
//! node (the paper's counting: Example 6 gives `|P| = |P★| = 12` for
//! Example 5's predicates — 7 atoms plus 5 logical connectives).

use super::Repair;
use qrhint_sqlast::Pred;

/// Syntax-tree size with atoms counted as one node each.
pub fn tree_size(p: &Pred) -> usize {
    match p {
        _ if p.is_atomic() => 1,
        Pred::And(cs) | Pred::Or(cs) => 1 + cs.iter().map(tree_size).sum::<usize>(),
        Pred::Not(c) => 1 + tree_size(c),
        _ => unreachable!("is_atomic covers the remaining variants"),
    }
}

/// Cost-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-site penalty weight `w` (the paper uses 1/6 in §9).
    pub w: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { w: 1.0 / 6.0 }
    }
}

impl CostModel {
    /// Full cost of a repair of `p` toward `p_star`.
    pub fn cost(&self, p: &Pred, p_star: &Pred, repair: &Repair) -> f64 {
        let denom = (tree_size(p) + tree_size(p_star)) as f64;
        let dist: usize = repair
            .sites
            .iter()
            .zip(&repair.fixes)
            .map(|(site, fix)| {
                let sub = p.at_path(site).expect("site path valid");
                tree_size(sub) + tree_size(fix)
            })
            .sum();
        self.w * repair.sites.len() as f64 + dist as f64 / denom
    }

    /// Lower bound on the cost of any repair using the given sites
    /// (every fix has size ≥ 1). Drives Algorithm 1's early stopping.
    pub fn lower_bound(&self, p: &Pred, p_star: &Pred, sites: &[Vec<usize>]) -> f64 {
        let denom = (tree_size(p) + tree_size(p_star)) as f64;
        let dist: usize = sites
            .iter()
            .map(|site| tree_size(p.at_path(site).expect("site path valid")) + 1)
            .sum();
        self.w * sites.len() as f64 + dist as f64 / denom
    }

    /// Lower bound from the site count alone (Line 4 of Algorithm 1).
    pub fn sites_only_bound(&self, nsites: usize) -> f64 {
        self.w * nsites as f64
    }
}

/// Convenience wrapper using the default model.
pub fn repair_cost(p: &Pred, p_star: &Pred, repair: &Repair) -> f64 {
    CostModel::default().cost(p, p_star, repair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::parse_pred;

    #[test]
    fn example5_sizes() {
        // P  : (A=C ∧ (D≠E ∨ D>F)) ∨ (A=C ∧ (D>11 ∨ D<7 ∨ E≤5))  → 12 nodes
        // P★ : (A=C ∧ (E<5 ∨ D>10 ∨ D<7)) ∨ (A=B ∧ (D≠E ∨ D>F))  → 12 nodes
        let p = parse_pred(
            "(a = c AND (d <> e OR d > f)) OR (a = c AND (d > 11 OR d < 7 OR e <= 5))",
        )
        .unwrap();
        let p_star = parse_pred(
            "(a = c AND (e < 5 OR d > 10 OR d < 7)) OR (a = b AND (d <> e OR d > f))",
        )
        .unwrap();
        assert_eq!(tree_size(&p), 12);
        assert_eq!(tree_size(&p_star), 12);
    }

    #[test]
    fn example6_costs() {
        let p = parse_pred(
            "(a = c AND (d <> e OR d > f)) OR (a = c AND (d > 11 OR d < 7 OR e <= 5))",
        )
        .unwrap();
        let p_star = parse_pred(
            "(a = c AND (e < 5 OR d > 10 OR d < 7)) OR (a = b AND (d <> e OR d > f))",
        )
        .unwrap();
        let model = CostModel::default();
        // Repair 1: sites x4, x10, x12 (atoms) with atomic fixes →
        // 3w + 3·(1+1)/24 = 0.5 + 0.25 = 0.75.
        let r1 = Repair {
            sites: vec![vec![0, 0], vec![1, 1, 0], vec![1, 1, 2]],
            fixes: vec![
                parse_pred("a = b").unwrap(),
                parse_pred("d > 10").unwrap(),
                parse_pred("e < 5").unwrap(),
            ],
        };
        let c1 = model.cost(&p, &p_star, &r1);
        assert!((c1 - 0.75).abs() < 1e-9, "got {c1}");
        // Repair 2: sites x5 (size 4... per paper |x5|=4: OR + 3 nodes? x5
        // is (D≠E ∨ D>F): 3 nodes by our counting; the paper counts
        // dist = (4+3)+(5+6): site x5 size 4? Their x5 includes OR, D≠E,
        // D>F → 3 nodes. The paper's numbers treat |x5|=4 — they count
        // dist(s, F(s)) = |s| + |F(s)| with |x5| = 4 (перечёт: possibly
        // counting the parent edge). We verify our model's *relative*
        // ordering instead: repair 2 costs more than repair 1.
        let r2 = Repair {
            sites: vec![vec![0, 1], vec![1]],
            fixes: vec![
                parse_pred("e < 5 OR d > 10 OR d < 7").unwrap(),
                parse_pred("a = b AND (d <> e OR d > f)").unwrap(),
            ],
        };
        let c2 = model.cost(&p, &p_star, &r2);
        assert!(c2 > c1);
        // Trivial whole-predicate repair costs the most.
        let r3 = Repair { sites: vec![vec![]], fixes: vec![p_star.clone()] };
        let c3 = model.cost(&p, &p_star, &r3);
        assert!((c3 - (1.0 / 6.0 + 1.0)).abs() < 1e-9);
        assert!(c3 > c2);
    }

    #[test]
    fn lower_bounds_are_lower() {
        let p = parse_pred("a = 1 AND b = 2").unwrap();
        let p_star = parse_pred("a = 1 AND b = 3").unwrap();
        let model = CostModel::default();
        let sites = vec![vec![1]];
        let r = Repair { sites: sites.clone(), fixes: vec![parse_pred("b = 3").unwrap()] };
        assert!(model.lower_bound(&p, &p_star, &sites) <= model.cost(&p, &p_star, &r));
        assert!(model.sites_only_bound(1) <= model.lower_bound(&p, &p_star, &sites));
    }
}

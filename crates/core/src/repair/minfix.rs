//! `MinFix` (Algorithm 6) with its helpers `MapAtomPreds` (Algorithm 5)
//! and `BuildTruthTable`: find a smallest predicate within a target bound
//! `[l★, u★]`, optionally under a solver context.
//!
//! The Boolean-minimization back end is `qrhint-boolmin` (the ESPRESSO
//! stand-in). Infeasible atom combinations (detected by the solver) and
//! rows where the bound leaves slack become don't-cares, exactly as in
//! §5.2's encoding.

use crate::oracle::Oracle;
use qrhint_boolmin::{minimize, Dnf, Out, TruthTable};
use qrhint_smt::TriBool;
use qrhint_sqlast::Pred;
use std::collections::BTreeMap;

/// Which normal form `min_fix` should produce. DNF is used under `∨`
/// parents, CNF under `∧` parents, so `DistributeFixes` can split clauses
/// across combined repair sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalForm {
    Dnf,
    Cnf,
}

/// Maximum number of semantically unique atoms MinFix will build a truth
/// table over (2^N rows, each theory-checked).
pub const MAX_MINFIX_ATOMS: usize = 12;

/// The result of `MapAtomPreds`: a list of semantically unique atoms and
/// a mapping from structural atoms to (index, polarity).
#[derive(Debug, Clone, Default)]
pub struct AtomMap {
    /// Representative atoms, positive form.
    pub atoms: Vec<Pred>,
    /// atom (as written) → (index into `atoms`, polarity).
    phi: BTreeMap<Pred, (usize, bool)>,
}

impl AtomMap {
    /// Register every atomic predicate of `p`, deduplicating semantically
    /// equivalent (or negation-equivalent) atoms via the oracle
    /// (Algorithm 5).
    pub fn absorb(&mut self, p: &Pred, oracle: &mut Oracle, ctx: &[&Pred]) {
        for atom in p.atoms() {
            if matches!(atom, Pred::True | Pred::False) {
                continue;
            }
            if self.phi.contains_key(atom) {
                continue;
            }
            let mut mapped = None;
            for (i, rep) in self.atoms.iter().enumerate() {
                if oracle.equiv_pred(atom, rep, ctx).is_true() {
                    mapped = Some((i, true));
                    break;
                }
                let neg = rep.negated_nnf();
                if oracle.equiv_pred(atom, &neg, ctx).is_true() {
                    mapped = Some((i, false));
                    break;
                }
            }
            let entry = mapped.unwrap_or_else(|| {
                self.atoms.push(atom.clone());
                (self.atoms.len() - 1, true)
            });
            self.phi.insert(atom.clone(), entry);
        }
    }

    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluate `p` under a row of the truth table (bit i of `row` is the
    /// value of atom i). Panics if `p` contains unregistered atoms.
    pub fn eval(&self, p: &Pred, row: u32) -> bool {
        match p {
            Pred::True => true,
            Pred::False => false,
            Pred::And(cs) => cs.iter().all(|c| self.eval(c, row)),
            Pred::Or(cs) => cs.iter().any(|c| self.eval(c, row)),
            Pred::Not(c) => !self.eval(c, row),
            atom => {
                if let Some(&(i, pol)) = self.phi.get(atom) {
                    let v = row & (1 << i) != 0;
                    return if pol { v } else { !v };
                }
                // Negated forms of registered atoms appear when bounds are
                // complemented (CNF mode, NOT nodes); invert the polarity.
                let neg = atom.negated_nnf();
                let (i, pol) = *self
                    .phi
                    .get(&neg)
                    .unwrap_or_else(|| panic!("unregistered atom {atom} in AtomMap::eval"));
                let v = row & (1 << i) != 0;
                if pol {
                    !v
                } else {
                    v
                }
            }
        }
    }

    /// The conjunction of literals corresponding to a row.
    pub fn row_conjunction(&self, row: u32) -> Pred {
        Pred::and(
            self.atoms
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    if row & (1 << i) != 0 {
                        a.clone()
                    } else {
                        a.negated_nnf()
                    }
                })
                .collect(),
        )
    }

    /// Rebuild a `Dnf` over the atom list as a predicate.
    pub fn dnf_to_pred(&self, dnf: &Dnf) -> Pred {
        if dnf.is_false() {
            return Pred::False;
        }
        if dnf.is_true() {
            return Pred::True;
        }
        Pred::or(
            dnf.terms
                .iter()
                .map(|cube| {
                    Pred::and(
                        cube.literals(dnf.nvars)
                            .into_iter()
                            .map(|(i, pos)| {
                                if pos {
                                    self.atoms[i].clone()
                                } else {
                                    self.atoms[i].negated_nnf()
                                }
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Rebuild a `Dnf` of the *negated* function as a CNF predicate:
    /// `f = ¬(Σ cubes)` = Π (negated cubes).
    pub fn negated_dnf_to_cnf_pred(&self, dnf: &Dnf) -> Pred {
        if dnf.is_false() {
            return Pred::True;
        }
        if dnf.is_true() {
            return Pred::False;
        }
        Pred::and(
            dnf.terms
                .iter()
                .map(|cube| {
                    Pred::or(
                        cube.literals(dnf.nvars)
                            .into_iter()
                            .map(|(i, pos)| {
                                if pos {
                                    self.atoms[i].negated_nnf()
                                } else {
                                    self.atoms[i].clone()
                                }
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

/// Build the truth table for the target bound `[lower, upper]` over the
/// atom map: infeasible rows and slack rows become don't-cares.
pub fn build_truth_table(
    map: &AtomMap,
    oracle: &mut Oracle,
    ctx: &[&Pred],
    lower: &Pred,
    upper: &Pred,
) -> TruthTable {
    TruthTable::from_fn(map.len(), |row| {
        let conj = map.row_conjunction(row);
        // Infeasible combination of atoms → don't-care. Only a definitive
        // UNSAT may mark the row (paper's soundness discipline).
        if oracle.sat_pred(&conj, ctx) == TriBool::False {
            return Out::DontCare;
        }
        let lv = map.eval(lower, row);
        let uv = map.eval(upper, row);
        match (lv, uv) {
            (true, true) => Out::One,
            (false, false) => Out::Zero,
            (false, true) => Out::DontCare,
            // l ⇒ u precludes (true, false); be defensive if bounds were
            // derived under Unknown answers.
            (true, false) => Out::DontCare,
        }
    })
}

/// Find a smallest predicate within `[lower, upper]` under `ctx`, in the
/// requested normal form. Falls back to `lower` when the bound involves
/// too many unique atoms (a valid, if not minimal, fix — optimality
/// degrades gracefully, correctness does not).
pub fn min_fix(
    oracle: &mut Oracle,
    ctx: &[&Pred],
    lower: &Pred,
    upper: &Pred,
    form: NormalForm,
) -> Pred {
    let mut map = AtomMap::default();
    map.absorb(lower, oracle, ctx);
    map.absorb(upper, oracle, ctx);
    if map.len() > MAX_MINFIX_ATOMS {
        return lower.clone();
    }
    match form {
        NormalForm::Dnf => {
            let table = build_truth_table(&map, oracle, ctx, lower, upper);
            map.dnf_to_pred(&minimize(&table))
        }
        NormalForm::Cnf => {
            // Minimize the complement within [¬upper, ¬lower], then negate.
            let neg_l = upper.negated_nnf();
            let neg_u = lower.negated_nnf();
            let table = build_truth_table(&map, oracle, ctx, &neg_l, &neg_u);
            map.negated_dnf_to_cnf_pred(&minimize(&table))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::parse_pred;

    fn oracle_for(preds: &[&Pred]) -> Oracle {
        Oracle::for_preds(preds)
    }

    #[test]
    fn atom_map_dedupes_semantic_equivalents() {
        // a = b and a+1 = b+1 are the same atom; a >= b vs a < b are
        // negations of each other.
        let p = parse_pred("a = b AND a + 1 = b + 1 AND a >= b AND a < b").unwrap();
        let mut o = oracle_for(&[&p]);
        let mut map = AtomMap::default();
        map.absorb(&p, &mut o, &[]);
        assert_eq!(map.len(), 2, "atoms: {:?}", map.atoms);
    }

    #[test]
    fn example14_truth_table_minimization() {
        // Paper Example 14: l★ = (a≥b ∧ f=e) ∨ a=b ; u★ = a=b ∨ e=f ∨ a>b
        // → minimal fix is a ≥ b.
        let lower = parse_pred("(a >= b AND f = e) OR a = b").unwrap();
        let upper = parse_pred("a = b OR e = f OR a > b").unwrap();
        let mut o = oracle_for(&[&lower, &upper]);
        let fix = min_fix(&mut o, &[], &lower, &upper, NormalForm::Dnf);
        let expect = parse_pred("a >= b").unwrap();
        assert!(
            o.equiv_pred(&fix, &expect, &[]).is_true(),
            "expected a >= b, got {fix}"
        );
        // And it is literally a single atom (optimal size).
        assert!(fix.is_atomic(), "got {fix}");
    }

    #[test]
    fn tight_bound_returns_the_bound() {
        let p = parse_pred("a = 1 AND b = 2").unwrap();
        let mut o = oracle_for(&[&p]);
        let fix = min_fix(&mut o, &[], &p, &p, NormalForm::Dnf);
        assert!(o.equiv_pred(&fix, &p, &[]).is_true(), "got {fix}");
    }

    #[test]
    fn loose_bound_prefers_smaller() {
        // [a1 ∧ a2 ∧ a3, (a1 ∧ a2) ∨ a3] admits just a3 (Example 13).
        let lower = parse_pred("a = 1 AND b = 2 AND c = 3").unwrap();
        let upper = parse_pred("(a = 1 AND b = 2) OR c = 3").unwrap();
        let mut o = oracle_for(&[&lower, &upper]);
        let fix = min_fix(&mut o, &[], &lower, &upper, NormalForm::Dnf);
        let expect = parse_pred("c = 3").unwrap();
        assert_eq!(fix, expect, "expected the single atom c = 3");
    }

    #[test]
    fn full_slack_gives_constant() {
        let mut o = oracle_for(&[]);
        let fix = min_fix(&mut o, &[], &Pred::False, &Pred::True, NormalForm::Dnf);
        assert_eq!(fix, Pred::False);
        let fix_cnf = min_fix(&mut o, &[], &Pred::False, &Pred::True, NormalForm::Cnf);
        assert_eq!(fix_cnf, Pred::True);
    }

    #[test]
    fn cnf_mode_produces_equivalent_conjunction() {
        let lower = parse_pred("a = 1 AND b = 2").unwrap();
        let upper = lower.clone();
        let mut o = oracle_for(&[&lower]);
        let fix = min_fix(&mut o, &[], &lower, &upper, NormalForm::Cnf);
        assert!(o.equiv_pred(&fix, &lower, &[]).is_true(), "got {fix}");
        // CNF of a conjunction of atoms is the conjunction itself.
        assert!(matches!(fix, Pred::And(_)), "got {fix}");
    }

    #[test]
    fn context_don_t_cares_shrink_fixes() {
        // Under ctx x > 10, the bound [x > 10 ∧ y = 1, y = 1] should
        // minimize to just y = 1.
        let ctx = parse_pred("x > 10").unwrap();
        let lower = parse_pred("x > 10 AND y = 1").unwrap();
        let upper = parse_pred("y = 1").unwrap();
        let mut o = oracle_for(&[&ctx, &lower, &upper]);
        let fix = min_fix(&mut o, &[&ctx], &lower, &upper, NormalForm::Dnf);
        assert_eq!(fix, parse_pred("y = 1").unwrap(), "got {fix}");
    }

    #[test]
    fn interdependent_atoms_become_dont_cares() {
        // Atoms a=b and a>b cannot both hold: rows setting both true are
        // infeasible, enabling e.g. [a>=b ∧ ¬(a=b), a>b ∨ a=b] → a>=b...
        // Here we just check minimization semantics stay within bounds.
        let lower = parse_pred("a > b").unwrap();
        let upper = parse_pred("a >= b").unwrap();
        let mut o = oracle_for(&[&lower, &upper]);
        let fix = min_fix(&mut o, &[], &lower, &upper, NormalForm::Dnf);
        assert!(o.implies_pred(&lower, &fix, &[]).is_true());
        assert!(o.implies_pred(&fix, &upper, &[]).is_true());
    }

    #[test]
    fn too_many_atoms_falls_back_to_lower() {
        // 13 unique atoms exceeds MAX_MINFIX_ATOMS.
        let parts: Vec<String> = (0..13).map(|i| format!("c{i} = {i}")).collect();
        let sql = parts.join(" AND ");
        let lower = parse_pred(&sql).unwrap();
        let mut o = oracle_for(&[&lower]);
        let fix = min_fix(&mut o, &[], &lower, &Pred::True, NormalForm::Dnf);
        assert_eq!(fix, lower);
    }
}

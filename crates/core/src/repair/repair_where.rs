//! `RepairWhere` (Algorithm 1): search over candidate repair-site sets in
//! ascending size order with cost-based early stopping, viability checks
//! via `CreateBounds`, and fix derivation via `DeriveFixes` /
//! `DeriveFixesOPT`.
//!
//! Every candidate repair is *verified* (the applied predicate must be
//! definitively equivalent to the target) before being accepted, so the
//! correctness guarantee of Lemma 5.1 holds independently of solver
//! completeness.

use super::bounds::{bounds_admit_batch, create_bounds};
use super::cost::{tree_size, CostModel};
use super::derive_fixes::derive_fixes;
use super::minfix_mult::min_fix_mult;
use super::{paths_disjoint, Repair};
use crate::oracle::Oracle;
use qrhint_sqlast::pred::PredPath;
use qrhint_sqlast::Pred;
use std::time::{Duration, Instant};

/// Fix-derivation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixStrategy {
    /// `DeriveFixes` (Algorithm 3): faster, per-site bounds.
    Basic,
    /// `DeriveFixesOPT` (`MinFixMult`): holistic, smaller fixes, slower.
    /// Falls back to `Basic` when resource caps are hit.
    Optimized,
}

/// Configuration for the repair search.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Maximum number of repair sites to explore (the paper's experiments
    /// use 2).
    pub max_sites: usize,
    pub strategy: FixStrategy,
    pub cost: CostModel,
    /// Record every unpruned viable repair (for the Figure-4 traces).
    pub collect_trace: bool,
    /// Disable Algorithm 1's cost-bound early stopping (A1 ablation).
    pub disable_early_stop: bool,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_sites: 2,
            strategy: FixStrategy::Basic,
            cost: CostModel::default(),
            collect_trace: false,
            disable_early_stop: false,
        }
    }
}

/// One viable repair discovered during the search (Figure 4's dots).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub elapsed: Duration,
    pub cost: f64,
    pub nsites: usize,
}

/// Result of the repair search.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The minimum-cost verified repair, if any was found.
    pub repair: Option<Repair>,
    /// Its cost.
    pub cost: f64,
    /// Time until the first *viable* site set was identified (the "1st
    /// Repair Sites" series of Figure 2b).
    pub first_viable: Option<Duration>,
    /// All unpruned viable repairs in discovery order.
    pub trace: Vec<TraceEvent>,
    /// Number of candidate site sets examined.
    pub sets_examined: usize,
    /// Total search time.
    pub total_time: Duration,
}

/// Enumerate all site sets of exactly `k` pairwise-disjoint paths,
/// ordered by total subtree size ascending (the search heuristic: smaller
/// sites first).
fn site_sets(p: &Pred, k: usize) -> Vec<Vec<PredPath>> {
    let mut paths = p.all_paths();
    // Order candidate paths by subtree size so combinations come out
    // roughly size-sorted.
    paths.sort_by_key(|path| tree_size(p.at_path(path).unwrap()));
    let mut out: Vec<Vec<PredPath>> = Vec::new();
    let mut current: Vec<PredPath> = Vec::new();
    fn go(
        paths: &[PredPath],
        start: usize,
        k: usize,
        current: &mut Vec<PredPath>,
        out: &mut Vec<Vec<PredPath>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..paths.len() {
            if current.iter().all(|c| paths_disjoint(c, &paths[i])) {
                current.push(paths[i].clone());
                go(paths, i + 1, k, current, out);
                current.pop();
            }
        }
    }
    go(&paths, 0, k, &mut current, &mut out);
    out.sort_by_key(|set| {
        set.iter()
            .map(|path| tree_size(p.at_path(path).unwrap()))
            .sum::<usize>()
    });
    out
}

/// Algorithm 1: find a minimum-cost repair turning `p` into a predicate
/// equivalent to `p_star` (under `ctx`).
pub fn repair_where(
    oracle: &mut Oracle,
    ctx: &[&Pred],
    p: &Pred,
    p_star: &Pred,
    cfg: &RepairConfig,
) -> RepairOutcome {
    let start = Instant::now();
    let mut best: Option<Repair> = None;
    let mut best_cost = f64::INFINITY;
    let mut first_viable: Option<Duration> = None;
    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut sets_examined = 0usize;

    // Every candidate site set is tested against the same `(p_star, ctx)`
    // pair, so lower both once and prepare the assumption prefix up
    // front. Candidate order and early-stop behaviour are untouched —
    // only the shared preparation is hoisted.
    let ctx_ids: Vec<qrhint_smt::FormulaId> =
        ctx.iter().map(|c| oracle.lower_pred(c)).collect();
    let p_star_id = oracle.lower_pred(p_star);
    let batch = oracle.batch_ctx(&ctx_ids);
    oracle.equiv_batches += 1;

    'outer: for k in 1..=cfg.max_sites {
        // Early stop on site count alone (Line 4 of Algorithm 1).
        if !cfg.disable_early_stop && cfg.cost.sites_only_bound(k) >= best_cost {
            break;
        }
        for sites in site_sets(p, k) {
            sets_examined += 1;
            // Sets are ordered by total site size; once the lower bound
            // passes the best cost, no set of this size can win.
            if !cfg.disable_early_stop
                && cfg.cost.lower_bound(p, p_star, &sites) >= best_cost
            {
                if cfg.cost.sites_only_bound(k + 1) >= best_cost {
                    break 'outer;
                }
                break;
            }
            let (lo, hi) = create_bounds(p, &sites);
            oracle.equiv_batch_candidates += 1;
            if !bounds_admit_batch(oracle, &lo, &hi, p_star_id, &batch).is_true() {
                continue;
            }
            if first_viable.is_none() {
                first_viable = Some(start.elapsed());
            }
            // Derive fixes.
            let fixes = match cfg.strategy {
                FixStrategy::Optimized => {
                    min_fix_mult(oracle, ctx, p, &sites, p_star, p_star).unwrap_or_else(
                        || derive_fixes(oracle, ctx, p, &sites, p_star, p_star),
                    )
                }
                FixStrategy::Basic => derive_fixes(oracle, ctx, p, &sites, p_star, p_star),
            };
            // Reassemble in site order.
            let mut ordered: Vec<Pred> = Vec::with_capacity(sites.len());
            let mut complete = true;
            for s in &sites {
                match fixes.iter().find(|(path, _)| path == s) {
                    Some((_, f)) => ordered.push(f.clone()),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                continue;
            }
            let candidate = Repair { sites: sites.clone(), fixes: ordered };
            // Verification: the applied repair must be definitively
            // equivalent to the target.
            let applied = candidate.apply(p);
            let applied_id = oracle.lower_pred(&applied);
            if !oracle.equiv_batch_one(applied_id, p_star_id, &batch).is_true() {
                continue;
            }
            let cost = cfg.cost.cost(p, p_star, &candidate);
            if cfg.collect_trace {
                trace.push(TraceEvent { elapsed: start.elapsed(), cost, nsites: k });
            }
            if cost < best_cost {
                best_cost = cost;
                best = Some(candidate);
            }
        }
    }
    RepairOutcome {
        repair: best,
        cost: best_cost,
        first_viable,
        trace,
        sets_examined,
        total_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::parse_pred;

    fn run(
        p_sql: &str,
        p_star_sql: &str,
        cfg: &RepairConfig,
    ) -> (Pred, Pred, RepairOutcome) {
        let p = parse_pred(p_sql).unwrap();
        let p_star = parse_pred(p_star_sql).unwrap();
        let mut o = Oracle::for_preds(&[&p, &p_star]);
        let out = repair_where(&mut o, &[], &p, &p_star, cfg);
        (p, p_star, out)
    }

    fn assert_correct(p: &Pred, p_star: &Pred, out: &RepairOutcome) {
        let r = out.repair.as_ref().expect("a repair must be found");
        let applied = r.apply(p);
        let mut o = Oracle::for_preds(&[p, p_star]);
        assert!(o.equiv_pred(&applied, p_star, &[]).is_true());
    }

    #[test]
    fn equivalent_inputs_need_no_repair_sites_but_root_works() {
        // P ⇔ P★ already: the cheapest repair found should still be cheap
        // (a single-site identity-ish repair); importantly the search must
        // not crash. (The pipeline short-circuits this case before calling
        // repair_where; this is a robustness test.)
        let (p, p_star, out) =
            run("a = 1 AND b = 2", "b = 2 AND a = 1", &RepairConfig::default());
        assert_correct(&p, &p_star, &out);
    }

    #[test]
    fn single_wrong_atom_found_optimally() {
        // Example 2's WHERE fix shape: one atom wrong.
        let (p, p_star, out) = run(
            "d = 'Amy' AND l = s1 AND l = s2 AND p1 > p2",
            "d = 'Amy' AND l = s1 AND l = s2 AND p1 >= p2",
            &RepairConfig::default(),
        );
        assert_correct(&p, &p_star, &out);
        let r = out.repair.unwrap();
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.sites[0], vec![3]);
        let mut o = Oracle::for_preds(&[&p]);
        assert!(o
            .equiv_pred(&r.fixes[0], &parse_pred("p1 >= p2").unwrap(), &[])
            .is_true());
    }

    #[test]
    fn two_errors_two_sites() {
        let (p, p_star, out) = run(
            "a = 1 AND b = 2 AND c = 3 AND d = 4",
            "a = 1 AND b = 9 AND c = 3 AND d = 8",
            &RepairConfig::default(),
        );
        assert_correct(&p, &p_star, &out);
        let r = out.repair.unwrap();
        assert_eq!(r.sites.len(), 2);
        assert!(out.first_viable.is_some());
    }

    #[test]
    fn missing_conjunct_handled_by_site_extension() {
        // P misses a join condition entirely: repairable by replacing one
        // conjunct with a conjunction (or the root).
        let (p, p_star, out) = run(
            "a = 1 AND b = 2",
            "a = 1 AND b = 2 AND c = 3",
            &RepairConfig::default(),
        );
        assert_correct(&p, &p_star, &out);
    }

    #[test]
    fn optimized_no_worse_than_basic() {
        let p_sql =
            "(a = c AND (d <> e OR d > f)) OR (a = c AND (d > 11 OR d < 7 OR e <= 5))";
        let p_star_sql =
            "(a = c AND (e < 5 OR d > 10 OR d < 7)) OR (a = b AND (d <> e OR d > f))";
        let basic_cfg = RepairConfig { max_sites: 2, ..Default::default() };
        let opt_cfg = RepairConfig {
            max_sites: 2,
            strategy: FixStrategy::Optimized,
            ..Default::default()
        };
        let (p, p_star, out_b) = run(p_sql, p_star_sql, &basic_cfg);
        let (_, _, out_o) = run(p_sql, p_star_sql, &opt_cfg);
        assert_correct(&p, &p_star, &out_b);
        assert_correct(&p, &p_star, &out_o);
        assert!(out_o.cost <= out_b.cost + 1e-9);
    }

    #[test]
    fn trace_collection() {
        let cfg = RepairConfig { collect_trace: true, ..Default::default() };
        let (_, _, out) = run("a = 1 AND b = 2", "a = 1 AND b = 3", &cfg);
        assert!(!out.trace.is_empty());
        // Costs recorded are achievable costs (best is their min).
        let min = out.trace.iter().map(|t| t.cost).fold(f64::INFINITY, f64::min);
        assert!((min - out.cost).abs() < 1e-9);
    }

    #[test]
    fn site_sets_enumeration_is_disjoint_and_sorted() {
        let p = parse_pred("(a = 1 AND b = 2) OR c = 3").unwrap();
        let sets = site_sets(&p, 2);
        for set in &sets {
            assert_eq!(set.len(), 2);
            assert!(paths_disjoint(&set[0], &set[1]));
        }
        // Sorted by total site size.
        let sizes: Vec<usize> = sets
            .iter()
            .map(|set| {
                set.iter()
                    .map(|path| tree_size(p.at_path(path).unwrap()))
                    .sum()
            })
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }
}

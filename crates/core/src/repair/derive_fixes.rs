//! `DeriveFixes` (Algorithm 3): push target bounds down the predicate tree
//! and synthesize a fix for every repair site, plus `DistributeFixes` for
//! sibling sites combined under one `∧`/`∨` parent.

use super::bounds::create_bounds;
use super::minfix::{min_fix, NormalForm};
use crate::oracle::Oracle;
use qrhint_sqlast::pred::PredPath;
use qrhint_sqlast::Pred;
use std::collections::BTreeSet;

/// Restrict global site paths to those under child `i`, re-rooted.
fn sites_under(sites: &[PredPath], i: usize) -> Vec<PredPath> {
    sites
        .iter()
        .filter(|s| s.first() == Some(&i))
        .map(|s| s[1..].to_vec())
        .collect()
}

/// Derive fixes for `sites` (paths relative to `x`) achieving the target
/// bound `[l_star, u_star]`. Returns one `(site, fix)` pair per site.
///
/// Precondition: the target bound is within `create_bounds(x, sites)` —
/// callers establish this via the §5.1 viability test. Under that
/// precondition, applying the returned fixes lands `x` inside
/// `[l_star, u_star]` (Lemma 5.4).
pub fn derive_fixes(
    oracle: &mut Oracle,
    ctx: &[&Pred],
    x: &Pred,
    sites: &[PredPath],
    l_star: &Pred,
    u_star: &Pred,
) -> Vec<(PredPath, Pred)> {
    if sites.iter().any(|s| s.is_empty()) {
        // The whole subtree is a repair site.
        return vec![(vec![], min_fix(oracle, ctx, l_star, u_star, NormalForm::Dnf))];
    }
    if x.is_atomic() {
        return vec![];
    }
    match x {
        Pred::Not(c) => {
            let child_sites = sites_under(sites, 0);
            let rec = derive_fixes(
                oracle,
                ctx,
                c,
                &child_sites,
                &u_star.negated_nnf(),
                &l_star.negated_nnf(),
            );
            rec.into_iter()
                .map(|(mut path, fix)| {
                    path.insert(0, 0);
                    (path, fix)
                })
                .collect()
        }
        Pred::And(cs) | Pred::Or(cs) => {
            let is_and = matches!(x, Pred::And(_));
            // Repair bounds per child.
            let child_sites: Vec<Vec<PredPath>> =
                (0..cs.len()).map(|i| sites_under(sites, i)).collect();
            let child_bounds: Vec<(Pred, Pred)> = cs
                .iter()
                .zip(&child_sites)
                .map(|(c, s)| create_bounds(c, s))
                .collect();
            // Children that are repair sites themselves get combined into
            // one virtual element `r` (∧/∨ are commutative).
            let r_children: Vec<usize> = (0..cs.len())
                .filter(|i| sites.iter().any(|s| s.len() == 1 && s[0] == *i))
                .collect();

            // Elements: Some(i) for a regular child, None for `r`.
            let mut elements: Vec<Option<usize>> = (0..cs.len())
                .filter(|i| !r_children.contains(i))
                .map(Some)
                .collect();
            if !r_children.is_empty() {
                elements.push(None);
            }
            let bound_of = |e: &Option<usize>| -> (Pred, Pred) {
                match e {
                    Some(i) => child_bounds[*i].clone(),
                    None => (Pred::False, Pred::True),
                }
            };

            let mut out: Vec<(PredPath, Pred)> = Vec::new();
            for e in &elements {
                // Skip elements with nothing to repair.
                let has_sites = match e {
                    Some(i) => !child_sites[*i].is_empty(),
                    None => true,
                };
                if !has_sites {
                    continue;
                }
                let (l_e, u_e) = bound_of(e);
                // Combine the bounds of all *other* elements.
                let others: Vec<(Pred, Pred)> = elements
                    .iter()
                    .filter(|o| *o != e)
                    .map(&bound_of)
                    .collect();
                let (l_other, u_other) = if is_and {
                    (
                        Pred::and(others.iter().map(|(l, _)| l.clone()).collect()),
                        Pred::and(others.iter().map(|(_, u)| u.clone()).collect()),
                    )
                } else {
                    (
                        Pred::or(others.iter().map(|(l, _)| l.clone()).collect()),
                        Pred::or(others.iter().map(|(_, u)| u.clone()).collect()),
                    )
                };
                // Target bound for this element (§C.1.1).
                let (l_t, u_t) = if is_and {
                    (
                        l_star.clone(),
                        Pred::and(vec![
                            u_e,
                            Pred::or(vec![u_star.clone(), u_other.negated_nnf()]),
                        ]),
                    )
                } else {
                    (
                        Pred::or(vec![
                            l_e,
                            Pred::and(vec![l_star.clone(), l_other.negated_nnf()]),
                        ]),
                        u_star.clone(),
                    )
                };
                match e {
                    Some(i) => {
                        let rec =
                            derive_fixes(oracle, ctx, &cs[*i], &child_sites[*i], &l_t, &u_t);
                        out.extend(rec.into_iter().map(|(mut path, fix)| {
                            path.insert(0, *i);
                            (path, fix)
                        }));
                    }
                    None => {
                        let form = if is_and { NormalForm::Cnf } else { NormalForm::Dnf };
                        let fix = min_fix(oracle, ctx, &l_t, &u_t, form);
                        let originals: Vec<&Pred> =
                            r_children.iter().map(|&i| &cs[i]).collect();
                        let distributed = distribute_fixes(&fix, &originals, is_and);
                        for (&i, f) in r_children.iter().zip(distributed) {
                            out.push((vec![i], f));
                        }
                    }
                }
            }
            out
        }
        _ => unreachable!("atomic handled above"),
    }
}

/// Split a combined fix (CNF under `∧`, DNF under `∨`) across the sibling
/// repair sites by syntactic similarity with the sites' original subtrees
/// (§5.2 `DistributeFixes`). Sites receiving no clause get the operator's
/// neutral element.
pub fn distribute_fixes(fix: &Pred, originals: &[&Pred], is_and: bool) -> Vec<Pred> {
    let clauses: Vec<Pred> = match (fix, is_and) {
        (Pred::And(cs), true) | (Pred::Or(cs), false) => cs.clone(),
        _ => vec![fix.clone()],
    };
    let atom_set = |p: &Pred| -> BTreeSet<String> {
        p.atoms().iter().map(|a| a.to_string()).collect()
    };
    let site_atoms: Vec<BTreeSet<String>> = originals.iter().map(|p| atom_set(p)).collect();
    let mut buckets: Vec<Vec<Pred>> = vec![Vec::new(); originals.len()];
    for (ci, clause) in clauses.into_iter().enumerate() {
        let ca = atom_set(&clause);
        let best = (0..originals.len())
            .max_by_key(|&i| {
                let overlap = site_atoms[i].intersection(&ca).count();
                // Tie-break: spread clauses round-robin over empty buckets.
                (overlap, usize::from(buckets[i].is_empty()), usize::MAX - i - ci % originals.len())
            })
            .unwrap_or(0);
        buckets[best].push(clause);
    }
    buckets
        .into_iter()
        .map(|clauses| {
            if clauses.is_empty() {
                if is_and {
                    Pred::True
                } else {
                    Pred::False
                }
            } else if is_and {
                Pred::and(clauses)
            } else {
                Pred::or(clauses)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::bounds::bounds_admit;
    use crate::repair::Repair;
    use qrhint_sqlparse::parse_pred;

    fn check_repair(p_sql: &str, p_star_sql: &str, sites: Vec<PredPath>) {
        let p = parse_pred(p_sql).unwrap();
        let p_star = parse_pred(p_star_sql).unwrap();
        let mut o = Oracle::for_preds(&[&p, &p_star]);
        let (lo, hi) = create_bounds(&p, &sites);
        assert!(
            bounds_admit(&mut o, &lo, &hi, &p_star, &[]).is_true(),
            "sites not viable for this test"
        );
        let fixes = derive_fixes(&mut o, &[], &p, &sites, &p_star, &p_star);
        assert_eq!(fixes.len(), sites.len(), "one fix per site: {fixes:?}");
        let mut ordered = Vec::new();
        for s in &sites {
            let fix = fixes
                .iter()
                .find(|(path, _)| path == s)
                .unwrap_or_else(|| panic!("no fix for site {s:?} in {fixes:?}"))
                .1
                .clone();
            ordered.push(fix);
        }
        let repair = Repair { sites: sites.clone(), fixes: ordered };
        let applied = repair.apply(&p);
        assert!(
            o.equiv_pred(&applied, &p_star, &[]).is_true(),
            "applied repair {applied} not equivalent to {p_star}"
        );
    }

    #[test]
    fn single_atom_site_in_conjunction() {
        check_repair(
            "a = 1 AND b = 2 AND c = 3",
            "a = 1 AND b = 5 AND c = 3",
            vec![vec![1]],
        );
    }

    #[test]
    fn single_atom_site_in_disjunction() {
        check_repair("a = 1 OR b = 2", "a = 1 OR b = 5", vec![vec![1]]);
    }

    #[test]
    fn root_site_is_whole_replacement() {
        check_repair("a = 1", "b = 2 AND c = 3", vec![vec![]]);
    }

    #[test]
    fn site_under_negation() {
        check_repair("NOT (a = 1 OR b = 2)", "NOT (a = 5 OR b = 2)", vec![vec![0, 0]]);
    }

    #[test]
    fn paper_example5_sites_yield_correct_repair() {
        // Sites {x4, x10, x12}; DeriveFixes finds a correct (if not
        // minimal) repair — Lemma 5.4.
        check_repair(
            "(a = c AND (d <> e OR d > f)) OR (a = c AND (d > 11 OR d < 7 OR e <= 5))",
            "(a = c AND (e < 5 OR d > 10 OR d < 7)) OR (a = b AND (d <> e OR d > f))",
            vec![vec![0, 0], vec![1, 1, 0], vec![1, 1, 2]],
        );
    }

    #[test]
    fn sibling_sites_combined_and_distributed() {
        // Two sites under the same OR parent (x10, x12 analogue).
        check_repair(
            "a = 1 OR b = 2 OR c = 3",
            "a = 1 OR b = 7 OR c = 9",
            vec![vec![1], vec![2]],
        );
        // Two sites under the same AND parent → CNF distribution.
        check_repair(
            "a = 1 AND b = 2 AND c = 3",
            "a = 1 AND b = 7 AND c = 9",
            vec![vec![1], vec![2]],
        );
    }

    #[test]
    fn mixed_site_depths() {
        check_repair(
            "(a = 1 AND b = 2) OR (c = 3 AND d = 4)",
            "(a = 1 AND b = 9) OR (c = 3 AND d = 4)",
            vec![vec![0, 1]],
        );
    }

    #[test]
    fn distribute_fixes_by_similarity() {
        let fix = parse_pred("b = 7 OR c = 9").unwrap();
        let b_orig = parse_pred("b = 2").unwrap();
        let c_orig = parse_pred("c = 3").unwrap();
        let parts = distribute_fixes(&fix, &[&b_orig, &c_orig], false);
        assert_eq!(parts[0], parse_pred("b = 7").unwrap());
        assert_eq!(parts[1], parse_pred("c = 9").unwrap());
        // A site with no matching clause gets the neutral element.
        let fix2 = parse_pred("b = 7").unwrap();
        let parts2 = distribute_fixes(&fix2, &[&b_orig, &c_orig], false);
        assert_eq!(parts2[0], parse_pred("b = 7").unwrap());
        assert_eq!(parts2[1], Pred::False);
        // CNF distribution uses TRUE as the neutral element.
        let fix3 = parse_pred("b = 7").unwrap();
        let parts3 = distribute_fixes(&fix3, &[&b_orig, &c_orig], true);
        assert_eq!(parts3[1], Pred::True);
    }
}
